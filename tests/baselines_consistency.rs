//! Every system — DITA and all five baselines — must return identical
//! answers on the same workload; they differ only in *how much work* they
//! do, which the candidate counts make visible (the paper's Figure 17
//! argument).

use dita::baselines::{DftSystem, MbeIndex, NaiveSystem, SimbaSystem, VpTree};
use dita::cluster::{Cluster, ClusterConfig};
use dita::core::{search, DitaConfig, DitaSystem};
use dita::datagen::{chengdu_tiny, sample_queries};
use dita::distance::DistanceFunction;
use dita::index::{PivotStrategy, TrieConfig};

fn config() -> DitaConfig {
    DitaConfig {
        ng: 4,
        trie: TrieConfig {
            k: 3,
            nl: 4,
            leaf_capacity: 4,
            strategy: PivotStrategy::NeighborDistance,
            cell_side: 0.002,
            ..TrieConfig::default()
        },
    }
}

#[test]
fn all_systems_return_identical_search_answers() {
    let dataset = chengdu_tiny(300, 77);
    let cluster = Cluster::new(ClusterConfig::with_workers(2));

    let dita = DitaSystem::build(&dataset, config(), cluster.clone());
    let naive = NaiveSystem::build(dataset.trajectories(), cluster.clone());
    let simba = SimbaSystem::build(dataset.trajectories(), 8, cluster.clone());
    let dft = DftSystem::build(dataset.trajectories(), 8, cluster);
    let mbe = MbeIndex::build(dataset.trajectories(), 4);
    let vp = VpTree::build(dataset.trajectories(), DistanceFunction::Frechet);

    let queries = sample_queries(&dataset, 6, 9);
    for q in &queries {
        for (f, tau) in [
            (DistanceFunction::Dtw, 0.004),
            (DistanceFunction::Frechet, 0.002),
        ] {
            let (dita_hits, _) = search(&dita, q.points(), tau, &f);
            let ids = |v: &[(u64, f64)]| v.iter().map(|&(i, _)| i).collect::<Vec<_>>();
            let reference = ids(&dita_hits);

            let (naive_hits, _) = naive.search(q.points(), tau, &f);
            assert_eq!(ids(&naive_hits), reference, "naive {f}");

            let (simba_hits, simba_cands, _) = simba.search(q.points(), tau, &f);
            assert_eq!(ids(&simba_hits), reference, "simba {f}");
            assert!(simba_cands >= simba_hits.len());

            let (dft_hits, dft_cands, _, _) = dft.search(q.points(), tau, &f);
            assert_eq!(ids(&dft_hits), reference, "dft {f}");
            assert!(dft_cands >= dft_hits.len());

            let (mbe_hits, mbe_cands) = mbe.search(q.points(), tau, &f);
            assert_eq!(ids(&mbe_hits), reference, "mbe {f}");
            assert!(mbe_cands >= mbe_hits.len());

            if f.is_metric() {
                let (vp_hits, _) = vp.search(q, tau);
                assert_eq!(ids(&vp_hits), reference, "vptree {f}");
            }
        }
    }
}

#[test]
fn dita_produces_fewest_candidates() {
    // The core claim behind Figures 7, 8 and 17: DITA's multi-level filter
    // admits fewer candidates than Simba's single-level first-point filter
    // and MBE's envelope bound, on aggregate.
    let dataset = chengdu_tiny(400, 99);
    let cluster = Cluster::new(ClusterConfig::with_workers(2));
    let dita = DitaSystem::build(&dataset, config(), cluster.clone());
    let simba = SimbaSystem::build(dataset.trajectories(), 16, cluster.clone());
    let dft = DftSystem::build(dataset.trajectories(), 16, cluster);
    let mbe = MbeIndex::build(dataset.trajectories(), 8);

    let queries = sample_queries(&dataset, 12, 4);
    let tau = 0.004;
    let f = DistanceFunction::Dtw;
    let mut dita_total = 0usize;
    let mut simba_total = 0usize;
    let mut dft_total = 0usize;
    let mut mbe_total = 0usize;
    for q in &queries {
        let (_, s) = search(&dita, q.points(), tau, &f);
        dita_total += s.candidates;
        let (_, c, _) = simba.search(q.points(), tau, &f);
        simba_total += c;
        let (_, c, _, _) = dft.search(q.points(), tau, &f);
        dft_total += c;
        let (_, c) = mbe.search(q.points(), tau, &f);
        mbe_total += c;
    }
    assert!(
        dita_total <= simba_total,
        "DITA candidates {dita_total} vs Simba {simba_total}"
    );
    assert!(
        dita_total <= dft_total,
        "DITA candidates {dita_total} vs DFT {dft_total}"
    );
    assert!(
        dita_total <= mbe_total,
        "DITA candidates {dita_total} vs MBE {mbe_total}"
    );
}

#[test]
fn join_answers_agree_across_systems() {
    let dataset = chengdu_tiny(120, 13);
    let cluster = Cluster::new(ClusterConfig::with_workers(2));
    let dita = DitaSystem::build(&dataset, config(), cluster.clone());
    let naive = NaiveSystem::build(dataset.trajectories(), cluster.clone());
    let simba = SimbaSystem::build(dataset.trajectories(), 4, cluster);
    let mbe = MbeIndex::build(dataset.trajectories(), 4);

    let tau = 0.003;
    let f = DistanceFunction::Dtw;
    let (dita_pairs, _) =
        dita::core::join(&dita, &dita, tau, &f, &dita::core::JoinOptions::default());
    let reference: Vec<(u64, u64)> = dita_pairs.iter().map(|&(a, b, _)| (a, b)).collect();

    let (naive_pairs, _) = naive.join(&naive, tau, &f);
    assert_eq!(
        naive_pairs
            .iter()
            .map(|&(a, b, _)| (a, b))
            .collect::<Vec<_>>(),
        reference
    );
    let (simba_pairs, _, _) = simba.join(&simba, tau, &f);
    assert_eq!(
        simba_pairs
            .iter()
            .map(|&(a, b, _)| (a, b))
            .collect::<Vec<_>>(),
        reference
    );
    let (mbe_pairs, _) = mbe.join(&mbe, tau, &f);
    assert_eq!(
        mbe_pairs
            .iter()
            .map(|&(a, b, _)| (a, b))
            .collect::<Vec<_>>(),
        reference
    );
}
