//! Integration tests for the `dita` command-line tool.

use std::path::PathBuf;
use std::process::Command;

fn dita() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dita"))
}

fn tmpfile(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("dita-cli-test-{}-{name}", std::process::id()));
    p
}

fn gen_dataset(path: &PathBuf) {
    let out = dita()
        .args([
            "gen", "--preset", "beijing", "--n", "300", "--seed", "7", "--out",
        ])
        .arg(path)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn gen_stats_roundtrip() {
    let path = tmpfile("gen.txt");
    gen_dataset(&path);
    let out = dita().arg("stats").arg(&path).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("cardinality=300"), "{text}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn search_finds_query_itself() {
    let path = tmpfile("search.txt");
    gen_dataset(&path);
    let out = dita()
        .arg("search")
        .arg(&path)
        .args(["--query-id", "5", "--tau", "0.001", "--workers", "2"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("5\t0.000000"), "{text}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn knn_returns_k_rows() {
    let path = tmpfile("knn.txt");
    gen_dataset(&path);
    let out = dita()
        .arg("knn")
        .arg(&path)
        .args(["--query-id", "3", "--k", "4", "--workers", "2"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        text.lines().filter(|l| l.starts_with('#')).count(),
        4,
        "{text}"
    );
    assert!(text.contains("#1\t3\t0.000000"), "{text}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn sql_statement_executes() {
    let path = tmpfile("sql.txt");
    gen_dataset(&path);
    let out = dita()
        .arg("sql")
        .arg(&path)
        .arg("SHOW TABLES")
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("\"t\""));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn preprocess_shrinks_points() {
    let input = tmpfile("pre-in.txt");
    let output = tmpfile("pre-out.txt");
    gen_dataset(&input);
    let out = dita()
        .arg("preprocess")
        .arg(&input)
        .args(["--simplify", "0.0005", "--out"])
        .arg(&output)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("before:") && text.contains("after:"),
        "{text}"
    );
    assert!(output.exists());
    let _ = std::fs::remove_file(&input);
    let _ = std::fs::remove_file(&output);
}

#[test]
fn bad_usage_fails_with_help() {
    let out = dita().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
    let out = dita().output().unwrap();
    assert!(!out.status.success());
}
