//! SQL front-end over generated data: parsing, planning, index DDL and
//! result equivalence between physical operators.

use dita::cluster::{Cluster, ClusterConfig};
use dita::core::DitaConfig;
use dita::datagen::{beijing_like, sample_queries};
use dita::distance::DistanceFunction;
use dita::index::{PivotStrategy, TrieConfig};
use dita::sql::{Engine, QueryResult};

fn engine_with(n: usize) -> Engine {
    let mut e = Engine::new(
        Cluster::new(ClusterConfig::with_workers(3)),
        DitaConfig {
            ng: 4,
            trie: TrieConfig {
                k: 3,
                nl: 4,
                leaf_capacity: 4,
                strategy: PivotStrategy::NeighborDistance,
                cell_side: 0.002,
                ..TrieConfig::default()
            },
        },
    );
    e.register("trips", beijing_like(n, 8)).unwrap();
    e
}

fn literal_for(points: &[dita::trajectory::Point]) -> String {
    let coords: Vec<String> = points
        .iter()
        .map(|p| format!("({},{})", p.x, p.y))
        .collect();
    format!("TRAJECTORY({})", coords.join(","))
}

#[test]
fn scan_and_index_plans_agree_on_real_data() {
    let mut e = engine_with(300);
    let q = sample_queries(e.dataset("trips").unwrap(), 1, 2)[0].clone();
    let sql = format!(
        "SELECT * FROM trips WHERE DTW(trips, {}) <= 0.003",
        literal_for(q.points())
    );

    let scan_hits = match e.execute(&sql).unwrap() {
        QueryResult::SearchHits(h) => h,
        other => panic!("{other:?}"),
    };
    assert!(e.explain(&sql).unwrap().contains("ScanSearch"));

    e.execute("CREATE INDEX idx ON trips USE TRIE").unwrap();
    assert!(e.explain(&sql).unwrap().contains("IndexSearch"));
    let index_hits = match e.execute(&sql).unwrap() {
        QueryResult::SearchHits(h) => h,
        other => panic!("{other:?}"),
    };
    assert_eq!(scan_hits, index_hits);
    assert!(!index_hits.is_empty(), "the query trip matches itself");
}

#[test]
fn sql_join_equals_dataframe_join() {
    let mut e = engine_with(200);
    e.register("trips2", beijing_like(200, 8)).unwrap();

    let sql_pairs = match e
        .execute("SELECT * FROM trips TRA-JOIN trips2 ON DTW(trips, trips2) <= 0.002")
        .unwrap()
    {
        QueryResult::JoinPairs(p) => p,
        other => panic!("{other:?}"),
    };
    let df_pairs = e
        .table("trips")
        .unwrap()
        .tra_join("trips2", DistanceFunction::Dtw, 0.002)
        .unwrap();
    assert_eq!(sql_pairs, df_pairs);
    // Identical seeds → every trip matches its twin.
    assert!(sql_pairs.len() >= 200);
}

#[test]
fn every_distance_function_usable_from_sql() {
    let mut e = engine_with(150);
    e.execute("CREATE INDEX idx ON trips USE TRIE").unwrap();
    let q = sample_queries(e.dataset("trips").unwrap(), 1, 6)[0].clone();
    let lit = literal_for(q.points());
    for (func, tau) in [
        ("DTW", "0.003"),
        ("FRECHET", "0.002"),
        ("EDR", "5.0"),
        ("LCSS", "5.0"),
        ("ERP", "1000.0"),
    ] {
        let sql = format!("SELECT * FROM trips WHERE {func}(trips, {lit}) <= {tau}");
        match e.execute(&sql) {
            Ok(QueryResult::SearchHits(hits)) => {
                assert!(
                    hits.iter().any(|&(id, _)| id == q.id),
                    "{func}: query trip must match itself"
                );
            }
            other => panic!("{func}: {other:?}"),
        }
    }
}

#[test]
fn sql_dml_round_trips_through_the_index() {
    let mut e = engine_with(200);
    e.execute("CREATE INDEX idx ON trips USE TRIE").unwrap();

    // INSERT a trajectory far outside the Beijing-like extent; it must be
    // visible to an indexed search immediately (delta overlay or compaction).
    e.execute("INSERT INTO trips VALUES (900001, TRAJECTORY((95.0, 12.0), (95.001, 12.001)))")
        .unwrap();
    let probe = "SELECT * FROM trips WHERE DTW(trips, \
                 TRAJECTORY((95.0, 12.0), (95.001, 12.001))) <= 0.0001";
    match e.execute(probe).unwrap() {
        QueryResult::SearchHits(hits) => {
            assert_eq!(
                hits.iter().map(|&(id, _)| id).collect::<Vec<_>>(),
                vec![900001]
            );
        }
        other => panic!("{other:?}"),
    }

    // DELETE it again: both the index and the scan path must forget it.
    match e.execute("DELETE FROM trips WHERE id = 900001").unwrap() {
        QueryResult::Ack(msg) => assert!(msg.contains("deleted id 900001"), "{msg}"),
        other => panic!("{other:?}"),
    }
    match e.execute(probe).unwrap() {
        QueryResult::SearchHits(hits) => assert!(hits.is_empty()),
        other => panic!("{other:?}"),
    }
    assert_eq!(e.dataset("trips").unwrap().len(), 200);

    // DELETE an original trip and check a self-match query no longer returns it.
    let q = sample_queries(e.dataset("trips").unwrap(), 1, 4)[0].clone();
    let self_probe = format!(
        "SELECT * FROM trips WHERE DTW(trips, {}) <= 0.003",
        literal_for(q.points())
    );
    match e.execute(&self_probe).unwrap() {
        QueryResult::SearchHits(hits) => assert!(hits.iter().any(|&(id, _)| id == q.id)),
        other => panic!("{other:?}"),
    }
    e.execute(&format!("DELETE FROM trips WHERE id = {}", q.id))
        .unwrap();
    match e.execute(&self_probe).unwrap() {
        QueryResult::SearchHits(hits) => {
            assert!(hits.iter().all(|&(id, _)| id != q.id));
        }
        other => panic!("{other:?}"),
    }
    assert_eq!(e.dataset("trips").unwrap().len(), 199);
}

#[test]
fn threshold_expressions_fold() {
    let mut e = engine_with(100);
    let q = sample_queries(e.dataset("trips").unwrap(), 1, 6)[0].clone();
    let lit = literal_for(q.points());
    let a = match e
        .execute(&format!(
            "SELECT * FROM trips WHERE DTW(trips, {lit}) <= 0.003"
        ))
        .unwrap()
    {
        QueryResult::SearchHits(h) => h,
        other => panic!("{other:?}"),
    };
    let b = match e
        .execute(&format!(
            "SELECT * FROM trips WHERE DTW(trips, {lit}) <= 0.001 * 2 + 0.001"
        ))
        .unwrap()
    {
        QueryResult::SearchHits(h) => h,
        other => panic!("{other:?}"),
    };
    assert_eq!(a, b);
}
