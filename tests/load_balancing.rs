//! Load balancing under skew and stragglers (§6.2–6.3, Figure 16).

use dita::cluster::{Cluster, ClusterConfig, NetworkModel};
use dita::core::{join, search, BalanceStrategy, DitaConfig, DitaSystem, JoinOptions};
use dita::datagen::{city_dataset, sample_queries, CityConfig};
use dita::distance::DistanceFunction;
use dita::index::{PivotStrategy, TrieConfig};

/// A deliberately skewed city: one dense hotspot holds most trips.
fn skewed_dataset(n: usize, seed: u64) -> dita::trajectory::Dataset {
    let hotspot = city_dataset(&CityConfig {
        name: "hotspot".into(),
        cardinality: n * 3 / 4,
        center: (10.0, 10.0),
        extent_deg: 0.05, // tiny area → everything is similar
        grid_step_deg: 0.001,
        avg_len: 20.0,
        min_len: 8,
        max_len: 60,
        gps_noise_deg: 0.00005,
        route_popularity: 0.5,
        popular_routes: 16,
        hotspot_fraction: 0.8,
        seed,
    });
    let sparse = city_dataset(&CityConfig {
        name: "sparse".into(),
        cardinality: n / 4,
        center: (10.0, 10.0),
        extent_deg: 0.6,
        grid_step_deg: 0.002,
        avg_len: 20.0,
        min_len: 8,
        max_len: 60,
        gps_noise_deg: 0.00005,
        route_popularity: 0.1,
        popular_routes: 0,
        hotspot_fraction: 0.0,
        seed: seed + 1,
    });
    let mut trajectories = hotspot.into_trajectories();
    let offset = trajectories.len() as u64;
    for mut t in sparse.into_trajectories() {
        t.id += offset;
        trajectories.push(t);
    }
    dita::trajectory::Dataset::new_unchecked("skewed", trajectories)
}

fn config() -> DitaConfig {
    DitaConfig {
        ng: 4,
        trie: TrieConfig {
            k: 3,
            nl: 4,
            leaf_capacity: 8,
            strategy: PivotStrategy::NeighborDistance,
            cell_side: 0.002,
            ..TrieConfig::default()
        },
    }
}

#[test]
fn balancing_improves_predicted_bottleneck_on_skewed_joins() {
    let dataset = skewed_dataset(400, 3);
    let cluster = Cluster::new(ClusterConfig::with_workers(4));
    let system = DitaSystem::build(&dataset, config(), cluster);

    let f = DistanceFunction::Dtw;
    let tau = 0.002;
    // The paper's 0.98 percentile is calibrated to thousands of partitions;
    // at this test's 16-partition scale the analogous knob is lower.
    let run = |balance| {
        let opts = JoinOptions {
            balance,
            division_percentile: 0.8,
            ..JoinOptions::default()
        };
        join(&system, &system, tau, &f, &opts)
    };
    let (pairs_none, none) = run(BalanceStrategy::None);
    let (pairs_orient, orient) = run(BalanceStrategy::Orientation);
    let (pairs_full, full) = run(BalanceStrategy::Full);

    // Answers identical regardless of strategy.
    assert_eq!(pairs_none.len(), pairs_orient.len());
    assert_eq!(pairs_none.len(), pairs_full.len());
    assert!(!pairs_none.is_empty());

    // Orientation must not worsen the predicted bottleneck cost.
    assert!(orient.predicted_tc_global <= none.predicted_tc_global + 1e-9);
    // Division kicks in on the skewed hotspot partition.
    assert!(full.replicas > 0, "expected replicas on skewed data");
    let _ = full;
}

#[test]
fn straggler_worker_is_visible_in_load_ratio() {
    let dataset = skewed_dataset(300, 5);
    // Worker 3 is 20x slower (failure injection).
    let mut cfg = ClusterConfig::with_workers(4);
    cfg.slowdowns = vec![1.0, 1.0, 1.0, 20.0];
    let cluster = Cluster::new(cfg);
    let system = DitaSystem::build(&dataset, config(), cluster);

    let (pairs, stats) = join(
        &system,
        &system,
        0.002,
        &DistanceFunction::Dtw,
        &JoinOptions::default(),
    );
    assert!(!pairs.is_empty());
    // The straggler must dominate some worker's effective time.
    assert!(
        stats.job.load_ratio() > 1.0,
        "straggler invisible: ratio {}",
        stats.job.load_ratio()
    );
}

#[test]
fn searches_execute_on_expected_workers_only() {
    let dataset = skewed_dataset(300, 9);
    let cluster = Cluster::new(ClusterConfig::with_workers(4));
    let system = DitaSystem::build(&dataset, config(), cluster);

    let q = sample_queries(&dataset, 1, 2)[0].clone();
    let (_, stats) = search(&system, q.points(), 0.002, &DistanceFunction::Dtw);
    let busy_workers = stats.job.workers.iter().filter(|w| w.tasks > 0).count();
    assert!(busy_workers >= 1);
    // One task per busy worker (the query broadcasts once per worker),
    // and only workers hosting relevant partitions participate.
    let total_tasks: usize = stats.job.workers.iter().map(|w| w.tasks).sum();
    assert!(total_tasks >= 1);
    assert!(total_tasks <= stats.relevant_partitions.min(4));
}

#[test]
fn slow_network_shifts_cost_model_toward_less_shipping() {
    let dataset = skewed_dataset(300, 13);
    // Same data, two clusters: infinite network vs a very slow one.
    let fast = Cluster::new(ClusterConfig {
        num_workers: 4,
        network: NetworkModel::infinite(),
        slowdowns: Vec::new(),
    });
    let slow = Cluster::new(ClusterConfig {
        num_workers: 4,
        network: NetworkModel {
            bandwidth_bytes_per_sec: 10_000.0,
            latency_sec: 0.01,
        },
        slowdowns: Vec::new(),
    });
    let sys_fast = DitaSystem::build(&dataset, config(), fast);
    let sys_slow = DitaSystem::build(&dataset, config(), slow);

    let opts = JoinOptions {
        // λ grows with slow networks, so the orientation should prefer the
        // direction shipping fewer bytes.
        delta_sec: 2e-6,
        ..JoinOptions::default()
    };
    let (p1, s_fast) = join(&sys_fast, &sys_fast, 0.002, &DistanceFunction::Dtw, &opts);
    let (p2, s_slow) = join(&sys_slow, &sys_slow, 0.002, &DistanceFunction::Dtw, &opts);
    assert_eq!(p1.len(), p2.len(), "network speed must not change answers");
    // Under a slow network the optimizer must not ship more than under a
    // free network.
    assert!(s_slow.shipped_bytes <= s_fast.shipped_bytes);
}
