//! End-to-end integration: generated data → distributed index → search and
//! join, validated against brute force for every distance function.

use dita::cluster::{Cluster, ClusterConfig};
use dita::core::{join, search, BalanceStrategy, DitaConfig, DitaSystem, JoinOptions};
use dita::datagen::{beijing_like, chengdu_like, sample_queries};
use dita::distance::DistanceFunction;
use dita::index::{PivotStrategy, TrieConfig};
use dita::prelude::*;

fn small_config() -> DitaConfig {
    DitaConfig {
        ng: 4,
        trie: TrieConfig {
            k: 3,
            nl: 4,
            leaf_capacity: 4,
            strategy: PivotStrategy::NeighborDistance,
            cell_side: 0.002,
            ..TrieConfig::default()
        },
    }
}

fn functions() -> Vec<(DistanceFunction, f64)> {
    vec![
        (DistanceFunction::Dtw, 0.003),
        (DistanceFunction::Frechet, 0.002),
        (DistanceFunction::Edr { eps: 5e-4 }, 5.0),
        (
            DistanceFunction::Lcss {
                eps: 5e-4,
                delta: 3,
            },
            5.0,
        ),
        (DistanceFunction::Erp { gap: (39.9, 116.4) }, 0.01),
    ]
}

#[test]
fn search_agrees_with_brute_force_on_generated_data() {
    let dataset = beijing_like(400, 17);
    let system = DitaSystem::build(
        &dataset,
        small_config(),
        Cluster::new(ClusterConfig::with_workers(3)),
    );
    assert_eq!(system.len(), 400);

    let queries = sample_queries(&dataset, 8, 5);
    for (f, tau) in functions() {
        for q in &queries {
            let (hits, stats) = search(&system, q.points(), tau, &f);
            let expect: Vec<(u64, f64)> = dataset
                .trajectories()
                .iter()
                .filter_map(|t| {
                    let d = f.distance(t.points(), q.points());
                    (d <= tau).then_some((t.id, d))
                })
                .collect();
            assert_eq!(
                hits.iter().map(|&(i, _)| i).collect::<Vec<_>>(),
                expect.iter().map(|&(i, _)| i).collect::<Vec<_>>(),
                "{f} Q=T{} tau={tau}",
                q.id
            );
            for ((_, got), (_, want)) in hits.iter().zip(&expect) {
                assert!((got - want).abs() < 1e-9);
            }
            assert!(stats.candidates >= hits.len());
            assert!(stats.relevant_partitions <= system.num_partitions());
        }
    }
}

#[test]
fn self_join_agrees_with_brute_force() {
    let dataset = chengdu_like(250, 23);
    let cluster = Cluster::new(ClusterConfig::with_workers(3));
    let system = DitaSystem::build(&dataset, small_config(), cluster);

    for (f, tau) in functions() {
        let (pairs, stats) = join(&system, &system, tau, &f, &JoinOptions::default());
        let mut expect: Vec<(u64, u64)> = Vec::new();
        for a in dataset.trajectories() {
            for b in dataset.trajectories() {
                if f.distance(a.points(), b.points()) <= tau {
                    expect.push((a.id, b.id));
                }
            }
        }
        expect.sort_unstable();
        let got: Vec<(u64, u64)> = pairs.iter().map(|&(a, b, _)| (a, b)).collect();
        assert_eq!(got, expect, "{f} tau={tau}");
        assert!(stats.candidates >= pairs.len());
    }
}

#[test]
fn join_two_different_tables() {
    let left = beijing_like(150, 31);
    let mut right = beijing_like(150, 31); // same seed: guaranteed overlaps
    right.name = "right".into();
    let cluster = Cluster::new(ClusterConfig::with_workers(2));
    let lsys = DitaSystem::build(&left, small_config(), cluster.clone());
    let rsys = DitaSystem::build(&right, small_config(), cluster);

    let tau = 0.002;
    let f = DistanceFunction::Dtw;
    let (pairs, _) = join(&lsys, &rsys, tau, &f, &JoinOptions::default());
    assert!(pairs.len() >= 150, "identical tables must match themselves");
    let mut expect: Vec<(u64, u64)> = Vec::new();
    for a in left.trajectories() {
        for b in right.trajectories() {
            if f.distance(a.points(), b.points()) <= tau {
                expect.push((a.id, b.id));
            }
        }
    }
    expect.sort_unstable();
    assert_eq!(
        pairs.iter().map(|&(a, b, _)| (a, b)).collect::<Vec<_>>(),
        expect
    );
}

#[test]
fn all_balance_strategies_agree() {
    let dataset = beijing_like(200, 41);
    let cluster = Cluster::new(ClusterConfig::with_workers(4));
    let system = DitaSystem::build(&dataset, small_config(), cluster);
    let f = DistanceFunction::Dtw;
    let mut reference: Option<Vec<(u64, u64)>> = None;
    for balance in [
        BalanceStrategy::None,
        BalanceStrategy::Orientation,
        BalanceStrategy::Full,
    ] {
        let opts = JoinOptions {
            balance,
            ..JoinOptions::default()
        };
        let (pairs, _) = join(&system, &system, 0.002, &f, &opts);
        let ids: Vec<(u64, u64)> = pairs.iter().map(|&(a, b, _)| (a, b)).collect();
        match &reference {
            None => reference = Some(ids),
            Some(r) => assert_eq!(&ids, r, "{balance:?} changed the answer"),
        }
    }
}

#[test]
fn results_stable_across_cluster_sizes_and_configs() {
    let dataset = beijing_like(200, 53);
    let q = sample_queries(&dataset, 1, 1)[0].clone();
    let f = DistanceFunction::Dtw;
    let tau = 0.003;
    let mut reference: Option<Vec<u64>> = None;
    for workers in [1, 2, 5] {
        for ng in [1, 3, 6] {
            for k in [0, 2, 4] {
                let config = DitaConfig {
                    ng,
                    trie: TrieConfig {
                        k,
                        nl: 4,
                        leaf_capacity: 2,
                        strategy: PivotStrategy::InflectionPoint,
                        cell_side: 0.002,
                        ..TrieConfig::default()
                    },
                };
                let system = DitaSystem::build(
                    &dataset,
                    config,
                    Cluster::new(ClusterConfig::with_workers(workers)),
                );
                let (hits, _) = search(&system, q.points(), tau, &f);
                let ids: Vec<u64> = hits.iter().map(|&(i, _)| i).collect();
                match &reference {
                    None => reference = Some(ids),
                    Some(r) => {
                        assert_eq!(&ids, r, "workers={workers} ng={ng} k={k}")
                    }
                }
            }
        }
    }
}

#[test]
fn text_round_trip_preserves_search_results() {
    let dataset = beijing_like(100, 61);
    let mut buf = Vec::new();
    dataset.write_text(&mut buf).unwrap();
    let reloaded = Dataset::read_text("reloaded", buf.as_slice()).unwrap();
    assert_eq!(dataset.trajectories(), reloaded.trajectories());

    let cluster = Cluster::new(ClusterConfig::with_workers(2));
    let s1 = DitaSystem::build(&dataset, small_config(), cluster.clone());
    let s2 = DitaSystem::build(&reloaded, small_config(), cluster);
    let q = sample_queries(&dataset, 1, 3)[0].clone();
    let (h1, _) = search(&s1, q.points(), 0.003, &DistanceFunction::Dtw);
    let (h2, _) = search(&s2, q.points(), 0.003, &DistanceFunction::Dtw);
    assert_eq!(h1, h2);
}
