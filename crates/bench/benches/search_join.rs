//! End-to-end benches plus the verification-pipeline ablation DESIGN.md
//! calls out: MBR coverage on/off, cell filter on/off, double-direction
//! on/off.

use criterion::{criterion_group, criterion_main, Criterion};
use dita_bench::dita_config;
use dita_cluster::{Cluster, ClusterConfig};
use dita_core::{join, search, DitaSystem, JoinOptions, QueryContext};
use dita_datagen::{beijing_like, sample_queries};
use dita_distance::{bounds, DistanceFunction};
use dita_trajectory::CellList;
use std::hint::black_box;

fn system(n: usize) -> (dita_trajectory::Dataset, DitaSystem) {
    let d = beijing_like(n, 21);
    let mut cfg = ClusterConfig::with_workers(4);
    cfg.network.latency_sec = 5e-5;
    let sys = DitaSystem::build(&d, dita_config(6), Cluster::new(cfg));
    (d, sys)
}

fn bench_search(c: &mut Criterion) {
    let (d, sys) = system(8_000);
    let queries = sample_queries(&d, 16, 31);
    let mut g = c.benchmark_group("e2e/search");
    g.sample_size(20);
    for f in [DistanceFunction::Dtw, DistanceFunction::Frechet] {
        g.bench_function(f.name(), |b| {
            b.iter(|| {
                for q in &queries {
                    black_box(search(&sys, q.points(), 0.003, &f));
                }
            })
        });
    }
    g.finish();
}

fn bench_join(c: &mut Criterion) {
    let (_, sys) = system(4_000);
    let mut g = c.benchmark_group("e2e/join");
    g.sample_size(10);
    g.bench_function("self-join-dtw", |b| {
        b.iter(|| {
            black_box(join(
                &sys,
                &sys,
                0.003,
                &DistanceFunction::Dtw,
                &JoinOptions::default(),
            ))
        })
    });
    g.finish();
}

/// The §5.3.3 verification ablation: each stage's contribution on a mixed
/// candidate workload.
fn bench_verification_ablation(c: &mut Criterion) {
    let d = beijing_like(512, 41);
    let queries = sample_queries(&d, 8, 43);
    let tau = 0.003;
    let cands: Vec<(&dita_trajectory::Trajectory, dita_trajectory::Mbr, CellList)> = d
        .trajectories()
        .iter()
        .map(|t| (t, t.mbr(), CellList::compress(t, 0.002)))
        .collect();
    let ctxs: Vec<QueryContext> = queries
        .iter()
        .map(|q| QueryContext::new(q.points(), 0.002))
        .collect();

    let mut g = c.benchmark_group("verify-ablation");
    g.sample_size(20);
    g.bench_function("plain-dtw-threshold", |b| {
        b.iter(|| {
            for ctx in &ctxs {
                for (t, _, _) in &cands {
                    black_box(dita_distance::dtw_threshold(t.points(), ctx.points(), tau));
                }
            }
        })
    });
    g.bench_function("double-direction-only", |b| {
        b.iter(|| {
            for ctx in &ctxs {
                for (t, _, _) in &cands {
                    black_box(dita_distance::dtw_double_direction(
                        t.points(),
                        ctx.points(),
                        tau,
                    ));
                }
            }
        })
    });
    g.bench_function("mbr-coverage-then-dtw", |b| {
        b.iter(|| {
            for ctx in &ctxs {
                for (t, mbr, _) in &cands {
                    if !bounds::mbr_coverage_prune(mbr, ctx.mbr(), tau) {
                        black_box(dita_distance::dtw_double_direction(
                            t.points(),
                            ctx.points(),
                            tau,
                        ));
                    }
                }
            }
        })
    });
    g.bench_function("full-pipeline", |b| {
        b.iter(|| {
            for ctx in &ctxs {
                for (t, mbr, cells) in &cands {
                    black_box(dita_core::verify_pair(
                        t.points(),
                        mbr,
                        cells,
                        ctx,
                        tau,
                        &DistanceFunction::Dtw,
                    ));
                }
            }
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_search,
    bench_join,
    bench_verification_ablation
);
criterion_main!(benches);
