//! Index micro-benchmarks: pivot selection, partitioning, trie construction
//! and the trie filter.

use criterion::{criterion_group, criterion_main, Criterion};
use dita_datagen::{beijing_like, sample_queries};
use dita_distance::DistanceFunction;
use dita_index::{
    random_partitioning, select_pivots, str_partitioning, GlobalIndex, PivotStrategy, PointerTrie,
    TrieConfig, TrieIndex,
};
use std::hint::black_box;

/// System allocator passthrough that counts allocations, so the probe
/// benches can *assert* steady-state allocation-freedom instead of hoping
/// for it. Counting is a single relaxed increment — noise-free for the
/// timed sections.
struct CountingAlloc;

static ALLOCS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

// SAFETY: defers entirely to the system allocator; the counter has no
// effect on the returned memory.
unsafe impl std::alloc::GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        // SAFETY: forwarded verbatim to the system allocator.
        unsafe { std::alloc::System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        // SAFETY: `ptr` was produced by the matching `alloc` above.
        unsafe { std::alloc::System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn bench_pivots(c: &mut Criterion) {
    let d = beijing_like(256, 4);
    let mut g = c.benchmark_group("index/pivot-selection");
    for s in PivotStrategy::ALL {
        g.bench_function(s.name(), |b| {
            b.iter(|| {
                for t in d.trajectories() {
                    black_box(select_pivots(t, 4, s));
                }
            })
        });
    }
    g.finish();
}

fn bench_partitioning(c: &mut Criterion) {
    let d = beijing_like(8_000, 5);
    let mut g = c.benchmark_group("index/partitioning");
    g.sample_size(20);
    g.bench_function("str-ng8", |b| {
        b.iter(|| black_box(str_partitioning(d.trajectories(), 8)))
    });
    g.bench_function("random-64", |b| {
        b.iter(|| black_box(random_partitioning(d.trajectories(), 64, 7)))
    });
    g.finish();
}

fn bench_trie(c: &mut Criterion) {
    let d = beijing_like(4_000, 6);
    let config = TrieConfig {
        k: 4,
        nl: 8,
        leaf_capacity: 16,
        strategy: PivotStrategy::NeighborDistance,
        cell_side: 0.002,
        ..TrieConfig::default()
    };
    let mut g = c.benchmark_group("index/trie");
    g.sample_size(20);
    g.bench_function("build-4k", |b| {
        b.iter(|| black_box(TrieIndex::build(d.trajectories().to_vec(), config)))
    });
    let index = TrieIndex::build(d.trajectories().to_vec(), config);
    let queries = sample_queries(&d, 32, 11);
    g.bench_function("candidates-dtw", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(index.candidates(q.points(), 0.003, &DistanceFunction::Dtw));
            }
        })
    });
    g.bench_function("candidates-frechet", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(index.candidates(q.points(), 0.003, &DistanceFunction::Frechet));
            }
        })
    });
    g.finish();
}

/// Flat succinct layout vs pointer reference layout on the identical
/// probe workload — the two must return byte-identical candidate sets
/// (pinned by `tests/flat_parity.rs`), so this measures pure layout cost.
fn bench_trie_probe(c: &mut Criterion) {
    let d = beijing_like(4_000, 6);
    let config = TrieConfig {
        k: 4,
        nl: 8,
        leaf_capacity: 16,
        strategy: PivotStrategy::NeighborDistance,
        cell_side: 0.002,
        ..TrieConfig::default()
    };
    let flat = TrieIndex::build(d.trajectories().to_vec(), config);
    let pointer = PointerTrie::build(d.trajectories().to_vec(), config);
    let queries = sample_queries(&d, 32, 11);

    // Steady-state probes must be allocation-free: after one warmup pass
    // grows the reused `ProbeScratch` stack to the workload's high-water
    // mark, a full second pass over every query may not allocate at all.
    // `candidate_count` is the non-materializing probe (the planner's
    // sampling path), so the only possible allocations are scratch growth —
    // which warmup has already paid.
    let mut scratch = dita_index::ProbeScratch::new();
    let mut count = 0usize;
    for q in &queries {
        count += flat.candidate_count(q.points(), 0.003, &DistanceFunction::Dtw, &mut scratch);
    }
    assert!(count > 0, "probe workload must touch candidates");
    let before = ALLOCS.load(std::sync::atomic::Ordering::Relaxed);
    let mut warmed = 0usize;
    for q in &queries {
        warmed += flat.candidate_count(q.points(), 0.003, &DistanceFunction::Dtw, &mut scratch);
    }
    let after = ALLOCS.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(warmed, count, "probe must be deterministic");
    assert_eq!(
        after - before,
        0,
        "warmed trie probe allocated — ProbeScratch reuse regressed"
    );

    let mut g = c.benchmark_group("index/trie-probe");
    for f in [DistanceFunction::Dtw, DistanceFunction::Frechet] {
        g.bench_function(format!("flat-{f}"), |b| {
            b.iter(|| {
                for q in &queries {
                    black_box(flat.candidates(q.points(), 0.003, &f));
                }
            })
        });
        g.bench_function(format!("pointer-{f}"), |b| {
            b.iter(|| {
                for q in &queries {
                    black_box(pointer.candidates(q.points(), 0.003, &f));
                }
            })
        });
    }
    g.finish();
}

fn bench_global(c: &mut Criterion) {
    let d = beijing_like(8_000, 8);
    let parts = str_partitioning(d.trajectories(), 8);
    let global = GlobalIndex::build(&parts);
    let queries = sample_queries(&d, 64, 13);
    let mut g = c.benchmark_group("index/global");
    g.bench_function("relevant-partitions", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(global.relevant_partitions(
                    q.first(),
                    q.last(),
                    q.len(),
                    0.003,
                    dita_distance::function::IndexMode::Additive,
                ));
            }
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_pivots,
    bench_partitioning,
    bench_trie,
    bench_trie_probe,
    bench_global
);
criterion_main!(benches);
