//! Distance-kernel micro-benchmarks: every supported function, its
//! threshold-aware variant, and the double-direction ablation (§5.3.3(3)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dita_datagen::{chengdu_like, sample_queries};
use dita_distance::{
    dtw, dtw_double_direction, dtw_soa, dtw_threshold, edr, erp, frechet, frechet_soa,
    frechet_threshold, lcss_distance, Scratch,
};
use dita_trajectory::{Point, SoaPoints, Trajectory};
use std::hint::black_box;

fn pairs() -> Vec<(Trajectory, Trajectory)> {
    let d = chengdu_like(64, 99);
    let qs = sample_queries(&d, 16, 5);
    qs.chunks(2).map(|c| (c[0].clone(), c[1].clone())).collect()
}

fn bench_full_distances(c: &mut Criterion) {
    let ps = pairs();
    let mut g = c.benchmark_group("distance/full");
    g.bench_function("dtw", |b| {
        b.iter(|| {
            for (a, q) in &ps {
                black_box(dtw(a.points(), q.points()));
            }
        })
    });
    g.bench_function("frechet", |b| {
        b.iter(|| {
            for (a, q) in &ps {
                black_box(frechet(a.points(), q.points()));
            }
        })
    });
    g.bench_function("edr", |b| {
        b.iter(|| {
            for (a, q) in &ps {
                black_box(edr(a.points(), q.points(), 1e-4));
            }
        })
    });
    g.bench_function("lcss", |b| {
        b.iter(|| {
            for (a, q) in &ps {
                black_box(lcss_distance(a.points(), q.points(), 1e-4, 3));
            }
        })
    });
    g.bench_function("erp", |b| {
        let gap = Point::new(30.66, 104.06);
        b.iter(|| {
            for (a, q) in &ps {
                black_box(erp(a.points(), q.points(), &gap));
            }
        })
    });
    g.finish();
}

fn bench_thresholded(c: &mut Criterion) {
    // Dissimilar pairs prune early; the ablation compares plain DP,
    // row-abandoning, and double-direction on the same inputs.
    let ps = pairs();
    let tau = 0.002;
    let mut g = c.benchmark_group("distance/dtw-threshold-ablation");
    g.bench_function("plain", |b| {
        b.iter(|| {
            for (a, q) in &ps {
                black_box(dtw(a.points(), q.points()));
            }
        })
    });
    g.bench_function("early-abandon", |b| {
        b.iter(|| {
            for (a, q) in &ps {
                black_box(dtw_threshold(a.points(), q.points(), tau));
            }
        })
    });
    g.bench_function("double-direction", |b| {
        b.iter(|| {
            for (a, q) in &ps {
                black_box(dtw_double_direction(a.points(), q.points(), tau));
            }
        })
    });
    g.bench_function("frechet-early-abandon", |b| {
        b.iter(|| {
            for (a, q) in &ps {
                black_box(frechet_threshold(a.points(), q.points(), tau));
            }
        })
    });
    g.finish();
}

fn bench_soa_vs_aos(c: &mut Criterion) {
    // The PR-1 tentpole comparison: the AoS threshold kernels against the
    // band-pruned SoA kernels with reused scratch, on dissimilar pairs
    // (where pruning dominates) and similar pairs (where layout dominates).
    let ps = pairs();
    let soa: Vec<(SoaPoints, SoaPoints)> = ps
        .iter()
        .map(|(a, q)| {
            (
                SoaPoints::from_points(a.points()),
                SoaPoints::from_points(q.points()),
            )
        })
        .collect();
    for (label, tau) in [("dissimilar", 0.002), ("similar", 1.0)] {
        let mut g = c.benchmark_group(format!("distance/soa-vs-aos/{label}"));
        g.bench_function("dtw-aos", |b| {
            b.iter(|| {
                for (a, q) in &ps {
                    black_box(dtw_threshold(a.points(), q.points(), tau));
                }
            })
        });
        g.bench_function("dtw-soa", |b| {
            let mut scratch = Scratch::new();
            b.iter(|| {
                for (a, q) in &soa {
                    black_box(dtw_soa(a.view(), q.view(), tau, &mut scratch));
                }
            })
        });
        g.bench_function("frechet-aos", |b| {
            b.iter(|| {
                for (a, q) in &ps {
                    black_box(frechet_threshold(a.points(), q.points(), tau));
                }
            })
        });
        g.bench_function("frechet-soa", |b| {
            let mut scratch = Scratch::new();
            b.iter(|| {
                for (a, q) in &soa {
                    black_box(frechet_soa(a.view(), q.view(), tau, &mut scratch));
                }
            })
        });
        g.finish();
    }
}

fn bench_by_length(c: &mut Criterion) {
    let mut g = c.benchmark_group("distance/dtw-by-length");
    for len in [16usize, 64, 256] {
        let a: Vec<Point> = (0..len).map(|i| Point::new(i as f64 * 0.01, 0.0)).collect();
        let q: Vec<Point> = (0..len)
            .map(|i| Point::new(i as f64 * 0.01, 0.005))
            .collect();
        g.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            b.iter(|| black_box(dtw(&a, &q)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_full_distances,
    bench_thresholded,
    bench_soa_vs_aos,
    bench_by_length
);
criterion_main!(benches);
