//! Lower-bound micro-benchmarks: the filter-step estimations versus the
//! full distance they avoid (§4.1, §5.3.3).

use criterion::{criterion_group, criterion_main, Criterion};
use dita_datagen::{chengdu_like, sample_queries};
use dita_distance::{amd, dtw, mbr_coverage_prune, pamd};
use dita_index::{select_pivots, PivotStrategy};
use dita_trajectory::{CellList, Trajectory};
use std::hint::black_box;

fn pair() -> (Trajectory, Trajectory) {
    let d = chengdu_like(64, 3);
    let qs = sample_queries(&d, 2, 9);
    (qs[0].clone(), qs[1].clone())
}

fn bench_bounds(c: &mut Criterion) {
    let (t, q) = pair();
    let pivots = select_pivots(&t, 4, PivotStrategy::NeighborDistance);
    let (mt, mq) = (t.mbr(), q.mbr());
    let ct = CellList::compress(&t, 0.002);
    let cq = CellList::compress(&q, 0.002);

    let mut g = c.benchmark_group("bounds");
    g.bench_function("dtw-exact", |b| {
        b.iter(|| black_box(dtw(t.points(), q.points())))
    });
    g.bench_function("amd", |b| b.iter(|| black_box(amd(t.points(), q.points()))));
    g.bench_function("pamd", |b| {
        b.iter(|| black_box(pamd(t.points(), q.points(), &pivots)))
    });
    g.bench_function("mbr-coverage", |b| {
        b.iter(|| black_box(mbr_coverage_prune(&mt, &mq, 0.002)))
    });
    g.bench_function("cell-bound", |b| b.iter(|| black_box(ct.lower_bound(&cq))));
    g.bench_function("cell-bottleneck", |b| {
        b.iter(|| black_box(ct.bottleneck_bound(&cq)))
    });
    g.finish();
}

fn bench_cell_compress(c: &mut Criterion) {
    let (t, _) = pair();
    let mut g = c.benchmark_group("bounds/cell-compress");
    for side in [0.001, 0.002, 0.008] {
        g.bench_function(format!("side-{side}"), |b| {
            b.iter(|| black_box(CellList::compress(&t, side)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_bounds, bench_cell_compress);
criterion_main!(benches);
