//! Candidate-verification micro-benchmarks: serial vs rayon-parallel
//! verification of a worker's candidate list (the PR-1 runtime change).
//!
//! Scaling is only visible on multi-core hosts; on a single-CPU container
//! the thread counts should tie, which is itself worth confirming — the
//! parallel path must not cost anything when it cannot help.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dita_core::{verify_candidates, QueryContext};
use dita_datagen::{chengdu_like, sample_queries};
use dita_distance::DistanceFunction;
use dita_index::{PivotStrategy, TrieConfig, TrieIndex};
use std::hint::black_box;

const CELL_SIDE: f64 = 0.01;

fn bench_parallel_verify(c: &mut Criterion) {
    let dataset = chengdu_like(512, 99);
    let trie = TrieIndex::build(
        dataset.trajectories().to_vec(),
        TrieConfig {
            k: 3,
            nl: 4,
            leaf_capacity: 8,
            strategy: PivotStrategy::NeighborDistance,
            cell_side: CELL_SIDE,
            ..TrieConfig::default()
        },
    );
    let q = &sample_queries(&dataset, 1, 5)[0];
    let func = DistanceFunction::Dtw;
    // A loose threshold so the filter passes many candidates through and
    // verification dominates.
    let tau = 0.05;
    let (cands, _) = trie.candidates_with_stats(q.points(), tau, &func);
    let ctx = QueryContext::new(q.points(), CELL_SIDE);

    let mut g = c.benchmark_group("verify/threads");
    g.throughput(criterion::Throughput::Elements(cands.len() as u64));
    for threads in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| black_box(verify_candidates(&trie, &cands, &ctx, tau, &func, t)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_parallel_verify);
criterion_main!(benches);
