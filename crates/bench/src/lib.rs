//! Experiment harness shared by the per-figure/per-table binaries.
//!
//! Every binary in `src/bin/exp_*.rs` regenerates one table or figure of the
//! paper (DESIGN.md §4 maps them). This library holds what they share:
//! scaled dataset construction, the latency conventions, a column-aligned
//! table printer and a JSON result sink.
//!
//! # Latency convention
//!
//! The paper reports wall-clock times on a 64-node cluster. Here every
//! "cluster" is simulated on one machine (possibly with a single physical
//! core), so raw wall-clock would conflate all workers onto one CPU. All
//! experiments therefore report the **simulated makespan**: the busiest
//! worker's `CPU time × straggler factor + modeled network time`, which is
//! what a real cluster's latency converges to with long-lived executors.
//! DFT's two-phase protocol reports the *sum* of its filter and verify
//! makespans — the driver-side barrier the paper highlights (§2.3).
//!
//! # Scale
//!
//! Dataset sizes default to a laptop-scale fraction of the paper's (11M+
//! trajectories don't fit this machine). `DITA_SCALE` multiplies every
//! cardinality; `DITA_QUERIES` overrides the query count (paper: 1000).

#![warn(missing_docs)]

pub mod runners;

use dita_cluster::{Cluster, ClusterConfig, JobStats};
use dita_core::DitaConfig;
use dita_index::{PivotStrategy, TrieConfig};
use dita_trajectory::Dataset;
use serde::Serialize;
use std::fmt::Display;
use std::fs;
use std::path::PathBuf;

/// Paper parameter table (Table 3), with defaults used across experiments.
pub mod params {
    /// The paper's threshold sweep: 0.001 ≈ 111 m.
    pub const TAUS: [f64; 5] = [0.001, 0.002, 0.003, 0.004, 0.005];
    /// The paper's sample-rate axis.
    pub const SAMPLE_RATES: [f64; 4] = [0.25, 0.5, 0.75, 1.0];
    /// The paper's cores axis, scaled 64,128,192,256 → 2,4,6,8 workers.
    pub const WORKERS: [usize; 4] = [2, 4, 6, 8];
    /// Default worker count (paper: 256 cores → 8 workers here).
    pub const DEFAULT_WORKERS: usize = 8;
}

/// Global cardinality scale from `DITA_SCALE` (default 1.0).
pub fn scale() -> f64 {
    std::env::var("DITA_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// Query count from `DITA_QUERIES` (default 100; paper: 1000).
pub fn num_queries() -> usize {
    std::env::var("DITA_QUERIES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(100)
}

fn scaled(base: usize) -> usize {
    ((base as f64) * scale()).round().max(16.0) as usize
}

/// Beijing-like dataset at harness scale (base 40,000 trajectories,
/// mirroring Beijing being the smaller taxi dataset).
pub fn beijing() -> Dataset {
    dita_datagen::beijing_like(scaled(40_000), 0xBEEF)
}

/// Chengdu-like dataset at harness scale (base 16,000; the paper's Chengdu
/// has ~1.4× Beijing's cardinality and longer trajectories).
pub fn chengdu() -> Dataset {
    dita_datagen::chengdu_like(scaled(50_000), 0xC0FFEE)
}

/// OSM-like search dataset (base 6,000 long worldwide trajectories).
pub fn osm_search() -> Dataset {
    dita_datagen::osm_like(scaled(15_000), 0x05A1)
}

/// OSM-like join dataset (roughly half of the search one, as in Table 2).
pub fn osm_join() -> Dataset {
    dita_datagen::osm_like(scaled(8_000), 0x05A2)
}

/// Chengdu(tiny) centralized dataset (Table 6; base 2,000).
pub fn chengdu_tiny() -> Dataset {
    dita_datagen::chengdu_tiny(scaled(3_000), 0x717)
}

/// The DITA configuration used by the experiments (Table 3 defaults scaled
/// to harness size: N_G is the per-dataset default ratio of the paper).
pub fn dita_config(ng: usize) -> DitaConfig {
    DitaConfig {
        ng,
        trie: TrieConfig {
            k: 4,
            nl: 8,
            leaf_capacity: 16,
            strategy: PivotStrategy::NeighborDistance,
            cell_side: 0.002,
            ..TrieConfig::default()
        },
    }
}

/// Default N_G per dataset (paper: 64 Beijing / 128 Chengdu / 256 OSM,
/// scaled down with the data).
pub fn default_ng(dataset: &str) -> usize {
    match dataset {
        d if d.starts_with("beijing") => 8,
        d if d.starts_with("chengdu-tiny") => 4,
        d if d.starts_with("chengdu") => 10,
        _ => 12,
    }
}

/// A healthy cluster with `workers` workers.
///
/// The network keeps the default 1 GbE bandwidth but uses a 50 µs message
/// latency: the harness datasets are ~300× smaller than the paper's, so the
/// per-message latency floor is scaled down too — otherwise it would mask
/// the compute differences the figures exist to show (EXPERIMENTS.md
/// discusses this calibration).
pub fn cluster(workers: usize) -> Cluster {
    let mut config = ClusterConfig::with_workers(workers);
    config.network.latency_sec = 5e-5;
    Cluster::new(config)
}

/// Milliseconds of one job's simulated makespan.
pub fn makespan_ms(job: &JobStats) -> f64 {
    job.makespan_sec() * 1e3
}

/// A column-aligned table printer matching the rows the paper reports.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with a title and column names.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringified cells).
    pub fn row(&mut self, cells: &[&dyn Display]) {
        assert_eq!(cells.len(), self.header.len());
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        println!("\n=== {} ===", self.title);
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (w, cell) in widths.iter().zip(cells) {
                s.push_str(&format!("{cell:>w$}  ", w = w));
            }
            println!("{}", s.trim_end());
        };
        line(&self.header);
        line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
        for row in &self.rows {
            line(row);
        }
    }
}

/// One machine-readable measurement row.
#[derive(Debug, Serialize)]
pub struct Measurement {
    /// Experiment id, e.g. `"fig7a"`.
    pub experiment: String,
    /// System under test, e.g. `"dita"`.
    pub system: String,
    /// Dataset name.
    pub dataset: String,
    /// Free-form parameter map (tau, workers, ...).
    pub params: serde_json::Value,
    /// Metric name, e.g. `"search_ms"`.
    pub metric: String,
    /// The value.
    pub value: f64,
}

/// Collects measurements and writes `results/<experiment>.json` on drop.
pub struct Sink {
    experiment: String,
    rows: Vec<Measurement>,
}

impl Sink {
    /// Opens a sink for one experiment id.
    pub fn new(experiment: &str) -> Self {
        Sink {
            experiment: experiment.to_string(),
            rows: Vec::new(),
        }
    }

    /// Records one measurement.
    pub fn record(
        &mut self,
        system: &str,
        dataset: &str,
        params: serde_json::Value,
        metric: &str,
        value: f64,
    ) {
        self.rows.push(Measurement {
            experiment: self.experiment.clone(),
            system: system.into(),
            dataset: dataset.into(),
            params,
            metric: metric.into(),
            value,
        });
    }

    /// Writes the JSON file (best-effort; failures print a warning).
    pub fn flush(&self) {
        let dir = PathBuf::from("results");
        if fs::create_dir_all(&dir).is_err() {
            eprintln!("warning: cannot create results/");
            return;
        }
        let path = dir.join(format!("{}.json", self.experiment));
        match serde_json::to_vec_pretty(&self.rows) {
            Ok(bytes) => {
                if fs::write(&path, bytes).is_err() {
                    eprintln!("warning: cannot write {}", path.display());
                }
            }
            Err(e) => eprintln!("warning: serialize failed: {e}"),
        }
    }
}

impl Drop for Sink {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_respects_minimum() {
        assert!(scaled(10) >= 16);
    }

    #[test]
    fn table_prints_without_panic() {
        let mut t = Table::new("demo", &["tau", "ms"]);
        t.row(&[&0.001, &12.5]);
        t.row(&[&0.002, &13.0]);
        t.print();
    }

    #[test]
    fn default_ngs() {
        assert_eq!(default_ng("beijing-like"), 8);
        assert_eq!(default_ng("chengdu-like"), 10);
        assert_eq!(default_ng("chengdu-tiny"), 4);
        assert_eq!(default_ng("osm-like"), 12);
    }

    #[test]
    fn sink_writes_json() {
        let mut s = Sink::new("unit-test-sink");
        s.record(
            "dita",
            "beijing",
            serde_json::json!({"tau": 0.001}),
            "ms",
            1.0,
        );
        s.flush();
        let text = std::fs::read_to_string("results/unit-test-sink.json").unwrap();
        assert!(text.contains("unit-test-sink"));
        let _ = std::fs::remove_file("results/unit-test-sink.json");
    }
}
