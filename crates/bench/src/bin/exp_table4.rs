//! Table 4: the N_G (partition count) sweep — search and join time.

use dita_baselines::{DftSystem, NaiveSystem, SimbaSystem};
use dita_bench::runners::{measure_dita_join, measure_search, SearchSystems};
use dita_bench::{cluster, dita_config, num_queries, params, Sink, Table};
use dita_core::{DitaSystem, JoinOptions};
use dita_distance::DistanceFunction;

fn main() {
    let mut sink = Sink::new("table4");
    let tau = 0.003;
    for dataset in [dita_bench::beijing(), dita_bench::chengdu()] {
        println!("dataset: {}", dataset.stats());
        let queries = dita_datagen::sample_queries(&dataset, num_queries(), 0xA11CE);
        let mut tbl = Table::new(
            format!("Table 4: varying N_G on {} (DTW, tau={tau})", dataset.name),
            &["NG", "partitions", "search_ms", "join_ms"],
        );
        for ng in [4usize, 8, 16, 24] {
            let c = cluster(params::DEFAULT_WORKERS);
            let dita = DitaSystem::build(&dataset, dita_config(ng), c.clone());
            // Wrap in the suite struct so measure_search applies the same
            // latency convention.
            let suite = SearchSystems {
                naive: NaiveSystem::build(&[], c.clone()),
                simba: SimbaSystem::build(&[], 1, c.clone()),
                dft: DftSystem::build(&[], 1, c),
                dita,
            };
            let (search_ms, _) =
                measure_search(&suite, "dita", &queries, tau, &DistanceFunction::Dtw);
            let (_, join_ms, _) = measure_dita_join(
                &suite.dita,
                &suite.dita,
                tau,
                &DistanceFunction::Dtw,
                &JoinOptions::default(),
            );
            sink.record(
                "dita",
                &dataset.name,
                serde_json::json!({"ng": ng}),
                "search_ms",
                search_ms,
            );
            sink.record(
                "dita",
                &dataset.name,
                serde_json::json!({"ng": ng}),
                "join_ms",
                join_ms,
            );
            tbl.row(&[
                &ng,
                &suite.dita.num_partitions(),
                &format!("{search_ms:.3}"),
                &format!("{join_ms:.1}"),
            ]);
        }
        tbl.print();
    }
}
