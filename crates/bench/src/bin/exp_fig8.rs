//! Figure 8: distributed similarity search on Chengdu with DTW.

use dita_bench::runners::run_search_figure;

fn main() {
    let dataset = dita_bench::chengdu();
    println!("dataset: {}", dataset.stats());
    run_search_figure("fig8", &dataset, 0.003);
}
