//! Table 7: centralized index construction time and size — DITA (one
//! worker) vs MBE vs VP-tree on Chengdu(tiny).

use dita_baselines::{MbeIndex, VpTree};
use dita_bench::{cluster, default_ng, dita_config, Sink, Table};
use dita_core::DitaSystem;
use dita_distance::DistanceFunction;

fn main() {
    let mut sink = Sink::new("table7");
    let dataset = dita_bench::chengdu_tiny();
    println!("dataset: {}", dataset.stats());
    let ng = default_ng(&dataset.name);

    let dita = DitaSystem::build(&dataset, dita_config(ng), cluster(1));
    let mbe = MbeIndex::build(dataset.trajectories(), 4);
    let vp = VpTree::build(dataset.trajectories(), DistanceFunction::Frechet);

    let mut tbl = Table::new(
        "Table 7: centralized indexing time and size (chengdu-tiny)",
        &["system", "build_ms", "index_KB"],
    );
    let rows: [(&str, f64, f64); 3] = [
        (
            "DITA",
            dita.build_stats().build_time.as_secs_f64() * 1e3,
            (dita.build_stats().global_size_bytes + dita.build_stats().local_size_bytes) as f64
                / 1024.0,
        ),
        (
            "MBE",
            mbe.build_time().as_secs_f64() * 1e3,
            mbe.index_size_bytes() as f64 / 1024.0,
        ),
        (
            "VP-Tree",
            vp.build_time().as_secs_f64() * 1e3,
            vp.index_size_bytes() as f64 / 1024.0,
        ),
    ];
    for (name, ms, kb) in rows {
        sink.record(name, &dataset.name, serde_json::json!({}), "build_ms", ms);
        sink.record(name, &dataset.name, serde_json::json!({}), "index_kb", kb);
        tbl.row(&[&name, &format!("{ms:.1}"), &format!("{kb:.1}")]);
    }
    tbl.print();
}
