//! Smoke benchmark: one fast, dependency-light run that produces a
//! `results/BENCH_*.json` artifact (default `results/BENCH_PR7.json`,
//! override with `--out <path>`). The artifact always lands where `--out`
//! points — never in the repo root.
//!
//! Unlike the Criterion benches this uses plain `Instant` timing (coarser,
//! but runs in seconds). The artifact is emitted through the `dita-obs`
//! [`BenchSmokeReport`] schema (serializer-produced, golden-file tested)
//! rather than hand-concatenated JSON. Data is seeded xorshift random
//! walks — deterministic and free of any external dependency.
//!
//! Sections:
//! 1. kernels — AoS threshold kernels vs SoA band-pruned kernels, per
//!    function, on dissimilar pairs (pruning-bound) and similar pairs
//!    (layout-bound).
//! 2. verified-pairs/sec — mixed DTW workload through the SoA kernel.
//! 3. search p50 — end-to-end `search_with_options` latency, serial and
//!    with 4 verify threads.
//! 4. thread scaling — `verify_candidates` at 1/2/4 rayon threads. Flat on
//!    a single-CPU host; near-linear where cores exist.
//! 5. cold path — trie index build wall clock at 1/2/4 build threads and
//!    join planning at 1/2/4 plan threads (the PR-3 parallelized paths).
//! 6. ingest — incremental delta ingestion (insert + flush) vs a
//!    from-scratch rebuild over a sweep of delta ratios, reporting the
//!    crossover ratio where rebuilding becomes the better deal.
//! 7. memory — index footprint of the succinct flat layout vs the pointer
//!    reference layout over the same table (bytes, bytes/trajectory,
//!    reduction ratio) plus a probe-throughput cross-check of the two.
//! 8. planning a/b — a skewed self-join run twice: once priced by the
//!    sampled estimates alone, once replanned with the first run's
//!    observed per-node costs (`JoinOptions::observed_costs`). The
//!    observed-cost plan divides the underpriced hot partition and must
//!    not lose to the estimated plan.
//! 9. instrumented pass — after all timing, one search runs with tracing
//!    attached; its profile tree and filter funnel ride along in the
//!    artifact's `search_profile` field.

use dita_cluster::{Cluster, ClusterConfig};
use dita_core::{
    join, search_with_options, verify_candidates, CompactionPolicy, DitaConfig, DitaSystem,
    JoinOptions, JoinStats, QueryContext, SearchOptions,
};
use dita_distance::{
    dtw_double_direction, dtw_soa, dtw_threshold, edr_soa, edr_threshold, erp_soa, erp_threshold,
    frechet_soa, frechet_threshold, lcss_distance_threshold, lcss_soa, DistanceFunction, Scratch,
};
use dita_index::{PivotStrategy, PointerTrie, TrieConfig, TrieIndex};
use dita_obs::bench_report::{
    BenchSmokeReport, BuildScalingPoint, ColdPathScaling, IngestPoint, IngestScaling,
    KernelMeasurement, MemoryDensity, MemoryRepr, PlanArm, PlanningAb, SearchP50Ms,
    ThreadScalingPoint, BENCH_SCHEMA,
};
use dita_obs::Obs;
use dita_trajectory::{Dataset, Point, SoaPoints, Trajectory};
use std::path::Path;
use std::time::Instant;

struct XorShift(u64);

impl XorShift {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn walk(rng: &mut XorShift, len: usize, x0: f64, y0: f64) -> Vec<Point> {
    let mut pts = Vec::with_capacity(len);
    let (mut x, mut y) = (x0, y0);
    for _ in 0..len {
        x += (rng.next_f64() - 0.5) * 0.01;
        y += (rng.next_f64() - 0.5) * 0.01;
        pts.push(Point::new(x, y));
    }
    pts
}

/// Mean ns/call after a warmup pass; `f` returns a value to keep the
/// optimizer honest.
fn time_ns<F: FnMut() -> u64>(mut f: F, iters: usize) -> f64 {
    let mut sink = 0u64;
    for _ in 0..iters / 10 + 1 {
        sink = sink.wrapping_add(f());
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        sink = sink.wrapping_add(f());
    }
    let dt = t0.elapsed().as_nanos() as f64 / iters as f64;
    assert!(sink != u64::MAX, "sink");
    dt
}

fn jitter_seed(t: &[Point]) -> u64 {
    (t.len() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1
}

fn main() {
    let mut rng = XorShift(0x5EED);
    const LEN: usize = 64;
    const NPAIR: usize = 64;

    // Dissimilar pairs: independent walks far apart → tight τ abandons
    // early. Similar pairs: jittered copies → the DP must complete.
    let dis: Vec<(Vec<Point>, Vec<Point>)> = (0..NPAIR)
        .map(|_| (walk(&mut rng, LEN, 0.0, 0.0), walk(&mut rng, LEN, 1.0, 1.0)))
        .collect();
    let sim: Vec<(Vec<Point>, Vec<Point>)> = (0..NPAIR)
        .map(|_| {
            let t = walk(&mut rng, LEN, 0.0, 0.0);
            let mut r2 = XorShift(jitter_seed(&t));
            let q = t
                .iter()
                .map(|p| {
                    Point::new(
                        p.x + (r2.next_f64() - 0.5) * 0.002,
                        p.y + (r2.next_f64() - 0.5) * 0.002,
                    )
                })
                .collect();
            (t, q)
        })
        .collect();

    let soa = |ps: &[(Vec<Point>, Vec<Point>)]| -> Vec<(SoaPoints, SoaPoints)> {
        ps.iter()
            .map(|(a, b)| (SoaPoints::from_points(a), SoaPoints::from_points(b)))
            .collect()
    };
    let (dis_soa, sim_soa) = (soa(&dis), soa(&sim));

    let tau_dis = 0.05; // far below the dissimilar pairs' true DTW
    let tau_sim = 0.5; // comfortably above the similar pairs' DTW
    let iters = 2000;
    let mut kernels = Vec::new();
    let mut scratch = Scratch::new();

    macro_rules! bench_pair {
        ($name:expr, $aos:expr, $soacall:expr) => {{
            let aos_ns = time_ns($aos, iters);
            let soa_ns = time_ns($soacall, iters);
            println!(
                "{:>32}  aos {:>10.0} ns  soa {:>10.0} ns  speedup {:>6.2}x",
                $name,
                aos_ns,
                soa_ns,
                aos_ns / soa_ns
            );
            kernels.push(($name, aos_ns, soa_ns));
        }};
    }

    macro_rules! sum_over {
        ($pairs:expr, $call:expr) => {
            || {
                let mut h = 0u64;
                for (a, b) in $pairs {
                    h = h.wrapping_add($call(a, b) as u64);
                }
                h
            }
        };
    }

    bench_pair!(
        "dtw/dissimilar/early-abandon",
        sum_over!(&dis, |a: &Vec<Point>, b: &Vec<Point>| dtw_threshold(
            a, b, tau_dis
        )
        .is_some()),
        sum_over!(&dis_soa, |a: &SoaPoints, b: &SoaPoints| dtw_soa(
            a.view(),
            b.view(),
            tau_dis,
            &mut scratch
        )
        .is_some())
    );
    bench_pair!(
        "dtw/dissimilar/double-direction",
        sum_over!(&dis, |a: &Vec<Point>, b: &Vec<Point>| dtw_double_direction(
            a, b, tau_dis
        )
        .is_some()),
        sum_over!(&dis_soa, |a: &SoaPoints, b: &SoaPoints| dtw_soa(
            a.view(),
            b.view(),
            tau_dis,
            &mut scratch
        )
        .is_some())
    );
    bench_pair!(
        "dtw/similar/full-verify",
        sum_over!(&sim, |a: &Vec<Point>, b: &Vec<Point>| dtw_double_direction(
            a, b, tau_sim
        )
        .is_some()),
        sum_over!(&sim_soa, |a: &SoaPoints, b: &SoaPoints| dtw_soa(
            a.view(),
            b.view(),
            tau_sim,
            &mut scratch
        )
        .is_some())
    );
    bench_pair!(
        "frechet/dissimilar",
        sum_over!(&dis, |a: &Vec<Point>, b: &Vec<Point>| frechet_threshold(
            a, b, tau_dis
        )
        .is_some()),
        sum_over!(&dis_soa, |a: &SoaPoints, b: &SoaPoints| frechet_soa(
            a.view(),
            b.view(),
            tau_dis,
            &mut scratch
        )
        .is_some())
    );
    bench_pair!(
        "frechet/similar",
        sum_over!(&sim, |a: &Vec<Point>, b: &Vec<Point>| frechet_threshold(
            a, b, tau_sim
        )
        .is_some()),
        sum_over!(&sim_soa, |a: &SoaPoints, b: &SoaPoints| frechet_soa(
            a.view(),
            b.view(),
            tau_sim,
            &mut scratch
        )
        .is_some())
    );
    bench_pair!(
        "edr/dissimilar",
        sum_over!(&dis, |a: &Vec<Point>, b: &Vec<Point>| edr_threshold(
            a, b, 0.005, 8.0
        )
        .is_some()),
        sum_over!(&dis_soa, |a: &SoaPoints, b: &SoaPoints| edr_soa(
            a.view(),
            b.view(),
            0.005,
            8.0,
            &mut scratch
        )
        .is_some())
    );
    bench_pair!(
        "erp/dissimilar",
        sum_over!(&dis, |a: &Vec<Point>, b: &Vec<Point>| erp_threshold(
            a,
            b,
            &Point::new(0.0, 0.0),
            tau_dis
        )
        .is_some()),
        sum_over!(&dis_soa, |a: &SoaPoints, b: &SoaPoints| erp_soa(
            a.view(),
            b.view(),
            0.0,
            0.0,
            tau_dis,
            &mut scratch
        )
        .is_some())
    );
    bench_pair!(
        "lcss/similar",
        sum_over!(&sim, |a: &Vec<Point>, b: &Vec<Point>| {
            lcss_distance_threshold(a, b, 0.005, 3, 16.0).is_some()
        }),
        sum_over!(&sim_soa, |a: &SoaPoints, b: &SoaPoints| lcss_soa(
            a.view(),
            b.view(),
            0.005,
            3,
            16.0,
            &mut scratch
        )
        .is_some())
    );

    // Verified-pairs/sec with the SoA kernel, mixed workload.
    let mixed: Vec<&(SoaPoints, SoaPoints)> = dis_soa.iter().chain(sim_soa.iter()).collect();
    let t0 = Instant::now();
    let reps = 4000usize;
    let mut hits = 0u64;
    for _ in 0..reps {
        for (a, b) in &mixed {
            hits = hits
                .wrapping_add(dtw_soa(a.view(), b.view(), tau_sim, &mut scratch).is_some() as u64);
        }
    }
    let pairs_per_sec = (reps * mixed.len()) as f64 / t0.elapsed().as_secs_f64();
    println!("verified-pairs/sec (dtw soa, mixed): {pairs_per_sec:.0} (hits {hits})");

    // End-to-end search latency over a 2000-trajectory synthetic city.
    let mut rng = XorShift(0xC17F);
    let ts: Vec<Trajectory> = (0..2000)
        .map(|i| {
            let len = 24 + (rng.next_u64() % 41) as usize;
            let (x0, y0) = (rng.next_f64() * 2.0, rng.next_f64() * 2.0);
            Trajectory::new(i + 1, walk(&mut rng, len, x0, y0))
        })
        .collect();
    let queries: Vec<Vec<Point>> = (0..40)
        .map(|i| {
            let t = ts[(i * 47) % ts.len()].points();
            let mut r2 = XorShift(jitter_seed(t) ^ i as u64);
            t.iter()
                .map(|p| {
                    Point::new(
                        p.x + (r2.next_f64() - 0.5) * 0.004,
                        p.y + (r2.next_f64() - 0.5) * 0.004,
                    )
                })
                .collect()
        })
        .collect();
    let trie_config = TrieConfig {
        k: 3,
        nl: 4,
        leaf_capacity: 8,
        strategy: PivotStrategy::NeighborDistance,
        cell_side: 0.05,
        ..TrieConfig::default()
    };
    let mut sys = DitaSystem::build(
        &Dataset::new_unchecked("smoke", ts.clone()),
        DitaConfig {
            ng: 8,
            trie: trie_config,
        },
        Cluster::new(ClusterConfig::with_workers(4)),
    );
    // DTW is additive: the per-point jitter sums to at most ~0.18 over the
    // longest trajectories, so τ = 0.2 always recovers the jittered source.
    let tau = 0.2;
    let p50 = |threads: usize| -> f64 {
        let mut ms: Vec<f64> = queries
            .iter()
            .map(|q| {
                let t0 = Instant::now();
                let (r, _) = search_with_options(
                    &sys,
                    q,
                    tau,
                    &DistanceFunction::Dtw,
                    SearchOptions {
                        verify_threads: threads,
                    },
                );
                assert!(!r.is_empty(), "every query is a jittered member");
                t0.elapsed().as_secs_f64() * 1e3
            })
            .collect();
        ms.sort_by(|a, b| a.total_cmp(b));
        ms[ms.len() / 2]
    };
    let p50_serial = p50(1);
    let p50_parallel = p50(4);
    println!("search p50: serial {p50_serial:.3} ms, 4 verify threads {p50_parallel:.3} ms");

    // Thread-scaling through the real rayon verification path. The index
    // holds 512 jittered copies of one base walk, so every trajectory
    // passes the filter and needs its full DP verified — the candidate
    // list is large and verification-bound by construction.
    let mut rng = XorShift(0xACED);
    let base = walk(&mut rng, LEN, 0.0, 0.0);
    let copies: Vec<Trajectory> = (0..512u64)
        .map(|i| {
            let mut r2 = XorShift(0x1000 + i * 3);
            let pts = base
                .iter()
                .map(|p| {
                    Point::new(
                        p.x + (r2.next_f64() - 0.5) * 0.002,
                        p.y + (r2.next_f64() - 0.5) * 0.002,
                    )
                })
                .collect();
            Trajectory::new(i + 1, pts)
        })
        .collect();
    let trie = TrieIndex::build(copies, trie_config);
    let q = &base;
    let loose_tau = tau_sim;
    let (cands, _) = trie.candidates_with_stats(q, loose_tau, &DistanceFunction::Dtw);
    let ctx = QueryContext::new(q, trie_config.cell_side);
    println!("thread-scaling candidate list: {} candidates", cands.len());
    let mut scaling = Vec::new();
    for threads in [1usize, 2, 4] {
        let reps = 20usize;
        let t0 = Instant::now();
        let mut n = 0usize;
        for _ in 0..reps {
            n = verify_candidates(
                &trie,
                &cands,
                &ctx,
                loose_tau,
                &DistanceFunction::Dtw,
                threads,
            )
            .len();
        }
        let pps = (reps * cands.len()) as f64 / t0.elapsed().as_secs_f64();
        println!("  threads={threads}: {pps:.0} verified-pairs/sec ({n} hits)");
        scaling.push((threads, pps));
    }

    // Cold path: index construction at 1/2/4 build threads. Wall clock of
    // the whole trie build (preprocessing + tree assembly); best of 3 reps
    // so a stray scheduler hiccup cannot invert the ratio.
    println!("\nindex build ({} trajectories):", ts.len());
    let mut build_points = Vec::new();
    for threads in [1usize, 2, 4] {
        let cfg = TrieConfig {
            build_threads: threads,
            ..trie_config
        };
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t0 = Instant::now();
            let index = TrieIndex::build(ts.clone(), cfg);
            best = best.min(t0.elapsed().as_secs_f64());
            assert_eq!(index.len(), ts.len());
        }
        println!("  build_threads={threads}: {:.1} ms", best * 1e3);
        build_points.push((threads, best));
    }
    let build_speedup_4t = build_points[0].1 / build_points[2].1;
    println!("  build speedup 1t/4t: {build_speedup_4t:.2}x");

    // Cold path: join planning (bi-graph edge weighting) at 1/2/4 plan
    // threads, measured through a full self-join's JoinStats.
    println!("join planning (self-join):");
    let mut plan_points = Vec::new();
    let mut edges_weighed = 0usize;
    for threads in [1usize, 2, 4] {
        let opts = JoinOptions {
            plan_threads: threads,
            ..JoinOptions::default()
        };
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let (pairs, stats) = join(&sys, &sys, tau, &DistanceFunction::Dtw, &opts);
            assert!(!pairs.is_empty(), "self-join must at least match itself");
            best = best.min(stats.plan_secs);
            edges_weighed = stats.edges_weighed;
        }
        println!(
            "  plan_threads={threads}: {:.1} ms ({edges_weighed} edges weighed)",
            best * 1e3
        );
        plan_points.push((threads, best));
    }

    // Incremental ingestion vs from-scratch rebuild. For each delta ratio,
    // time (a) inserting the delta rows into a pre-built base index and
    // flushing them into queryable delta segments, against (b) rebuilding
    // the whole index from base + delta. Compaction is manual so the
    // incremental side is pure delta work.
    println!("\ningest: incremental vs rebuild ({} base rows):", ts.len());
    let manual = CompactionPolicy {
        auto: false,
        ..CompactionPolicy::default()
    };
    let base_dataset = Dataset::new_unchecked("ingest-base", ts.clone());
    let config = DitaConfig {
        ng: 8,
        trie: trie_config,
    };
    let mut ingest_points = Vec::new();
    for ratio in [0.01f64, 0.02, 0.05, 0.10, 0.20, 0.50] {
        let delta_rows = ((ts.len() as f64 * ratio).round() as usize).max(1);
        let mut rng = XorShift(0xD317 ^ (delta_rows as u64));
        let delta: Vec<Trajectory> = (0..delta_rows)
            .map(|i| {
                let len = 24 + (rng.next_u64() % 41) as usize;
                let (x0, y0) = (rng.next_f64() * 2.0, rng.next_f64() * 2.0);
                Trajectory::new(100_000 + i as u64, walk(&mut rng, len, x0, y0))
            })
            .collect();

        // (a) incremental: base build is untimed, the delta path is.
        let mut inc_sys = DitaSystem::build(
            &base_dataset,
            config,
            Cluster::new(ClusterConfig::with_workers(4)),
        );
        inc_sys.set_compaction_policy(manual);
        let t0 = Instant::now();
        for t in &delta {
            inc_sys.insert(t.clone());
        }
        inc_sys.flush();
        let incremental_secs = t0.elapsed().as_secs_f64();
        // Spot-check: the overlay sees every delta row.
        assert_eq!(inc_sys.len(), ts.len() + delta_rows);
        let (hits, _) = search_with_options(
            &inc_sys,
            delta[0].points(),
            1e-9,
            &DistanceFunction::Dtw,
            SearchOptions { verify_threads: 1 },
        );
        assert!(
            hits.iter().any(|&(id, _)| id == delta[0].id),
            "flushed delta row must be searchable"
        );

        // (b) from-scratch rebuild on base + delta.
        let mut combined = ts.clone();
        combined.extend(delta.iter().cloned());
        let t0 = Instant::now();
        let rebuilt = DitaSystem::build(
            &Dataset::new_unchecked("ingest-rebuild", combined),
            config,
            Cluster::new(ClusterConfig::with_workers(4)),
        );
        let rebuild_secs = t0.elapsed().as_secs_f64();
        assert_eq!(rebuilt.len(), ts.len() + delta_rows);

        let speedup = rebuild_secs / incremental_secs;
        println!(
            "  ratio {ratio:>5.2}: incremental {:>8.1} ms  rebuild {:>8.1} ms  speedup {speedup:>6.2}x",
            incremental_secs * 1e3,
            rebuild_secs * 1e3
        );
        ingest_points.push((ratio, delta_rows, incremental_secs, rebuild_secs, speedup));
    }
    let crossover_delta_ratio = ingest_points
        .iter()
        .filter(|&&(_, _, _, _, s)| s > 1.0)
        .map(|&(r, ..)| r)
        .fold(0.0f64, f64::max);
    println!("  crossover: incremental wins up to ratio {crossover_delta_ratio:.2}");

    // Memory density: the same table and configuration through both index
    // layouts. `index_size_bytes` counts allocated capacity in both, so the
    // ratio is an honest resident-bytes comparison, and a probe sweep over
    // the search workload cross-checks that density did not cost speed.
    let flat_index = TrieIndex::build(ts.clone(), trie_config);
    let pointer_index = PointerTrie::build(ts.clone(), trie_config);
    let total_points: usize = ts.iter().map(|t| t.len()).sum();
    let (flat_ib, ptr_ib) = (
        flat_index.index_size_bytes(),
        pointer_index.index_size_bytes(),
    );
    let index_reduction = ptr_ib as f64 / flat_ib as f64;
    let per_traj = |b: usize| b as f64 / ts.len() as f64;
    let probe_ns = |probe: &dyn Fn(&[Point]) -> usize| -> f64 {
        let reps = 20usize;
        let mut survivors = 0usize;
        let t0 = Instant::now();
        for _ in 0..reps {
            for q in &queries {
                survivors += probe(q);
            }
        }
        let ns = t0.elapsed().as_nanos() as f64 / (reps * queries.len()) as f64;
        assert!(survivors > 0, "jittered queries always have survivors");
        ns
    };
    let flat_probe_ns = probe_ns(&|q| flat_index.candidates(q, tau, &DistanceFunction::Dtw).len());
    let pointer_probe_ns = probe_ns(&|q| {
        pointer_index
            .candidates(q, tau, &DistanceFunction::Dtw)
            .len()
    });
    println!(
        "\nmemory density ({} trajectories, {} points):",
        ts.len(),
        total_points
    );
    println!(
        "  flat:    index {:>9} B  ({:>6.1} B/traj)  total {:>9} B  probe {:>8.0} ns",
        flat_ib,
        per_traj(flat_ib),
        flat_index.size_bytes(),
        flat_probe_ns
    );
    println!(
        "  pointer: index {:>9} B  ({:>6.1} B/traj)  total {:>9} B  probe {:>8.0} ns",
        ptr_ib,
        per_traj(ptr_ib),
        pointer_index.size_bytes(),
        pointer_probe_ns
    );
    println!("  index reduction: {index_reduction:.2}x");

    // Planning A/B: estimated vs observed costs on a skewed workload. One
    // spatial cluster holds *long* trajectories (192 points) while seven
    // hold short ones (12 points); the planner prices an edge by sampled
    // candidate-pair counts with a constant per-pair Δ, so the long
    // cluster's partition — fewer candidates, each ~16× the verify work —
    // is underpriced and never divided. The second arm replans with the
    // first run's measured per-node costs fed back through
    // `JoinOptions::observed_costs`, which inflates the hot node past the
    // division threshold and stripes it over replica slots.
    println!("\nplanning a/b: estimated vs observed costs (skewed self-join)");
    let mut rng = XorShift(0xAB5EED);
    let mut skewed: Vec<Trajectory> = Vec::new();
    let mut next_id = 1u64;
    let short_clusters = [
        (0.0, 0.0),
        (2.0, 0.0),
        (4.0, 0.0),
        (0.0, 2.0),
        (2.0, 2.0),
        (4.0, 2.0),
        (0.0, 4.0),
    ];
    let jittered = |base: &[Point], rng: &mut XorShift| -> Vec<Point> {
        let mut r2 = XorShift(rng.next_u64() | 1);
        base.iter()
            .map(|p| {
                Point::new(
                    p.x + (r2.next_f64() - 0.5) * 0.002,
                    p.y + (r2.next_f64() - 0.5) * 0.002,
                )
            })
            .collect()
    };
    for &(cx, cy) in &short_clusters {
        let base = walk(&mut rng, 12, cx, cy);
        for _ in 0..45 {
            skewed.push(Trajectory::new(next_id, jittered(&base, &mut rng)));
            next_id += 1;
        }
    }
    let long_base = walk(&mut rng, 192, 6.0, 6.0);
    for _ in 0..40 {
        skewed.push(Trajectory::new(next_id, jittered(&long_base, &mut rng)));
        next_id += 1;
    }
    // ng = 2 → 4 STR partitions on 4 workers: the hot cluster lands in one
    // partition whose local join is a single task, so only division
    // replication (not dynamic scheduling) can shorten the makespan.
    let ab_sys = DitaSystem::build(
        &Dataset::new_unchecked("planning-ab", skewed.clone()),
        DitaConfig {
            ng: 2,
            trie: trie_config,
        },
        Cluster::new(ClusterConfig::with_workers(4)),
    );
    // DTW jitter budget: 0.001/point × 192 points — τ = 0.3 keeps every
    // cluster-mate pair a result while the clusters stay disjoint.
    let ab_tau = 0.3;
    let run_arm = |opts: &JoinOptions| -> (f64, JoinStats) {
        let mut best: Option<(f64, JoinStats)> = None;
        for _ in 0..3 {
            let (pairs, stats) = join(&ab_sys, &ab_sys, ab_tau, &DistanceFunction::Dtw, opts);
            assert!(!pairs.is_empty(), "cluster-mates must join");
            let mk = stats.job.makespan_sec();
            if best.as_ref().is_none_or(|&(b, _)| mk < b) {
                best = Some((mk, stats));
            }
        }
        best.unwrap()
    };
    let (est_makespan, est_stats) = run_arm(&JoinOptions::default());
    let fb = est_stats.feedback.clone();
    let hot_node = fb
        .iter()
        .max_by(|a, b| a.1.observed_comp_sec.total_cmp(&b.1.observed_comp_sec))
        .map_or(0, |(n, _)| n);
    let skewed_partition = hot_node % ab_sys.num_partitions();
    let (fed_makespan, fed_stats) = run_arm(&JoinOptions {
        observed_costs: Some(fb),
        ..JoinOptions::default()
    });
    assert_eq!(
        est_stats.results, fed_stats.results,
        "feedback must change the plan, never the results"
    );
    let plan_speedup = est_makespan / fed_makespan.max(1e-12);
    println!(
        "  estimated: makespan {:>8.1} ms  predicted {:>12.0}  replicas {}",
        est_makespan * 1e3,
        est_stats.predicted_tc_global,
        est_stats.replicas
    );
    println!(
        "  observed:  makespan {:>8.1} ms  predicted {:>12.0}  replicas {}",
        fed_makespan * 1e3,
        fed_stats.predicted_tc_global,
        fed_stats.replicas
    );
    println!(
        "  speedup (estimated/observed): {plan_speedup:.2}x  (hot partition {skewed_partition})"
    );

    // Instrumented profiling pass — attached only now, after all timing,
    // so the sections above pay the disabled-context cost (one branch).
    sys.attach_obs(Obs::enabled());
    let (hits, pstats) = search_with_options(
        &sys,
        &queries[0],
        tau,
        &DistanceFunction::Dtw,
        SearchOptions { verify_threads: 1 },
    );
    assert!(!hits.is_empty(), "instrumented query is a jittered member");
    let mut search_profile = sys.obs().report();
    search_profile.attach_funnel(pstats.filter.funnel());
    println!("\n{}", search_profile.render_table());

    // Machine-readable output through the schema'd exporter.
    let round2 = |x: f64| (x * 100.0).round() / 100.0;
    let round3 = |x: f64| (x * 1000.0).round() / 1000.0;
    let round4 = |x: f64| (x * 10000.0).round() / 10000.0;
    let report = BenchSmokeReport {
        schema: Some(BENCH_SCHEMA.to_string()),
        kernels: kernels
            .iter()
            .map(|&(name, aos, soa)| KernelMeasurement {
                name: name.to_string(),
                aos_ns: aos.round(),
                soa_ns: soa.round(),
                speedup: round2(aos / soa),
            })
            .collect(),
        verified_pairs_per_sec: pairs_per_sec.round(),
        search_p50_ms: SearchP50Ms {
            serial: round3(p50_serial),
            verify_threads_4: round3(p50_parallel),
        },
        thread_scaling: scaling
            .iter()
            .map(|&(threads, pps)| ThreadScalingPoint {
                threads,
                pairs_per_sec: pps.round(),
            })
            .collect(),
        host_cores: std::thread::available_parallelism().map_or(0, |n| n.get()),
        note: "thread scaling is flat when host_cores is 1; the rayon pool \
               cannot beat one CPU"
            .to_string(),
        search_profile: Some(search_profile),
        cold_path: Some(ColdPathScaling {
            trajectories: ts.len(),
            build: build_points
                .iter()
                .map(|&(threads, secs)| BuildScalingPoint {
                    threads,
                    build_secs: round4(secs),
                })
                .collect(),
            build_speedup_4t: round2(build_speedup_4t),
            plan: plan_points
                .iter()
                .map(|&(threads, secs)| BuildScalingPoint {
                    threads,
                    build_secs: round4(secs),
                })
                .collect(),
            edges_weighed,
        }),
        ingest: Some(IngestScaling {
            base_rows: ts.len(),
            points: ingest_points
                .iter()
                .map(
                    |&(delta_ratio, delta_rows, incremental_secs, rebuild_secs, speedup)| {
                        IngestPoint {
                            delta_ratio,
                            delta_rows,
                            incremental_secs: round4(incremental_secs),
                            rebuild_secs: round4(rebuild_secs),
                            speedup: round2(speedup),
                        }
                    },
                )
                .collect(),
            crossover_delta_ratio,
        }),
        memory: Some(MemoryDensity {
            trajectories: ts.len(),
            points: total_points,
            reprs: vec![
                MemoryRepr {
                    repr: "flat".to_string(),
                    index_bytes: flat_ib,
                    index_bytes_per_trajectory: round2(per_traj(flat_ib)),
                    total_bytes: flat_index.size_bytes(),
                },
                MemoryRepr {
                    repr: "pointer".to_string(),
                    index_bytes: ptr_ib,
                    index_bytes_per_trajectory: round2(per_traj(ptr_ib)),
                    total_bytes: pointer_index.size_bytes(),
                },
            ],
            index_reduction: round2(index_reduction),
            flat_probe_ns: flat_probe_ns.round(),
            pointer_probe_ns: pointer_probe_ns.round(),
        }),
        planning_ab: Some(PlanningAb {
            trajectories: skewed.len(),
            skewed_partition,
            estimated: PlanArm {
                makespan_sec: round4(est_makespan),
                predicted_bottleneck: est_stats.predicted_tc_global.round(),
                shipped_bytes: est_stats.shipped_bytes,
                results: est_stats.results,
            },
            observed: PlanArm {
                makespan_sec: round4(fed_makespan),
                predicted_bottleneck: fed_stats.predicted_tc_global.round(),
                shipped_bytes: fed_stats.shipped_bytes,
                results: fed_stats.results,
            },
            speedup: round2(plan_speedup),
        }),
        // The throughput section belongs to throughput_smoke's artifact.
        throughput: None,
        serve: None,
    };
    // `--out <path>` overrides the artifact location. The artifact is
    // written only there — never copied to the repo root.
    let mut out = String::from("results/BENCH_PR7.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--out" {
            out = args.next().expect("--out needs a path");
        }
    }
    let out = Path::new(&out);
    match report.write_json(out) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", out.display()),
    }
}
