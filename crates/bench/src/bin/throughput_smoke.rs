//! Throughput smoke: closed- and open-loop load generation over the
//! batched execution path, producing `results/BENCH_PR8.json` (override
//! with `--out <path>`).
//!
//! Sections:
//! 1. closed loop — the same query stream answered twice: once by the
//!    sequential per-query `search` loop, once by `search_batch` at a
//!    fixed batch size. Reports qps and p50/p95/p99 per-query latency for
//!    both arms (a batched query reports its batch's wall time) and
//!    asserts the batched arm clears 2x the sequential throughput: the
//!    batch shares one trie traversal per partition and one task dispatch
//!    per worker across all its members, so per-query overhead amortizes.
//! 2. open loop — queries arrive in bursts faster than service through
//!    the bounded `QueryScheduler`: admission stays capped at the queue
//!    capacity, overflow is shed (counted, never queued), and everything
//!    admitted is dispatched in fair-share batches and answered.
//! 3. headline numbers — one kernel pair, verified-pairs/sec, and search
//!    p50s, so `perf_trajectory` can fold this artifact into the cross-PR
//!    series alongside the bench_smoke artifacts.
//!
//! Data is the same seeded synthetic city as bench_smoke: deterministic
//! xorshift walks, queries are jittered members so every query has a
//! non-empty answer to verify against.

use dita_cluster::{Cluster, ClusterConfig, QueryScheduler, SchedulerConfig};
use dita_core::{price_query, search, search_batch, DitaConfig, DitaSystem, SearchOptions};
use dita_distance::{dtw_soa, dtw_threshold, DistanceFunction, Scratch};
use dita_index::{PivotStrategy, TrieConfig};
use dita_obs::bench_report::{
    BenchSmokeReport, KernelMeasurement, LatencySummaryMs, OpenLoopRun, SearchP50Ms,
    ThreadScalingPoint, ThroughputArm, ThroughputSection, BENCH_SCHEMA,
};
use dita_trajectory::{Dataset, Point, SoaPoints, Trajectory, TrajectoryId};
use std::path::Path;
use std::time::Instant;

struct XorShift(u64);

impl XorShift {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn walk(rng: &mut XorShift, len: usize, x0: f64, y0: f64) -> Vec<Point> {
    let mut pts = Vec::with_capacity(len);
    let (mut x, mut y) = (x0, y0);
    for _ in 0..len {
        x += (rng.next_f64() - 0.5) * 0.01;
        y += (rng.next_f64() - 0.5) * 0.01;
        pts.push(Point::new(x, y));
    }
    pts
}

/// Index of percentile `p` (0..=1) in an ascending-sorted latency list.
fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    assert!(!sorted_ms.is_empty());
    let idx = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[idx]
}

fn summarize(latencies_ms: &mut [f64]) -> LatencySummaryMs {
    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let round3 = |x: f64| (x * 1000.0).round() / 1000.0;
    LatencySummaryMs {
        p50: round3(percentile(latencies_ms, 0.50)),
        p95: round3(percentile(latencies_ms, 0.95)),
        p99: round3(percentile(latencies_ms, 0.99)),
    }
}

const BATCH: usize = 16;
const NQ: usize = 256;

fn main() {
    // The bench_smoke synthetic city: 2000 walks over a 2x2 box.
    let mut rng = XorShift(0xC17F);
    let ts: Vec<Trajectory> = (0..2000)
        .map(|i| {
            let len = 24 + (rng.next_u64() % 41) as usize;
            let (x0, y0) = (rng.next_f64() * 2.0, rng.next_f64() * 2.0);
            Trajectory::new(i + 1, walk(&mut rng, len, x0, y0))
        })
        .collect();
    let trie_config = TrieConfig {
        k: 3,
        nl: 4,
        leaf_capacity: 8,
        strategy: PivotStrategy::NeighborDistance,
        cell_side: 0.05,
        ..TrieConfig::default()
    };
    let sys = DitaSystem::build(
        &Dataset::new_unchecked("throughput", ts.clone()),
        DitaConfig {
            ng: 8,
            trie: trie_config,
        },
        Cluster::new(ClusterConfig::with_workers(4)),
    );
    // Jittered members: the per-point jitter sums below tau = 0.2 under
    // additive DTW, so every query recovers its source.
    let queries: Vec<Vec<Point>> = (0..NQ)
        .map(|i| {
            let t = ts[(i * 47) % ts.len()].points();
            let mut r2 = XorShift(
                (t.len() as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(i as u64 * 0x1234_5677)
                    | 1,
            );
            t.iter()
                .map(|p| {
                    Point::new(
                        p.x + (r2.next_f64() - 0.5) * 0.004,
                        p.y + (r2.next_f64() - 0.5) * 0.004,
                    )
                })
                .collect()
        })
        .collect();
    let q_slices: Vec<&[Point]> = queries.iter().map(|q| q.as_slice()).collect();
    let tau = 0.2;
    let func = DistanceFunction::Dtw;
    let taus = vec![tau; NQ];

    // -- closed loop: sequential per-query arm vs batched arm, best of 3 --
    println!(
        "== closed loop: {NQ} queries over {} trajectories, batch {BATCH} ==",
        ts.len()
    );
    let mut expected: Vec<Vec<(TrajectoryId, f64)>> = Vec::new();
    let mut seq_best: Option<(f64, Vec<f64>)> = None;
    for rep in 0..3 {
        let mut lats = Vec::with_capacity(NQ);
        let t0 = Instant::now();
        let mut answers = Vec::with_capacity(NQ);
        for (qi, q) in q_slices.iter().enumerate() {
            let tq = Instant::now();
            let (hits, _) = search(&sys, q, taus[qi], &func);
            lats.push(tq.elapsed().as_secs_f64() * 1e3);
            answers.push(hits);
        }
        let wall = t0.elapsed().as_secs_f64();
        let qps = NQ as f64 / wall;
        if rep == 0 {
            for (qi, hits) in answers.iter().enumerate() {
                assert!(!hits.is_empty(), "query {qi} is a jittered member");
            }
            expected = answers;
        }
        if seq_best.as_ref().is_none_or(|&(b, _)| qps > b) {
            seq_best = Some((qps, lats));
        }
    }
    let (seq_qps, mut seq_lats) = seq_best.unwrap();

    let mut bat_best: Option<(f64, Vec<f64>)> = None;
    for _ in 0..3 {
        let mut lats = Vec::with_capacity(NQ);
        let t0 = Instant::now();
        let mut answers = Vec::with_capacity(NQ);
        for chunk_start in (0..NQ).step_by(BATCH) {
            let end = (chunk_start + BATCH).min(NQ);
            let tb = Instant::now();
            let (hits, _) = search_batch(
                &sys,
                &q_slices[chunk_start..end],
                &taus[chunk_start..end],
                &func,
                SearchOptions::default(),
            );
            let batch_ms = tb.elapsed().as_secs_f64() * 1e3;
            // Every query in a batch observes its batch's wall clock.
            lats.extend(std::iter::repeat_n(batch_ms, end - chunk_start));
            answers.extend(hits);
        }
        let wall = t0.elapsed().as_secs_f64();
        let qps = NQ as f64 / wall;
        assert_eq!(answers, expected, "batched answers must match sequential");
        if bat_best.as_ref().is_none_or(|&(b, _)| qps > b) {
            bat_best = Some((qps, lats));
        }
    }
    let (bat_qps, mut bat_lats) = bat_best.unwrap();

    let seq_summary = summarize(&mut seq_lats);
    let bat_summary = summarize(&mut bat_lats);
    let speedup = bat_qps / seq_qps;
    println!(
        "  sequential: {seq_qps:>8.0} qps  p50 {:>7.3} ms  p95 {:>7.3} ms  p99 {:>7.3} ms",
        seq_summary.p50, seq_summary.p95, seq_summary.p99
    );
    println!(
        "  batched:    {bat_qps:>8.0} qps  p50 {:>7.3} ms  p95 {:>7.3} ms  p99 {:>7.3} ms",
        bat_summary.p50, bat_summary.p95, bat_summary.p99
    );
    println!("  speedup (batched/sequential): {speedup:.2}x");
    assert!(
        speedup >= 2.0,
        "batched execution must clear 2x sequential throughput at batch \
         {BATCH}, got {speedup:.2}x ({bat_qps:.0} vs {seq_qps:.0} qps)"
    );

    // -- open loop: bursty arrivals through the bounded scheduler --
    // Bursts of 64 arrive against a 64-slot queue with one batch serviced
    // per burst: arrivals outrun service, so the queue saturates and the
    // overflow is shed at admission instead of growing the queue.
    const CAPACITY: usize = 64;
    const BURSTS: usize = 16;
    const BURST: usize = 64;
    println!("\n== open loop: {BURSTS} bursts of {BURST}, queue capacity {CAPACITY} ==");
    let scheduler: QueryScheduler<usize> = QueryScheduler::new(SchedulerConfig {
        queue_capacity: CAPACITY,
        max_batch: BATCH,
        ..SchedulerConfig::default()
    });
    let mut offered = 0usize;
    let mut completed = 0usize;
    let mut max_depth = 0usize;
    let serve = |batch: dita_cluster::QueryBatch<usize>, completed: &mut usize| {
        assert!(batch.payloads.len() <= BATCH);
        let qs: Vec<&[Point]> = batch.payloads.iter().map(|&qi| q_slices[qi]).collect();
        let bt: Vec<f64> = batch.payloads.iter().map(|&qi| taus[qi]).collect();
        let (hits, _) = search_batch(&sys, &qs, &bt, &func, SearchOptions::default());
        for (slot, &qi) in batch.payloads.iter().enumerate() {
            assert_eq!(hits[slot], expected[qi], "open-loop answer diverges");
        }
        *completed += batch.payloads.len();
    };
    for burst in 0..BURSTS {
        for i in 0..BURST {
            let qi = (burst * BURST + i) % NQ;
            let cost = price_query(&sys, q_slices[qi], taus[qi], &func, None);
            // Two admission classes so batch formation round-robins.
            let _ = scheduler.submit((qi % 2) as u64, cost, qi);
            offered += 1;
        }
        max_depth = max_depth.max(scheduler.queue_depth());
        if let Some(batch) = scheduler.next_batch() {
            serve(batch, &mut completed);
        }
    }
    for batch in scheduler.drain() {
        serve(batch, &mut completed);
    }
    let counters = scheduler.counters();
    println!(
        "  offered {offered}  admitted {}  shed {}  completed {completed}  max depth {max_depth}",
        counters.admitted, counters.shed
    );
    assert!(max_depth <= CAPACITY, "queue depth must stay capped");
    assert!(counters.shed > 0, "overload must shed");
    assert_eq!(counters.admitted + counters.shed, offered);
    assert_eq!(
        completed, counters.admitted,
        "every admitted query answered"
    );
    assert_eq!(scheduler.queue_depth(), 0, "drain empties the queue");

    // -- headline numbers for the cross-PR trajectory --
    let mut rng = XorShift(0x5EED);
    let dis: Vec<(Vec<Point>, Vec<Point>)> = (0..16)
        .map(|_| (walk(&mut rng, 64, 0.0, 0.0), walk(&mut rng, 64, 1.0, 1.0)))
        .collect();
    // Similar pairs (jittered copies) force the full DP, so the
    // verified-pairs/sec figure measures the same mixed workload as
    // bench_smoke rather than pure early-abandon calls.
    let sim: Vec<(Vec<Point>, Vec<Point>)> = (0..16)
        .map(|_| {
            let t = walk(&mut rng, 64, 0.0, 0.0);
            let mut r2 = XorShift(rng.next_u64() | 1);
            let q = t
                .iter()
                .map(|p| {
                    Point::new(
                        p.x + (r2.next_f64() - 0.5) * 0.002,
                        p.y + (r2.next_f64() - 0.5) * 0.002,
                    )
                })
                .collect();
            (t, q)
        })
        .collect();
    let to_soa = |ps: &[(Vec<Point>, Vec<Point>)]| -> Vec<(SoaPoints, SoaPoints)> {
        ps.iter()
            .map(|(a, b)| (SoaPoints::from_points(a), SoaPoints::from_points(b)))
            .collect()
    };
    let (dis_soa, sim_soa) = (to_soa(&dis), to_soa(&sim));
    let mut scratch = Scratch::new();
    let time_ns = |f: &mut dyn FnMut() -> u64| -> f64 {
        let iters = 400usize;
        let mut sink = 0u64;
        for _ in 0..iters / 10 {
            sink = sink.wrapping_add(f());
        }
        let t0 = Instant::now();
        for _ in 0..iters {
            sink = sink.wrapping_add(f());
        }
        assert!(sink != u64::MAX);
        t0.elapsed().as_nanos() as f64 / iters as f64
    };
    let kernel_tau = 0.05;
    let aos_ns = time_ns(&mut || {
        dis.iter()
            .map(|(a, b)| dtw_threshold(a, b, kernel_tau).is_some() as u64)
            .sum()
    });
    let soa_ns = time_ns(&mut || {
        dis_soa
            .iter()
            .map(|(a, b)| dtw_soa(a.view(), b.view(), kernel_tau, &mut scratch).is_some() as u64)
            .sum()
    });
    let mixed: Vec<&(SoaPoints, SoaPoints)> = dis_soa.iter().chain(sim_soa.iter()).collect();
    let t0 = Instant::now();
    let reps = 400usize;
    let mut verified = 0u64;
    for _ in 0..reps {
        for (a, b) in &mixed {
            verified += dtw_soa(a.view(), b.view(), 0.5, &mut scratch).is_some() as u64;
        }
    }
    std::hint::black_box(verified);
    let pairs_per_sec = (reps * mixed.len()) as f64 / t0.elapsed().as_secs_f64();
    let p50_threads4 = {
        let mut ms: Vec<f64> = q_slices
            .iter()
            .take(40)
            .map(|q| {
                let t0 = Instant::now();
                let (r, _) = dita_core::search_with_options(
                    &sys,
                    q,
                    tau,
                    &func,
                    SearchOptions { verify_threads: 4 },
                );
                assert!(!r.is_empty());
                t0.elapsed().as_secs_f64() * 1e3
            })
            .collect();
        ms.sort_by(|a, b| a.total_cmp(b));
        ms[ms.len() / 2]
    };

    let round2 = |x: f64| (x * 100.0).round() / 100.0;
    let report = BenchSmokeReport {
        schema: Some(BENCH_SCHEMA.to_string()),
        kernels: vec![KernelMeasurement {
            name: "dtw/dissimilar/early-abandon".to_string(),
            aos_ns: aos_ns.round(),
            soa_ns: soa_ns.round(),
            speedup: round2(aos_ns / soa_ns),
        }],
        verified_pairs_per_sec: pairs_per_sec.round(),
        search_p50_ms: SearchP50Ms {
            serial: seq_summary.p50,
            verify_threads_4: (p50_threads4 * 1000.0).round() / 1000.0,
        },
        thread_scaling: vec![ThreadScalingPoint {
            threads: 1,
            pairs_per_sec: pairs_per_sec.round(),
        }],
        host_cores: std::thread::available_parallelism().map_or(0, |n| n.get()),
        note: "throughput smoke: closed-loop sequential vs batched qps and \
               open-loop scheduler overload; kernel/p50 headline numbers \
               ride along for the cross-PR trajectory"
            .to_string(),
        search_profile: None,
        cold_path: None,
        ingest: None,
        memory: None,
        planning_ab: None,
        throughput: Some(ThroughputSection {
            batch_size: BATCH,
            sequential: ThroughputArm {
                qps: seq_qps.round(),
                latency_ms: seq_summary,
                queries: NQ,
            },
            batched: ThroughputArm {
                qps: bat_qps.round(),
                latency_ms: bat_summary,
                queries: NQ,
            },
            speedup: round2(speedup),
            open_loop: OpenLoopRun {
                offered,
                admitted: counters.admitted,
                shed: counters.shed,
                queue_capacity: CAPACITY,
                max_queue_depth: max_depth,
                completed,
            },
        }),
        serve: None,
    };

    let mut out = String::from("results/BENCH_PR8.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--out" {
            out = args.next().expect("--out needs a path");
        }
    }
    let out = Path::new(&out);
    match report.write_json(out) {
        Ok(()) => println!("\nwrote {}", out.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", out.display()),
    }
}
