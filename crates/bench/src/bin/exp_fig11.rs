//! Figure 11: the large worldwide datasets — search on OSM(search) with all
//! four systems and join on OSM(join) with DITA, under both DTW and Fréchet.

use dita_bench::runners::{build_search_systems, measure_dita_join, measure_search};
use dita_bench::{cluster, default_ng, dita_config, num_queries, params, Sink, Table};
use dita_core::{DitaSystem, JoinOptions};
use dita_distance::DistanceFunction;

fn main() {
    let mut sink = Sink::new("fig11");
    let search_data = dita_bench::osm_search();
    let join_data = dita_bench::osm_join();
    println!("search dataset: {}", search_data.stats());
    println!("join dataset:   {}", join_data.stats());
    let ng = default_ng(&search_data.name);
    let queries = dita_datagen::sample_queries(&search_data, num_queries(), 0xA11CE);

    for (func, label) in [
        (DistanceFunction::Dtw, "DTW"),
        (DistanceFunction::Frechet, "Frechet"),
    ] {
        // (a)/(c): search with all four systems.
        let systems = build_search_systems(&search_data, params::DEFAULT_WORKERS, ng);
        let mut tbl = Table::new(
            format!(
                "fig11 search on {} with {label} (ms/query)",
                search_data.name
            ),
            &["tau", "Naive", "Simba", "DFT", "DITA"],
        );
        for tau in params::TAUS {
            let mut cells = Vec::new();
            for name in ["naive", "simba", "dft", "dita"] {
                let (ms, _) = measure_search(&systems, name, &queries, tau, &func);
                sink.record(
                    name,
                    &search_data.name,
                    serde_json::json!({"tau": tau, "func": label}),
                    "search_ms",
                    ms,
                );
                cells.push(format!("{ms:.3}"));
            }
            tbl.row(&[&tau, &cells[0], &cells[1], &cells[2], &cells[3]]);
        }
        tbl.print();

        // (b)/(d): join with DITA only (the baselines cannot complete the
        // paper's join either).
        let dita = DitaSystem::build(
            &join_data,
            dita_config(ng),
            cluster(params::DEFAULT_WORKERS),
        );
        let mut tbl = Table::new(
            format!("fig11 join on {} with {label} (ms)", join_data.name),
            &["tau", "DITA", "pairs"],
        );
        for tau in params::TAUS {
            let (pairs, ms, _) =
                measure_dita_join(&dita, &dita, tau, &func, &JoinOptions::default());
            sink.record(
                "dita",
                &join_data.name,
                serde_json::json!({"tau": tau, "func": label}),
                "join_ms",
                ms,
            );
            tbl.row(&[&tau, &format!("{ms:.1}"), &pairs]);
        }
        tbl.print();
    }
}
