//! Figure 7: distributed similarity search on Beijing with DTW —
//! Naive / Simba / DFT / DITA over τ, sample rate, workers and scale-out.

use dita_bench::runners::run_search_figure;

fn main() {
    let dataset = dita_bench::beijing();
    println!("dataset: {}", dataset.stats());
    run_search_figure("fig7", &dataset, 0.003);
}
