//! Figure 10: distributed similarity join on Chengdu with DTW.

use dita_bench::runners::run_join_figure;

fn main() {
    let dataset = dita_bench::chengdu();
    println!("dataset: {}", dataset.stats());
    run_join_figure("fig10", &dataset, 0.003);
}
