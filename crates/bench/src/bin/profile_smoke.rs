//! Profile smoke: a tiny instrumented run that exercises the whole
//! observability surface in well under a second.
//!
//! Builds the Figure 1 example table with tracing attached, runs one
//! search, one self-join and one kNN probe, then emits every exporter:
//! the human-readable profile table (with per-operation critical-path
//! attribution) and Prometheus text on stdout, and the schema-versioned
//! JSON report to the path given as the first CLI argument (default
//! `results/PROFILE_SMOKE.json`).
//!
//! The binary self-validates — it panics (non-zero exit) if the profile
//! tree is missing the documented spans, the funnel is inconsistent, any
//! operation's critical-path attribution fails to sum to ~100%, or the
//! JSON does not round-trip — so `scripts/profile_smoke.sh` only has to
//! check the exit code and re-parse the JSON.

use dita_cluster::{Cluster, ClusterConfig};
use dita_core::{join, knn_search, search, DitaConfig, DitaSystem, JoinOptions};
use dita_distance::DistanceFunction;
use dita_index::{PivotStrategy, TrieConfig};
use dita_obs::{Obs, Report};
use dita_trajectory::trajectory::figure1_trajectories;
use dita_trajectory::Dataset;
use std::path::PathBuf;

fn main() {
    let out: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/PROFILE_SMOKE.json".to_string())
        .into();

    let dataset = Dataset::new("fig1", figure1_trajectories()).unwrap();
    let mut sys = DitaSystem::build(
        &dataset,
        DitaConfig {
            ng: 2,
            trie: TrieConfig {
                k: 2,
                nl: 2,
                leaf_capacity: 0,
                strategy: PivotStrategy::NeighborDistance,
                cell_side: 2.0,
                ..TrieConfig::default()
            },
        },
        Cluster::new(ClusterConfig::with_workers(2)),
    );
    sys.attach_obs(Obs::enabled());

    let ts = figure1_trajectories();
    let (hits, stats) = search(&sys, ts[0].points(), 3.0, &DistanceFunction::Dtw);
    assert!(!hits.is_empty(), "the Example 2/6 query must match");
    let (pairs, _) = join(
        &sys,
        &sys,
        3.0,
        &DistanceFunction::Dtw,
        &JoinOptions::default(),
    );
    assert!(!pairs.is_empty(), "the self-join must produce pairs");
    let (nn, _) = knn_search(&sys, ts[0].points(), 2, &DistanceFunction::Dtw);
    assert_eq!(nn.len(), 2, "kNN must return k results");

    let mut report = sys.obs().report();
    report.attach_funnel(stats.filter.funnel());
    report.attach_critpath();

    // Self-check: the documented span hierarchy and a consistent funnel.
    for name in ["search", "join", "knn"] {
        assert!(
            report.profile.iter().any(|n| n.name == name),
            "missing top-level span `{name}`"
        );
    }
    let top_search = report
        .profile
        .iter()
        .find(|n| n.name == "search")
        .expect("search span");
    assert!(top_search.find("filter").is_some(), "missing filter span");
    assert!(top_search.find("verify").is_some(), "missing verify span");
    assert!(!report.metrics.is_empty(), "registry recorded no metrics");
    let funnel = &report.funnels[0];
    assert_eq!(
        funnel.survivors() as usize,
        stats.candidates,
        "funnel survivors must equal the search's candidate count"
    );
    // Critical-path analyses: one per operation, attribution complete.
    for op in ["search", "join", "knn"] {
        let cp = report
            .critpath
            .iter()
            .find(|c| c.op == op)
            .unwrap_or_else(|| panic!("missing critical-path analysis for `{op}`"));
        let pct: f64 = cp.attribution.iter().map(|s| s.pct).sum();
        assert!(
            (pct - 100.0).abs() < 0.5,
            "`{op}` attribution must sum to ~100%, got {pct:.2}%"
        );
        assert!(
            cp.makespan_sec > 0.0,
            "`{op}` critical path has no makespan"
        );
    }

    println!("{}", report.render_table());
    println!("== prometheus ==");
    println!("{}", report.to_prometheus());

    let json = report.to_json_pretty().expect("report serializes");
    let back = Report::from_json(&json).expect("report parses back");
    assert_eq!(back, report, "JSON round-trip must be lossless");

    report.write_json(&out).expect("write JSON report");
    println!("wrote {}", out.display());
}
