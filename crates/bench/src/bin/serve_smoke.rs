//! Serve smoke: load harness against the wire-protocol service
//! (`dita-server`), producing `results/BENCH_PR9.json` (override with
//! `--out <path>`). The server runs in-process but every request
//! travels over a real TCP socket through the full HTTP stack —
//! framing, admission, batching, reply wakeup.
//!
//! Sections:
//! 1. closed loop — a fixed pool of keep-alive clients, each sending
//!    its next `/search` only after the previous answer. Concurrency
//!    stays below the admission queue capacity, so nothing sheds;
//!    reports qps and client-observed p50/p95/p99.
//! 2. open loop — more clients than queue slots, arriving on a
//!    seeded-RNG exponential (Poisson-ish) schedule at a multiple of
//!    the measured closed-loop throughput, each request carrying a
//!    deadline header. Midway the harness injects a dispatch stall
//!    longer than that deadline — the operator-hiccup scenario — so
//!    the run demonstrates all three overload outcomes: bounded queue
//!    depth, 429 shedding, and cooperative 504 cancellation.
//! 3. parity — every 200 body from either loop is byte-compared
//!    against the shared `dita_server::wire` encoding of a direct
//!    `search_batch` answer: the HTTP layer adds transport, not
//!    semantics.
//! 4. headline numbers — one kernel pair, verified-pairs/sec, and
//!    search p50s, so `perf_trajectory` folds this artifact into the
//!    cross-PR series.
//!
//! Data is the bench_smoke synthetic city (seeded xorshift walks);
//! queries are jittered members so every answer is non-empty.

use dita_cluster::{Cluster, ClusterConfig, SchedulerConfig};
use dita_core::{search_batch, DitaConfig, SearchOptions};
use dita_distance::{dtw_soa, dtw_threshold, DistanceFunction, Scratch};
use dita_index::{PivotStrategy, TrieConfig};
use dita_obs::bench_report::{
    BenchSmokeReport, KernelMeasurement, LatencySummaryMs, SearchP50Ms, ServeLoopRun, ServeSection,
    ThreadScalingPoint, BENCH_SCHEMA,
};
use dita_server::{wire, Server, ServerConfig};
use dita_sql::Engine;
use dita_trajectory::{Dataset, Point, SoaPoints, Trajectory};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::thread;
use std::time::{Duration, Instant};

struct XorShift(u64);

impl XorShift {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn walk(rng: &mut XorShift, len: usize, x0: f64, y0: f64) -> Vec<Point> {
    let mut pts = Vec::with_capacity(len);
    let (mut x, mut y) = (x0, y0);
    for _ in 0..len {
        x += (rng.next_f64() - 0.5) * 0.01;
        y += (rng.next_f64() - 0.5) * 0.01;
        pts.push(Point::new(x, y));
    }
    pts
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    assert!(!sorted_ms.is_empty());
    let idx = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[idx]
}

fn summarize(latencies_ms: &mut [f64]) -> LatencySummaryMs {
    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let round3 = |x: f64| (x * 1000.0).round() / 1000.0;
    LatencySummaryMs {
        p50: round3(percentile(latencies_ms, 0.50)),
        p95: round3(percentile(latencies_ms, 0.95)),
        p99: round3(percentile(latencies_ms, 0.99)),
    }
}

/// A blocking keep-alive HTTP/1.1 client over one `TcpStream`.
struct HttpClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl HttpClient {
    fn connect(addr: SocketAddr) -> HttpClient {
        let stream = TcpStream::connect(addr).expect("connect to in-process server");
        stream.set_nodelay(true).ok();
        HttpClient {
            stream,
            buf: Vec::new(),
        }
    }

    /// One POST on the persistent connection; returns (status, body).
    fn post(&mut self, path: &str, body: &str, headers: &[(&str, &str)]) -> (u16, Vec<u8>) {
        let mut extra = String::new();
        for (k, v) in headers {
            extra.push_str(&format!("{k}: {v}\r\n"));
        }
        let req = format!(
            "POST {path} HTTP/1.1\r\nhost: smoke\r\ncontent-length: {}\r\n{extra}\r\n{body}",
            body.len()
        );
        self.stream
            .write_all(req.as_bytes())
            .expect("write request");
        self.read_response()
    }

    fn read_response(&mut self) -> (u16, Vec<u8>) {
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(end) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                let head = String::from_utf8_lossy(&self.buf[..end]).to_string();
                let status: u16 = head
                    .split(' ')
                    .nth(1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("bad response head: {head}"));
                let len: usize = head
                    .lines()
                    .find_map(|l| {
                        let (k, v) = l.split_once(':')?;
                        k.eq_ignore_ascii_case("content-length")
                            .then(|| v.trim().parse().ok())?
                    })
                    .expect("content-length header");
                let total = end + 4 + len;
                while self.buf.len() < total {
                    let n = self.stream.read(&mut chunk).expect("read body");
                    assert!(n > 0, "server closed mid-body");
                    self.buf.extend_from_slice(&chunk[..n]);
                }
                let body = self.buf[end + 4..total].to_vec();
                self.buf.drain(..total);
                return (status, body);
            }
            let n = self.stream.read(&mut chunk).expect("read head");
            assert!(n > 0, "server closed before response head");
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }
}

/// What one load client observed over its run.
#[derive(Default)]
struct ClientStats {
    offered: usize,
    completed: usize,
    shed: usize,
    cancelled: usize,
    parity: usize,
    lat_ms: Vec<f64>,
}

impl ClientStats {
    fn absorb(&mut self, other: ClientStats) {
        self.offered += other.offered;
        self.completed += other.completed;
        self.shed += other.shed;
        self.cancelled += other.cancelled;
        self.parity += other.parity;
        self.lat_ms.extend(other.lat_ms);
    }

    /// Records one response; parity-checks 200 bodies against the
    /// direct-library expectation.
    fn record(&mut self, status: u16, body: &[u8], expect: &[u8], ms: f64) {
        self.offered += 1;
        match status {
            200 => {
                assert_eq!(
                    body, expect,
                    "HTTP answer must be byte-identical to the direct library call"
                );
                self.parity += 1;
                self.completed += 1;
                self.lat_ms.push(ms);
            }
            429 => self.shed += 1,
            504 => self.cancelled += 1,
            other => panic!(
                "unexpected status {other}: {}",
                String::from_utf8_lossy(body)
            ),
        }
    }
}

const NT: usize = 1500;
const NQ: usize = 64;
const TAU: f64 = 0.2;
const HTTP_WORKERS: usize = 32;
const QUEUE_CAPACITY: usize = 8;
const CLOSED_CLIENTS: usize = 4;
const CLOSED_PER_CLIENT: usize = 150;
const OPEN_CLIENTS: usize = 24;
const OPEN_PER_CLIENT: usize = 100;
/// Per-request deadline of the open-loop clients, milliseconds.
const OPEN_DEADLINE_MS: u64 = 40;
/// The injected mid-run dispatch stall; must exceed the deadline so
/// queued requests cancel instead of merely waiting.
const STALL: Duration = Duration::from_millis(120);

fn main() {
    // -- data and the direct-library reference answers --
    let mut rng = XorShift(0x5E17E);
    let ts: Vec<Trajectory> = (0..NT as u64)
        .map(|i| {
            let len = 24 + (rng.next_u64() % 41) as usize;
            let (x0, y0) = (rng.next_f64() * 2.0, rng.next_f64() * 2.0);
            Trajectory::new(i + 1, walk(&mut rng, len, x0, y0))
        })
        .collect();
    let config = DitaConfig {
        ng: 8,
        trie: TrieConfig {
            k: 3,
            nl: 4,
            leaf_capacity: 8,
            strategy: PivotStrategy::NeighborDistance,
            cell_side: 0.05,
            ..TrieConfig::default()
        },
    };
    let queries: Vec<Vec<Point>> = (0..NQ)
        .map(|i| {
            let t = ts[(i * 47) % ts.len()].points();
            let mut r2 = XorShift(
                (t.len() as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(i as u64 * 0x1234_5677)
                    | 1,
            );
            t.iter()
                .map(|p| {
                    Point::new(
                        p.x + (r2.next_f64() - 0.5) * 0.004,
                        p.y + (r2.next_f64() - 0.5) * 0.004,
                    )
                })
                .collect()
        })
        .collect();

    // The reference engine is built identically to the served one and
    // answers directly; `wire` encodes those answers to the exact bytes
    // the server must produce. (Rust float Display is shortest
    // round-trip, so the request bodies parse back to identical f64s.)
    let mut direct = Engine::new(Cluster::new(ClusterConfig::with_workers(4)), config);
    direct
        .register("city", Dataset::new_unchecked("city", ts.clone()))
        .expect("fresh catalog");
    direct.ensure_index("city").expect("index build");
    let q_slices: Vec<&[Point]> = queries.iter().map(|q| q.as_slice()).collect();
    let taus = vec![TAU; NQ];
    let (expected_hits, _) = search_batch(
        direct.system("city").expect("indexed table"),
        &q_slices,
        &taus,
        &DistanceFunction::Dtw,
        SearchOptions::default(),
    );
    let expected: Vec<Vec<u8>> = expected_hits
        .iter()
        .map(|hits| wire::body_bytes(&wire::hits_value(hits)))
        .collect();
    for (qi, hits) in expected_hits.iter().enumerate() {
        assert!(!hits.is_empty(), "query {qi} is a jittered member");
    }
    let bodies: Vec<String> = queries
        .iter()
        .map(|q| {
            let pts: Vec<String> = q.iter().map(|p| format!("[{},{}]", p.x, p.y)).collect();
            format!(
                "{{\"table\": \"city\", \"query\": [{}], \"tau\": {TAU}}}",
                pts.join(",")
            )
        })
        .collect();

    // -- the served engine --
    let mut engine = Engine::new(Cluster::new(ClusterConfig::with_workers(4)), config);
    engine
        .register("city", Dataset::new_unchecked("city", ts.clone()))
        .expect("fresh catalog");
    let server = Server::start(
        engine,
        ServerConfig {
            http_workers: HTTP_WORKERS,
            scheduler: SchedulerConfig {
                queue_capacity: QUEUE_CAPACITY,
                max_batch: 4,
                ..SchedulerConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("bind in-process server");
    let addr = server.addr();
    println!("serving on {addr} (workers {HTTP_WORKERS}, queue {QUEUE_CAPACITY})");

    // -- closed loop: CLOSED_CLIENTS keep-alive connections --
    println!("\n== closed loop: {CLOSED_CLIENTS} clients x {CLOSED_PER_CLIENT} requests ==");
    let c0 = server.scheduler_counters();
    let (mut closed, closed_wall, closed_depth) = run_loop(&server, CLOSED_CLIENTS, |client| {
        let mut http = HttpClient::connect(addr);
        let mut stats = ClientStats::default();
        for i in 0..CLOSED_PER_CLIENT {
            let qi = (client * CLOSED_PER_CLIENT + i) % NQ;
            let t0 = Instant::now();
            let (status, body) = http.post("/search", &bodies[qi], &[]);
            stats.record(
                status,
                &body,
                &expected[qi],
                t0.elapsed().as_secs_f64() * 1e3,
            );
        }
        stats
    });
    let c1 = server.scheduler_counters();
    let closed_cancelled = (c1.cancelled + c1.expired) - (c0.cancelled + c0.expired);
    let closed_qps = closed.completed as f64 / closed_wall;
    let closed_lat = summarize(&mut closed.lat_ms);
    println!(
        "  {closed_qps:>7.0} qps  p50 {:>7.3} ms  p95 {:>7.3} ms  p99 {:>7.3} ms  \
         shed {}  max depth {closed_depth}",
        closed_lat.p50, closed_lat.p95, closed_lat.p99, closed.shed
    );
    assert_eq!(
        closed.shed, 0,
        "closed-loop concurrency {CLOSED_CLIENTS} stays below capacity {QUEUE_CAPACITY}"
    );
    assert_eq!(closed_cancelled, 0, "no deadline pressure in closed loop");
    assert!(closed_qps > 0.0);

    // -- open loop: overload at a multiple of the measured capacity --
    // Exponential (Poisson-ish) arrivals per client; a client behind
    // schedule fires immediately, so the offered rate is an upper target.
    let offered_qps = (closed_qps * 4.0).max(2000.0);
    let per_client_mean_s = OPEN_CLIENTS as f64 / offered_qps;
    println!(
        "\n== open loop: {OPEN_CLIENTS} clients x {OPEN_PER_CLIENT} requests, \
         offered ~{offered_qps:.0} rps, deadline {OPEN_DEADLINE_MS} ms, \
         {} ms stall injected ==",
        STALL.as_millis()
    );
    let o0 = server.scheduler_counters();
    let deadline_ms = OPEN_DEADLINE_MS.to_string();
    let deadline_header = [("x-dita-deadline-ms", deadline_ms.as_str())];
    let start_gate = Instant::now();
    let stalled = AtomicBool::new(false);
    let (mut open, open_wall, open_depth) = run_loop(&server, OPEN_CLIENTS + 1, |client| {
        if client == OPEN_CLIENTS {
            // The hiccup injector: midway, stall dispatch for longer
            // than the client deadline, then resume.
            thread::sleep(Duration::from_secs_f64(
                per_client_mean_s * OPEN_PER_CLIENT as f64 * 0.5,
            ));
            server.pause_dispatch();
            thread::sleep(STALL);
            server.resume_dispatch();
            stalled.store(true, Ordering::Relaxed);
            return ClientStats::default();
        }
        let mut http = HttpClient::connect(addr);
        let mut stats = ClientStats::default();
        let mut arrival = XorShift(0xA11CE + client as u64 * 0x9E37_79B9 + 1);
        let mut next_at = 0.0f64;
        for i in 0..OPEN_PER_CLIENT {
            next_at += -per_client_mean_s * (1.0 - arrival.next_f64()).ln();
            let wait = next_at - start_gate.elapsed().as_secs_f64();
            if wait > 0.0 {
                thread::sleep(Duration::from_secs_f64(wait));
            }
            let qi = (client * OPEN_PER_CLIENT + i) % NQ;
            let t0 = Instant::now();
            let (status, body) = http.post("/search", &bodies[qi], &deadline_header);
            stats.record(
                status,
                &body,
                &expected[qi],
                t0.elapsed().as_secs_f64() * 1e3,
            );
        }
        stats
    });
    assert!(stalled.load(Ordering::Relaxed), "injector ran");
    // Quiesce: the dispatcher reaps cancelled queue entries on its next
    // batch formation (within a poll tick), so give it a beat before
    // reading the final ledger.
    let tq = Instant::now();
    while (server.queue_depth() > 0 || server.inflight() > 0)
        && tq.elapsed() < Duration::from_secs(5)
    {
        thread::sleep(Duration::from_millis(2));
    }
    thread::sleep(Duration::from_millis(25));
    let o1 = server.scheduler_counters();
    let open_cancelled = (o1.cancelled + o1.expired) - (o0.cancelled + o0.expired);
    let open_qps = open.completed as f64 / open_wall;
    let open_lat = summarize(&mut open.lat_ms);
    println!(
        "  {open_qps:>7.0} qps  p50 {:>7.3} ms  p95 {:>7.3} ms  p99 {:>7.3} ms  \
         shed {}  cancelled {open_cancelled}  max depth {open_depth}",
        open_lat.p50, open_lat.p95, open_lat.p99, open.shed
    );
    assert!(open.shed > 0, "overload must shed with 429");
    assert!(
        open_cancelled > 0,
        "the injected stall must cancel queued requests past their deadline"
    );
    assert!(
        open_cancelled >= open.cancelled,
        "every client-observed 504 is a scheduler cancel"
    );
    assert!(
        closed_depth.max(open_depth) <= QUEUE_CAPACITY,
        "queue depth stays bounded by capacity"
    );
    assert!(open.completed > 0, "service continues under overload");

    // The scheduler's lifetime ledger must balance once quiescent.
    assert_eq!(
        o1.admitted,
        o1.dispatched + o1.cancelled + o1.expired,
        "admitted splits exactly into dispatched + cancelled + expired"
    );
    let parity_checked = closed.parity + open.parity;
    println!("  parity: {parity_checked} responses byte-identical to direct calls");

    let serve = ServeSection {
        http_workers: HTTP_WORKERS,
        queue_capacity: QUEUE_CAPACITY,
        closed_loop_clients: CLOSED_CLIENTS,
        closed_loop: ServeLoopRun {
            offered: closed.offered,
            completed: closed.completed,
            shed: closed.shed,
            cancelled: closed_cancelled,
            qps: closed_qps.round(),
            latency_ms: closed_lat,
            max_queue_depth: closed_depth,
        },
        open_loop_offered_qps: offered_qps.round(),
        open_loop: ServeLoopRun {
            offered: open.offered,
            completed: open.completed,
            shed: open.shed,
            cancelled: open_cancelled,
            qps: open_qps.round(),
            latency_ms: open_lat,
            max_queue_depth: open_depth,
        },
        parity_checked,
    };
    server.shutdown();

    // -- headline numbers for the cross-PR trajectory --
    let (kernel, pairs_per_sec) = headline_kernels();
    let (p50_serial, p50_threads4) = headline_search_p50(&direct, &q_slices);
    let report = BenchSmokeReport {
        schema: Some(BENCH_SCHEMA.to_string()),
        kernels: vec![kernel],
        verified_pairs_per_sec: pairs_per_sec.round(),
        search_p50_ms: SearchP50Ms {
            serial: p50_serial,
            verify_threads_4: p50_threads4,
        },
        thread_scaling: vec![ThreadScalingPoint {
            threads: 1,
            pairs_per_sec: pairs_per_sec.round(),
        }],
        host_cores: std::thread::available_parallelism().map_or(0, |n| n.get()),
        note: "serve smoke: closed- and open-loop HTTP load over real sockets \
               with byte-parity against direct library calls; the open loop \
               injects a dispatch stall to exercise 429 shedding and deadline \
               cancellation; kernel/p50 headline numbers ride along for the \
               cross-PR trajectory"
            .to_string(),
        search_profile: None,
        cold_path: None,
        ingest: None,
        memory: None,
        planning_ab: None,
        throughput: None,
        serve: Some(serve),
    };

    let mut out = String::from("results/BENCH_PR9.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--out" {
            out = args.next().expect("--out needs a path");
        }
    }
    let out = Path::new(&out);
    match report.write_json(out) {
        Ok(()) => println!("\nwrote {}", out.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", out.display()),
    }
}

/// Runs `clients` threads of `body` plus a queue-depth sampler; returns
/// (merged stats, wall seconds, max sampled queue depth).
fn run_loop<F>(server: &Server, clients: usize, body: F) -> (ClientStats, f64, usize)
where
    F: Fn(usize) -> ClientStats + Sync,
{
    let stop = AtomicBool::new(false);
    let max_depth = AtomicUsize::new(0);
    let t0 = Instant::now();
    let merged = thread::scope(|s| {
        let sampler = s.spawn(|| {
            while !stop.load(Ordering::Relaxed) {
                max_depth.fetch_max(server.queue_depth(), Ordering::Relaxed);
                thread::sleep(Duration::from_micros(500));
            }
        });
        let body = &body;
        let handles: Vec<_> = (0..clients).map(|c| s.spawn(move || body(c))).collect();
        let mut merged = ClientStats::default();
        for h in handles {
            merged.absorb(h.join().expect("client thread"));
        }
        stop.store(true, Ordering::Relaxed);
        sampler.join().expect("sampler thread");
        merged
    });
    let wall = t0.elapsed().as_secs_f64();
    (merged, wall, max_depth.load(Ordering::Relaxed))
}

/// One AoS-vs-SoA kernel pair and the mixed verified-pairs/sec figure,
/// identical in shape to the other smoke artifacts.
fn headline_kernels() -> (KernelMeasurement, f64) {
    let mut rng = XorShift(0x5EED);
    let dis: Vec<(Vec<Point>, Vec<Point>)> = (0..16)
        .map(|_| (walk(&mut rng, 64, 0.0, 0.0), walk(&mut rng, 64, 1.0, 1.0)))
        .collect();
    let sim: Vec<(Vec<Point>, Vec<Point>)> = (0..16)
        .map(|_| {
            let t = walk(&mut rng, 64, 0.0, 0.0);
            let mut r2 = XorShift(rng.next_u64() | 1);
            let q = t
                .iter()
                .map(|p| {
                    Point::new(
                        p.x + (r2.next_f64() - 0.5) * 0.002,
                        p.y + (r2.next_f64() - 0.5) * 0.002,
                    )
                })
                .collect();
            (t, q)
        })
        .collect();
    let to_soa = |ps: &[(Vec<Point>, Vec<Point>)]| -> Vec<(SoaPoints, SoaPoints)> {
        ps.iter()
            .map(|(a, b)| (SoaPoints::from_points(a), SoaPoints::from_points(b)))
            .collect()
    };
    let (dis_soa, sim_soa) = (to_soa(&dis), to_soa(&sim));
    let mut scratch = Scratch::new();
    let time_ns = |f: &mut dyn FnMut() -> u64| -> f64 {
        let iters = 400usize;
        let mut sink = 0u64;
        for _ in 0..iters / 10 {
            sink = sink.wrapping_add(f());
        }
        let t0 = Instant::now();
        for _ in 0..iters {
            sink = sink.wrapping_add(f());
        }
        assert!(sink != u64::MAX);
        t0.elapsed().as_nanos() as f64 / iters as f64
    };
    let kernel_tau = 0.05;
    let aos_ns = time_ns(&mut || {
        dis.iter()
            .map(|(a, b)| dtw_threshold(a, b, kernel_tau).is_some() as u64)
            .sum()
    });
    let soa_ns = time_ns(&mut || {
        dis_soa
            .iter()
            .map(|(a, b)| dtw_soa(a.view(), b.view(), kernel_tau, &mut scratch).is_some() as u64)
            .sum()
    });
    let mixed: Vec<&(SoaPoints, SoaPoints)> = dis_soa.iter().chain(sim_soa.iter()).collect();
    let t0 = Instant::now();
    let reps = 400usize;
    let mut verified = 0u64;
    for _ in 0..reps {
        for (a, b) in &mixed {
            verified += dtw_soa(a.view(), b.view(), 0.5, &mut scratch).is_some() as u64;
        }
    }
    std::hint::black_box(verified);
    let pairs_per_sec = (reps * mixed.len()) as f64 / t0.elapsed().as_secs_f64();
    let round2 = |x: f64| (x * 100.0).round() / 100.0;
    (
        KernelMeasurement {
            name: "dtw/dissimilar/early-abandon".to_string(),
            aos_ns: aos_ns.round(),
            soa_ns: soa_ns.round(),
            speedup: round2(aos_ns / soa_ns),
        },
        pairs_per_sec,
    )
}

/// Direct (no HTTP) serial and 4-thread-verify search p50s over the
/// query set, for the cross-PR series.
fn headline_search_p50(direct: &Engine, q_slices: &[&[Point]]) -> (f64, f64) {
    let sys = direct.system("city").expect("indexed table");
    let p50_of = |threads: usize| -> f64 {
        let mut ms: Vec<f64> = q_slices
            .iter()
            .take(40)
            .map(|q| {
                let t0 = Instant::now();
                let (r, _) = dita_core::search_with_options(
                    sys,
                    q,
                    TAU,
                    &DistanceFunction::Dtw,
                    SearchOptions {
                        verify_threads: threads,
                    },
                );
                assert!(!r.is_empty());
                t0.elapsed().as_secs_f64() * 1e3
            })
            .collect();
        ms.sort_by(|a, b| a.total_cmp(b));
        (ms[ms.len() / 2] * 1000.0).round() / 1000.0
    };
    (p50_of(1), p50_of(4))
}
