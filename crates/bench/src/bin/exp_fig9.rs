//! Figure 9: distributed similarity join on Beijing with DTW — Simba vs
//! DITA over τ, sample rate, workers and scale-out.

use dita_bench::runners::run_join_figure;

fn main() {
    let dataset = dita_bench::beijing();
    println!("dataset: {}", dataset.stats());
    run_join_figure("fig9", &dataset, 0.003);
}
