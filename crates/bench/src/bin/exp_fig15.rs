//! Figure 15: join time under the other distance functions — DTW vs Fréchet
//! (geometric thresholds) and EDR vs LCSS (edit-count thresholds).

use dita_bench::runners::measure_dita_join;
use dita_bench::{cluster, default_ng, dita_config, params, Sink, Table};
use dita_core::{DitaSystem, JoinOptions};
use dita_distance::DistanceFunction;

fn main() {
    let mut sink = Sink::new("fig15");
    for dataset in [dita_bench::beijing(), dita_bench::chengdu()] {
        println!("dataset: {}", dataset.stats());
        let ng = default_ng(&dataset.name);
        let dita = DitaSystem::build(&dataset, dita_config(ng), cluster(params::DEFAULT_WORKERS));

        // (a) DTW and Fréchet over the geometric τ sweep.
        let mut tbl = Table::new(
            format!("fig15(a) join on {} — DTW vs Frechet (ms)", dataset.name),
            &["tau", "DTW", "Frechet"],
        );
        for tau in params::TAUS {
            let mut cells = Vec::new();
            for (f, label) in [
                (DistanceFunction::Dtw, "dtw"),
                (DistanceFunction::Frechet, "frechet"),
            ] {
                let (_, ms, _) = measure_dita_join(&dita, &dita, tau, &f, &JoinOptions::default());
                sink.record(
                    label,
                    &dataset.name,
                    serde_json::json!({"tau": tau}),
                    "join_ms",
                    ms,
                );
                cells.push(format!("{ms:.1}"));
            }
            tbl.row(&[&tau, &cells[0], &cells[1]]);
        }
        tbl.print();

        // (b) EDR and LCSS over integer thresholds (ϵ = 1e-4, δ = 3 as in
        // Appendix B). The edit family's endpoint pruning is inherently
        // weak (an integer budget ≥ 2 admits every partition pair), so this
        // panel runs on a 30% sample — the paper makes the same point by
        // reporting EDR/LCSS joins an order of magnitude slower.
        let sampled = dataset.sample(0.3);
        let dita_s = DitaSystem::build(&sampled, dita_config(ng), cluster(params::DEFAULT_WORKERS));
        let mut tbl = Table::new(
            format!(
                "fig15(b) join on {} (30% sample) — EDR vs LCSS (ms)",
                dataset.name
            ),
            &["tau", "EDR", "LCSS"],
        );
        for tau in [1.0, 3.0, 5.0] {
            let mut cells = Vec::new();
            for (f, label) in [
                (DistanceFunction::PAPER_EDR, "edr"),
                (DistanceFunction::PAPER_LCSS, "lcss"),
            ] {
                let (_, ms, _) =
                    measure_dita_join(&dita_s, &dita_s, tau, &f, &JoinOptions::default());
                sink.record(
                    label,
                    &dataset.name,
                    serde_json::json!({"tau": tau}),
                    "join_ms",
                    ms,
                );
                cells.push(format!("{ms:.1}"));
            }
            tbl.row(&[&tau, &cells[0], &cells[1]]);
        }
        tbl.print();
    }
}
