//! Table 2 (and Table 6): statistics of the datasets used across the
//! experiments, at the harness scale.

use dita_bench::{beijing, chengdu, chengdu_tiny, osm_join, osm_search, Table};

fn main() {
    let mut tbl = Table::new(
        "Table 2: datasets (harness scale; paper scale in DESIGN.md)",
        &[
            "dataset",
            "cardinality",
            "avg_len",
            "min_len",
            "max_len",
            "size_MB",
        ],
    );
    for d in [
        beijing(),
        chengdu(),
        osm_search(),
        osm_join(),
        chengdu_tiny(),
    ] {
        let s = d.stats();
        tbl.row(&[
            &d.name,
            &s.cardinality,
            &format!("{:.1}", s.avg_len),
            &s.min_len,
            &s.max_len,
            &format!("{:.2}", s.size_bytes as f64 / 1048576.0),
        ]);
    }
    tbl.print();
}
