//! Extension experiment (not in the paper): kNN search — the §8 future
//! work — via radius expansion over the DITA index, against a brute-force
//! top-k scan.

use dita_bench::{cluster, default_ng, dita_config, num_queries, params, Sink, Table};
use dita_core::{knn_search, DitaSystem};
use dita_distance::DistanceFunction;
use std::time::Instant;

fn main() {
    let mut sink = Sink::new("ext_knn");
    let dataset = dita_bench::beijing();
    println!("dataset: {}", dataset.stats());
    let ng = default_ng(&dataset.name);
    let system = DitaSystem::build(&dataset, dita_config(ng), cluster(params::DEFAULT_WORKERS));
    let queries = dita_datagen::sample_queries(&dataset, num_queries().min(50), 0xA11CE);

    let mut tbl = Table::new(
        "kNN extension: DITA radius expansion vs brute-force top-k (DTW)",
        &["k", "dita_ms", "brute_ms", "avg_probes"],
    );
    for k in [1usize, 5, 10, 50] {
        // DITA.
        let t0 = Instant::now();
        let mut probes = 0usize;
        for q in &queries {
            let (hits, s) = knn_search(&system, q.points(), k, &DistanceFunction::Dtw);
            assert_eq!(hits.len(), k.min(system.len()));
            probes += s.rounds;
        }
        let dita_ms = t0.elapsed().as_secs_f64() * 1e3 / queries.len() as f64;

        // Brute force: full scan, keep k best (early-abandon against the
        // current k-th distance).
        let t0 = Instant::now();
        for q in &queries {
            let mut best: Vec<(u64, f64)> = Vec::new();
            let mut kth = f64::INFINITY;
            for t in dataset.trajectories() {
                let d = if kth.is_finite() {
                    match dita_distance::dtw_threshold(t.points(), q.points(), kth) {
                        Some(d) => d,
                        None => continue,
                    }
                } else {
                    dita_distance::dtw(t.points(), q.points())
                };
                best.push((t.id, d));
                best.sort_by(|a, b| a.1.total_cmp(&b.1));
                best.truncate(k);
                if best.len() == k {
                    kth = best[k - 1].1;
                }
            }
        }
        let brute_ms = t0.elapsed().as_secs_f64() * 1e3 / queries.len() as f64;

        sink.record(
            "dita",
            &dataset.name,
            serde_json::json!({"k": k}),
            "knn_ms",
            dita_ms,
        );
        sink.record(
            "brute",
            &dataset.name,
            serde_json::json!({"k": k}),
            "knn_ms",
            brute_ms,
        );
        tbl.row(&[
            &k,
            &format!("{dita_ms:.3}"),
            &format!("{brute_ms:.3}"),
            &format!("{:.1}", probes as f64 / queries.len() as f64),
        ]);
    }
    tbl.print();
}
