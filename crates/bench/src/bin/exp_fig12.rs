//! Figure 12: pivot selection strategies (a, b) and pivot count K (c, d) —
//! join time on Beijing and Chengdu.

use dita_bench::runners::measure_dita_join;
use dita_bench::{cluster, default_ng, params, Sink, Table};
use dita_core::{DitaConfig, DitaSystem, JoinOptions};
use dita_distance::DistanceFunction;
use dita_index::{PivotStrategy, TrieConfig};

fn main() {
    let mut sink = Sink::new("fig12");
    for dataset in [dita_bench::beijing(), dita_bench::chengdu()] {
        println!("dataset: {}", dataset.stats());
        let ng = default_ng(&dataset.name);

        // (a)/(b): strategy sweep at the default K.
        let mut tbl = Table::new(
            format!(
                "fig12 pivot strategies on {} — join time (ms)",
                dataset.name
            ),
            &["tau", "Inflection", "Neighbor", "First/Last"],
        );
        let builds: Vec<DitaSystem> = PivotStrategy::ALL
            .iter()
            .map(|&strategy| {
                let config = DitaConfig {
                    ng,
                    trie: TrieConfig {
                        strategy,
                        ..dita_bench::dita_config(ng).trie
                    },
                };
                DitaSystem::build(&dataset, config, cluster(params::DEFAULT_WORKERS))
            })
            .collect();
        for tau in params::TAUS {
            let cells: Vec<String> = builds
                .iter()
                .zip(PivotStrategy::ALL)
                .map(|(sys, _strategy)| {
                    let (_, ms, _) = measure_dita_join(
                        sys,
                        sys,
                        tau,
                        &DistanceFunction::Dtw,
                        &JoinOptions::default(),
                    );
                    sink.record(
                        "dita",
                        &dataset.name,
                        serde_json::json!({"tau": tau, "strategy": _strategy.name()}),
                        "join_ms",
                        ms,
                    );
                    format!("{ms:.1}")
                })
                .collect();
            tbl.row(&[&tau, &cells[0], &cells[1], &cells[2]]);
        }
        tbl.print();

        // (c)/(d): K sweep with the neighbor strategy.
        let ks = [2usize, 3, 4, 5, 6];
        let mut tbl = Table::new(
            format!("fig12 pivot count K on {} — join time (ms)", dataset.name),
            &["tau", "K=2", "K=3", "K=4", "K=5", "K=6"],
        );
        let builds: Vec<DitaSystem> = ks
            .iter()
            .map(|&k| {
                let config = DitaConfig {
                    ng,
                    trie: TrieConfig {
                        k,
                        ..dita_bench::dita_config(ng).trie
                    },
                };
                DitaSystem::build(&dataset, config, cluster(params::DEFAULT_WORKERS))
            })
            .collect();
        for tau in params::TAUS {
            let cells: Vec<String> = builds
                .iter()
                .zip(ks)
                .map(|(sys, _k)| {
                    let (_, ms, _) = measure_dita_join(
                        sys,
                        sys,
                        tau,
                        &DistanceFunction::Dtw,
                        &JoinOptions::default(),
                    );
                    sink.record(
                        "dita",
                        &dataset.name,
                        serde_json::json!({"tau": tau, "k": _k}),
                        "join_ms",
                        ms,
                    );
                    format!("{ms:.1}")
                })
                .collect();
            tbl.row(&[&tau, &cells[0], &cells[1], &cells[2], &cells[3], &cells[4]]);
        }
        tbl.print();
    }
}
