//! Table 5: index construction time and size vs dataset sample rate,
//! DITA vs DFT.

use dita_baselines::DftSystem;
use dita_bench::{cluster, default_ng, dita_config, params, Sink, Table};
use dita_core::DitaSystem;
use std::time::Instant;

fn main() {
    let mut sink = Sink::new("table5");
    for dataset in [dita_bench::beijing(), dita_bench::chengdu()] {
        println!("dataset: {}", dataset.stats());
        let ng = default_ng(&dataset.name);
        let mut tbl = Table::new(
            format!("Table 5: indexing time and size on {}", dataset.name),
            &["system", "rate", "time_ms", "global_KB", "local_KB"],
        );
        for rate in params::SAMPLE_RATES {
            let sampled = dataset.sample(rate);
            let dita =
                DitaSystem::build(&sampled, dita_config(ng), cluster(params::DEFAULT_WORKERS));
            let b = dita.build_stats();
            sink.record(
                "dita",
                &dataset.name,
                serde_json::json!({"rate": rate}),
                "build_ms",
                b.build_time.as_secs_f64() * 1e3,
            );
            sink.record(
                "dita",
                &dataset.name,
                serde_json::json!({"rate": rate}),
                "local_kb",
                b.local_size_bytes as f64 / 1024.0,
            );
            tbl.row(&[
                &"DITA",
                &rate,
                &format!("{:.1}", b.build_time.as_secs_f64() * 1e3),
                &format!("{:.1}", b.global_size_bytes as f64 / 1024.0),
                &format!("{:.1}", b.local_size_bytes as f64 / 1024.0),
            ]);
        }
        // DFT at full scale, as in the paper's last rows.
        let t0 = Instant::now();
        let parts = ng * ng;
        let dft = DftSystem::build(
            dataset.trajectories(),
            parts,
            cluster(params::DEFAULT_WORKERS),
        );
        let dft_ms = t0.elapsed().as_secs_f64() * 1e3;
        sink.record(
            "dft",
            &dataset.name,
            serde_json::json!({"rate": 1.0}),
            "build_ms",
            dft_ms,
        );
        sink.record(
            "dft",
            &dataset.name,
            serde_json::json!({"rate": 1.0}),
            "local_kb",
            dft.index_size_bytes() as f64 / 1024.0,
        );
        tbl.row(&[
            &"DFT",
            &1.0,
            &format!("{dft_ms:.1}"),
            &"-",
            &format!("{:.1}", dft.index_size_bytes() as f64 / 1024.0),
        ]);
        tbl.print();
    }
}
