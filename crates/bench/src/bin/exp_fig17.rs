//! Figure 17 (and the Appendix C join comparison): centralized baselines —
//! candidate counts and per-query latency of MBE, VP-tree and a
//! single-worker DITA, under DTW and Fréchet.

use dita_baselines::{MbeIndex, VpTree};
use dita_bench::{cluster, default_ng, dita_config, num_queries, params, Sink, Table};
use dita_core::{search, DitaSystem};
use dita_distance::DistanceFunction;
use std::time::Instant;

fn main() {
    let mut sink = Sink::new("fig17");
    let dataset = dita_bench::chengdu_tiny();
    println!("dataset: {}", dataset.stats());
    let ng = default_ng(&dataset.name);
    let queries = dita_datagen::sample_queries(&dataset, num_queries(), 0xA11CE);

    // Centralized DITA: one worker.
    let dita = DitaSystem::build(&dataset, dita_config(ng), cluster(1));
    let mbe = MbeIndex::build(dataset.trajectories(), 4);
    let vp = VpTree::build(dataset.trajectories(), DistanceFunction::Frechet);

    for (func, label) in [
        (DistanceFunction::Dtw, "DTW"),
        (DistanceFunction::Frechet, "Frechet"),
    ] {
        let mut tbl = Table::new(
            format!("fig17 centralized search with {label}"),
            &[
                "tau",
                "cand_MBE",
                "cand_VP",
                "cand_DITA",
                "ms_MBE",
                "ms_VP",
                "ms_DITA",
            ],
        );
        for tau in params::TAUS {
            // MBE.
            let t0 = Instant::now();
            let mut mbe_cands = 0usize;
            for q in &queries {
                let (_, c) = mbe.search(q.points(), tau, &func);
                mbe_cands += c;
            }
            let mbe_ms = t0.elapsed().as_secs_f64() * 1e3 / queries.len() as f64;

            // VP-tree (Fréchet only).
            let (vp_cands, vp_ms) = if func.is_metric() {
                let t0 = Instant::now();
                let mut c_total = 0usize;
                for q in &queries {
                    let (_, c) = vp.search(q, tau);
                    c_total += c;
                }
                (
                    c_total as f64 / queries.len() as f64,
                    t0.elapsed().as_secs_f64() * 1e3 / queries.len() as f64,
                )
            } else {
                (f64::NAN, f64::NAN)
            };

            // DITA, single worker: wall-clock is honest here.
            let t0 = Instant::now();
            let mut dita_cands = 0usize;
            for q in &queries {
                let (_, s) = search(&dita, q.points(), tau, &func);
                dita_cands += s.candidates;
            }
            let dita_ms = t0.elapsed().as_secs_f64() * 1e3 / queries.len() as f64;

            let nq = queries.len() as f64;
            sink.record(
                "mbe",
                &dataset.name,
                serde_json::json!({"tau": tau, "func": label}),
                "candidates",
                mbe_cands as f64 / nq,
            );
            sink.record(
                "dita",
                &dataset.name,
                serde_json::json!({"tau": tau, "func": label}),
                "candidates",
                dita_cands as f64 / nq,
            );
            sink.record(
                "mbe",
                &dataset.name,
                serde_json::json!({"tau": tau, "func": label}),
                "search_ms",
                mbe_ms,
            );
            sink.record(
                "dita",
                &dataset.name,
                serde_json::json!({"tau": tau, "func": label}),
                "search_ms",
                dita_ms,
            );
            if func.is_metric() {
                sink.record(
                    "vptree",
                    &dataset.name,
                    serde_json::json!({"tau": tau, "func": label}),
                    "candidates",
                    vp_cands,
                );
                sink.record(
                    "vptree",
                    &dataset.name,
                    serde_json::json!({"tau": tau, "func": label}),
                    "search_ms",
                    vp_ms,
                );
            }
            tbl.row(&[
                &tau,
                &format!("{:.0}", mbe_cands as f64 / nq),
                &(if vp_cands.is_nan() {
                    "n/a".to_string()
                } else {
                    format!("{vp_cands:.0}")
                }),
                &format!("{:.0}", dita_cands as f64 / nq),
                &format!("{mbe_ms:.3}"),
                &(if vp_ms.is_nan() {
                    "n/a".to_string()
                } else {
                    format!("{vp_ms:.3}")
                }),
                &format!("{dita_ms:.3}"),
            ]);
        }
        tbl.print();
    }
}
