//! Figure 13: endpoint STR partitioning vs random partitioning — join time.

use dita_bench::runners::measure_dita_join;
use dita_bench::{cluster, default_ng, dita_config, params, Sink, Table};
use dita_core::{DitaSystem, JoinOptions};
use dita_distance::DistanceFunction;
use dita_index::random_partitioning;

fn main() {
    let mut sink = Sink::new("fig13");
    for dataset in [dita_bench::beijing(), dita_bench::chengdu()] {
        println!("dataset: {}", dataset.stats());
        let ng = default_ng(&dataset.name);
        let workers = params::DEFAULT_WORKERS;

        let dita = DitaSystem::build(&dataset, dita_config(ng), cluster(workers));
        let n_parts = dita.num_partitions().max(1);
        let random = DitaSystem::build_with_partitioning(
            &dataset,
            dita_config(ng),
            cluster(workers),
            Some(random_partitioning(dataset.trajectories(), n_parts, 0xF00D)),
        );

        let mut tbl = Table::new(
            format!(
                "fig13 partitioning scheme on {} — join time (ms)",
                dataset.name
            ),
            &[
                "tau",
                "DITA",
                "Random",
                "DITA_KB_shipped",
                "Random_KB_shipped",
            ],
        );
        for tau in params::TAUS {
            let (_, d_ms, d_stats) = measure_dita_join(
                &dita,
                &dita,
                tau,
                &DistanceFunction::Dtw,
                &JoinOptions::default(),
            );
            let (_, r_ms, r_stats) = measure_dita_join(
                &random,
                &random,
                tau,
                &DistanceFunction::Dtw,
                &JoinOptions::default(),
            );
            sink.record(
                "dita",
                &dataset.name,
                serde_json::json!({"tau": tau}),
                "join_ms",
                d_ms,
            );
            sink.record(
                "random",
                &dataset.name,
                serde_json::json!({"tau": tau}),
                "join_ms",
                r_ms,
            );
            tbl.row(&[
                &tau,
                &format!("{d_ms:.1}"),
                &format!("{r_ms:.1}"),
                &format!("{:.0}", d_stats.shipped_bytes as f64 / 1024.0),
                &format!("{:.0}", r_stats.shipped_bytes as f64 / 1024.0),
            ]);
        }
        tbl.print();
    }
}
