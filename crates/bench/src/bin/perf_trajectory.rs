//! Performance trajectory: aggregate every per-PR bench artifact into one
//! cross-PR time series.
//!
//! Each benchmark PR leaves a `results/BENCH_PR<n>.json` smoke artifact
//! behind. This binary scans the results directory for them, extracts the
//! headline numbers from each ([`TrajectoryReport::point_from`]: verified
//! pairs/s, serial search p50, best kernel speedup, host cores), and writes
//! the ordered series to `results/TRAJECTORY.json` under the
//! `dita-bench-trajectory/v1` schema so a regression between PRs is one
//! `diff` away.
//!
//! Usage: `perf_trajectory [results_dir] [--out path] [--require name]...`
//! (defaults: `results`, `results/TRAJECTORY.json`). Artifacts that fail
//! to parse — e.g. a PR predating the current `dita-bench-smoke` schema —
//! are skipped with a warning on stderr rather than sinking the whole
//! series, **unless** named by a `--require` flag: a required artifact
//! that is missing or unparsable fails the run loudly (named error,
//! non-zero exit) instead of silently producing a shorter series.

use dita_obs::bench_report::{BenchSmokeReport, TrajectoryReport, TRAJECTORY_SCHEMA};
use std::path::{Path, PathBuf};

fn main() {
    let mut dir = String::from("results");
    let mut out = String::from("results/TRAJECTORY.json");
    let mut required: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--out" {
            out = args.next().expect("--out needs a path");
        } else if a == "--require" {
            required.push(args.next().expect("--require needs an artifact name"));
        } else {
            dir = a;
        }
    }

    // `BENCH_PR<n>.json`, ordered by PR number — the series axis.
    let mut artifacts: Vec<(u64, String, PathBuf)> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read results dir `{dir}`: {e}"))
        .flatten()
        .filter_map(|entry| {
            let name = entry.file_name().to_string_lossy().into_owned();
            let pr = name
                .strip_prefix("BENCH_PR")?
                .strip_suffix(".json")?
                .parse::<u64>()
                .ok()?;
            Some((pr, name, entry.path()))
        })
        .collect();
    artifacts.sort();
    assert!(
        !artifacts.is_empty(),
        "no BENCH_PR*.json artifacts under `{dir}` — run bench_smoke first"
    );

    let mut points = Vec::new();
    println!("== performance trajectory ==");
    for (_, name, path) in &artifacts {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        match BenchSmokeReport::from_json(&text) {
            Ok(report) => {
                let p = TrajectoryReport::point_from(name, &report);
                println!(
                    "{:>16}  {:>12.0} pairs/s  p50 {:>8.3} ms  best kernel {:>6.2}x  {} cores",
                    p.artifact,
                    p.verified_pairs_per_sec,
                    p.search_p50_ms_serial,
                    p.best_kernel_speedup,
                    p.host_cores
                );
                points.push(p);
            }
            Err(e) => eprintln!("warning: skipping {name} (schema drift?): {e}"),
        }
    }
    assert!(
        !points.is_empty(),
        "every artifact under `{dir}` failed to parse"
    );

    // Required artifacts must have made it into the series — a missing or
    // schema-drifted BENCH_PR<n>.json is a broken benchmark gate, not a
    // silently shorter trajectory.
    let missing: Vec<&String> = required
        .iter()
        .filter(|name| !points.iter().any(|p| &p.artifact == *name))
        .collect();
    if !missing.is_empty() {
        for name in &missing {
            eprintln!(
                "error: required artifact `{name}` is missing from `{dir}` or failed to parse"
            );
        }
        std::process::exit(1);
    }

    let report = TrajectoryReport {
        schema: TRAJECTORY_SCHEMA.to_string(),
        points,
    };
    report
        .write_json(Path::new(&out))
        .unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("wrote {out} ({} points)", report.points.len());
}
