//! Figure 16: load balancing — the un-balanced ratio (busiest / laziest
//! worker) and total join time, with and without DITA's balancing
//! mechanisms.

use dita_bench::runners::measure_dita_join;
use dita_bench::{cluster, dita_config, params, scale, Sink, Table};
use dita_core::{BalanceStrategy, DitaSystem, JoinOptions};
use dita_datagen::{city_dataset, CityConfig};
use dita_distance::DistanceFunction;

/// Rush-hour city: a small pool of very popular routes (airport runs,
/// commuter corridors) concentrates the join workload into a few clone
/// cliques, whose partitions become the stragglers §6.3 exists for.
fn rush_hour(name: &str, center: (f64, f64), seed: u64) -> dita_trajectory::Dataset {
    city_dataset(&CityConfig {
        name: format!("{name}-rush"),
        cardinality: ((30_000.0 * scale()).round() as usize).max(16),
        center,
        extent_deg: 0.30,
        grid_step_deg: 0.0015,
        avg_len: 25.0,
        min_len: 8,
        max_len: 120,
        gps_noise_deg: 0.00008,
        route_popularity: 0.10,
        popular_routes: 32,
        hotspot_fraction: 0.4,
        seed,
    })
}

fn main() {
    let mut sink = Sink::new("fig16");
    for dataset in [
        rush_hour("beijing", (39.9, 116.4), 0xF16A),
        rush_hour("chengdu", (30.66, 104.06), 0xF16B),
    ] {
        println!("dataset: {}", dataset.stats());
        let ng = 6;
        let dita = DitaSystem::build(&dataset, dita_config(ng), cluster(params::DEFAULT_WORKERS));

        let mut tbl = Table::new(
            format!("fig16 load balancing on {}", dataset.name),
            &[
                "tau",
                "ratio_naive",
                "ratio_dita",
                "total_naive_ms",
                "total_dita_ms",
                "replicas",
            ],
        );
        for tau in params::TAUS {
            let naive_opts = JoinOptions {
                balance: BalanceStrategy::None,
                ..JoinOptions::default()
            };
            let dita_opts = JoinOptions {
                // Percentile adapted to the harness partition count; the
                // paper's 0.98 assumes thousands of partitions.
                division_percentile: 0.75,
                ..JoinOptions::default()
            };
            let (_, n_ms, n_stats) =
                measure_dita_join(&dita, &dita, tau, &DistanceFunction::Dtw, &naive_opts);
            let (_, d_ms, d_stats) =
                measure_dita_join(&dita, &dita, tau, &DistanceFunction::Dtw, &dita_opts);
            let n_ratio = n_stats.job.load_ratio();
            let d_ratio = d_stats.job.load_ratio();
            sink.record(
                "naive",
                &dataset.name,
                serde_json::json!({"tau": tau}),
                "load_ratio",
                n_ratio,
            );
            sink.record(
                "dita",
                &dataset.name,
                serde_json::json!({"tau": tau}),
                "load_ratio",
                d_ratio,
            );
            sink.record(
                "naive",
                &dataset.name,
                serde_json::json!({"tau": tau}),
                "join_ms",
                n_ms,
            );
            sink.record(
                "dita",
                &dataset.name,
                serde_json::json!({"tau": tau}),
                "join_ms",
                d_ms,
            );
            tbl.row(&[
                &tau,
                &format!("{n_ratio:.2}"),
                &format!("{d_ratio:.2}"),
                &format!("{n_ms:.1}"),
                &format!("{d_ms:.1}"),
                &d_stats.replicas,
            ]);
        }
        tbl.print();
    }
}
