//! Figure 14: trie fanout N_L sweep — join time on Beijing and Chengdu.

use dita_bench::runners::measure_dita_join;
use dita_bench::{cluster, default_ng, params, Sink, Table};
use dita_core::{DitaConfig, DitaSystem, JoinOptions};
use dita_distance::DistanceFunction;
use dita_index::TrieConfig;

fn main() {
    let mut sink = Sink::new("fig14");
    let nls = [4usize, 8, 16];
    for dataset in [dita_bench::beijing(), dita_bench::chengdu()] {
        println!("dataset: {}", dataset.stats());
        let ng = default_ng(&dataset.name);
        let builds: Vec<DitaSystem> = nls
            .iter()
            .map(|&nl| {
                let config = DitaConfig {
                    ng,
                    trie: TrieConfig {
                        nl,
                        ..dita_bench::dita_config(ng).trie
                    },
                };
                DitaSystem::build(&dataset, config, cluster(params::DEFAULT_WORKERS))
            })
            .collect();
        let mut tbl = Table::new(
            format!("fig14 N_L sweep on {} — join time (ms)", dataset.name),
            &["tau", "NL=4", "NL=8", "NL=16"],
        );
        for tau in params::TAUS {
            let cells: Vec<String> = builds
                .iter()
                .zip(nls)
                .map(|(sys, _nl)| {
                    let (_, ms, _) = measure_dita_join(
                        sys,
                        sys,
                        tau,
                        &DistanceFunction::Dtw,
                        &JoinOptions::default(),
                    );
                    sink.record(
                        "dita",
                        &dataset.name,
                        serde_json::json!({"tau": tau, "nl": _nl}),
                        "join_ms",
                        ms,
                    );
                    format!("{ms:.1}")
                })
                .collect();
            tbl.row(&[&tau, &cells[0], &cells[1], &cells[2]]);
        }
        tbl.print();
    }
}
