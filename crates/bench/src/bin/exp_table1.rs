//! Table 1: the point-to-point distance matrix and DTW matrix for the
//! worked example T1/T3 of Figure 1.

use dita_bench::Table;
use dita_distance::dtw;
use dita_trajectory::trajectory::figure1_trajectories;

fn main() {
    let ts = figure1_trajectories();
    let (t1, t3) = (ts[0].points(), ts[2].points());

    let mut dist = Table::new(
        "Table 1(1): point-to-point distance matrix for T1 and T3",
        &["", "t3_1", "t3_2", "t3_3", "t3_4", "t3_5", "t3_6"],
    );
    for (i, p) in t1.iter().enumerate() {
        let cells: Vec<String> = t3.iter().map(|q| format!("{:.2}", p.dist(q))).collect();
        dist.row(&[
            &format!("t1_{}", i + 1),
            &cells[0],
            &cells[1],
            &cells[2],
            &cells[3],
            &cells[4],
            &cells[5],
        ]);
    }
    dist.print();

    // DTW matrix v(i, j) = DTW(T1^i, T3^j).
    let mut v = Table::new(
        "Table 1(2): DTW matrix for T1 and T3",
        &["", "t3_1", "t3_2", "t3_3", "t3_4", "t3_5", "t3_6"],
    );
    for i in 1..=t1.len() {
        let cells: Vec<String> = (1..=t3.len())
            .map(|j| format!("{:.2}", dtw(&t1[..i], &t3[..j])))
            .collect();
        v.row(&[
            &format!("t1_{i}"),
            &cells[0],
            &cells[1],
            &cells[2],
            &cells[3],
            &cells[4],
            &cells[5],
        ]);
    }
    v.print();
    println!("\npaper: DTW(T1, T3) = 5.41; measured = {:.2}", dtw(t1, t3));
}
