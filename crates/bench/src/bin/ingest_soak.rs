//! Randomized-but-deterministic ingestion soak: a seeded stream of
//! insert/overwrite/delete operations runs against a live [`DitaSystem`],
//! with flushes and compactions sprinkled in, and the overlaid index is
//! periodically checked for equivalence against (a) a plain `BTreeMap`
//! reference model and (b) a from-scratch rebuild of the same logical
//! dataset. Any divergence prints the failing query and exits non-zero.
//!
//! Usage: `ingest_soak [--ops N] [--seed S] [--check-every K]`
//! Defaults: 400 ops, seed 42, check every 100 ops. Runtime is bounded by
//! the op count; the same seed always produces the same op stream.

use dita_cluster::{Cluster, ClusterConfig};
use dita_core::{knn_search, search, CompactionPolicy, DitaConfig, DitaSystem};
use dita_distance::DistanceFunction;
use dita_index::{PivotStrategy, TrieConfig};
use dita_trajectory::{Dataset, Point, Trajectory};
use std::collections::BTreeMap;

struct XorShift(u64);

impl XorShift {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn walk(rng: &mut XorShift, len: usize, x0: f64, y0: f64) -> Vec<Point> {
    let mut pts = Vec::with_capacity(len);
    let (mut x, mut y) = (x0, y0);
    for _ in 0..len {
        x += (rng.next_f64() - 0.5) * 0.2;
        y += (rng.next_f64() - 0.5) * 0.2;
        pts.push(Point::new(x, y));
    }
    pts
}

fn random_trajectory(rng: &mut XorShift, id: u64) -> Trajectory {
    let len = 4 + (rng.next_u64() % 13) as usize;
    let (x0, y0) = (rng.next_f64() * 10.0, rng.next_f64() * 10.0);
    Trajectory::new(id, walk(rng, len, x0, y0))
}

fn config() -> DitaConfig {
    DitaConfig {
        ng: 4,
        trie: TrieConfig {
            k: 2,
            nl: 3,
            leaf_capacity: 4,
            strategy: PivotStrategy::NeighborDistance,
            cell_side: 1.0,
            ..TrieConfig::default()
        },
    }
}

fn rebuild(model: &BTreeMap<u64, Trajectory>) -> DitaSystem {
    DitaSystem::build(
        &Dataset::new_unchecked("soak-rebuild", model.values().cloned().collect()),
        config(),
        Cluster::new(ClusterConfig::with_workers(3)),
    )
}

/// Compares live system vs rebuild on searches and kNN; returns the number
/// of mismatches (also printed).
fn check(
    live: &DitaSystem,
    model: &BTreeMap<u64, Trajectory>,
    rng: &mut XorShift,
    op: usize,
) -> usize {
    let mut mismatches = 0;

    // Structural: the live view must list exactly the model's rows.
    let live_ids: Vec<u64> = {
        let mut ids = Vec::new();
        live.for_each_live(|t| ids.push(t.id));
        ids.sort_unstable();
        ids
    };
    let model_ids: Vec<u64> = model.keys().copied().collect();
    if live_ids != model_ids {
        eprintln!(
            "MISMATCH at op {op}: live ids ({} rows) != model ids ({} rows)",
            live_ids.len(),
            model_ids.len()
        );
        mismatches += 1;
    }

    let fresh = rebuild(model);
    let funcs = [
        DistanceFunction::Dtw,
        DistanceFunction::Frechet,
        DistanceFunction::Edr { eps: 0.5 },
    ];
    for qi in 0..4 {
        let q = random_trajectory(rng, 999_000 + qi);
        for func in &funcs {
            for tau in [0.5, 2.0, 8.0] {
                let (mut a, _) = search(live, q.points(), tau, func);
                let (mut b, _) = search(&fresh, q.points(), tau, func);
                a.sort_by_key(|x| x.0);
                b.sort_by_key(|x| x.0);
                if a != b {
                    eprintln!(
                        "MISMATCH at op {op}: search({func}, tau={tau}, q={}) live {:?} != rebuild {:?}",
                        q.id, a, b
                    );
                    mismatches += 1;
                }
            }
        }
        if !model.is_empty() {
            let (a, _) = knn_search(live, q.points(), 3, &DistanceFunction::Dtw);
            let (b, _) = knn_search(&fresh, q.points(), 3, &DistanceFunction::Dtw);
            if a != b {
                eprintln!(
                    "MISMATCH at op {op}: knn(q={}) live {:?} != rebuild {:?}",
                    q.id, a, b
                );
                mismatches += 1;
            }
        }
    }
    mismatches
}

fn main() {
    let mut ops = 400usize;
    let mut seed = 42u64;
    let mut check_every = 100usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut grab = || args.next().expect("flag needs a value");
        match a.as_str() {
            "--ops" => ops = grab().parse().expect("--ops"),
            "--seed" => seed = grab().parse().expect("--seed"),
            "--check-every" => check_every = grab().parse().expect("--check-every"),
            other => panic!(
                "unknown flag {other}; usage: ingest_soak [--ops N] [--seed S] [--check-every K]"
            ),
        }
    }
    let check_every = check_every.max(1);

    let mut rng = XorShift(seed | 1);
    let mut model: BTreeMap<u64, Trajectory> = (1..=300u64)
        .map(|id| (id, random_trajectory(&mut rng, id)))
        .collect();
    let mut sys = DitaSystem::build(
        &Dataset::new_unchecked("soak", model.values().cloned().collect()),
        config(),
        Cluster::new(ClusterConfig::with_workers(3)),
    );
    // Manual compaction: the soak decides when to flush/compact so the op
    // stream exercises long-lived tails, segments and tombstones.
    sys.set_compaction_policy(CompactionPolicy {
        auto: false,
        ..CompactionPolicy::default()
    });
    let mut next_id = 10_000u64;
    let mut total_mismatches = 0usize;

    println!("ingest_soak: {ops} ops, seed {seed}, check every {check_every}");
    for op in 1..=ops {
        let roll = rng.next_u64() % 100;
        if roll < 60 || model.is_empty() {
            // Insert a brand-new trajectory.
            let t = random_trajectory(&mut rng, next_id);
            next_id += 1;
            model.insert(t.id, t.clone());
            sys.insert(t);
        } else if roll < 80 {
            // Overwrite a random existing id with new geometry.
            let keys: Vec<u64> = model.keys().copied().collect();
            let id = keys[(rng.next_u64() as usize) % keys.len()];
            let t = random_trajectory(&mut rng, id);
            model.insert(id, t.clone());
            sys.insert(t);
        } else {
            // Delete a random existing id.
            let keys: Vec<u64> = model.keys().copied().collect();
            let id = keys[(rng.next_u64() as usize) % keys.len()];
            model.remove(&id);
            assert!(sys.delete(id), "delete of live id {id} must report true");
        }
        // Sprinkle maintenance: ~10% flush, ~4% compact.
        let m = rng.next_u64() % 100;
        if m < 10 {
            sys.flush();
        } else if m < 14 {
            sys.compact();
        }
        if op % check_every == 0 {
            let miss = check(&sys, &model, &mut rng, op);
            total_mismatches += miss;
            println!(
                "  op {op:>6}: {} rows, delta ratio {:.3}, {} mismatches",
                model.len(),
                sys.delta_ratio(),
                miss
            );
        }
    }

    // Final fold: compact everything and re-check from a clean base.
    sys.compact();
    if sys.has_deltas() {
        eprintln!("MISMATCH: deltas survive a full compact");
        total_mismatches += 1;
    }
    total_mismatches += check(&sys, &model, &mut rng, ops + 1);
    let stats = sys.ingest_stats();
    println!(
        "done: {} rows, {} inserts, {} deletes, {} flushes, {} compactions, {} repartitions",
        model.len(),
        stats.inserts,
        stats.deletes,
        stats.flushes,
        stats.compactions,
        stats.repartitions
    );
    if total_mismatches > 0 {
        eprintln!("FAILED: {total_mismatches} mismatches");
        std::process::exit(1);
    }
    println!("OK: live index equivalent to rebuild at every checkpoint");
}
