//! Shared system construction and measurement wrappers for the experiment
//! binaries.

use crate::{cluster, dita_config, makespan_ms};
use dita_baselines::{DftSystem, NaiveSystem, SimbaSystem};
use dita_cluster::Cluster;
use dita_core::{join, search, DitaSystem, JoinOptions};
use dita_distance::DistanceFunction;
use dita_trajectory::{Dataset, Point, Trajectory};
use std::time::Instant;

/// The four distributed systems of Figures 7–8, built over the same data
/// and the same cluster.
pub struct SearchSystems {
    /// DITA.
    pub dita: DitaSystem,
    /// The no-index baseline.
    pub naive: NaiveSystem,
    /// The Simba-style baseline.
    pub simba: SimbaSystem,
    /// The DFT-style baseline.
    pub dft: DftSystem,
}

/// Builds all four systems with comparable partition counts.
pub fn build_search_systems(dataset: &Dataset, workers: usize, ng: usize) -> SearchSystems {
    let c: Cluster = cluster(workers);
    let dita = DitaSystem::build(dataset, dita_config(ng), c.clone());
    let parts = dita.num_partitions().max(1);
    SearchSystems {
        naive: NaiveSystem::build(dataset.trajectories(), c.clone()),
        simba: SimbaSystem::build(dataset.trajectories(), parts, c.clone()),
        dft: DftSystem::build(dataset.trajectories(), parts, c),
        dita,
    }
}

/// Mean per-query search latency (simulated ms) and mean candidate count of
/// one system over a query workload.
pub fn measure_search(
    systems: &SearchSystems,
    which: &str,
    queries: &[Trajectory],
    tau: f64,
    func: &DistanceFunction,
) -> (f64, f64) {
    let mut total_ms = 0.0;
    let mut total_cands = 0usize;
    for q in queries {
        // Latency convention: driver-side wall time (planning, merging)
        // plus the simulated worker makespan(s).
        let t0 = Instant::now();
        match which {
            "dita" => {
                let (_, s) = search(&systems.dita, q.points(), tau, func);
                let driver = (t0.elapsed() - s.job.elapsed).as_secs_f64().max(0.0);
                total_ms += driver * 1e3 + makespan_ms(&s.job);
                total_cands += s.candidates;
            }
            "naive" => {
                let (_, job) = systems.naive.search(q.points(), tau, func);
                let driver = (t0.elapsed() - job.elapsed).as_secs_f64().max(0.0);
                total_ms += driver * 1e3 + makespan_ms(&job);
                total_cands += systems.naive.len();
            }
            "simba" => {
                let (_, c, job) = systems.simba.search(q.points(), tau, func);
                let driver = (t0.elapsed() - job.elapsed).as_secs_f64().max(0.0);
                total_ms += driver * 1e3 + makespan_ms(&job);
                total_cands += c;
            }
            "dft" => {
                let (_, c, filter, verify) = systems.dft.search(q.points(), tau, func);
                // The driver barrier makes the two phases sequential, and
                // the bitmap merge is driver work between them.
                let driver = (t0.elapsed() - filter.elapsed - verify.elapsed)
                    .as_secs_f64()
                    .max(0.0);
                total_ms += driver * 1e3 + makespan_ms(&filter) + makespan_ms(&verify);
                total_cands += c;
            }
            other => panic!("unknown system {other}"),
        }
    }
    let n = queries.len().max(1) as f64;
    (total_ms / n, total_cands as f64 / n)
}

/// DITA join latency in simulated ms: driver-side planning wall time plus
/// the execution makespan.
pub fn measure_dita_join(
    left: &DitaSystem,
    right: &DitaSystem,
    tau: f64,
    func: &DistanceFunction,
    opts: &JoinOptions,
) -> (usize, f64, dita_core::JoinStats) {
    let t0 = Instant::now();
    let (pairs, stats) = join(left, right, tau, func, opts);
    let wall = t0.elapsed().as_secs_f64();
    let driver = (wall - stats.job.elapsed.as_secs_f64()).max(0.0);
    let ms = (driver + stats.job.makespan_sec()) * 1e3;
    (pairs.len(), ms, stats)
}

/// Simba join latency in simulated ms (same convention).
pub fn measure_simba_join(
    left: &SimbaSystem,
    right: &SimbaSystem,
    tau: f64,
    func: &DistanceFunction,
) -> (usize, f64) {
    let t0 = Instant::now();
    let (pairs, _cands, job) = left.join(right, tau, func);
    let wall = t0.elapsed().as_secs_f64();
    let driver = (wall - job.elapsed.as_secs_f64()).max(0.0);
    ((pairs.len()), (driver + job.makespan_sec()) * 1e3)
}

/// Extracts the raw point sequences of a query set.
pub fn query_points(queries: &[Trajectory]) -> Vec<Vec<Point>> {
    queries.iter().map(|q| q.points().to_vec()).collect()
}

/// Regenerates one full search figure (the Figures 7/8 layout): four panels
/// — τ sweep, sample-rate sweep, worker (scale-up) sweep and the combined
/// scale-out sweep — for Naive, Simba, DFT and DITA.
pub fn run_search_figure(figure: &str, dataset: &Dataset, default_tau: f64) {
    use crate::{num_queries, params, Sink, Table};
    let ng = crate::default_ng(&dataset.name);
    let systems_names = ["naive", "simba", "dft", "dita"];
    let mut sink = Sink::new(figure);
    let queries = dita_datagen::sample_queries(dataset, num_queries(), 0xA11CE);

    // (a) Varying τ.
    let mut tbl = Table::new(
        format!(
            "{figure}(a): search on {} — varying tau (ms/query)",
            dataset.name
        ),
        &["tau", "Naive", "Simba", "DFT", "DITA"],
    );
    let systems = build_search_systems(dataset, params::DEFAULT_WORKERS, ng);
    for tau in params::TAUS {
        let mut cells: Vec<f64> = Vec::new();
        for name in systems_names {
            let (ms, _) = measure_search(&systems, name, &queries, tau, &DistanceFunction::Dtw);
            sink.record(
                name,
                &dataset.name,
                serde_json::json!({"tau": tau, "panel": "a"}),
                "search_ms",
                ms,
            );
            cells.push(ms);
        }
        tbl.row(&[
            &format!("{tau}"),
            &format!("{:.3}", cells[0]),
            &format!("{:.3}", cells[1]),
            &format!("{:.3}", cells[2]),
            &format!("{:.3}", cells[3]),
        ]);
    }
    tbl.print();

    // (b) Scalability: sample-rate sweep at the default τ.
    let mut tbl = Table::new(
        format!(
            "{figure}(b): search on {} — varying sample rate (ms/query)",
            dataset.name
        ),
        &["rate", "Naive", "Simba", "DFT", "DITA"],
    );
    for rate in params::SAMPLE_RATES {
        let sampled = dataset.sample(rate);
        let systems = build_search_systems(&sampled, params::DEFAULT_WORKERS, ng);
        let qs = dita_datagen::sample_queries(&sampled, num_queries(), 0xA11CE);
        let mut cells = Vec::new();
        for name in systems_names {
            let (ms, _) = measure_search(&systems, name, &qs, default_tau, &DistanceFunction::Dtw);
            sink.record(
                name,
                &dataset.name,
                serde_json::json!({"rate": rate, "panel": "b"}),
                "search_ms",
                ms,
            );
            cells.push(ms);
        }
        tbl.row(&[
            &format!("{rate}"),
            &format!("{:.3}", cells[0]),
            &format!("{:.3}", cells[1]),
            &format!("{:.3}", cells[2]),
            &format!("{:.3}", cells[3]),
        ]);
    }
    tbl.print();

    // (c) Scale-up: worker sweep.
    let mut tbl = Table::new(
        format!(
            "{figure}(c): search on {} — varying workers (ms/query)",
            dataset.name
        ),
        &["workers", "Naive", "Simba", "DFT", "DITA"],
    );
    for workers in params::WORKERS {
        let systems = build_search_systems(dataset, workers, ng);
        let mut cells = Vec::new();
        for name in systems_names {
            let (ms, _) = measure_search(
                &systems,
                name,
                &queries,
                default_tau,
                &DistanceFunction::Dtw,
            );
            sink.record(
                name,
                &dataset.name,
                serde_json::json!({"workers": workers, "panel": "c"}),
                "search_ms",
                ms,
            );
            cells.push(ms);
        }
        tbl.row(&[
            &format!("{workers}"),
            &format!("{:.3}", cells[0]),
            &format!("{:.3}", cells[1]),
            &format!("{:.3}", cells[2]),
            &format!("{:.3}", cells[3]),
        ]);
    }
    tbl.print();

    // (d) Scale-out: rate and workers grow together.
    let mut tbl = Table::new(
        format!(
            "{figure}(d): search on {} — scale-out (ms/query)",
            dataset.name
        ),
        &["scale", "Naive", "Simba", "DFT", "DITA"],
    );
    for (rate, workers) in params::SAMPLE_RATES.iter().zip(params::WORKERS) {
        let sampled = dataset.sample(*rate);
        let systems = build_search_systems(&sampled, workers, ng);
        let qs = dita_datagen::sample_queries(&sampled, num_queries(), 0xA11CE);
        let mut cells = Vec::new();
        for name in systems_names {
            let (ms, _) = measure_search(&systems, name, &qs, default_tau, &DistanceFunction::Dtw);
            sink.record(
                name,
                &dataset.name,
                serde_json::json!({"rate": rate, "workers": workers, "panel": "d"}),
                "search_ms",
                ms,
            );
            cells.push(ms);
        }
        tbl.row(&[
            &format!("{rate},{workers}w"),
            &format!("{:.3}", cells[0]),
            &format!("{:.3}", cells[1]),
            &format!("{:.3}", cells[2]),
            &format!("{:.3}", cells[3]),
        ]);
    }
    tbl.print();
}

/// Regenerates one full join figure (the Figures 9/10 layout): τ sweep,
/// sample-rate sweep, worker sweep and scale-out, Simba vs DITA.
pub fn run_join_figure(figure: &str, dataset: &Dataset, default_tau: f64) {
    use crate::{cluster, dita_config, params, Sink, Table};
    let ng = crate::default_ng(&dataset.name);
    let mut sink = Sink::new(figure);

    let build = |data: &Dataset, workers: usize| {
        let c = cluster(workers);
        let dita = DitaSystem::build(data, dita_config(ng), c.clone());
        let parts = dita.num_partitions().max(1);
        let simba = SimbaSystem::build(data.trajectories(), parts, c);
        (dita, simba)
    };

    // (a) Varying τ.
    let mut tbl = Table::new(
        format!("{figure}(a): join on {} — varying tau (ms)", dataset.name),
        &["tau", "Simba", "DITA", "pairs"],
    );
    let (dita, simba) = build(dataset, params::DEFAULT_WORKERS);
    for tau in params::TAUS {
        let (pairs, dita_ms, _) = measure_dita_join(
            &dita,
            &dita,
            tau,
            &DistanceFunction::Dtw,
            &JoinOptions::default(),
        );
        let (_, simba_ms) = measure_simba_join(&simba, &simba, tau, &DistanceFunction::Dtw);
        sink.record(
            "dita",
            &dataset.name,
            serde_json::json!({"tau": tau, "panel": "a"}),
            "join_ms",
            dita_ms,
        );
        sink.record(
            "simba",
            &dataset.name,
            serde_json::json!({"tau": tau, "panel": "a"}),
            "join_ms",
            simba_ms,
        );
        tbl.row(&[
            &format!("{tau}"),
            &format!("{simba_ms:.1}"),
            &format!("{dita_ms:.1}"),
            &pairs,
        ]);
    }
    tbl.print();

    // (b) Sample-rate sweep.
    let mut tbl = Table::new(
        format!(
            "{figure}(b): join on {} — varying sample rate (ms)",
            dataset.name
        ),
        &["rate", "Simba", "DITA"],
    );
    for rate in params::SAMPLE_RATES {
        let sampled = dataset.sample(rate);
        let (dita, simba) = build(&sampled, params::DEFAULT_WORKERS);
        let (_, dita_ms, _) = measure_dita_join(
            &dita,
            &dita,
            default_tau,
            &DistanceFunction::Dtw,
            &JoinOptions::default(),
        );
        let (_, simba_ms) = measure_simba_join(&simba, &simba, default_tau, &DistanceFunction::Dtw);
        sink.record(
            "dita",
            &dataset.name,
            serde_json::json!({"rate": rate, "panel": "b"}),
            "join_ms",
            dita_ms,
        );
        sink.record(
            "simba",
            &dataset.name,
            serde_json::json!({"rate": rate, "panel": "b"}),
            "join_ms",
            simba_ms,
        );
        tbl.row(&[
            &format!("{rate}"),
            &format!("{simba_ms:.1}"),
            &format!("{dita_ms:.1}"),
        ]);
    }
    tbl.print();

    // (c) Scale-up.
    let mut tbl = Table::new(
        format!(
            "{figure}(c): join on {} — varying workers (ms)",
            dataset.name
        ),
        &["workers", "Simba", "DITA"],
    );
    for workers in params::WORKERS {
        let (dita, simba) = build(dataset, workers);
        let (_, dita_ms, _) = measure_dita_join(
            &dita,
            &dita,
            default_tau,
            &DistanceFunction::Dtw,
            &JoinOptions::default(),
        );
        let (_, simba_ms) = measure_simba_join(&simba, &simba, default_tau, &DistanceFunction::Dtw);
        sink.record(
            "dita",
            &dataset.name,
            serde_json::json!({"workers": workers, "panel": "c"}),
            "join_ms",
            dita_ms,
        );
        sink.record(
            "simba",
            &dataset.name,
            serde_json::json!({"workers": workers, "panel": "c"}),
            "join_ms",
            simba_ms,
        );
        tbl.row(&[
            &workers,
            &format!("{simba_ms:.1}"),
            &format!("{dita_ms:.1}"),
        ]);
    }
    tbl.print();

    // (d) Scale-out.
    let mut tbl = Table::new(
        format!("{figure}(d): join on {} — scale-out (ms)", dataset.name),
        &["scale", "Simba", "DITA"],
    );
    for (rate, workers) in params::SAMPLE_RATES.iter().zip(params::WORKERS) {
        let sampled = dataset.sample(*rate);
        let (dita, simba) = build(&sampled, workers);
        let (_, dita_ms, _) = measure_dita_join(
            &dita,
            &dita,
            default_tau,
            &DistanceFunction::Dtw,
            &JoinOptions::default(),
        );
        let (_, simba_ms) = measure_simba_join(&simba, &simba, default_tau, &DistanceFunction::Dtw);
        sink.record(
            "dita",
            &dataset.name,
            serde_json::json!({"rate": rate, "workers": workers, "panel": "d"}),
            "join_ms",
            dita_ms,
        );
        sink.record(
            "simba",
            &dataset.name,
            serde_json::json!({"rate": rate, "workers": workers, "panel": "d"}),
            "join_ms",
            simba_ms,
        );
        tbl.row(&[
            &format!("{rate},{workers}w"),
            &format!("{simba_ms:.1}"),
            &format!("{dita_ms:.1}"),
        ]);
    }
    tbl.print();
}
