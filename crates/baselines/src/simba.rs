//! The Simba-style baseline.
//!
//! Simba is a spatial (point) analytics system; the paper extends it to
//! trajectories by "indexing the first points of trajectories using Simba,
//! finding trajectories whose first point was within a distance of τ from
//! the query trajectory's first point as the candidates, and verifying the
//! candidates" (§7.1). The structural differences to DITA the paper calls
//! out: single-level filtering (first point only, so far more candidates),
//! partitioning by first point only (worse balance), and partition-to-
//! partition shipping for joins (more bytes).

use dita_cluster::{Cluster, JobStats, TaskSpec};
use dita_distance::DistanceFunction;
use dita_index::partitioner::str_tiles_pub;
use dita_rtree::RTree;
use dita_trajectory::{Mbr, Point, Trajectory, TrajectoryId};

/// A trajectory table indexed Simba-style: R-trees over first points.
pub struct SimbaSystem {
    cluster: Cluster,
    /// Partition contents.
    partitions: Vec<Vec<Trajectory>>,
    /// Driver-side R-tree over partition first-point MBRs.
    global: RTree<usize>,
    /// Per-partition R-tree over trajectory first points.
    locals: Vec<RTree<u32>>,
}

impl SimbaSystem {
    /// Partitions by first point into `num_partitions` STR tiles and builds
    /// the first-point R-trees.
    pub fn build(trajectories: &[Trajectory], num_partitions: usize, cluster: Cluster) -> Self {
        let firsts: Vec<Point> = trajectories.iter().map(|t| *t.first()).collect();
        let idx: Vec<usize> = (0..trajectories.len()).collect();
        let tiles = str_tiles_pub(&firsts, idx, num_partitions.max(1));

        let mut partitions = Vec::new();
        let mut global_entries = Vec::new();
        let mut locals = Vec::new();
        for tile in tiles {
            if tile.is_empty() {
                continue;
            }
            let members: Vec<Trajectory> = tile.iter().map(|&i| trajectories[i].clone()).collect();
            let mbr = Mbr::from_points(members.iter().map(|t| t.first()));
            global_entries.push((mbr, partitions.len()));
            locals.push(RTree::bulk_load(
                members
                    .iter()
                    .enumerate()
                    .map(|(li, t)| (Mbr::from_point(*t.first()), li as u32))
                    .collect(),
            ));
            partitions.push(members);
        }
        SimbaSystem {
            cluster,
            partitions,
            global: RTree::bulk_load(global_entries),
            locals,
        }
    }

    /// Number of stored trajectories.
    pub fn len(&self) -> usize {
        self.partitions.iter().map(Vec::len).sum()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Index size in bytes (global + locals).
    pub fn index_size_bytes(&self) -> usize {
        self.global.size_bytes() + self.locals.iter().map(RTree::size_bytes).sum::<usize>()
    }

    /// Threshold search. Returns sorted `(id, dist)` hits, the candidate
    /// count, and job statistics.
    ///
    /// Soundness relies on the endpoint alignment of DTW/Fréchet/ERP:
    /// `dist(t1, q1) ≤ f(T, Q)`, so any answer's first point lies within τ
    /// of `q1`. (The paper's Simba extension has the same restriction; the
    /// edit-family functions fall back to scanning partitions whose MBR
    /// check cannot exclude them.)
    pub fn search(
        &self,
        q: &[Point],
        tau: f64,
        func: &DistanceFunction,
    ) -> (Vec<(TrajectoryId, f64)>, usize, JobStats) {
        assert!(!q.is_empty());
        let aligned = func.aligns_endpoints();
        // Edit-family: a non-matching first point costs 1 edit, so the
        // radius in which answers' first points live is bounded by the
        // budget times the maximum point spacing — no useful bound; scan all
        // partitions (candidates = everything the local R-tree returns with
        // an infinite radius).
        let radius = if aligned { tau } else { f64::INFINITY };

        let mut relevant: Vec<usize> = Vec::new();
        if radius.is_finite() {
            self.global
                .for_each_within_point(&q[0], radius, |_, &pid| relevant.push(pid));
        } else {
            relevant.extend(0..self.partitions.len());
        }
        relevant.sort_unstable();

        let q_bytes = std::mem::size_of_val(q) as u64;
        let tasks: Vec<TaskSpec<usize>> = relevant
            .iter()
            .map(|&pid| TaskSpec {
                worker: self.cluster.place(pid),
                incoming_bytes: q_bytes,
                partition: Some(pid),
                payload: pid,
            })
            .collect();
        let (outputs, job) = self.cluster.execute(tasks, move |_w, pid| {
            let mut cands: Vec<u32> = Vec::new();
            if radius.is_finite() {
                self.locals[pid].for_each_within_point(&q[0], radius, |_, &li| cands.push(li));
            } else {
                cands.extend(0..self.partitions[pid].len() as u32);
            }
            let mut hits = Vec::new();
            for &li in &cands {
                let t = &self.partitions[pid][li as usize];
                if let Some(d) = func.verify(t.points(), q, tau) {
                    hits.push((t.id, d));
                }
            }
            (cands.len(), hits)
        });

        let mut candidates = 0;
        let mut results = Vec::new();
        for (c, hits) in outputs {
            candidates += c;
            results.extend(hits);
        }
        results.sort_by_key(|&(id, _)| id);
        (results, candidates, job)
    }

    /// Partition-to-partition join: each left partition is shipped in full
    /// to every right partition whose first-point MBR is within τ (the
    /// paper's point iv in §7.2.2: "Simba sent each partition to its
    /// relevant partitions while DITA sent each trajectory").
    pub fn join(
        &self,
        other: &SimbaSystem,
        tau: f64,
        func: &DistanceFunction,
    ) -> (Vec<(TrajectoryId, TrajectoryId, f64)>, usize, JobStats) {
        assert_eq!(self.cluster.num_workers(), other.cluster.num_workers());
        let aligned = func.aligns_endpoints();

        // Relevant partition pairs by first-point MBRs.
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for (ti, tp) in self.partitions.iter().enumerate() {
            let t_mbr = Mbr::from_points(tp.iter().map(|t| t.first()));
            for (qi, qp) in other.partitions.iter().enumerate() {
                let q_mbr = Mbr::from_points(qp.iter().map(|t| t.first()));
                if !aligned || t_mbr.min_dist_mbr(&q_mbr) <= tau {
                    pairs.push((ti, qi));
                }
            }
        }

        let tasks: Vec<TaskSpec<(usize, usize)>> = pairs
            .iter()
            .map(|&(ti, qi)| {
                let src_worker = self.cluster.place(ti);
                let dst_worker = other.cluster.place(qi);
                // The whole left partition is shipped.
                let bytes = if src_worker == dst_worker {
                    0
                } else {
                    self.partitions[ti]
                        .iter()
                        .map(|t| t.size_bytes() as u64)
                        .sum()
                };
                TaskSpec {
                    worker: dst_worker,
                    incoming_bytes: bytes,
                    partition: Some(ti),
                    payload: (ti, qi),
                }
            })
            .collect();

        let (outputs, job) = self.cluster.execute(tasks, move |_w, (ti, qi)| {
            let mut candidates = 0usize;
            let mut found = Vec::new();
            for t in &self.partitions[ti] {
                let mut cands: Vec<u32> = Vec::new();
                if aligned {
                    other.locals[qi].for_each_within_point(t.first(), tau, |_, &li| cands.push(li));
                } else {
                    cands.extend(0..other.partitions[qi].len() as u32);
                }
                candidates += cands.len();
                for &li in &cands {
                    let q = &other.partitions[qi][li as usize];
                    if let Some(d) = func.verify(t.points(), q.points(), tau) {
                        found.push((t.id, q.id, d));
                    }
                }
            }
            (candidates, found)
        });

        let mut candidates = 0;
        let mut results = Vec::new();
        for (c, found) in outputs {
            candidates += c;
            results.extend(found);
        }
        results.sort_by_key(|a| (a.0, a.1));
        (results, candidates, job)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dita_cluster::ClusterConfig;
    use dita_trajectory::trajectory::figure1_trajectories;

    fn system(parts: usize, workers: usize) -> SimbaSystem {
        SimbaSystem::build(
            &figure1_trajectories(),
            parts,
            Cluster::new(ClusterConfig::with_workers(workers)),
        )
    }

    #[test]
    fn search_matches_ground_truth() {
        let sys = system(2, 2);
        let ts = figure1_trajectories();
        for f in [
            DistanceFunction::Dtw,
            DistanceFunction::Frechet,
            DistanceFunction::Edr { eps: 1.0 },
        ] {
            for q in &ts {
                for tau in [1.0, 3.0, 6.0] {
                    let (res, cands, _) = sys.search(q.points(), tau, &f);
                    let expect: Vec<u64> = ts
                        .iter()
                        .filter(|t| f.distance(t.points(), q.points()) <= tau)
                        .map(|t| t.id)
                        .collect();
                    let got: Vec<u64> = res.iter().map(|&(id, _)| id).collect();
                    assert_eq!(got, expect, "{f} tau={tau} Q=T{}", q.id);
                    assert!(cands >= res.len());
                }
            }
        }
    }

    #[test]
    fn first_point_filter_is_coarser_than_dita() {
        // Simba's single-level filter keeps T3 (same first point as T1) as a
        // candidate even though the full distance is far above τ.
        let sys = system(2, 2);
        let ts = figure1_trajectories();
        let (res, cands, _) = sys.search(ts[0].points(), 3.0, &DistanceFunction::Dtw);
        assert_eq!(res.len(), 2);
        assert!(cands >= 3, "expected T3 to survive the first-point filter");
    }

    #[test]
    fn join_matches_ground_truth() {
        let a = system(2, 2);
        let b = system(2, 2);
        let ts = figure1_trajectories();
        let (res, _, job) = a.join(&b, 3.0, &DistanceFunction::Dtw);
        let mut expect = Vec::new();
        for x in &ts {
            for y in &ts {
                if dita_distance::dtw(x.points(), y.points()) <= 3.0 {
                    expect.push((x.id, y.id));
                }
            }
        }
        expect.sort_unstable();
        let got: Vec<(u64, u64)> = res.iter().map(|&(a, b, _)| (a, b)).collect();
        assert_eq!(got, expect);
        let _ = job;
    }

    #[test]
    fn index_size_reported() {
        let sys = system(2, 2);
        assert!(sys.index_size_bytes() > 0);
        assert_eq!(sys.len(), 5);
        assert!(sys.num_partitions() <= 2);
    }
}
