//! The DFT-style baseline (Xie, Li & Phillips, PVLDB 2017), extended to
//! threshold search as described in the paper's §7.1.
//!
//! Structural features reproduced faithfully — they are the mechanisms the
//! paper blames for DFT's gap to DITA (§2.3, §7.2.1):
//!
//! * the index is built over trajectory **segments**, so one trajectory's
//!   segments spread over multiple partitions (non-clustered layout, data
//!   duplication);
//! * searching runs in **two phases with a driver barrier**: every partition
//!   reports a candidate bitmap, the driver merges them, and only then is a
//!   separate verification job launched against the trajectory store;
//! * a join would need **one bitmap per query** held at the driver, which is
//!   the memory blow-up that kept DFT from completing joins (§7.2.2);
//!   [`DftSystem::join_bitmap_bytes`] quantifies it.

use dita_cluster::{Cluster, JobStats, TaskSpec};
use dita_distance::DistanceFunction;
use dita_index::partitioner::str_tiles_pub;
use dita_rtree::RTree;
use dita_trajectory::{Mbr, Point, Trajectory, TrajectoryId};
use std::collections::HashMap;

/// A trajectory table indexed DFT-style (segment R-trees + bitmap filter).
pub struct DftSystem {
    cluster: Cluster,
    /// Per-partition R-tree over segment MBRs, tagged with *dense*
    /// trajectory indexes (bitmap slots).
    segment_indexes: Vec<RTree<u32>>,
    /// The trajectory store, round-robin partitioned, *separate* from the
    /// index (the "dual indexing" second copy of the data).
    store: Vec<Vec<Trajectory>>,
    /// Trajectory id → bitmap slot.
    slots: HashMap<TrajectoryId, u32>,
    num_trajectories: usize,
}

impl DftSystem {
    /// Builds segment indexes over `num_partitions` STR tiles of segment
    /// centers plus a round-robin trajectory store.
    pub fn build(trajectories: &[Trajectory], num_partitions: usize, cluster: Cluster) -> Self {
        let slots: HashMap<TrajectoryId, u32> = trajectories
            .iter()
            .enumerate()
            .map(|(i, t)| (t.id, i as u32))
            .collect();
        // All segments: (center, mbr, bitmap slot).
        let mut centers: Vec<Point> = Vec::new();
        let mut segs: Vec<(Mbr, u32)> = Vec::new();
        for (slot, t) in trajectories.iter().enumerate() {
            let pts = t.points();
            if pts.len() == 1 {
                centers.push(pts[0]);
                segs.push((Mbr::from_point(pts[0]), slot as u32));
            }
            for w in pts.windows(2) {
                let mbr = Mbr::new(w[0], w[1]);
                centers.push(mbr.center());
                segs.push((mbr, slot as u32));
            }
        }
        let idx: Vec<usize> = (0..segs.len()).collect();
        let tiles = str_tiles_pub(&centers, idx, num_partitions.max(1));
        let segment_indexes: Vec<RTree<u32>> = tiles
            .into_iter()
            .filter(|t| !t.is_empty())
            .map(|tile| RTree::bulk_load(tile.into_iter().map(|i| segs[i]).collect()))
            .collect();

        let mut store: Vec<Vec<Trajectory>> =
            (0..cluster.num_workers()).map(|_| Vec::new()).collect();
        for (i, t) in trajectories.iter().enumerate() {
            store[cluster.place(i)].push(t.clone());
        }
        DftSystem {
            cluster,
            segment_indexes,
            store,
            slots,
            num_trajectories: trajectories.len(),
        }
    }

    /// Number of stored trajectories.
    pub fn len(&self) -> usize {
        self.num_trajectories
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.num_trajectories == 0
    }

    /// Index size (segment R-trees) — the paper's Table 5 shows this is an
    /// order of magnitude larger than DITA's local index.
    pub fn index_size_bytes(&self) -> usize {
        self.segment_indexes.iter().map(RTree::size_bytes).sum()
    }

    /// Bitmap bytes a join with `n_queries` left rows would pin at the
    /// driver: one `len()`-bit bitmap per query (the paper measured 0.2 MB
    /// per query on Beijing — ~2.2 TB for a full join).
    pub fn join_bitmap_bytes(&self, n_queries: usize) -> u64 {
        (self.num_trajectories as u64).div_ceil(8) * n_queries as u64
    }

    /// Threshold search with the two-phase filter/verify protocol.
    ///
    /// Phase 1 marks every trajectory owning a segment within `tau` of any
    /// query point (sound for DTW/Fréchet: every trajectory point must
    /// align within `tau`, and every point lies on a segment; for the other
    /// functions the filter degrades to a full scan). Phase 2 verifies
    /// against the store.
    ///
    /// Returns `(hits, candidate count, filter job, verify job)` — two jobs
    /// because of the driver-side barrier.
    pub fn search(
        &self,
        q: &[Point],
        tau: f64,
        func: &DistanceFunction,
    ) -> (Vec<(TrajectoryId, f64)>, usize, JobStats, JobStats) {
        assert!(!q.is_empty());
        let aligned = func.aligns_endpoints();
        let q_mbr = Mbr::from_points(q.iter());
        let q_bytes = std::mem::size_of_val(q) as u64;

        // --- Phase 1: distributed filter, bitmap per partition ---
        let tasks: Vec<TaskSpec<usize>> = (0..self.segment_indexes.len())
            .map(|pid| TaskSpec {
                worker: self.cluster.place(pid),
                incoming_bytes: q_bytes,
                partition: Some(pid),
                payload: pid,
            })
            .collect();
        let (bitmaps, filter_job) = self.cluster.execute(tasks, move |_w, pid| {
            let mut bitmap = vec![false; self.num_trajectories];
            if aligned {
                self.segment_indexes[pid].for_each_within_mbr(
                    &q_mbr.expanded(tau),
                    0.0,
                    |_, &tid| {
                        bitmap[tid as usize] = true;
                    },
                );
            } else {
                // No sound segment bound: keep everything this partition
                // indexes.
                self.segment_indexes[pid].for_each_within_mbr(
                    &Mbr::new(
                        Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
                        Point::new(f64::INFINITY, f64::INFINITY),
                    ),
                    f64::INFINITY,
                    |_, &tid| {
                        bitmap[tid as usize] = true;
                    },
                );
            }
            bitmap
        });

        // --- Driver barrier: merge the bitmaps ---
        let mut merged = vec![false; self.num_trajectories];
        for bm in bitmaps {
            for (m, b) in merged.iter_mut().zip(bm) {
                *m |= b;
            }
        }
        let candidates = merged.iter().filter(|&&b| b).count();

        // --- Phase 2: distributed verification over the store ---
        let bitmap_bytes = (self.num_trajectories as u64).div_ceil(8);
        let merged = &merged;
        let verify_tasks: Vec<TaskSpec<usize>> = (0..self.store.len())
            .map(|w| TaskSpec {
                worker: w,
                incoming_bytes: bitmap_bytes + q_bytes,
                partition: None,
                payload: w,
            })
            .collect();
        let (outputs, verify_job) = self.cluster.execute(verify_tasks, move |_wid, w| {
            let mut hits = Vec::new();
            for t in &self.store[w] {
                if merged[self.slots[&t.id] as usize] {
                    if let Some(d) = func.verify(t.points(), q, tau) {
                        hits.push((t.id, d));
                    }
                }
            }
            hits
        });

        let mut results: Vec<(TrajectoryId, f64)> = outputs.into_iter().flatten().collect();
        results.sort_by_key(|&(id, _)| id);
        (results, candidates, filter_job, verify_job)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dita_cluster::ClusterConfig;
    use dita_trajectory::trajectory::figure1_trajectories;

    fn system(parts: usize, workers: usize) -> DftSystem {
        DftSystem::build(
            &figure1_trajectories(),
            parts,
            Cluster::new(ClusterConfig::with_workers(workers)),
        )
    }

    #[test]
    fn search_matches_ground_truth() {
        let sys = system(3, 2);
        let ts = figure1_trajectories();
        for f in [
            DistanceFunction::Dtw,
            DistanceFunction::Frechet,
            DistanceFunction::Lcss { eps: 1.0, delta: 2 },
        ] {
            for q in &ts {
                for tau in [1.0, 3.0] {
                    let (res, cands, _, _) = sys.search(q.points(), tau, &f);
                    let expect: Vec<u64> = ts
                        .iter()
                        .filter(|t| f.distance(t.points(), q.points()) <= tau)
                        .map(|t| t.id)
                        .collect();
                    let got: Vec<u64> = res.iter().map(|&(id, _)| id).collect();
                    assert_eq!(got, expect, "{f} tau={tau} Q=T{}", q.id);
                    assert!(cands >= res.len());
                }
            }
        }
    }

    #[test]
    fn two_phase_protocol_reports_two_jobs() {
        let sys = system(3, 2);
        let ts = figure1_trajectories();
        let (_, _, filter_job, verify_job) =
            sys.search(ts[0].points(), 3.0, &DistanceFunction::Dtw);
        assert!(filter_job.workers.iter().map(|w| w.tasks).sum::<usize>() >= 1);
        assert!(verify_job.workers.iter().map(|w| w.tasks).sum::<usize>() >= 1);
        // Verification ships the merged bitmap to every worker.
        assert!(verify_job.total_bytes() > 0);
    }

    #[test]
    fn join_bitmap_memory_explodes() {
        let sys = system(3, 2);
        // 5 trajectories → 1 byte per bitmap; at the paper's 11M-trajectory
        // scale this is what breaks DFT joins.
        assert_eq!(sys.join_bitmap_bytes(5), 5);
        let eleven_million = DftSystem {
            cluster: Cluster::new(ClusterConfig::with_workers(1)),
            segment_indexes: Vec::new(),
            store: vec![Vec::new()],
            slots: HashMap::new(),
            num_trajectories: 11_000_000,
        };
        // ≥ 1.3 MB per query ⇒ ≥ 14 TB for a self-join.
        assert!(eleven_million.join_bitmap_bytes(11_000_000) > 10_u64.pow(13));
    }

    #[test]
    fn index_is_larger_than_trajectory_data() {
        // Segments ≈ points, each indexed with an MBR: the non-clustered
        // segment index inherently outweighs DITA's pivot-only nodes.
        let sys = system(3, 2);
        assert!(sys.index_size_bytes() > 0);
        assert_eq!(sys.len(), 5);
    }
}
