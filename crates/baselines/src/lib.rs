//! Baseline systems reimplemented for the paper's comparisons (§7.1, §C).
//!
//! The paper compares DITA against three distributed systems and two
//! centralized indexes. None are open source in a usable form here, so each
//! is reimplemented following the paper's description of how it was built
//! or extended — including the structural weaknesses the paper attributes
//! the performance gaps to:
//!
//! * [`naive`] — no index: broadcast the query, scan every partition,
//!   verify with the double-direction distance only.
//! * [`simba`] — Simba-style: R-trees over trajectory *first points* only;
//!   joins ship whole partitions to relevant partitions.
//! * [`dft`] — DFT-style: a non-clustered segment R-tree per partition; the
//!   filter phase returns candidate-id bitmaps that the master must merge
//!   before a separate verification phase (the parallelism "barrier" of
//!   §2.3), and joins need one bitmap per query (the memory blow-up that
//!   made DFT infeasible for joins in §7.2.2).
//! * [`mbe`] — centralized Minimal Bounding Envelope index (Vlachos et al.,
//!   the paper's reference 42):
//!   windowed MBRs giving additive (DTW) and bottleneck (Fréchet) lower
//!   bounds.
//! * [`vptree`] — centralized vantage-point tree over the Fréchet metric
//!   with triangle-inequality pruning.

#![warn(missing_docs)]

pub mod dft;
pub mod mbe;
pub mod naive;
pub mod simba;
pub mod vptree;

pub use dft::DftSystem;
pub use mbe::MbeIndex;
pub use naive::NaiveSystem;
pub use simba::SimbaSystem;
pub use vptree::VpTree;
