//! The Minimal-Bounding-Envelope centralized baseline (Vlachos et al.,
//! KDD 2003 — reference 42 of the paper).
//!
//! Each indexed trajectory is split into windows of `w` consecutive points;
//! each window's MBR joins the trajectory's *envelope*. For a query `Q`,
//! every point of `Q` must align to some indexed point, which lies inside
//! one of the envelope MBRs, giving
//!
//! * DTW:      `DTW(T, Q) ≥ Σ_j min_MBR MinDist(q_j, MBR)`
//! * Fréchet:  `F(T, Q)  ≥ max_j min_MBR MinDist(q_j, MBR)`
//!
//! Appendix C compares candidate counts and latency against DITA's
//! centralized build; the envelope's single-level, per-point bound is what
//! loses to the trie's level-by-level accumulation.

use dita_distance::DistanceFunction;
use dita_trajectory::{Mbr, Point, Trajectory, TrajectoryId};
use std::time::{Duration, Instant};

/// A centralized MBE index.
pub struct MbeIndex {
    entries: Vec<(Trajectory, Vec<Mbr>)>,
    window: usize,
    build_time: Duration,
}

impl MbeIndex {
    /// Builds envelopes with windows of `window` points.
    ///
    /// # Panics
    /// Panics if `window == 0`.
    pub fn build(trajectories: &[Trajectory], window: usize) -> Self {
        assert!(window >= 1, "window must be at least 1 point");
        let start = Instant::now();
        let entries = trajectories
            .iter()
            .map(|t| {
                let envelope: Vec<Mbr> = t
                    .points()
                    .chunks(window)
                    .map(|c| Mbr::from_points(c.iter()))
                    .collect();
                (t.clone(), envelope)
            })
            .collect();
        MbeIndex {
            entries,
            window,
            build_time: start.elapsed(),
        }
    }

    /// Number of indexed trajectories.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The window size used at build time.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Index build time (Table 7).
    pub fn build_time(&self) -> Duration {
        self.build_time
    }

    /// Envelope size in bytes (Table 7); excludes the trajectory data.
    pub fn index_size_bytes(&self) -> usize {
        self.entries
            .iter()
            .map(|(_, env)| env.len() * std::mem::size_of::<Mbr>())
            .sum()
    }

    /// The envelope lower bound for `func` (DTW-additive or Fréchet-
    /// bottleneck; other functions get no bound and return 0).
    fn lower_bound(env: &[Mbr], q: &[Point], func: &DistanceFunction) -> f64 {
        match func {
            DistanceFunction::Dtw => q
                .iter()
                .map(|p| {
                    env.iter()
                        .map(|m| m.min_dist_point_sq(p))
                        .fold(f64::INFINITY, f64::min)
                        .sqrt()
                })
                .sum(),
            DistanceFunction::Frechet => q
                .iter()
                .map(|p| {
                    env.iter()
                        .map(|m| m.min_dist_point_sq(p))
                        .fold(f64::INFINITY, f64::min)
                        .sqrt()
                })
                .fold(0.0, f64::max),
            _ => 0.0,
        }
    }

    /// Threshold search: returns sorted `(id, dist)` hits plus the number of
    /// candidates that survived the envelope bound (the Figure 17 metric).
    pub fn search(
        &self,
        q: &[Point],
        tau: f64,
        func: &DistanceFunction,
    ) -> (Vec<(TrajectoryId, f64)>, usize) {
        assert!(!q.is_empty());
        let mut results = Vec::new();
        let mut candidates = 0usize;
        for (t, env) in &self.entries {
            if Self::lower_bound(env, q, func) > tau {
                continue;
            }
            candidates += 1;
            if let Some(d) = func.within(t.points(), q, tau) {
                results.push((t.id, d));
            }
        }
        results.sort_by_key(|&(id, _)| id);
        (results, candidates)
    }

    /// Centralized join by repeated search (how the paper ran MBE in its
    /// Appendix C join comparison).
    pub fn join(
        &self,
        other: &MbeIndex,
        tau: f64,
        func: &DistanceFunction,
    ) -> (Vec<(TrajectoryId, TrajectoryId, f64)>, usize) {
        let mut out = Vec::new();
        let mut candidates = 0usize;
        for (q, _) in &other.entries {
            let (hits, c) = self.search(q.points(), tau, func);
            candidates += c;
            out.extend(hits.into_iter().map(|(tid, d)| (tid, q.id, d)));
        }
        out.sort_by_key(|a| (a.0, a.1));
        (out, candidates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dita_trajectory::trajectory::figure1_trajectories;

    #[test]
    fn search_matches_ground_truth() {
        let ts = figure1_trajectories();
        for window in [1, 2, 4] {
            let index = MbeIndex::build(&ts, window);
            for f in [DistanceFunction::Dtw, DistanceFunction::Frechet] {
                for q in &ts {
                    for tau in [1.0, 3.0] {
                        let (res, cands) = index.search(q.points(), tau, &f);
                        let expect: Vec<u64> = ts
                            .iter()
                            .filter(|t| f.distance(t.points(), q.points()) <= tau)
                            .map(|t| t.id)
                            .collect();
                        let got: Vec<u64> = res.iter().map(|&(id, _)| id).collect();
                        assert_eq!(got, expect, "{f} w={window} tau={tau} Q=T{}", q.id);
                        assert!(cands >= res.len());
                    }
                }
            }
        }
    }

    #[test]
    fn smaller_windows_bound_tighter() {
        let ts = figure1_trajectories();
        let fine = MbeIndex::build(&ts, 1);
        let coarse = MbeIndex::build(&ts, 6);
        let q = &ts[0];
        let (_, c_fine) = fine.search(q.points(), 3.0, &DistanceFunction::Dtw);
        let (_, c_coarse) = coarse.search(q.points(), 3.0, &DistanceFunction::Dtw);
        assert!(c_fine <= c_coarse);
        assert!(fine.index_size_bytes() >= coarse.index_size_bytes());
    }

    #[test]
    fn join_matches_nested_loop() {
        let ts = figure1_trajectories();
        let index = MbeIndex::build(&ts, 2);
        let (res, _) = index.join(&index, 3.0, &DistanceFunction::Dtw);
        let mut expect = Vec::new();
        for a in &ts {
            for b in &ts {
                if dita_distance::dtw(a.points(), b.points()) <= 3.0 {
                    expect.push((a.id, b.id));
                }
            }
        }
        expect.sort_unstable();
        let got: Vec<(u64, u64)> = res.iter().map(|&(a, b, _)| (a, b)).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn reports_build_metadata() {
        let ts = figure1_trajectories();
        let index = MbeIndex::build(&ts, 2);
        assert_eq!(index.len(), 5);
        assert_eq!(index.window(), 2);
        assert!(index.index_size_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_rejected() {
        let _ = MbeIndex::build(&figure1_trajectories(), 0);
    }
}
