//! The vantage-point-tree centralized baseline (references [19, 40, 49] of
//! the paper).
//!
//! A VP-tree partitions a *metric* space: each node picks a vantage
//! trajectory, measures every member's distance to it, and splits at the
//! median. Range queries prune subtrees with the triangle inequality
//! `|d(q, vp) − d(vp, x)| ≤ d(q, x)`. It therefore supports Fréchet and ERP
//! but not DTW/EDR/LCSS — exactly the limitation the paper's Appendix C
//! notes ("VP-Tree … could only support Fréchet which was a metric").

use dita_distance::DistanceFunction;
use dita_trajectory::{Trajectory, TrajectoryId};
use std::time::{Duration, Instant};

struct Node {
    /// Index of the vantage trajectory in `trajs`.
    vp: u32,
    /// Median distance: the inside child holds members with `d ≤ radius`.
    radius: f64,
    inside: Option<Box<Node>>,
    outside: Option<Box<Node>>,
}

/// A centralized VP-tree over whole trajectories under a metric distance.
pub struct VpTree {
    trajs: Vec<Trajectory>,
    root: Option<Box<Node>>,
    func: DistanceFunction,
    build_time: Duration,
    nodes: usize,
}

impl VpTree {
    /// Builds a VP-tree under `func`.
    ///
    /// # Panics
    /// Panics if `func` is not a metric (the triangle inequality is what
    /// makes pruning sound).
    pub fn build(trajectories: &[Trajectory], func: DistanceFunction) -> Self {
        assert!(
            func.is_metric(),
            "VP-trees require a metric distance function (Fréchet or ERP)"
        );
        let start = Instant::now();
        let trajs = trajectories.to_vec();
        let mut items: Vec<u32> = (0..trajs.len() as u32).collect();
        let mut nodes = 0usize;
        let root = Self::build_node(&trajs, &mut items, &func, &mut nodes);
        VpTree {
            trajs,
            root,
            func,
            build_time: start.elapsed(),
            nodes,
        }
    }

    fn build_node(
        trajs: &[Trajectory],
        items: &mut Vec<u32>,
        func: &DistanceFunction,
        nodes: &mut usize,
    ) -> Option<Box<Node>> {
        let vp = items.pop()?;
        *nodes += 1;
        if items.is_empty() {
            return Some(Box::new(Node {
                vp,
                radius: 0.0,
                inside: None,
                outside: None,
            }));
        }
        // Distance of every remaining item to the vantage point.
        let mut with_d: Vec<(u32, f64)> = items
            .iter()
            .map(|&i| {
                (
                    i,
                    func.distance(trajs[vp as usize].points(), trajs[i as usize].points()),
                )
            })
            .collect();
        with_d.sort_by(|a, b| a.1.total_cmp(&b.1));
        let mid = with_d.len() / 2;
        let radius = with_d[mid].1;
        let mut inside: Vec<u32> = with_d[..=mid.min(with_d.len() - 1)]
            .iter()
            .map(|&(i, _)| i)
            .collect();
        let mut outside: Vec<u32> = with_d[mid + 1..].iter().map(|&(i, _)| i).collect();
        items.clear();
        Some(Box::new(Node {
            vp,
            radius,
            inside: Self::build_node(trajs, &mut inside, func, nodes),
            outside: Self::build_node(trajs, &mut outside, func, nodes),
        }))
    }

    /// Number of indexed trajectories.
    pub fn len(&self) -> usize {
        self.trajs.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.trajs.is_empty()
    }

    /// Build time (Table 7).
    pub fn build_time(&self) -> Duration {
        self.build_time
    }

    /// Approximate index size in bytes, excluding trajectory data.
    pub fn index_size_bytes(&self) -> usize {
        self.nodes * std::mem::size_of::<Node>()
    }

    /// Range search: all `(id, dist)` with `func(T, q) ≤ tau`, sorted by id.
    /// Also returns the number of full distance computations (the VP-tree's
    /// "candidates" — every visited node costs one).
    pub fn search(&self, q: &Trajectory, tau: f64) -> (Vec<(TrajectoryId, f64)>, usize) {
        let mut results = Vec::new();
        let mut computed = 0usize;
        self.search_node(self.root.as_deref(), q, tau, &mut results, &mut computed);
        results.sort_by_key(|&(id, _)| id);
        (results, computed)
    }

    fn search_node(
        &self,
        node: Option<&Node>,
        q: &Trajectory,
        tau: f64,
        results: &mut Vec<(TrajectoryId, f64)>,
        computed: &mut usize,
    ) {
        let Some(node) = node else { return };
        let vp = &self.trajs[node.vp as usize];
        let d = self.func.distance(vp.points(), q.points());
        *computed += 1;
        if d <= tau {
            results.push((vp.id, d));
        }
        // Triangle inequality: the inside ball holds distances to vp in
        // [0, radius]; reachable iff d − tau ≤ radius. The outside shell
        // holds (radius, ∞); reachable iff d + tau > radius.
        if d - tau <= node.radius {
            self.search_node(node.inside.as_deref(), q, tau, results, computed);
        }
        if d + tau > node.radius {
            self.search_node(node.outside.as_deref(), q, tau, results, computed);
        }
    }

    /// Centralized join by repeated search.
    pub fn join(
        &self,
        queries: &[Trajectory],
        tau: f64,
    ) -> (Vec<(TrajectoryId, TrajectoryId, f64)>, usize) {
        let mut out = Vec::new();
        let mut computed = 0usize;
        for q in queries {
            let (hits, c) = self.search(q, tau);
            computed += c;
            out.extend(hits.into_iter().map(|(tid, d)| (tid, q.id, d)));
        }
        out.sort_by_key(|a| (a.0, a.1));
        (out, computed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dita_trajectory::trajectory::figure1_trajectories;

    #[test]
    fn frechet_search_matches_ground_truth() {
        let ts = figure1_trajectories();
        let tree = VpTree::build(&ts, DistanceFunction::Frechet);
        for q in &ts {
            for tau in [0.5, 1.0, 1.41, 3.0, 10.0] {
                let (res, computed) = tree.search(q, tau);
                let expect: Vec<u64> = ts
                    .iter()
                    .filter(|t| DistanceFunction::Frechet.distance(t.points(), q.points()) <= tau)
                    .map(|t| t.id)
                    .collect();
                let got: Vec<u64> = res.iter().map(|&(id, _)| id).collect();
                assert_eq!(got, expect, "tau={tau} Q=T{}", q.id);
                assert!(computed <= ts.len());
            }
        }
    }

    #[test]
    fn erp_search_matches_ground_truth() {
        let ts = figure1_trajectories();
        let f = DistanceFunction::Erp { gap: (0.0, 0.0) };
        let tree = VpTree::build(&ts, f);
        for q in &ts {
            let (res, _) = tree.search(q, 5.0);
            let expect: Vec<u64> = ts
                .iter()
                .filter(|t| f.distance(t.points(), q.points()) <= 5.0)
                .map(|t| t.id)
                .collect();
            let got: Vec<u64> = res.iter().map(|&(id, _)| id).collect();
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn pruning_reduces_distance_computations() {
        // On spread-out data with a small τ, the tree must visit fewer
        // nodes than a linear scan.
        let ts: Vec<Trajectory> = (0..64)
            .map(|i| {
                let base = (i as f64) * 10.0;
                Trajectory::from_coords(i, &[(base, 0.0), (base + 1.0, 1.0)])
            })
            .collect();
        let tree = VpTree::build(&ts, DistanceFunction::Frechet);
        let (res, computed) = tree.search(&ts[0], 0.5);
        assert_eq!(res.len(), 1);
        assert!(computed < 64, "no pruning happened: {computed}");
    }

    #[test]
    fn join_matches_nested_loop() {
        let ts = figure1_trajectories();
        let tree = VpTree::build(&ts, DistanceFunction::Frechet);
        let (res, _) = tree.join(&ts, 1.5);
        let mut expect = Vec::new();
        for a in &ts {
            for b in &ts {
                if DistanceFunction::Frechet.distance(a.points(), b.points()) <= 1.5 {
                    expect.push((a.id, b.id));
                }
            }
        }
        expect.sort_unstable();
        let got: Vec<(u64, u64)> = res.iter().map(|&(a, b, _)| (a, b)).collect();
        assert_eq!(got, expect);
    }

    #[test]
    #[should_panic(expected = "metric")]
    fn dtw_rejected() {
        let _ = VpTree::build(&figure1_trajectories(), DistanceFunction::Dtw);
    }

    #[test]
    fn metadata() {
        let ts = figure1_trajectories();
        let tree = VpTree::build(&ts, DistanceFunction::Frechet);
        assert_eq!(tree.len(), 5);
        assert!(!tree.is_empty());
        assert!(tree.index_size_bytes() > 0);
    }
}
