//! The no-index baseline: broadcast and scan.

use dita_cluster::{Cluster, JobStats, TaskSpec};
use dita_distance::DistanceFunction;
use dita_trajectory::{Point, Trajectory, TrajectoryId};

/// A trajectory table distributed round-robin with no index.
///
/// Search broadcasts the query to every worker; each scans its partition and
/// verifies with the threshold-aware (double-direction for DTW) distance —
/// the only optimization the paper grants Naive (§7.2.1 reason iv).
pub struct NaiveSystem {
    cluster: Cluster,
    partitions: Vec<Vec<Trajectory>>,
}

impl NaiveSystem {
    /// Distributes `trajectories` round-robin over the cluster's workers
    /// (one partition per worker).
    pub fn build(trajectories: &[Trajectory], cluster: Cluster) -> Self {
        let mut partitions: Vec<Vec<Trajectory>> =
            (0..cluster.num_workers()).map(|_| Vec::new()).collect();
        for (i, t) in trajectories.iter().enumerate() {
            partitions[cluster.place(i)].push(t.clone());
        }
        NaiveSystem {
            cluster,
            partitions,
        }
    }

    /// Number of stored trajectories.
    pub fn len(&self) -> usize {
        self.partitions.iter().map(Vec::len).sum()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Threshold search: all ids with `func(T, q) ≤ tau`, sorted.
    pub fn search(
        &self,
        q: &[Point],
        tau: f64,
        func: &DistanceFunction,
    ) -> (Vec<(TrajectoryId, f64)>, JobStats) {
        let q_bytes = std::mem::size_of_val(q) as u64;
        let tasks: Vec<TaskSpec<usize>> = (0..self.partitions.len())
            .map(|w| TaskSpec {
                worker: w,
                incoming_bytes: q_bytes,
                partition: None,
                payload: w,
            })
            .collect();
        let (outputs, job) = self.cluster.execute(tasks, move |_wid, p| {
            let mut hits = Vec::new();
            for t in &self.partitions[p] {
                if let Some(d) = func.verify(t.points(), q, tau) {
                    hits.push((t.id, d));
                }
            }
            hits
        });
        let mut results: Vec<(TrajectoryId, f64)> = outputs.into_iter().flatten().collect();
        results.sort_by_key(|&(id, _)| id);
        (results, job)
    }

    /// Nested-loop distributed join: every partition of `self` is verified
    /// against every trajectory of `other` (no pruning of any kind) — the
    /// baseline the paper reports as "too slow to complete" at scale.
    pub fn join(
        &self,
        other: &NaiveSystem,
        tau: f64,
        func: &DistanceFunction,
    ) -> (Vec<(TrajectoryId, TrajectoryId, f64)>, JobStats) {
        let other_all: Vec<&Trajectory> = other.partitions.iter().flatten().collect();
        let other_bytes: u64 = other_all.iter().map(|t| t.size_bytes() as u64).sum();
        let tasks: Vec<TaskSpec<usize>> = (0..self.partitions.len())
            .map(|w| TaskSpec {
                worker: w,
                incoming_bytes: other_bytes, // full broadcast of the right side
                partition: None,
                payload: w,
            })
            .collect();
        let other_ref = &other_all;
        let (outputs, job) = self.cluster.execute(tasks, move |_wid, p| {
            let mut pairs = Vec::new();
            for t in &self.partitions[p] {
                for q in other_ref.iter() {
                    if let Some(d) = func.verify(t.points(), q.points(), tau) {
                        pairs.push((t.id, q.id, d));
                    }
                }
            }
            pairs
        });
        let mut results: Vec<(TrajectoryId, TrajectoryId, f64)> =
            outputs.into_iter().flatten().collect();
        results.sort_by_key(|a| (a.0, a.1));
        (results, job)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dita_cluster::ClusterConfig;
    use dita_trajectory::trajectory::figure1_trajectories;

    fn system(workers: usize) -> NaiveSystem {
        NaiveSystem::build(
            &figure1_trajectories(),
            Cluster::new(ClusterConfig::with_workers(workers)),
        )
    }

    #[test]
    fn search_matches_ground_truth() {
        let sys = system(2);
        let ts = figure1_trajectories();
        for f in [DistanceFunction::Dtw, DistanceFunction::Frechet] {
            for q in &ts {
                for tau in [1.0, 3.0] {
                    let (res, _) = sys.search(q.points(), tau, &f);
                    let expect: Vec<u64> = ts
                        .iter()
                        .filter(|t| f.distance(t.points(), q.points()) <= tau)
                        .map(|t| t.id)
                        .collect();
                    let got: Vec<u64> = res.iter().map(|&(id, _)| id).collect();
                    assert_eq!(got, expect);
                }
            }
        }
    }

    #[test]
    fn example_2_6() {
        let sys = system(3);
        let ts = figure1_trajectories();
        let (res, _) = sys.search(ts[0].points(), 3.0, &DistanceFunction::Dtw);
        assert_eq!(res.iter().map(|&(i, _)| i).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn join_matches_nested_loop() {
        let a = system(2);
        let b = system(2);
        let ts = figure1_trajectories();
        let (res, _) = a.join(&b, 3.0, &DistanceFunction::Dtw);
        let mut expect = Vec::new();
        for x in &ts {
            for y in &ts {
                if dita_distance::dtw(x.points(), y.points()) <= 3.0 {
                    expect.push((x.id, y.id));
                }
            }
        }
        expect.sort_unstable();
        let got: Vec<(u64, u64)> = res.iter().map(|&(a, b, _)| (a, b)).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn broadcast_charges_network() {
        let sys = system(4);
        let ts = figure1_trajectories();
        let (_, job) = sys.search(ts[0].points(), 3.0, &DistanceFunction::Dtw);
        // Every worker received one copy of the query.
        assert!(job.total_bytes() > 0);
        assert_eq!(job.workers.iter().filter(|w| w.tasks == 1).count(), 4);
    }
}
