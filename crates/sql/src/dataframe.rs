//! The DataFrame API (§3): the programmatic equivalent of the extended SQL,
//! mirroring how the paper exposes search and join "over DataFrame objects
//! using a domain-specific language".

use crate::engine::Engine;
use crate::error::SqlError;
use dita_core::{join, knn_search, search, JoinOptions};
use dita_distance::DistanceFunction;
use dita_trajectory::{Point, Trajectory, TrajectoryId};

/// A handle to a registered table.
pub struct DataFrame<'e> {
    engine: &'e mut Engine,
    table: String,
}

impl Engine {
    /// Opens a [`DataFrame`] over a registered table.
    pub fn table(&mut self, name: &str) -> Result<DataFrame<'_>, SqlError> {
        if !self.table_names().contains(&name.to_ascii_lowercase()) {
            return Err(SqlError::UnknownTable { name: name.into() });
        }
        Ok(DataFrame {
            engine: self,
            table: name.to_ascii_lowercase(),
        })
    }
}

impl DataFrame<'_> {
    /// The table name.
    pub fn name(&self) -> &str {
        &self.table
    }

    /// Number of rows.
    pub fn count(&mut self) -> usize {
        match self
            .engine
            .execute(&format!("SELECT * FROM {}", self.table))
        {
            Ok(crate::engine::QueryResult::Rows(rows)) => rows.len(),
            _ => 0,
        }
    }

    /// Collects all rows.
    pub fn collect(&mut self) -> Result<Vec<Trajectory>, SqlError> {
        match self
            .engine
            .execute(&format!("SELECT * FROM {}", self.table))?
        {
            crate::engine::QueryResult::Rows(rows) => Ok(rows),
            _ => unreachable!("SELECT * always yields rows"),
        }
    }

    /// Builds the trie index (the `CREATE INDEX ... USE TRIE` equivalent).
    pub fn create_trie_index(&mut self) -> Result<&mut Self, SqlError> {
        self.engine.ensure_index(&self.table)?;
        Ok(self)
    }

    /// Threshold similarity search against a query trajectory.
    pub fn similarity_search(
        &mut self,
        query: &[Point],
        func: DistanceFunction,
        tau: f64,
    ) -> Result<Vec<(TrajectoryId, f64)>, SqlError> {
        let system = self.engine.ensure_index(&self.table)?;
        let (hits, _) = search(system, query, tau, &func);
        Ok(hits)
    }

    /// k-nearest-neighbor search against a query trajectory.
    pub fn knn(
        &mut self,
        query: &[Point],
        func: DistanceFunction,
        k: usize,
    ) -> Result<Vec<(TrajectoryId, f64)>, SqlError> {
        let system = self.engine.ensure_index(&self.table)?;
        let (hits, _) = knn_search(system, query, k, &func);
        Ok(hits)
    }

    /// Threshold similarity join against another registered table.
    pub fn tra_join(
        &mut self,
        right: &str,
        func: DistanceFunction,
        tau: f64,
    ) -> Result<Vec<(TrajectoryId, TrajectoryId, f64)>, SqlError> {
        self.engine.ensure_index(&self.table)?;
        self.engine.ensure_index(right)?;
        // Re-borrow immutably for the join itself.
        let sql_left = self.table.clone();
        let left_sys = {
            let e: &Engine = self.engine;
            // Safety of design: ensure_index above guarantees both exist.
            e.system(&sql_left).expect("left index built")
        };
        let right_sys = self.engine.system(right).expect("right index built");
        let (pairs, _) = join(left_sys, right_sys, tau, &func, &JoinOptions::default());
        Ok(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dita_cluster::{Cluster, ClusterConfig};
    use dita_core::DitaConfig;
    use dita_index::{PivotStrategy, TrieConfig};
    use dita_trajectory::trajectory::figure1_trajectories;
    use dita_trajectory::Dataset;

    fn engine() -> Engine {
        let mut e = Engine::new(
            Cluster::new(ClusterConfig::with_workers(2)),
            DitaConfig {
                ng: 2,
                trie: TrieConfig {
                    k: 2,
                    nl: 2,
                    leaf_capacity: 0,
                    strategy: PivotStrategy::NeighborDistance,
                    cell_side: 2.0,
                    ..TrieConfig::default()
                },
            },
        );
        e.register(
            "taxi",
            Dataset::new("fig1", figure1_trajectories()).unwrap(),
        )
        .unwrap();
        e
    }

    #[test]
    fn dataframe_search_matches_sql() {
        let mut e = engine();
        let ts = figure1_trajectories();
        let hits = e
            .table("taxi")
            .unwrap()
            .similarity_search(ts[0].points(), DistanceFunction::Dtw, 3.0)
            .unwrap();
        let ids: Vec<u64> = hits.iter().map(|&(i, _)| i).collect();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn dataframe_self_join() {
        let mut e = engine();
        let pairs = e
            .table("taxi")
            .unwrap()
            .tra_join("taxi", DistanceFunction::Dtw, 3.0)
            .unwrap();
        assert!(pairs.len() >= 5); // at least the identity pairs
        assert!(pairs.iter().any(|&(a, b, _)| a == 1 && b == 2));
    }

    #[test]
    fn count_and_collect() {
        let mut e = engine();
        let mut df = e.table("taxi").unwrap();
        assert_eq!(df.count(), 5);
        assert_eq!(df.collect().unwrap().len(), 5);
        assert_eq!(df.name(), "taxi");
    }

    #[test]
    fn dataframe_knn() {
        let mut e = engine();
        let ts = figure1_trajectories();
        let hits = e
            .table("taxi")
            .unwrap()
            .knn(ts[3].points(), DistanceFunction::Dtw, 2)
            .unwrap();
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].0, 4); // itself first
    }

    #[test]
    fn unknown_table_rejected() {
        let mut e = engine();
        assert!(e.table("nope").is_err());
    }

    #[test]
    fn chained_index_then_search() {
        let mut e = engine();
        let ts = figure1_trajectories();
        let mut df = e.table("taxi").unwrap();
        df.create_trie_index().unwrap();
        let hits = df
            .similarity_search(ts[3].points(), DistanceFunction::Dtw, 3.0)
            .unwrap();
        assert_eq!(hits.iter().map(|&(i, _)| i).collect::<Vec<_>>(), vec![4]);
    }
}
