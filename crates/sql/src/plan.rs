//! Logical and physical query plans (§3 "Query Processing").

use crate::ast::{QueryArg, Statement};
use crate::error::SqlError;
use dita_distance::DistanceFunction;
use dita_trajectory::Point;

/// A logical plan: the statement with expressions folded and names resolved
/// syntactically (table existence is checked at physical planning).
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Full scan of a table.
    Scan {
        /// Table name.
        table: String,
    },
    /// Threshold similarity search.
    Search {
        /// Table name.
        table: String,
        /// Distance function.
        func: DistanceFunction,
        /// Query trajectory.
        query: Vec<Point>,
        /// Folded threshold.
        tau: f64,
    },
    /// k-nearest-neighbor search.
    Knn {
        /// Table name.
        table: String,
        /// Distance function.
        func: DistanceFunction,
        /// Query trajectory.
        query: Vec<Point>,
        /// Neighbor count.
        k: usize,
    },
    /// Threshold similarity join.
    Join {
        /// Left table.
        left: String,
        /// Right table.
        right: String,
        /// Distance function.
        func: DistanceFunction,
        /// Folded threshold.
        tau: f64,
    },
    /// Row upserts.
    Insert {
        /// Target table.
        table: String,
        /// `(id, points)` rows to upsert.
        rows: Vec<(u64, Vec<Point>)>,
    },
    /// Single-row delete by id.
    Delete {
        /// Target table.
        table: String,
        /// Trajectory id.
        id: u64,
    },
    /// Index creation.
    CreateIndex {
        /// Table to index.
        table: String,
    },
    /// Catalog listing.
    ShowTables,
    /// Plan display without execution.
    Explain(Box<LogicalPlan>),
}

/// Lowers a statement to a logical plan, folding threshold arithmetic (the
/// constant-folding rewrite) and validating the predicate shape.
pub fn logical_plan(stmt: Statement) -> Result<LogicalPlan, SqlError> {
    match stmt {
        Statement::Select {
            table,
            predicate: None,
        } => Ok(LogicalPlan::Scan { table }),
        Statement::Select {
            table,
            predicate: Some(p),
        } => {
            if !p.left.eq_ignore_ascii_case(&table) {
                return Err(SqlError::Parse {
                    message: format!(
                        "predicate references {:?} but the FROM table is {:?}",
                        p.left, table
                    ),
                });
            }
            match p.query {
                QueryArg::Literal(points) => Ok(LogicalPlan::Search {
                    table,
                    func: p.func,
                    query: points.into_iter().map(|(x, y)| Point::new(x, y)).collect(),
                    tau: p.threshold.fold(),
                }),
                QueryArg::Table(t) => Err(SqlError::Unsupported {
                    message: format!(
                        "WHERE with a table argument {t:?}; use TRA-JOIN for table-to-table \
                         similarity"
                    ),
                }),
            }
        }
        Statement::TraJoin {
            left,
            right,
            predicate,
        } => {
            let ok_args = match &predicate.query {
                QueryArg::Table(t) => {
                    (predicate.left.eq_ignore_ascii_case(&left) && t.eq_ignore_ascii_case(&right))
                        || (predicate.left.eq_ignore_ascii_case(&right)
                            && t.eq_ignore_ascii_case(&left))
                }
                QueryArg::Literal(_) => false,
            };
            if !ok_args {
                return Err(SqlError::Parse {
                    message: "TRA-JOIN predicate must reference the two joined tables".into(),
                });
            }
            Ok(LogicalPlan::Join {
                left,
                right,
                func: predicate.func,
                tau: predicate.threshold.fold(),
            })
        }
        Statement::Knn {
            table,
            func,
            query,
            k,
        } => Ok(LogicalPlan::Knn {
            table,
            func,
            query: query.into_iter().map(|(x, y)| Point::new(x, y)).collect(),
            k,
        }),
        Statement::Insert { table, rows } => Ok(LogicalPlan::Insert {
            table,
            rows: rows
                .into_iter()
                .map(|(id, pts)| (id, pts.into_iter().map(|(x, y)| Point::new(x, y)).collect()))
                .collect(),
        }),
        Statement::Delete { table, id } => Ok(LogicalPlan::Delete { table, id }),
        Statement::CreateIndex { table, .. } => Ok(LogicalPlan::CreateIndex { table }),
        Statement::ShowTables => Ok(LogicalPlan::ShowTables),
        Statement::Explain(inner) => Ok(LogicalPlan::Explain(Box::new(logical_plan(*inner)?))),
    }
}

/// A physical plan: the cost-based choice of operators (§3's CBO module —
/// index operators when a trie index exists, scans otherwise).
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalPlan {
    /// Return all rows of a table.
    FullScan {
        /// Table name.
        table: String,
    },
    /// Search via the distributed trie index.
    IndexSearch {
        /// Table name.
        table: String,
        /// Distance function.
        func: DistanceFunction,
        /// Query trajectory.
        query: Vec<Point>,
        /// Threshold.
        tau: f64,
    },
    /// Search by scanning and verifying (no index available).
    ScanSearch {
        /// Table name.
        table: String,
        /// Distance function.
        func: DistanceFunction,
        /// Query trajectory.
        query: Vec<Point>,
        /// Threshold.
        tau: f64,
    },
    /// kNN via radius expansion over the trie index (built on demand).
    IndexKnn {
        /// Table name.
        table: String,
        /// Distance function.
        func: DistanceFunction,
        /// Query trajectory.
        query: Vec<Point>,
        /// Neighbor count.
        k: usize,
    },
    /// DITA's distributed join; indexes are built on demand (§6.1: "DITA
    /// first builds indexes for them because it does not take too much
    /// cost").
    IndexJoin {
        /// Left table.
        left: String,
        /// Right table.
        right: String,
        /// Distance function.
        func: DistanceFunction,
        /// Threshold.
        tau: f64,
    },
    /// Upsert rows through the table's delta-ingestion path (and the plain
    /// dataset when no index exists).
    IngestInsert {
        /// Table name.
        table: String,
        /// `(id, points)` rows to upsert.
        rows: Vec<(u64, Vec<Point>)>,
    },
    /// Tombstone one row through the table's delta-ingestion path.
    IngestDelete {
        /// Table name.
        table: String,
        /// Trajectory id.
        id: u64,
    },
    /// Build a trie index.
    BuildIndex {
        /// Table name.
        table: String,
    },
    /// List tables.
    ListTables,
    /// Describe the inner plan instead of running it.
    Explain(Box<PhysicalPlan>),
}

/// Chooses physical operators given which tables currently have indexes.
pub fn physical_plan(logical: LogicalPlan, is_indexed: impl Fn(&str) -> bool) -> PhysicalPlan {
    match logical {
        LogicalPlan::Scan { table } => PhysicalPlan::FullScan { table },
        LogicalPlan::Search {
            table,
            func,
            query,
            tau,
        } => {
            if is_indexed(&table) {
                PhysicalPlan::IndexSearch {
                    table,
                    func,
                    query,
                    tau,
                }
            } else {
                PhysicalPlan::ScanSearch {
                    table,
                    func,
                    query,
                    tau,
                }
            }
        }
        LogicalPlan::Knn {
            table,
            func,
            query,
            k,
        } => PhysicalPlan::IndexKnn {
            table,
            func,
            query,
            k,
        },
        LogicalPlan::Join {
            left,
            right,
            func,
            tau,
        } => PhysicalPlan::IndexJoin {
            left,
            right,
            func,
            tau,
        },
        LogicalPlan::Insert { table, rows } => PhysicalPlan::IngestInsert { table, rows },
        LogicalPlan::Delete { table, id } => PhysicalPlan::IngestDelete { table, id },
        LogicalPlan::CreateIndex { table } => PhysicalPlan::BuildIndex { table },
        LogicalPlan::ShowTables => PhysicalPlan::ListTables,
        LogicalPlan::Explain(inner) => {
            PhysicalPlan::Explain(Box::new(physical_plan(*inner, is_indexed)))
        }
    }
}

impl PhysicalPlan {
    /// A one-line EXPLAIN-style description.
    pub fn describe(&self) -> String {
        match self {
            PhysicalPlan::FullScan { table } => format!("FullScan({table})"),
            PhysicalPlan::IndexSearch {
                table, func, tau, ..
            } => {
                format!("IndexSearch({table}, {func}, tau={tau}) [global + trie index]")
            }
            PhysicalPlan::ScanSearch {
                table, func, tau, ..
            } => {
                format!("ScanSearch({table}, {func}, tau={tau}) [no index]")
            }
            PhysicalPlan::IndexKnn { table, func, k, .. } => {
                format!("IndexKnn({table}, {func}, k={k}) [radius expansion]")
            }
            PhysicalPlan::IndexJoin {
                left,
                right,
                func,
                tau,
            } => {
                format!("IndexJoin({left}, {right}, {func}, tau={tau}) [bi-graph + trie]")
            }
            PhysicalPlan::IngestInsert { table, rows } => {
                format!("IngestInsert({table}, {} row(s)) [delta tail]", rows.len())
            }
            PhysicalPlan::IngestDelete { table, id } => {
                format!("IngestDelete({table}, id={id}) [tombstone]")
            }
            PhysicalPlan::BuildIndex { table } => format!("BuildIndex({table}, TRIE)"),
            PhysicalPlan::ListTables => "ListTables".into(),
            PhysicalPlan::Explain(inner) => format!("Explain({})", inner.describe()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn search_plan_folds_threshold() {
        let stmt = parse("SELECT * FROM t WHERE DTW(t, TRAJECTORY((1,2))) <= 0.001 * 5").unwrap();
        let lp = logical_plan(stmt).unwrap();
        match &lp {
            LogicalPlan::Search { tau, query, .. } => {
                assert!((tau - 0.005).abs() < 1e-12);
                assert_eq!(query, &vec![Point::new(1.0, 2.0)]);
            }
            other => panic!("{other:?}"),
        }
        // Physical: index choice depends on the catalog.
        let p1 = physical_plan(lp.clone(), |_| true);
        assert!(matches!(p1, PhysicalPlan::IndexSearch { .. }));
        let p2 = physical_plan(lp, |_| false);
        assert!(matches!(p2, PhysicalPlan::ScanSearch { .. }));
    }

    #[test]
    fn join_plan_accepts_reversed_arguments() {
        let stmt = parse("SELECT * FROM t TRA-JOIN q ON DTW(q, t) <= 1").unwrap();
        let lp = logical_plan(stmt).unwrap();
        assert!(matches!(lp, LogicalPlan::Join { .. }));
    }

    #[test]
    fn mismatched_predicate_table_rejected() {
        let stmt = parse("SELECT * FROM t WHERE DTW(zzz, TRAJECTORY((0,0))) <= 1").unwrap();
        assert!(logical_plan(stmt).is_err());
    }

    #[test]
    fn where_with_table_argument_is_unsupported() {
        let stmt = parse("SELECT * FROM t WHERE DTW(t, q) <= 1").unwrap();
        let err = logical_plan(stmt).unwrap_err();
        assert!(matches!(err, SqlError::Unsupported { .. }));
    }

    #[test]
    fn describe_strings() {
        let p = physical_plan(LogicalPlan::ShowTables, |_| false);
        assert_eq!(p.describe(), "ListTables");
    }
}
