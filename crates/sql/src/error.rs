//! SQL front-end errors.

use dita_cluster::AdmitError;
use std::fmt;

/// Errors raised while lexing, parsing, planning or executing a statement.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// The lexer met a character it cannot tokenize.
    Lex {
        /// Byte offset of the offending character.
        position: usize,
        /// The character.
        found: char,
    },
    /// The parser met an unexpected token.
    Parse {
        /// Human-readable description.
        message: String,
    },
    /// A referenced table does not exist.
    UnknownTable {
        /// The missing table name.
        name: String,
    },
    /// A table with this name is already registered.
    DuplicateTable {
        /// The duplicated name.
        name: String,
    },
    /// The statement is valid but unsupported by this engine.
    Unsupported {
        /// What was attempted.
        message: String,
    },
    /// Admission control shed the query: the scheduler's bounded queue was
    /// at capacity when the query arrived. Transient — retry with backoff.
    QueueFull {
        /// Queue depth observed at the refusal (equals the capacity).
        depth: usize,
    },
    /// Admission control refused the query up front: its priced cost
    /// exceeds the per-query budget, or the price is NaN (unpriceable).
    OverBudget {
        /// The priced cost that was refused.
        cost: f64,
    },
}

impl SqlError {
    /// Maps a scheduler [`AdmitError`] to its typed SQL error, attaching
    /// the context a caller needs to act on it (observed queue depth for a
    /// shed, the refused price for a budget violation).
    pub fn from_admit(err: &AdmitError, depth: usize, cost: f64) -> SqlError {
        match err {
            AdmitError::QueueFull => SqlError::QueueFull { depth },
            AdmitError::OverBudget => SqlError::OverBudget { cost },
        }
    }

    /// `true` for refusals the client may simply retry later
    /// (backpressure), as opposed to errors in the statement itself.
    pub fn is_retryable(&self) -> bool {
        matches!(self, SqlError::QueueFull { .. })
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex { position, found } => {
                write!(f, "unexpected character {found:?} at byte {position}")
            }
            SqlError::Parse { message } => write!(f, "parse error: {message}"),
            SqlError::UnknownTable { name } => write!(f, "unknown table {name:?}"),
            SqlError::DuplicateTable { name } => write!(f, "table {name:?} already exists"),
            SqlError::Unsupported { message } => write!(f, "unsupported: {message}"),
            SqlError::QueueFull { depth } => write!(
                f,
                "query shed: admission queue full at depth {depth}; retry with backoff"
            ),
            SqlError::OverBudget { cost } => {
                if cost.is_nan() {
                    write!(
                        f,
                        "query refused: cost is NaN (unpriceable), so admission \
                         control cannot budget it"
                    )
                } else {
                    write!(
                        f,
                        "query refused: priced cost {cost} exceeds the per-query \
                         admission budget"
                    )
                }
            }
        }
    }
}

impl std::error::Error for SqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(SqlError::Lex {
            position: 3,
            found: '@'
        }
        .to_string()
        .contains("'@'"));
        assert!(SqlError::Parse {
            message: "boom".into()
        }
        .to_string()
        .contains("boom"));
        assert!(SqlError::UnknownTable { name: "t".into() }
            .to_string()
            .contains("\"t\""));
        assert!(SqlError::DuplicateTable { name: "t".into() }
            .to_string()
            .contains("already"));
        assert!(SqlError::Unsupported {
            message: "x".into()
        }
        .to_string()
        .contains("x"));
    }

    /// Pins the user-readable message of each admission refusal — these
    /// strings cross the wire (`dita-server` error bodies), so changing
    /// one is a protocol change.
    #[test]
    fn admit_error_mapping_and_messages() {
        let shed = SqlError::from_admit(&AdmitError::QueueFull, 64, 12.0);
        assert_eq!(shed, SqlError::QueueFull { depth: 64 });
        assert_eq!(
            shed.to_string(),
            "query shed: admission queue full at depth 64; retry with backoff"
        );
        assert!(shed.is_retryable());

        let dear = SqlError::from_admit(&AdmitError::OverBudget, 0, 1500.0);
        assert_eq!(dear, SqlError::OverBudget { cost: 1500.0 });
        assert_eq!(
            dear.to_string(),
            "query refused: priced cost 1500 exceeds the per-query admission budget"
        );
        assert!(!dear.is_retryable());

        let nan = SqlError::from_admit(&AdmitError::OverBudget, 0, f64::NAN);
        assert_eq!(
            nan.to_string(),
            "query refused: cost is NaN (unpriceable), so admission control cannot budget it"
        );
    }
}
