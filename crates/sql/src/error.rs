//! SQL front-end errors.

use std::fmt;

/// Errors raised while lexing, parsing, planning or executing a statement.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// The lexer met a character it cannot tokenize.
    Lex {
        /// Byte offset of the offending character.
        position: usize,
        /// The character.
        found: char,
    },
    /// The parser met an unexpected token.
    Parse {
        /// Human-readable description.
        message: String,
    },
    /// A referenced table does not exist.
    UnknownTable {
        /// The missing table name.
        name: String,
    },
    /// A table with this name is already registered.
    DuplicateTable {
        /// The duplicated name.
        name: String,
    },
    /// The statement is valid but unsupported by this engine.
    Unsupported {
        /// What was attempted.
        message: String,
    },
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex { position, found } => {
                write!(f, "unexpected character {found:?} at byte {position}")
            }
            SqlError::Parse { message } => write!(f, "parse error: {message}"),
            SqlError::UnknownTable { name } => write!(f, "unknown table {name:?}"),
            SqlError::DuplicateTable { name } => write!(f, "table {name:?} already exists"),
            SqlError::Unsupported { message } => write!(f, "unsupported: {message}"),
        }
    }
}

impl std::error::Error for SqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(SqlError::Lex {
            position: 3,
            found: '@'
        }
        .to_string()
        .contains("'@'"));
        assert!(SqlError::Parse {
            message: "boom".into()
        }
        .to_string()
        .contains("boom"));
        assert!(SqlError::UnknownTable { name: "t".into() }
            .to_string()
            .contains("\"t\""));
        assert!(SqlError::DuplicateTable { name: "t".into() }
            .to_string()
            .contains("already"));
        assert!(SqlError::Unsupported {
            message: "x".into()
        }
        .to_string()
        .contains("x"));
    }
}
