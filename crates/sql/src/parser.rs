//! Recursive-descent parser for the extended trajectory SQL.

use crate::ast::{NumExpr, QueryArg, SimilarityPredicate, Statement};
use crate::error::SqlError;
use crate::lexer::{tokenize, Token};
use dita_distance::DistanceFunction;

/// Parses one statement (a trailing semicolon is allowed).
pub fn parse(sql: &str) -> Result<Statement, SqlError> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_if(&Token::Semicolon);
    if !p.at_end() {
        return Err(p.err("trailing tokens after statement"));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: &str) -> SqlError {
        SqlError::Parse {
            message: format!("{message} (at token {})", self.pos),
        }
    }

    fn eat_if(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token, what: &str) -> Result<(), SqlError> {
        if self.eat_if(t) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {what}")))
        }
    }

    /// Consumes a keyword (case-insensitive identifier).
    fn expect_kw(&mut self, kw: &str) -> Result<(), SqlError> {
        match self.next() {
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw) => Ok(()),
            _ => Err(self.err(&format!("expected keyword {kw}"))),
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn ident(&mut self, what: &str) -> Result<String, SqlError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            _ => Err(self.err(&format!("expected {what}"))),
        }
    }

    fn statement(&mut self) -> Result<Statement, SqlError> {
        if self.peek_kw("EXPLAIN") {
            self.pos += 1;
            let inner = self.statement()?;
            return Ok(Statement::Explain(Box::new(inner)));
        }
        if self.peek_kw("SELECT") {
            self.select()
        } else if self.peek_kw("INSERT") {
            self.insert()
        } else if self.peek_kw("DELETE") {
            self.delete()
        } else if self.peek_kw("CREATE") {
            self.create_index()
        } else if self.peek_kw("SHOW") {
            self.pos += 1;
            self.expect_kw("TABLES")?;
            Ok(Statement::ShowTables)
        } else {
            Err(self.err("expected SELECT, INSERT, DELETE, CREATE, SHOW or EXPLAIN"))
        }
    }

    /// `INSERT INTO t VALUES (id, TRAJECTORY((x, y), ...)), ...`
    fn insert(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw("INSERT")?;
        self.expect_kw("INTO")?;
        let table = self.ident("table name")?;
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&Token::LParen, "`(` of row")?;
            let id = self.trajectory_id()?;
            self.expect(&Token::Comma, "`,` after id")?;
            self.expect_kw("TRAJECTORY")?;
            let points = self.trajectory_literal()?;
            self.expect(&Token::RParen, "`)` of row")?;
            rows.push((id, points));
            if !self.eat_if(&Token::Comma) {
                break;
            }
        }
        Ok(Statement::Insert { table, rows })
    }

    /// `DELETE FROM t WHERE id = <id>` — the only supported DELETE shape;
    /// a bare `DELETE FROM t` (truncate) is rejected.
    fn delete(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw("DELETE")?;
        self.expect_kw("FROM")?;
        let table = self.ident("table name")?;
        self.expect_kw("WHERE")?;
        let col = self.ident("column name")?;
        if !col.eq_ignore_ascii_case("id") {
            return Err(self.err("DELETE supports only `WHERE id = <integer>`"));
        }
        self.expect(&Token::Eq, "`=`")?;
        let id = self.trajectory_id()?;
        Ok(Statement::Delete { table, id })
    }

    fn trajectory_id(&mut self) -> Result<u64, SqlError> {
        match self.next() {
            Some(Token::Number(n)) if n >= 0.0 && n.fract() == 0.0 => Ok(n as u64),
            _ => Err(self.err("expected a non-negative integer id")),
        }
    }

    fn create_index(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw("CREATE")?;
        self.expect_kw("INDEX")?;
        let name = self.ident("index name")?;
        self.expect_kw("ON")?;
        let table = self.ident("table name")?;
        self.expect_kw("USE")?;
        self.expect_kw("TRIE")?;
        Ok(Statement::CreateIndex { name, table })
    }

    fn select(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw("SELECT")?;
        self.expect(&Token::Star, "projection `*`")?;
        self.expect_kw("FROM")?;
        let table = self.ident("table name")?;

        // TRA-JOIN?
        if self.peek_kw("TRA") {
            self.pos += 1;
            self.expect(&Token::Minus, "`-` of TRA-JOIN")?;
            self.expect_kw("JOIN")?;
            let right = self.ident("right table name")?;
            self.expect_kw("ON")?;
            let predicate = self.similarity_predicate()?;
            if let QueryArg::Literal(_) = predicate.query {
                return Err(self.err("TRA-JOIN predicates must reference both tables"));
            }
            return Ok(Statement::TraJoin {
                left: table,
                right,
                predicate,
            });
        }

        // ORDER BY f(t, TRAJECTORY(...)) LIMIT k — the kNN form.
        if self.peek_kw("ORDER") {
            self.pos += 1;
            self.expect_kw("BY")?;
            let func_name = self.ident("distance function name")?;
            let func: DistanceFunction = func_name
                .parse()
                .map_err(|e: String| SqlError::Parse { message: e })?;
            self.expect(&Token::LParen, "`(`")?;
            let left = self.ident("left argument")?;
            if !left.eq_ignore_ascii_case(&table) {
                return Err(self.err("ORDER BY must reference the FROM table"));
            }
            self.expect(&Token::Comma, "`,`")?;
            self.expect_kw("TRAJECTORY")?;
            let query = self.trajectory_literal()?;
            self.expect(&Token::RParen, "`)`")?;
            self.expect_kw("LIMIT")?;
            let k = match self.next() {
                Some(Token::Number(n)) if n >= 0.0 && n.fract() == 0.0 => n as usize,
                _ => return Err(self.err("LIMIT expects a non-negative integer")),
            };
            return Ok(Statement::Knn {
                table,
                func,
                query,
                k,
            });
        }

        let predicate = if self.peek_kw("WHERE") {
            self.pos += 1;
            Some(self.similarity_predicate()?)
        } else {
            None
        };
        Ok(Statement::Select { table, predicate })
    }

    /// `FUNC(left, TRAJECTORY(...)|right) <= expr`
    fn similarity_predicate(&mut self) -> Result<SimilarityPredicate, SqlError> {
        let func_name = self.ident("distance function name")?;
        let func: DistanceFunction = func_name
            .parse()
            .map_err(|e: String| SqlError::Parse { message: e })?;
        self.expect(&Token::LParen, "`(`")?;
        let left = self.ident("left argument")?;
        self.expect(&Token::Comma, "`,`")?;
        let query = if self.peek_kw("TRAJECTORY") {
            self.pos += 1;
            QueryArg::Literal(self.trajectory_literal()?)
        } else {
            QueryArg::Table(self.ident("right argument")?)
        };
        self.expect(&Token::RParen, "`)`")?;
        self.expect(&Token::Le, "`<=`")?;
        let threshold = self.num_expr()?;
        Ok(SimilarityPredicate {
            func,
            left,
            query,
            threshold,
        })
    }

    /// `((x, y), (x, y), ...)`
    fn trajectory_literal(&mut self) -> Result<Vec<(f64, f64)>, SqlError> {
        self.expect(&Token::LParen, "`(` of TRAJECTORY")?;
        let mut points = Vec::new();
        loop {
            self.expect(&Token::LParen, "`(` of point")?;
            let x = self.signed_number()?;
            self.expect(&Token::Comma, "`,` in point")?;
            let y = self.signed_number()?;
            self.expect(&Token::RParen, "`)` of point")?;
            points.push((x, y));
            if !self.eat_if(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen, "`)` of TRAJECTORY")?;
        if points.is_empty() {
            return Err(self.err("TRAJECTORY literals need at least one point"));
        }
        Ok(points)
    }

    fn signed_number(&mut self) -> Result<f64, SqlError> {
        let neg = self.eat_if(&Token::Minus);
        match self.next() {
            Some(Token::Number(n)) => Ok(if neg { -n } else { n }),
            _ => Err(self.err("expected a number")),
        }
    }

    /// `term (('+'|'-') term)*`
    fn num_expr(&mut self) -> Result<NumExpr, SqlError> {
        let mut lhs = self.num_term()?;
        loop {
            if self.eat_if(&Token::Plus) {
                let rhs = self.num_term()?;
                lhs = NumExpr::Add(Box::new(lhs), Box::new(rhs));
            } else if self.eat_if(&Token::Minus) {
                let rhs = self.num_term()?;
                lhs = NumExpr::Sub(Box::new(lhs), Box::new(rhs));
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    /// `factor ('*' factor)*`
    fn num_term(&mut self) -> Result<NumExpr, SqlError> {
        let mut lhs = self.num_factor()?;
        while self.eat_if(&Token::Star) {
            let rhs = self.num_factor()?;
            lhs = NumExpr::Mul(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn num_factor(&mut self) -> Result<NumExpr, SqlError> {
        if self.eat_if(&Token::LParen) {
            let e = self.num_expr()?;
            self.expect(&Token::RParen, "`)`")?;
            return Ok(e);
        }
        let neg = self.eat_if(&Token::Minus);
        match self.next() {
            Some(Token::Number(n)) => Ok(NumExpr::Lit(if neg { -n } else { n })),
            _ => Err(self.err("expected a numeric literal")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_similarity_search() {
        let s =
            parse("SELECT * FROM taxi WHERE DTW(taxi, TRAJECTORY((1, 1), (2.5, -3))) <= 0.005;")
                .unwrap();
        match s {
            Statement::Select { table, predicate } => {
                assert_eq!(table, "taxi");
                let p = predicate.unwrap();
                assert_eq!(p.func, DistanceFunction::Dtw);
                assert_eq!(p.query, QueryArg::Literal(vec![(1.0, 1.0), (2.5, -3.0)]));
                assert!((p.threshold.fold() - 0.005).abs() < 1e-12);
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn parses_plain_select() {
        let s = parse("SELECT * FROM t").unwrap();
        assert_eq!(
            s,
            Statement::Select {
                table: "t".into(),
                predicate: None
            }
        );
    }

    #[test]
    fn parses_tra_join() {
        let s = parse("SELECT * FROM t TRA-JOIN q ON FRECHET(t, q) <= 0.001 * 3").unwrap();
        match s {
            Statement::TraJoin {
                left,
                right,
                predicate,
            } => {
                assert_eq!(left, "t");
                assert_eq!(right, "q");
                assert_eq!(predicate.func, DistanceFunction::Frechet);
                assert_eq!(predicate.query, QueryArg::Table("q".into()));
                assert!((predicate.threshold.fold() - 0.003).abs() < 1e-12);
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn parses_create_index() {
        let s = parse("CREATE INDEX TrieIndex ON t USE TRIE").unwrap();
        assert_eq!(
            s,
            Statement::CreateIndex {
                name: "TrieIndex".into(),
                table: "t".into()
            }
        );
    }

    #[test]
    fn parses_knn() {
        let s = parse("SELECT * FROM t ORDER BY DTW(t, TRAJECTORY((1,1),(2,2))) LIMIT 5").unwrap();
        match s {
            Statement::Knn {
                table,
                func,
                query,
                k,
            } => {
                assert_eq!(table, "t");
                assert_eq!(func, DistanceFunction::Dtw);
                assert_eq!(query, vec![(1.0, 1.0), (2.0, 2.0)]);
                assert_eq!(k, 5);
            }
            other => panic!("wrong statement: {other:?}"),
        }
        assert!(parse("SELECT * FROM t ORDER BY DTW(z, TRAJECTORY((1,1))) LIMIT 5").is_err());
        assert!(parse("SELECT * FROM t ORDER BY DTW(t, TRAJECTORY((1,1))) LIMIT 2.5").is_err());
    }

    #[test]
    fn parses_insert() {
        let s = parse(
            "INSERT INTO taxi VALUES (7, TRAJECTORY((1, 1), (2, 2))), \
             (8, TRAJECTORY((0, -1)))",
        )
        .unwrap();
        match s {
            Statement::Insert { table, rows } => {
                assert_eq!(table, "taxi");
                assert_eq!(
                    rows,
                    vec![(7, vec![(1.0, 1.0), (2.0, 2.0)]), (8, vec![(0.0, -1.0)]),]
                );
            }
            other => panic!("wrong statement: {other:?}"),
        }
        // Ids must be non-negative integers; rows need the TRAJECTORY form.
        assert!(parse("INSERT INTO t VALUES (1.5, TRAJECTORY((0,0)))").is_err());
        assert!(parse("INSERT INTO t VALUES (-1, TRAJECTORY((0,0)))").is_err());
        assert!(parse("INSERT INTO t VALUES (1, ((0,0)))").is_err());
        assert!(parse("INSERT INTO t VALUES (1, TRAJECTORY())").is_err());
    }

    #[test]
    fn parses_delete_by_id_only() {
        assert_eq!(
            parse("DELETE FROM taxi WHERE id = 3;").unwrap(),
            Statement::Delete {
                table: "taxi".into(),
                id: 3
            }
        );
        // Truncate and non-id predicates stay errors.
        assert!(parse("DELETE FROM taxi").is_err());
        assert!(parse("DELETE FROM taxi WHERE name = 3").is_err());
        assert!(parse("DELETE FROM taxi WHERE id = 1.5").is_err());
    }

    #[test]
    fn parses_explain() {
        let s = parse("EXPLAIN SELECT * FROM t").unwrap();
        assert!(matches!(s, Statement::Explain(_)));
        // Nested EXPLAIN is accepted and harmless.
        assert!(parse("EXPLAIN EXPLAIN SHOW TABLES").is_ok());
    }

    #[test]
    fn parses_show_tables() {
        assert_eq!(parse("SHOW TABLES;").unwrap(), Statement::ShowTables);
    }

    #[test]
    fn keywords_case_insensitive() {
        assert!(parse("select * from t where dtw(t, trajectory((0,0))) <= 1").is_ok());
    }

    #[test]
    fn join_with_literal_rejected() {
        let err =
            parse("SELECT * FROM t TRA-JOIN q ON DTW(t, TRAJECTORY((0,0))) <= 1").unwrap_err();
        assert!(err.to_string().contains("both tables"));
    }

    #[test]
    fn unknown_function_rejected() {
        let err = parse("SELECT * FROM t WHERE COSINE(t, q) <= 1").unwrap_err();
        assert!(err.to_string().contains("cosine"));
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("SHOW TABLES banana").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn threshold_arithmetic_with_parens() {
        let s = parse("SELECT * FROM t WHERE DTW(t, TRAJECTORY((0,0))) <= (1 + 2) * 0.5").unwrap();
        if let Statement::Select {
            predicate: Some(p), ..
        } = s
        {
            assert!((p.threshold.fold() - 1.5).abs() < 1e-12);
        } else {
            panic!("wrong statement");
        }
    }
}
