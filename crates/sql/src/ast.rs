//! The abstract syntax of the extended trajectory SQL (§3).

use dita_distance::DistanceFunction;

/// A numeric expression for the threshold: literals combined with `+`, `-`
/// and `*`, folded to a constant at planning time (the paper's "constant
/// folding" rule-based optimization).
#[derive(Debug, Clone, PartialEq)]
pub enum NumExpr {
    /// A literal.
    Lit(f64),
    /// Addition.
    Add(Box<NumExpr>, Box<NumExpr>),
    /// Subtraction.
    Sub(Box<NumExpr>, Box<NumExpr>),
    /// Multiplication.
    Mul(Box<NumExpr>, Box<NumExpr>),
}

impl NumExpr {
    /// Folds the expression to a constant.
    pub fn fold(&self) -> f64 {
        match self {
            NumExpr::Lit(v) => *v,
            NumExpr::Add(a, b) => a.fold() + b.fold(),
            NumExpr::Sub(a, b) => a.fold() - b.fold(),
            NumExpr::Mul(a, b) => a.fold() * b.fold(),
        }
    }
}

/// The second argument of a similarity predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryArg {
    /// A trajectory literal: `TRAJECTORY((x, y), ...)`.
    Literal(Vec<(f64, f64)>),
    /// A table reference (the join case).
    Table(String),
}

/// A similarity predicate `f(T, Q) <= τ`.
#[derive(Debug, Clone, PartialEq)]
pub struct SimilarityPredicate {
    /// The distance function.
    pub func: DistanceFunction,
    /// Left table name (as written in the predicate).
    pub left: String,
    /// The query argument: literal trajectory or right table.
    pub query: QueryArg,
    /// The threshold expression.
    pub threshold: NumExpr,
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `SELECT * FROM t [WHERE f(t, TRAJECTORY(...)) <= τ]`.
    Select {
        /// The scanned table.
        table: String,
        /// Optional similarity predicate.
        predicate: Option<SimilarityPredicate>,
    },
    /// `SELECT * FROM t ORDER BY f(t, TRAJECTORY(...)) LIMIT k` — kNN.
    Knn {
        /// The scanned table.
        table: String,
        /// Distance function.
        func: dita_distance::DistanceFunction,
        /// The query trajectory literal.
        query: Vec<(f64, f64)>,
        /// Number of neighbors.
        k: usize,
    },
    /// `SELECT * FROM t TRA-JOIN q ON f(t, q) <= τ`.
    TraJoin {
        /// Left table.
        left: String,
        /// Right table.
        right: String,
        /// The join predicate.
        predicate: SimilarityPredicate,
    },
    /// `INSERT INTO t VALUES (id, TRAJECTORY((x, y), ...)), ...` — upsert
    /// rows into a table (and its index, when one exists).
    Insert {
        /// The target table.
        table: String,
        /// `(id, points)` rows; an existing id is overwritten.
        rows: Vec<(u64, Vec<(f64, f64)>)>,
    },
    /// `DELETE FROM t WHERE id = <id>` — delete one trajectory by id.
    /// Bare `DELETE FROM t` (truncate) is intentionally not supported.
    Delete {
        /// The target table.
        table: String,
        /// The trajectory id to delete.
        id: u64,
    },
    /// `CREATE INDEX name ON t USE TRIE`.
    CreateIndex {
        /// Index name (informational).
        name: String,
        /// The table to index.
        table: String,
    },
    /// `SHOW TABLES`.
    ShowTables,
    /// `EXPLAIN <statement>`: show the physical plan without executing.
    Explain(Box<Statement>),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numexpr_folding() {
        // 0.001 * 5 + 0.0005 - 0.0005 = 0.005
        let e = NumExpr::Sub(
            Box::new(NumExpr::Add(
                Box::new(NumExpr::Mul(
                    Box::new(NumExpr::Lit(0.001)),
                    Box::new(NumExpr::Lit(5.0)),
                )),
                Box::new(NumExpr::Lit(0.0005)),
            )),
            Box::new(NumExpr::Lit(0.0005)),
        );
        assert!((e.fold() - 0.005).abs() < 1e-12);
    }
}
