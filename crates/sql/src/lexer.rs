//! A hand-written tokenizer for the extended trajectory SQL.

use crate::error::SqlError;

/// One token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (stored as written; keyword matching is
    /// case-insensitive at the parser level).
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `*`
    Star,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// `<=`
    Le,
    /// `<`
    Lt,
    /// `=`
    Eq,
    /// `-`
    Minus,
    /// `+`
    Plus,
}

/// Tokenizes `input`, skipping whitespace and `--` line comments.
pub fn tokenize(input: &str) -> Result<Vec<Token>, SqlError> {
    let mut out = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '.' => {
                out.push(Token::Dot);
                i += 1;
            }
            ';' => {
                out.push(Token::Semicolon);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Le);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'-') {
                    // Line comment.
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                } else {
                    out.push(Token::Minus);
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || ((bytes[i] == b'-' || bytes[i] == b'+')
                            && i > start
                            && (bytes[i - 1] == b'e' || bytes[i - 1] == b'E')))
                {
                    i += 1;
                }
                let text = &input[start..i];
                let n: f64 = text.parse().map_err(|_| SqlError::Parse {
                    message: format!("invalid number {text:?}"),
                })?;
                out.push(Token::Number(n));
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Token::Ident(input[start..i].to_string()));
            }
            other => {
                return Err(SqlError::Lex {
                    position: i,
                    found: other,
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_search_query() {
        let toks =
            tokenize("SELECT * FROM t WHERE DTW(t, TRAJECTORY((1,2),(3.5,4))) <= 0.005").unwrap();
        assert_eq!(toks[0], Token::Ident("SELECT".into()));
        assert_eq!(toks[1], Token::Star);
        assert!(toks.contains(&Token::Le));
        assert!(toks.contains(&Token::Number(3.5)));
        assert!(toks.contains(&Token::Number(0.005)));
    }

    #[test]
    fn tokenizes_tra_join() {
        let toks = tokenize("t TRA-JOIN q ON").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("t".into()),
                Token::Ident("TRA".into()),
                Token::Minus,
                Token::Ident("JOIN".into()),
                Token::Ident("q".into()),
                Token::Ident("ON".into()),
            ]
        );
    }

    #[test]
    fn negative_numbers_are_minus_then_number() {
        let toks = tokenize("(-1.5, 2)").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::LParen,
                Token::Minus,
                Token::Number(1.5),
                Token::Comma,
                Token::Number(2.0),
                Token::RParen,
            ]
        );
    }

    #[test]
    fn scientific_notation() {
        let toks = tokenize("1e-4 2.5E+2").unwrap();
        assert_eq!(toks, vec![Token::Number(1e-4), Token::Number(250.0)]);
    }

    #[test]
    fn comments_skipped() {
        let toks = tokenize("SELECT -- everything\n*").unwrap();
        assert_eq!(toks, vec![Token::Ident("SELECT".into()), Token::Star]);
    }

    #[test]
    fn bad_character_reported_with_position() {
        let err = tokenize("SELECT @").unwrap_err();
        assert_eq!(
            err,
            SqlError::Lex {
                position: 7,
                found: '@'
            }
        );
    }
}
