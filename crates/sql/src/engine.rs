//! The query engine: catalog + plan execution.

use crate::error::SqlError;
use crate::parser::parse;
use crate::plan::{logical_plan, physical_plan, PhysicalPlan};
use dita_cluster::Cluster;
use dita_core::{
    join, knn_search, search, search_batch, DitaConfig, DitaSystem, JoinOptions, SearchOptions,
};
use dita_distance::DistanceFunction;
use dita_trajectory::{Dataset, Point, Trajectory, TrajectoryId};
use std::collections::BTreeMap;

/// The result of executing a statement.
#[derive(Debug)]
pub enum QueryResult {
    /// Full-scan rows.
    Rows(Vec<Trajectory>),
    /// Similarity search hits `(id, distance)`.
    SearchHits(Vec<(TrajectoryId, f64)>),
    /// Similarity join pairs `(left id, right id, distance)`.
    JoinPairs(Vec<(TrajectoryId, TrajectoryId, f64)>),
    /// DDL acknowledgement.
    Ack(String),
    /// `SHOW TABLES` output.
    TableNames(Vec<String>),
    /// `EXPLAIN` output: the physical plan description.
    Plan(String),
}

struct TableEntry {
    dataset: Dataset,
    system: Option<DitaSystem>,
}

/// A SQL engine over a simulated cluster.
///
/// Tables are registered programmatically (the stand-in for Spark's data
/// sources), then queried through [`Engine::execute`] or the
/// [`crate::DataFrame`] API.
pub struct Engine {
    cluster: Cluster,
    config: DitaConfig,
    tables: BTreeMap<String, TableEntry>,
}

impl Engine {
    /// Creates an engine; `config` governs indexes built by this engine.
    pub fn new(cluster: Cluster, config: DitaConfig) -> Self {
        Engine {
            cluster,
            config,
            tables: BTreeMap::new(),
        }
    }

    /// Attaches an observability context: indexes this engine has built
    /// (and every index it builds from now on) record executor metrics and
    /// operator spans into it. `dita-server` attaches its context here so
    /// service-side spans parent over operator spans.
    pub fn attach_obs(&mut self, obs: dita_obs::Obs) {
        self.cluster.attach_obs(obs.clone());
        for entry in self.tables.values_mut() {
            if let Some(sys) = entry.system.as_mut() {
                sys.attach_obs(obs.clone());
            }
        }
    }

    /// Registers a dataset as a table.
    pub fn register(&mut self, name: &str, dataset: Dataset) -> Result<(), SqlError> {
        let key = name.to_ascii_lowercase();
        if self.tables.contains_key(&key) {
            return Err(SqlError::DuplicateTable { name: name.into() });
        }
        self.tables.insert(
            key,
            TableEntry {
                dataset,
                system: None,
            },
        );
        Ok(())
    }

    /// Registered table names.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    /// Whether a table currently has a trie index.
    pub fn is_indexed(&self, name: &str) -> bool {
        self.tables
            .get(&name.to_ascii_lowercase())
            .is_some_and(|t| t.system.is_some())
    }

    /// The trie-indexed system of a table, if one has been built.
    pub fn system(&self, name: &str) -> Option<&DitaSystem> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .and_then(|t| t.system.as_ref())
    }

    /// The registered dataset of a table.
    pub fn dataset(&self, name: &str) -> Result<&Dataset, SqlError> {
        self.entry(name).map(|e| &e.dataset)
    }

    fn entry(&self, name: &str) -> Result<&TableEntry, SqlError> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| SqlError::UnknownTable { name: name.into() })
    }

    fn entry_mut(&mut self, name: &str) -> Result<&mut TableEntry, SqlError> {
        self.tables
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| SqlError::UnknownTable { name: name.into() })
    }

    /// Builds (or reuses) the trie index of a table and returns it.
    pub fn ensure_index(&mut self, name: &str) -> Result<&DitaSystem, SqlError> {
        let key = name.to_ascii_lowercase();
        if !self.tables.contains_key(&key) {
            return Err(SqlError::UnknownTable { name: name.into() });
        }
        let entry = self.tables.get_mut(&key).expect("checked above");
        if entry.system.is_none() {
            entry.system = Some(DitaSystem::build(
                &entry.dataset,
                self.config,
                self.cluster.clone(),
            ));
        }
        Ok(entry.system.as_ref().expect("just built"))
    }

    /// Returns the EXPLAIN string for a statement without executing it.
    pub fn explain(&self, sql: &str) -> Result<String, SqlError> {
        let stmt = parse(sql)?;
        let lp = logical_plan(stmt)?;
        let pp = physical_plan(lp, |t| self.is_indexed(t));
        Ok(pp.describe())
    }

    /// Parses, plans and executes several statements in order, answering
    /// runs of compatible indexed searches with one batched cluster job.
    ///
    /// Consecutive statements that plan to
    /// [`PhysicalPlan::IndexSearch`] on the same table and distance
    /// function are executed through `dita-core`'s `search_batch` — one
    /// shared trie traversal and one task per worker for the whole run —
    /// instead of a per-statement loop. Results are identical to calling
    /// [`Engine::execute`] on each statement (pinned by test); any other
    /// statement (or an unparsable one) closes the current run and executes
    /// normally, so ordering and error positions are preserved. The first
    /// error aborts the batch.
    pub fn execute_batch(&mut self, stmts: &[&str]) -> Result<Vec<QueryResult>, SqlError> {
        let mut out = Vec::with_capacity(stmts.len());
        let mut i = 0;
        while i < stmts.len() {
            // A statement that is not an indexed search (or fails to plan —
            // its error surfaces in order below) runs through the normal
            // single-statement path.
            let Ok(PhysicalPlan::IndexSearch {
                table,
                func,
                query,
                tau,
            }) = self.plan(stmts[i])
            else {
                out.push(self.execute(stmts[i])?);
                i += 1;
                continue;
            };
            // Extend the run while the following statements plan to a
            // compatible search. Searches are read-only, so planning ahead
            // under the current catalog state is sound.
            let mut queries: Vec<(Vec<Point>, f64)> = vec![(query, tau)];
            let mut j = i + 1;
            while j < stmts.len() {
                match self.plan(stmts[j]) {
                    Ok(PhysicalPlan::IndexSearch {
                        table: t2,
                        func: f2,
                        query: q2,
                        tau: tau2,
                    }) if t2 == table && f2 == func => {
                        queries.push((q2, tau2));
                        j += 1;
                    }
                    _ => break,
                }
            }
            let entry = self.entry(&table)?;
            let system = entry.system.as_ref().expect("planner checked the index");
            let qs: Vec<&[Point]> = queries.iter().map(|(q, _)| q.as_slice()).collect();
            let taus: Vec<f64> = queries.iter().map(|&(_, tau)| tau).collect();
            let (results, _) = search_batch(system, &qs, &taus, &func, SearchOptions::default());
            out.extend(results.into_iter().map(QueryResult::SearchHits));
            i = j;
        }
        Ok(out)
    }

    /// Upserts `rows` into a table (the `INSERT` write path): latest write
    /// wins in the dataset mirror, and, when the table is indexed, each row
    /// goes through the index's delta ingestion. Returns the row count.
    pub fn insert_rows(
        &mut self,
        table: &str,
        rows: Vec<(TrajectoryId, Vec<Point>)>,
    ) -> Result<usize, SqlError> {
        for (_, pts) in &rows {
            if pts.iter().any(|p| !p.x.is_finite() || !p.y.is_finite()) {
                return Err(SqlError::Parse {
                    message: "trajectory coordinates must be finite".into(),
                });
            }
        }
        let entry = self.entry_mut(table)?;
        let n = rows.len();
        let name = entry.dataset.name.clone();
        let mut trajectories = std::mem::replace(
            &mut entry.dataset,
            Dataset::new_unchecked(name.clone(), Vec::new()),
        )
        .into_trajectories();
        for (id, pts) in rows {
            let t = Trajectory::new(id, pts);
            // Latest write wins, in the dataset mirror and the index.
            trajectories.retain(|x| x.id != id);
            trajectories.push(t.clone());
            if let Some(sys) = entry.system.as_mut() {
                sys.insert(t);
            }
        }
        trajectories.sort_by_key(|t| t.id);
        entry.dataset = Dataset::new_unchecked(name, trajectories);
        Ok(n)
    }

    /// Deletes one trajectory by id (the `DELETE` write path): removed from
    /// the dataset mirror, tombstoned in the index when one exists. Returns
    /// whether the id was present.
    pub fn delete_row(&mut self, table: &str, id: TrajectoryId) -> Result<bool, SqlError> {
        let entry = self.entry_mut(table)?;
        let name = entry.dataset.name.clone();
        let mut trajectories = std::mem::replace(
            &mut entry.dataset,
            Dataset::new_unchecked(name.clone(), Vec::new()),
        )
        .into_trajectories();
        let before = trajectories.len();
        trajectories.retain(|t| t.id != id);
        let removed = before != trajectories.len();
        entry.dataset = Dataset::new_unchecked(name, trajectories);
        if let Some(sys) = entry.system.as_mut() {
            sys.delete(id);
        }
        Ok(removed)
    }

    /// Flushes a table's pending deltas into its trie index. A no-op (and
    /// not an error) when the table has no index yet.
    pub fn flush(&mut self, table: &str) -> Result<(), SqlError> {
        let entry = self.entry_mut(table)?;
        if let Some(sys) = entry.system.as_mut() {
            sys.flush();
        }
        Ok(())
    }

    /// Runs the compaction policy on a table's index; returns whether a
    /// compaction actually happened (`false` for unindexed tables too).
    pub fn compact(&mut self, table: &str) -> Result<bool, SqlError> {
        let entry = self.entry_mut(table)?;
        Ok(entry.system.as_mut().is_some_and(|sys| sys.compact()))
    }

    /// Flushes pending deltas on every indexed table — the shutdown hook
    /// `dita-server` calls so no acknowledged write is left buffered.
    pub fn flush_all(&mut self) {
        for entry in self.tables.values_mut() {
            if let Some(sys) = entry.system.as_mut() {
                sys.flush();
            }
        }
    }

    fn plan(&self, sql: &str) -> Result<PhysicalPlan, SqlError> {
        let stmt = parse(sql)?;
        let lp = logical_plan(stmt)?;
        Ok(physical_plan(lp, |t| self.is_indexed(t)))
    }

    /// Parses, plans and executes one statement.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult, SqlError> {
        let stmt = parse(sql)?;
        let lp = logical_plan(stmt)?;
        let pp = physical_plan(lp, |t| self.is_indexed(t));
        match pp {
            PhysicalPlan::FullScan { table } => {
                let entry = self.entry(&table)?;
                Ok(QueryResult::Rows(entry.dataset.trajectories().to_vec()))
            }
            PhysicalPlan::IndexSearch {
                table,
                func,
                query,
                tau,
            } => {
                let entry = self.entry(&table)?;
                let system = entry.system.as_ref().expect("planner checked the index");
                let (hits, _) = search(system, &query, tau, &func);
                Ok(QueryResult::SearchHits(hits))
            }
            PhysicalPlan::ScanSearch {
                table,
                func,
                query,
                tau,
            } => {
                let entry = self.entry(&table)?;
                Ok(QueryResult::SearchHits(scan_search(
                    entry.dataset.trajectories(),
                    &query,
                    tau,
                    &func,
                )))
            }
            PhysicalPlan::IndexKnn {
                table,
                func,
                query,
                k,
            } => {
                self.ensure_index(&table)?;
                let system = self.entry(&table)?.system.as_ref().expect("built");
                let (hits, _) = knn_search(system, &query, k, &func);
                Ok(QueryResult::SearchHits(hits))
            }
            PhysicalPlan::IndexJoin {
                left,
                right,
                func,
                tau,
            } => {
                self.entry(&left)?;
                self.entry(&right)?;
                self.ensure_index(&left)?;
                self.ensure_index(&right)?;
                let lsys = self.entry(&left)?.system.as_ref().expect("built");
                let rsys = self.entry(&right)?.system.as_ref().expect("built");
                let (pairs, _) = join(lsys, rsys, tau, &func, &JoinOptions::default());
                Ok(QueryResult::JoinPairs(pairs))
            }
            PhysicalPlan::IngestInsert { table, rows } => {
                let n = self.insert_rows(&table, rows)?;
                Ok(QueryResult::Ack(format!(
                    "inserted {n} row(s) into {table}"
                )))
            }
            PhysicalPlan::IngestDelete { table, id } => {
                let removed = self.delete_row(&table, id)?;
                Ok(QueryResult::Ack(if removed {
                    format!("deleted id {id} from {table}")
                } else {
                    format!("id {id} not found in {table}")
                }))
            }
            PhysicalPlan::BuildIndex { table } => {
                self.ensure_index(&table)?;
                Ok(QueryResult::Ack(format!("trie index built on {table}")))
            }
            PhysicalPlan::ListTables => Ok(QueryResult::TableNames(self.table_names())),
            PhysicalPlan::Explain(inner) => Ok(QueryResult::Plan(inner.describe())),
        }
    }
}

/// Index-free search fallback: verify every trajectory.
fn scan_search(
    trajectories: &[Trajectory],
    q: &[Point],
    tau: f64,
    func: &DistanceFunction,
) -> Vec<(TrajectoryId, f64)> {
    let mut hits: Vec<(TrajectoryId, f64)> = trajectories
        .iter()
        .filter_map(|t| func.verify(t.points(), q, tau).map(|d| (t.id, d)))
        .collect();
    hits.sort_by_key(|&(id, _)| id);
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use dita_cluster::ClusterConfig;
    use dita_index::{PivotStrategy, TrieConfig};
    use dita_trajectory::trajectory::figure1_trajectories;

    fn engine() -> Engine {
        let mut e = Engine::new(
            Cluster::new(ClusterConfig::with_workers(2)),
            DitaConfig {
                ng: 2,
                trie: TrieConfig {
                    k: 2,
                    nl: 2,
                    leaf_capacity: 0,
                    strategy: PivotStrategy::NeighborDistance,
                    cell_side: 2.0,
                    ..TrieConfig::default()
                },
            },
        );
        e.register(
            "taxi",
            Dataset::new("fig1", figure1_trajectories()).unwrap(),
        )
        .unwrap();
        e
    }

    #[test]
    fn full_lifecycle() {
        let mut e = engine();
        // SHOW TABLES.
        match e.execute("SHOW TABLES").unwrap() {
            QueryResult::TableNames(names) => assert_eq!(names, vec!["taxi"]),
            other => panic!("{other:?}"),
        }
        // Unindexed search falls back to scanning.
        assert!(e
            .explain("SELECT * FROM taxi WHERE DTW(taxi, TRAJECTORY((1,1))) <= 1")
            .unwrap()
            .contains("ScanSearch"));
        // Build the index.
        match e.execute("CREATE INDEX trie_idx ON taxi USE TRIE").unwrap() {
            QueryResult::Ack(msg) => assert!(msg.contains("taxi")),
            other => panic!("{other:?}"),
        }
        assert!(e.is_indexed("taxi"));
        assert!(e
            .explain("SELECT * FROM taxi WHERE DTW(taxi, TRAJECTORY((1,1))) <= 1")
            .unwrap()
            .contains("IndexSearch"));
    }

    #[test]
    fn sql_search_matches_example_2_6() {
        let mut e = engine();
        e.execute("CREATE INDEX i ON taxi USE TRIE").unwrap();
        // Q = T1, τ = 3.
        let sql = "SELECT * FROM taxi WHERE DTW(taxi, \
                   TRAJECTORY((1,1),(1,2),(3,2),(4,4),(4,5),(5,5))) <= 3";
        match e.execute(sql).unwrap() {
            QueryResult::SearchHits(hits) => {
                let ids: Vec<u64> = hits.iter().map(|&(i, _)| i).collect();
                assert_eq!(ids, vec![1, 2]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn scan_and_index_search_agree() {
        let mut e = engine();
        let sql = "SELECT * FROM taxi WHERE FRECHET(taxi, \
                   TRAJECTORY((1,1),(1,2),(3,2),(4,4),(4,5),(5,5))) <= 1.5";
        let scan = match e.execute(sql).unwrap() {
            QueryResult::SearchHits(h) => h,
            other => panic!("{other:?}"),
        };
        e.execute("CREATE INDEX i ON taxi USE TRIE").unwrap();
        let indexed = match e.execute(sql).unwrap() {
            QueryResult::SearchHits(h) => h,
            other => panic!("{other:?}"),
        };
        assert_eq!(scan, indexed);
    }

    #[test]
    fn sql_join_matches_ground_truth() {
        let mut e = engine();
        e.register(
            "taxi2",
            Dataset::new("fig1b", figure1_trajectories()).unwrap(),
        )
        .unwrap();
        let pairs = match e
            .execute("SELECT * FROM taxi TRA-JOIN taxi2 ON DTW(taxi, taxi2) <= 3")
            .unwrap()
        {
            QueryResult::JoinPairs(p) => p,
            other => panic!("{other:?}"),
        };
        let ts = figure1_trajectories();
        let mut expect = Vec::new();
        for a in &ts {
            for b in &ts {
                if dita_distance::dtw(a.points(), b.points()) <= 3.0 {
                    expect.push((a.id, b.id));
                }
            }
        }
        expect.sort_unstable();
        let got: Vec<(u64, u64)> = pairs.iter().map(|&(a, b, _)| (a, b)).collect();
        assert_eq!(got, expect);
        // Joins build indexes as a side effect (§6.1).
        assert!(e.is_indexed("taxi"));
        assert!(e.is_indexed("taxi2"));
    }

    #[test]
    fn sql_knn_returns_k_nearest() {
        let mut e = engine();
        let sql = "SELECT * FROM taxi ORDER BY \
                   DTW(taxi, TRAJECTORY((1,1),(1,2),(3,2),(4,4),(4,5),(5,5))) LIMIT 3";
        match e.execute(sql).unwrap() {
            QueryResult::SearchHits(hits) => {
                let ids: Vec<u64> = hits.iter().map(|&(i, _)| i).collect();
                // T1 itself, then T2 (DTW 2.83), then T3 (DTW 5.41).
                assert_eq!(ids, vec![1, 2, 3]);
                assert!(hits[0].1 <= hits[1].1 && hits[1].1 <= hits[2].1);
            }
            other => panic!("{other:?}"),
        }
        assert!(e
            .explain("SELECT * FROM taxi ORDER BY DTW(taxi, TRAJECTORY((0,0))) LIMIT 2")
            .unwrap()
            .contains("IndexKnn"));
    }

    #[test]
    fn explain_statement_reports_plan_without_executing() {
        let mut e = engine();
        match e
            .execute("EXPLAIN SELECT * FROM taxi WHERE DTW(taxi, TRAJECTORY((1,1))) <= 1")
            .unwrap()
        {
            QueryResult::Plan(p) => assert!(p.contains("ScanSearch"), "{p}"),
            other => panic!("{other:?}"),
        }
        // EXPLAIN must not build indexes as a side effect.
        assert!(!e.is_indexed("taxi"));
    }

    #[test]
    fn plain_select_returns_all_rows() {
        let mut e = engine();
        match e.execute("SELECT * FROM taxi").unwrap() {
            QueryResult::Rows(rows) => assert_eq!(rows.len(), 5),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn insert_and_delete_flow_through_ingestion() {
        let mut e = engine();
        e.execute("CREATE INDEX i ON taxi USE TRIE").unwrap();
        // Insert a new trajectory: visible to indexed search immediately.
        e.execute("INSERT INTO taxi VALUES (9, TRAJECTORY((50, 50), (51, 51)))")
            .unwrap();
        match e
            .execute("SELECT * FROM taxi WHERE DTW(taxi, TRAJECTORY((50,50),(51,51))) <= 0")
            .unwrap()
        {
            QueryResult::SearchHits(hits) => {
                assert_eq!(hits.iter().map(|&(i, _)| i).collect::<Vec<_>>(), vec![9]);
            }
            other => panic!("{other:?}"),
        }
        // The dataset mirror has it too (scan path).
        match e.execute("SELECT * FROM taxi").unwrap() {
            QueryResult::Rows(rows) => assert_eq!(rows.len(), 6),
            other => panic!("{other:?}"),
        }
        // Delete tombstones it everywhere.
        match e.execute("DELETE FROM taxi WHERE id = 9").unwrap() {
            QueryResult::Ack(msg) => assert!(msg.contains("deleted id 9"), "{msg}"),
            other => panic!("{other:?}"),
        }
        match e
            .execute("SELECT * FROM taxi WHERE DTW(taxi, TRAJECTORY((50,50),(51,51))) <= 0")
            .unwrap()
        {
            QueryResult::SearchHits(hits) => assert!(hits.is_empty()),
            other => panic!("{other:?}"),
        }
        match e.execute("SELECT * FROM taxi").unwrap() {
            QueryResult::Rows(rows) => assert_eq!(rows.len(), 5),
            other => panic!("{other:?}"),
        }
        // Insert on an unindexed table updates the dataset only.
        let mut e2 = engine();
        e2.execute("INSERT INTO taxi VALUES (9, TRAJECTORY((50, 50)))")
            .unwrap();
        assert!(!e2.is_indexed("taxi"));
        match e2.execute("SELECT * FROM taxi").unwrap() {
            QueryResult::Rows(rows) => assert_eq!(rows.len(), 6),
            other => panic!("{other:?}"),
        }
        assert!(e2
            .explain("INSERT INTO taxi VALUES (1, TRAJECTORY((0,0)))")
            .unwrap()
            .contains("IngestInsert"));
        assert!(e2
            .explain("DELETE FROM taxi WHERE id = 1")
            .unwrap()
            .contains("IngestDelete"));
    }

    #[test]
    fn sql_upsert_overwrites_by_id() {
        let mut e = engine();
        e.execute("CREATE INDEX i ON taxi USE TRIE").unwrap();
        e.execute("INSERT INTO taxi VALUES (1, TRAJECTORY((80, 80), (81, 81)))")
            .unwrap();
        // The old T1 geometry no longer matches id 1...
        let old = "SELECT * FROM taxi WHERE \
                   DTW(taxi, TRAJECTORY((1,1),(1,2),(3,2),(4,4),(4,5),(5,5))) <= 0";
        match e.execute(old).unwrap() {
            QueryResult::SearchHits(hits) => assert!(hits.is_empty()),
            other => panic!("{other:?}"),
        }
        // ...the new one does, and the row count is unchanged.
        match e
            .execute("SELECT * FROM taxi WHERE DTW(taxi, TRAJECTORY((80,80),(81,81))) <= 0")
            .unwrap()
        {
            QueryResult::SearchHits(hits) => {
                assert_eq!(hits.iter().map(|&(i, _)| i).collect::<Vec<_>>(), vec![1]);
            }
            other => panic!("{other:?}"),
        }
        match e.execute("SELECT * FROM taxi").unwrap() {
            QueryResult::Rows(rows) => assert_eq!(rows.len(), 5),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn execute_batch_matches_per_statement_execution() {
        let mk = |indexed: bool| {
            let mut e = engine();
            if indexed {
                e.execute("CREATE INDEX i ON taxi USE TRIE").unwrap();
            }
            e
        };
        // A mixed script: a run of three compatible DTW searches (batched),
        // a FRECHET search (closes the run, starts its own), a full scan,
        // then one more DTW search.
        let stmts = [
            "SELECT * FROM taxi WHERE DTW(taxi, TRAJECTORY((1,1),(1,2),(3,2))) <= 3",
            "SELECT * FROM taxi WHERE DTW(taxi, TRAJECTORY((4,4),(4,5),(5,5))) <= 2",
            "SELECT * FROM taxi WHERE DTW(taxi, TRAJECTORY((0,0))) <= 10",
            "SELECT * FROM taxi WHERE FRECHET(taxi, TRAJECTORY((1,1),(1,2))) <= 1.5",
            "SELECT * FROM taxi",
            "SELECT * FROM taxi WHERE DTW(taxi, TRAJECTORY((2,2),(3,3))) <= 4",
        ];
        let mut batch_engine = mk(true);
        let batched = batch_engine.execute_batch(&stmts).unwrap();
        let mut serial_engine = mk(true);
        for (got, sql) in batched.iter().zip(stmts) {
            let expect = serial_engine.execute(sql).unwrap();
            match (got, expect) {
                (QueryResult::SearchHits(b), QueryResult::SearchHits(s)) => {
                    assert_eq!(b, &s, "{sql}")
                }
                (QueryResult::Rows(b), QueryResult::Rows(s)) => assert_eq!(b.len(), s.len()),
                (b, s) => panic!("variant mismatch for {sql}: {b:?} vs {s:?}"),
            }
        }
        // Unindexed searches are not batched but still answer identically.
        let mut e = mk(false);
        let results = e.execute_batch(&stmts[..2]).unwrap();
        assert_eq!(results.len(), 2);
        // Errors abort the batch in statement order.
        let mut e = mk(true);
        assert!(e.execute_batch(&[stmts[0], "SELECT * FROM nope"]).is_err());
    }

    #[test]
    fn programmatic_ingest_flush_and_compact() {
        let mut e = engine();
        e.execute("CREATE INDEX i ON taxi USE TRIE").unwrap();
        // insert_rows / delete_row mirror the SQL write path.
        let n = e
            .insert_rows(
                "taxi",
                vec![(42, vec![Point { x: 9.0, y: 9.0 }, Point { x: 9.5, y: 9.5 }])],
            )
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(e.dataset("taxi").unwrap().trajectories().len(), 6);
        // After a flush nothing is left in the unflushed tail (the
        // compaction policy may have already folded the delta on insert —
        // either way the invariant holds).
        e.flush("taxi").unwrap();
        assert!(!e.system("taxi").unwrap().deltas().has_deltas());
        let _ = e.compact("taxi").unwrap();
        assert!(e.delete_row("taxi", 42).unwrap());
        assert!(!e.delete_row("taxi", 42).unwrap());
        assert_eq!(e.dataset("taxi").unwrap().trajectories().len(), 5);
        // flush_all drains every indexed table.
        e.insert_rows("taxi", vec![(43, vec![Point { x: 1.0, y: 1.0 }])])
            .unwrap();
        e.flush_all();
        assert!(!e.system("taxi").unwrap().deltas().has_deltas());
        // Unindexed tables: flush is a no-op, compact reports false.
        let mut e2 = engine();
        e2.flush("taxi").unwrap();
        assert!(!e2.compact("taxi").unwrap());
        assert!(e2.flush("nope").is_err());
        // Non-finite coordinates are refused before touching the table.
        assert!(e
            .insert_rows(
                "taxi",
                vec![(
                    44,
                    vec![Point {
                        x: f64::NAN,
                        y: 0.0
                    }]
                )]
            )
            .is_err());
    }

    #[test]
    fn errors_surface() {
        let mut e = engine();
        assert!(matches!(
            e.execute("SELECT * FROM nope").unwrap_err(),
            SqlError::UnknownTable { .. }
        ));
        assert!(matches!(
            e.register("taxi", Dataset::new("x", vec![]).unwrap()),
            Err(SqlError::DuplicateTable { .. })
        ));
        assert!(e.execute("DELETE FROM taxi").is_err());
    }
}
