//! SQL and DataFrame front-ends for DITA (§3).
//!
//! The paper integrates DITA into Spark SQL, adding three constructs; this
//! crate provides the same surface over the Rust engine:
//!
//! ```sql
//! -- similarity search (Q is a trajectory literal)
//! SELECT * FROM t WHERE DTW(t, TRAJECTORY((1,1),(2,2))) <= 0.005;
//! -- similarity join
//! SELECT * FROM t TRA-JOIN q ON DTW(t, q) <= 0.005;
//! -- index creation
//! CREATE INDEX trie_idx ON t USE TRIE;
//! -- online ingestion (routed through the delta write path, INGESTION.md)
//! INSERT INTO t VALUES (42, TRAJECTORY((1,1),(2,2))), (43, TRAJECTORY((5,5)));
//! DELETE FROM t WHERE id = 42;
//! ```
//!
//! Queries flow through the same stages as §3's "Query Processing": SQL →
//! logical plan → rule-based rewrites (constant folding of the threshold
//! expression) → a cost-based physical choice (index scan when a trie index
//! exists, full scan otherwise) → execution on the cluster.
//!
//! The [`DataFrame`] API offers the equivalent programmatic interface.

#![warn(missing_docs)]

pub mod ast;
pub mod dataframe;
pub mod engine;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod plan;

pub use ast::Statement;
pub use dataframe::DataFrame;
pub use engine::{Engine, QueryResult};
pub use error::SqlError;
pub use plan::{LogicalPlan, PhysicalPlan};
