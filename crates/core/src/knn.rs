//! k-nearest-neighbor search and join — the paper's announced follow-up
//! ("In future, we plan to support KNN-based search and join in DITA", §8),
//! built on the exact threshold machinery.
//!
//! The classic reduction: run threshold search with a growing radius until
//! at least `k` answers exist, then keep the `k` closest. Every probe is
//! exact (the threshold search never misses), so the result equals the true
//! k-NN set. The radius starts at a data-driven seed — the distance from
//! the query's endpoints to the nearest partition MBRs — and doubles, so
//! dense regions converge in one or two probes and empty regions expand
//! geometrically instead of scanning.

use crate::search::{search_batch_with_scratch, search_with_scratch, SearchOptions, SearchScratch};
use crate::system::DitaSystem;
use dita_distance::DistanceFunction;
use dita_trajectory::{Point, TrajectoryId};

/// Statistics of one kNN search.
#[derive(Debug, Clone)]
pub struct KnnStats {
    /// Threshold probes issued (radius doublings + the final one).
    pub rounds: usize,
    /// The radius that produced the final answer set.
    pub final_radius: f64,
    /// Total candidates examined across all probes.
    pub candidates: usize,
}

/// Finds the `k` trajectories closest to `q` under `func`, sorted by
/// distance then id. Returns fewer than `k` only when the table is smaller
/// than `k`.
pub fn knn_search(
    system: &DitaSystem,
    q: &[Point],
    k: usize,
    func: &DistanceFunction,
) -> (Vec<(TrajectoryId, f64)>, KnnStats) {
    let mut scratch = SearchScratch::new();
    knn_search_with_scratch(system, q, k, func, &mut scratch)
}

/// [`knn_search`] with caller-held scratch: the bound-tightening rounds
/// reuse one set of probe stacks and kernel buffers instead of
/// reallocating them per radius probe, and a caller issuing many kNN
/// queries (the kNN join, benchmark loops) can share one scratch across
/// all of them. Results are identical.
pub fn knn_search_with_scratch(
    system: &DitaSystem,
    q: &[Point],
    k: usize,
    func: &DistanceFunction,
    scratch: &mut SearchScratch,
) -> (Vec<(TrajectoryId, f64)>, KnnStats) {
    assert!(!q.is_empty(), "queries must contain at least one point");
    // Each radius probe's `search` span nests under this one.
    let _knn_span = dita_obs::span!(system.obs(), dita_obs::names::SPAN_KNN, func = func, k = k);
    let mut stats = KnnStats {
        rounds: 0,
        final_radius: 0.0,
        candidates: 0,
    };
    if k == 0 || system.is_empty() {
        return (Vec::new(), stats);
    }
    let k = k.min(system.len());

    let mut radius = seed_radius(system, q, func);
    loop {
        stats.rounds += 1;
        stats.final_radius = radius;
        let (hits, s) =
            search_with_scratch(system, q, radius, func, SearchOptions::default(), scratch);
        stats.candidates += s.candidates;
        if hits.len() >= k {
            let mut hits = hits;
            hits.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            hits.truncate(k);
            return (hits, stats);
        }
        radius = if radius > 0.0 { radius * 2.0 } else { 1e-6 };
        // Safety valve: beyond any plausible geographic scale, scan all.
        if radius > 1e6 {
            let (hits, s) = search_with_scratch(
                system,
                q,
                f64::INFINITY,
                func,
                SearchOptions::default(),
                scratch,
            );
            stats.rounds += 1;
            stats.candidates += s.candidates;
            let mut hits = hits;
            hits.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            hits.truncate(k);
            return (hits, stats);
        }
    }
}

/// Per-query expansion state for [`knn_batch`].
struct KnnState {
    radius: f64,
    /// The next probe is the full-scan safety valve.
    infinity: bool,
    done: bool,
    result: Vec<(TrajectoryId, f64)>,
    stats: KnnStats,
}

/// Batched kNN: answers one kNN search per query, sharing radius probes.
///
/// Each round, every query still tightening its bound joins a single
/// [`crate::search_batch`] probe, so the round's trie traversal and
/// verification are shared across the whole batch. Queries keep fully
/// independent radius schedules (seed, doubling, safety valve), so the
/// per-query results *and* [`KnnStats`] are byte-identical to running
/// [`knn_search`] on each query alone — a query finishing early simply
/// drops out of later rounds.
pub fn knn_batch(
    system: &DitaSystem,
    queries: &[&[Point]],
    k: usize,
    func: &DistanceFunction,
) -> Vec<(Vec<(TrajectoryId, f64)>, KnnStats)> {
    let obs = system.obs();
    let _span = dita_obs::span!(
        obs,
        dita_obs::names::SPAN_KNN_BATCH,
        func = func,
        k = k,
        queries = queries.len()
    );
    for q in queries {
        assert!(!q.is_empty(), "queries must contain at least one point");
    }
    let empty = k == 0 || system.is_empty();
    let k = k.min(system.len());
    let mut scratch = SearchScratch::new();
    let mut states: Vec<KnnState> = queries
        .iter()
        .map(|q| KnnState {
            radius: if empty {
                0.0
            } else {
                seed_radius(system, q, func)
            },
            infinity: false,
            done: empty,
            result: Vec::new(),
            stats: KnnStats {
                rounds: 0,
                final_radius: 0.0,
                candidates: 0,
            },
        })
        .collect();

    loop {
        let active: Vec<usize> = states
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.done)
            .map(|(i, _)| i)
            .collect();
        if active.is_empty() {
            break;
        }
        let qs: Vec<&[Point]> = active.iter().map(|&i| queries[i]).collect();
        let taus: Vec<f64> = active
            .iter()
            .map(|&i| {
                let s = &mut states[i];
                s.stats.rounds += 1;
                if s.infinity {
                    // The safety valve counts as a round but does not move
                    // `final_radius`, exactly like the sequential path.
                    f64::INFINITY
                } else {
                    s.stats.final_radius = s.radius;
                    s.radius
                }
            })
            .collect();
        let (mut hits, bstats) = search_batch_with_scratch(
            system,
            &qs,
            &taus,
            func,
            SearchOptions::default(),
            &mut scratch,
        );
        for (slot, &i) in active.iter().enumerate() {
            let s = &mut states[i];
            s.stats.candidates += bstats.queries[slot].candidates;
            let h = std::mem::take(&mut hits[slot]);
            if s.infinity || h.len() >= k {
                let mut h = h;
                h.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
                h.truncate(k);
                s.result = h;
                s.done = true;
            } else {
                s.radius = if s.radius > 0.0 { s.radius * 2.0 } else { 1e-6 };
                if s.radius > 1e6 {
                    s.infinity = true;
                }
            }
        }
    }
    states.into_iter().map(|s| (s.result, s.stats)).collect()
}

/// A data-driven starting radius: the larger of the endpoint distances to
/// the nearest partition MBRs (so the first probe reaches at least one
/// partition), floored to a small geographic step. Edit-family functions
/// start at an edit budget of 1.
fn seed_radius(system: &DitaSystem, q: &[Point], func: &DistanceFunction) -> f64 {
    use dita_distance::function::IndexMode;
    match func.index_mode() {
        IndexMode::EditCount { .. } => 1.0,
        _ => {
            let first = &q[0];
            let last = &q[q.len() - 1];
            let mut best = f64::INFINITY;
            for pid in 0..system.num_partitions() {
                let (mf, ml) = system.global().partition_mbrs(pid);
                let d = mf.min_dist_point(first) + ml.min_dist_point(last);
                if d < best {
                    best = d;
                }
            }
            best.clamp(1e-4, 1.0)
        }
    }
}

/// kNN join: for every trajectory of `q_sys`, its `k` nearest neighbors in
/// `t_sys`. Returns `(q_id, t_id, dist)` triples grouped by `q_id`.
pub fn knn_join(
    t_sys: &DitaSystem,
    q_sys: &DitaSystem,
    k: usize,
    func: &DistanceFunction,
) -> Vec<(TrajectoryId, TrajectoryId, f64)> {
    let mut out = Vec::new();
    // One scratch across every outer row: each kNN's radius probes reuse
    // the same probe stacks and kernel buffers.
    let mut scratch = SearchScratch::new();
    // Iterate the *live* view of the outer table so tombstoned rows drop
    // out and delta inserts join in without a compaction.
    q_sys.for_each_live(|q| {
        let (hits, _) = knn_search_with_scratch(t_sys, q.points(), k, func, &mut scratch);
        out.extend(hits.into_iter().map(|(tid, d)| (q.id, tid, d)));
    });
    out.sort_by_key(|a| (a.0, a.1));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::DitaConfig;
    use dita_cluster::{Cluster, ClusterConfig};
    use dita_index::{PivotStrategy, TrieConfig};
    use dita_trajectory::trajectory::figure1_trajectories;
    use dita_trajectory::Dataset;

    fn tiny_system() -> DitaSystem {
        let dataset = Dataset::new("fig1", figure1_trajectories()).unwrap();
        DitaSystem::build(
            &dataset,
            DitaConfig {
                ng: 2,
                trie: TrieConfig {
                    k: 2,
                    nl: 2,
                    leaf_capacity: 0,
                    strategy: PivotStrategy::NeighborDistance,
                    cell_side: 2.0,
                    ..TrieConfig::default()
                },
            },
            Cluster::new(ClusterConfig::with_workers(2)),
        )
    }

    fn brute_knn(q: &dita_trajectory::Trajectory, k: usize, f: &DistanceFunction) -> Vec<u64> {
        let ts = figure1_trajectories();
        let mut d: Vec<(u64, f64)> = ts
            .iter()
            .map(|t| (t.id, f.distance(t.points(), q.points())))
            .collect();
        d.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        d.truncate(k);
        d.into_iter().map(|(id, _)| id).collect()
    }

    #[test]
    fn knn_matches_brute_force_for_all_functions() {
        let sys = tiny_system();
        let ts = figure1_trajectories();
        let fns = [
            DistanceFunction::Dtw,
            DistanceFunction::Frechet,
            DistanceFunction::Edr { eps: 1.0 },
            DistanceFunction::Lcss { eps: 1.0, delta: 2 },
            DistanceFunction::Erp { gap: (0.0, 0.0) },
        ];
        for f in fns {
            for q in &ts {
                for k in 1..=5 {
                    let (hits, stats) = knn_search(&sys, q.points(), k, &f);
                    let got: Vec<u64> = hits.iter().map(|&(id, _)| id).collect();
                    assert_eq!(got, brute_knn(q, k, &f), "{f} Q=T{} k={k}", q.id);
                    assert!(stats.rounds >= 1);
                }
            }
        }
    }

    #[test]
    fn k_larger_than_table_returns_everything() {
        let sys = tiny_system();
        let ts = figure1_trajectories();
        let (hits, _) = knn_search(&sys, ts[0].points(), 100, &DistanceFunction::Dtw);
        assert_eq!(hits.len(), 5);
    }

    #[test]
    fn k_zero_is_empty() {
        let sys = tiny_system();
        let ts = figure1_trajectories();
        let (hits, stats) = knn_search(&sys, ts[0].points(), 0, &DistanceFunction::Dtw);
        assert!(hits.is_empty());
        assert_eq!(stats.rounds, 0);
    }

    #[test]
    fn nearest_neighbor_of_self_is_self() {
        let sys = tiny_system();
        for t in figure1_trajectories() {
            let (hits, _) = knn_search(&sys, t.points(), 1, &DistanceFunction::Dtw);
            assert_eq!(hits[0].0, t.id);
            assert_eq!(hits[0].1, 0.0);
        }
    }

    #[test]
    fn knn_join_matches_per_query_search() {
        let t_sys = tiny_system();
        let q_sys = tiny_system();
        let pairs = knn_join(&t_sys, &q_sys, 2, &DistanceFunction::Dtw);
        assert_eq!(pairs.len(), 10); // 5 queries × 2 neighbors
        let ts = figure1_trajectories();
        for q in &ts {
            let expect = brute_knn(q, 2, &DistanceFunction::Dtw);
            let got: Vec<u64> = pairs
                .iter()
                .filter(|&&(qid, _, _)| qid == q.id)
                .map(|&(_, tid, _)| tid)
                .collect();
            let mut expect_sorted = expect.clone();
            expect_sorted.sort_unstable();
            assert_eq!(got, expect_sorted, "Q=T{}", q.id);
        }
    }
}
