//! DITA core: the distributed trajectory analytics system (§3, §5, §6).
//!
//! This crate assembles the substrates — partitioning, the global dual
//! R-tree index, the trie local indexes and the simulated cluster — into the
//! system the paper describes:
//!
//! * [`DitaSystem`] — an indexed, partitioned, worker-placed trajectory
//!   table (the result of `CREATE INDEX ... USE TRIE`).
//! * [`search()`] — distributed threshold similarity search (§5): global
//!   pruning on the driver, trie filtering and verification on the workers.
//! * [`join()`] — distributed similarity join (§6): a sampled bi-graph cost
//!   model, greedy graph orientation, division-based load balancing, then
//!   edge-wise local joins.
//! * [`verify`] — the verification pipeline of §5.3.3: MBR coverage filter →
//!   cell-bound filter → band-pruned SoA threshold kernels, optionally
//!   rayon-parallel within each worker task.
//! * [`knn`] — k-nearest-neighbor search and join (the paper's §8 future
//!   work), by exact radius expansion over the threshold machinery.
//! * [`feedback`] — observed-cost feedback: a finished join records each
//!   destination node's predicted vs. observed costs; the next plan
//!   consumes them via [`JoinOptions::observed_costs`].
//! * [`ingest`] — the online write path: inserts/deletes land in
//!   per-partition deltas (`dita-ingest`), queries overlay base + deltas
//!   with tombstone suppression, and compaction folds deltas back into
//!   rebuilt base tries.

#![warn(missing_docs)]

pub mod feedback;
pub mod ingest;
pub mod join;
pub mod knn;
pub mod search;
pub mod system;
pub mod verify;

pub use dita_ingest::{CompactionPolicy, IngestStats};
pub use feedback::{price_query, CostFeedback, NodeObservation};
pub use join::{join, BalanceStrategy, JoinOptions, JoinStats};
pub use knn::{knn_batch, knn_join, knn_search, knn_search_with_scratch, KnnStats};
pub use search::{
    query_broadcast_bytes, search, search_batch, search_batch_with_scratch, search_with_options,
    search_with_scratch, BatchSearchStats, QueryStats, SearchOptions, SearchScratch, SearchStats,
};
pub use system::{BuildStats, DitaConfig, DitaSystem};
pub use verify::{
    try_verify_candidates, verify_candidates, verify_pair, verify_pair_soa, QueryContext,
};
