//! Observed-cost feedback for the join planner (§6.2 extended).
//!
//! The planner prices each bi-graph edge with a *sampled* estimate of the
//! candidate pairs the destination would examine ([`estimate_comp`]) and a
//! constant per-pair verification cost `Δ`. Both assumptions go wrong in
//! practice: small samples miss heavy hitters, and partitions holding long
//! trajectories pay far more than `Δ` per candidate. A [`CostFeedback`]
//! store closes the loop — a finished join records, per destination node,
//! what the planner predicted and what the cluster actually observed
//! (candidate pairs examined, compute seconds burned, bytes shipped), and
//! a subsequent join passed the store via
//! [`JoinOptions::observed_costs`](crate::JoinOptions) multiplies each
//! edge's compute estimate by the node's observed/predicted ratio before
//! orientation and division balancing run.
//!
//! [`estimate_comp`]: crate::join::JoinOptions::sample_size

use std::collections::BTreeMap;

/// Bounds on the correction factor: a single run's observation should bend
/// the cost model, not let one noisy measurement dominate it outright.
const FACTOR_CLAMP: f64 = 32.0;

/// What one destination node predicted vs. delivered.
///
/// Node ids use the join's bi-graph numbering: T-partition `i` is node `i`,
/// Q-partition `j` is node `nt + j`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeObservation {
    /// The planner's compute estimate for the node, in candidate-pair
    /// equivalents (the unit `estimate_comp` produces).
    pub predicted_comp: f64,
    /// Candidate pairs the node's local joins actually examined.
    pub observed_pairs: f64,
    /// Compute seconds the cluster charged to the node's tasks.
    pub observed_comp_sec: f64,
    /// Bytes shipped to the node's tasks.
    pub observed_bytes: u64,
    /// Tasks that ran against the node.
    pub tasks: usize,
}

/// Per-node observed execution costs from a finished join, keyed by
/// bi-graph node id. Build one from [`JoinStats::feedback`], or assemble it
/// by hand with [`CostFeedback::set_predicted`] / [`CostFeedback::observe`].
///
/// [`JoinStats::feedback`]: crate::JoinStats::feedback
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CostFeedback {
    nodes: BTreeMap<usize, NodeObservation>,
}

impl CostFeedback {
    /// An empty store (every factor is 1.0).
    pub fn new() -> Self {
        CostFeedback::default()
    }

    /// `true` when no node has been observed.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of nodes with recorded state.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// The recorded observation for `node`, if any.
    pub fn node(&self, node: usize) -> Option<&NodeObservation> {
        self.nodes.get(&node)
    }

    /// Iterates over `(node, observation)` pairs in node order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &NodeObservation)> {
        self.nodes.iter().map(|(&n, o)| (n, o))
    }

    /// Sets the planner's compute prediction for `node`.
    pub fn set_predicted(&mut self, node: usize, predicted_comp: f64) {
        self.nodes.entry(node).or_default().predicted_comp = predicted_comp;
    }

    /// Accumulates one task's observed costs against `node`.
    pub fn observe(&mut self, node: usize, pairs: f64, comp_sec: f64, bytes: u64) {
        let o = self.nodes.entry(node).or_default();
        o.observed_pairs += pairs;
        o.observed_comp_sec += comp_sec;
        o.observed_bytes += bytes;
        o.tasks += 1;
    }

    /// The multiplier to apply to a fresh compute estimate for `node`:
    /// observed cost over predicted cost, clamped to
    /// `[1/32, 32]`. `delta_sec` converts observed seconds into the
    /// planner's candidate-pair unit; when the host clock measured nothing
    /// the observed pair count stands in. Unobserved
    /// or unpredicted nodes return 1.0 — feedback never touches what it has
    /// no evidence about.
    pub fn comp_factor(&self, node: usize, delta_sec: f64) -> f64 {
        match self.nodes.get(&node) {
            Some(o) => factor_of(o, delta_sec),
            None => 1.0,
        }
    }

    /// Like [`comp_factor`](CostFeedback::comp_factor), but pools the
    /// predictions and observations of several nodes before forming the
    /// ratio. A self-join names the same physical partition twice —
    /// T-partition `p` is node `p`, Q-partition `p` is node `nt + p` — and
    /// pricing the two ids separately lets greedy orientation dodge an
    /// inflated destination by flipping its edges onto the cheap-looking
    /// mirror. Pooling both ids prices the partition's *data*, whichever
    /// side of the bi-graph ends up executing it.
    pub fn comp_factor_pooled(&self, nodes: &[usize], delta_sec: f64) -> f64 {
        let mut pooled = NodeObservation::default();
        for &n in nodes {
            if let Some(o) = self.nodes.get(&n) {
                pooled.predicted_comp += o.predicted_comp;
                pooled.observed_pairs += o.observed_pairs;
                pooled.observed_comp_sec += o.observed_comp_sec;
                pooled.observed_bytes += o.observed_bytes;
                pooled.tasks += o.tasks;
            }
        }
        factor_of(&pooled, delta_sec)
    }
}

/// Prices one search query for admission control, in candidate-pair
/// equivalents — the same unit the join planner estimates in.
///
/// The base estimate is `|partition| × |q|` summed over the partitions the
/// global index cannot prune (every stored point might pair with every
/// query point in the worst case); each partition's term is then bent by
/// its observed/predicted [`CostFeedback`] factor (T-partition `i` is node
/// `i`, matching the join's bi-graph numbering), so a partition that
/// historically ran hotter than modeled prices future queries against it
/// higher. With no feedback — or an empty store — this is the pure
/// structural estimate. Feed the result to
/// [`dita_cluster::QueryScheduler::submit`] as the query's cost.
pub fn price_query(
    system: &crate::DitaSystem,
    q: &[dita_trajectory::Point],
    tau: f64,
    func: &dita_distance::DistanceFunction,
    feedback: Option<&CostFeedback>,
) -> f64 {
    if q.is_empty() {
        return 0.0;
    }
    let relevant = system.global().relevant_partitions(
        &q[0],
        &q[q.len() - 1],
        q.len(),
        tau,
        func.index_mode(),
    );
    relevant
        .into_iter()
        .map(|pid| {
            let pairs = system.trie(pid).len() as f64 * q.len() as f64;
            let factor = feedback.map_or(1.0, |fb| fb.comp_factor(pid, 0.0));
            pairs * factor
        })
        .sum()
}

/// The observed/predicted ratio for one (possibly pooled) observation.
fn factor_of(o: &NodeObservation, delta_sec: f64) -> f64 {
    if o.predicted_comp <= 0.0 || o.tasks == 0 {
        return 1.0;
    }
    let observed = if o.observed_comp_sec > 0.0 && delta_sec > 0.0 {
        o.observed_comp_sec / delta_sec
    } else {
        o.observed_pairs
    };
    if observed <= 0.0 {
        return 1.0;
    }
    (observed / o.predicted_comp).clamp(1.0 / FACTOR_CLAMP, FACTOR_CLAMP)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unobserved_nodes_are_untouched() {
        let fb = CostFeedback::new();
        assert!(fb.is_empty());
        assert_eq!(fb.comp_factor(3, 1e-6), 1.0);
    }

    #[test]
    fn factor_prefers_measured_seconds() {
        let mut fb = CostFeedback::new();
        fb.set_predicted(0, 100.0);
        // 2 000 pair-equivalents of measured time vs 1 000 counted pairs:
        // the clock wins.
        fb.observe(0, 1_000.0, 2e-3, 64);
        assert!((fb.comp_factor(0, 1e-6) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn factor_falls_back_to_counted_pairs_without_a_clock() {
        let mut fb = CostFeedback::new();
        fb.set_predicted(7, 50.0);
        fb.observe(7, 200.0, 0.0, 0);
        assert!((fb.comp_factor(7, 1e-6) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn factor_is_clamped_both_ways() {
        let mut fb = CostFeedback::new();
        fb.set_predicted(0, 1.0);
        fb.observe(0, 1e9, 0.0, 0);
        assert_eq!(fb.comp_factor(0, 1e-6), FACTOR_CLAMP);
        fb.set_predicted(1, 1e9);
        fb.observe(1, 1.0, 0.0, 0);
        assert_eq!(fb.comp_factor(1, 1e-6), 1.0 / FACTOR_CLAMP);
    }

    #[test]
    fn observations_accumulate_across_tasks() {
        let mut fb = CostFeedback::new();
        fb.set_predicted(2, 10.0);
        fb.observe(2, 5.0, 0.0, 100);
        fb.observe(2, 15.0, 0.0, 300);
        let o = fb.node(2).unwrap();
        assert_eq!(o.tasks, 2);
        assert_eq!(o.observed_bytes, 400);
        assert!((fb.comp_factor(2, 1e-6) - 2.0).abs() < 1e-9);
        assert_eq!(fb.len(), 1);
        assert_eq!(fb.iter().count(), 1);
    }

    #[test]
    fn price_query_scales_with_observed_cost() {
        use crate::system::DitaConfig;
        use dita_cluster::{Cluster, ClusterConfig};
        use dita_distance::DistanceFunction;
        use dita_index::{PivotStrategy, TrieConfig};
        use dita_trajectory::trajectory::figure1_trajectories;
        use dita_trajectory::Dataset;

        let dataset = Dataset::new("fig1", figure1_trajectories()).unwrap();
        let sys = crate::DitaSystem::build(
            &dataset,
            DitaConfig {
                ng: 2,
                trie: TrieConfig {
                    k: 2,
                    nl: 2,
                    leaf_capacity: 0,
                    strategy: PivotStrategy::NeighborDistance,
                    cell_side: 2.0,
                    ..TrieConfig::default()
                },
            },
            Cluster::new(ClusterConfig::with_workers(2)),
        );
        let ts = figure1_trajectories();
        let q = ts[0].points();
        let base = price_query(&sys, q, 3.0, &DistanceFunction::Dtw, None);
        assert!(base > 0.0, "a reachable query must price positive");
        // A far-away query prunes everything and prices to zero.
        let far = [
            dita_trajectory::Point::new(500.0, 500.0),
            dita_trajectory::Point::new(501.0, 500.0),
        ];
        assert_eq!(
            price_query(&sys, &far, 1.0, &DistanceFunction::Dtw, None),
            0.0
        );
        // Feedback that says every partition ran 4x hot raises the price 4x.
        let mut fb = CostFeedback::new();
        for pid in 0..sys.num_partitions() {
            fb.set_predicted(pid, 100.0);
            fb.observe(pid, 400.0, 0.0, 0);
        }
        let adjusted = price_query(&sys, q, 3.0, &DistanceFunction::Dtw, Some(&fb));
        assert!((adjusted - base * 4.0).abs() < 1e-6 * base);
    }

    #[test]
    fn prediction_without_observation_is_neutral() {
        let mut fb = CostFeedback::new();
        fb.set_predicted(0, 10.0);
        assert_eq!(fb.comp_factor(0, 1e-6), 1.0);
    }

    #[test]
    fn pooled_factor_merges_mirror_nodes() {
        // Self-join shape: partition 3 of a 4-partition system is node 3
        // (T-side) and node 7 (Q-side). The Q-side ran the heavy work; the
        // T-side saw almost nothing — separately the T-side looks cheap,
        // pooled both ids price the hot data.
        let mut fb = CostFeedback::new();
        fb.set_predicted(3, 100.0);
        fb.observe(3, 10.0, 0.0, 0);
        fb.set_predicted(7, 100.0);
        fb.observe(7, 990.0, 0.0, 0);
        assert!(fb.comp_factor(3, 1e-6) < 1.0);
        let pooled = fb.comp_factor_pooled(&[3, 7], 1e-6);
        assert!((pooled - 5.0).abs() < 1e-9);
        // Pooling an unknown id contributes nothing.
        assert_eq!(fb.comp_factor_pooled(&[11, 12], 1e-6), 1.0);
    }
}
