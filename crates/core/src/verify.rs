//! The verification pipeline (§5.3.3).
//!
//! Candidates that survive the trie filter are verified in three stages of
//! increasing cost:
//!
//! 1. **MBR coverage** (Lemma 5.4) — O(1) rectangle containment on
//!    τ-extended MBRs. Sound for DTW and Fréchet, whose alignments may not
//!    skip points; the edit family can delete outliers, so the stage is
//!    bypassed for EDR/LCSS/ERP.
//! 2. **Cell bounds** (Lemma 5.6) — the compressed cell lists give an
//!    additive lower bound for DTW and a bottleneck bound for Fréchet.
//! 3. **Thresholded distance** — the double-direction DTW of §5.3.3(3), or
//!    the early-abandoning variant of the other functions.

use dita_distance::{bounds, DistanceFunction};
use dita_trajectory::{CellList, Mbr, Point, Trajectory};

/// Pre-computed query artifacts shared across all verifications of one
/// query: its MBR and cell compression.
#[derive(Debug, Clone)]
pub struct QueryContext {
    points: Vec<Point>,
    mbr: Mbr,
    cells: CellList,
}

impl QueryContext {
    /// Builds the context; `cell_side` should match the index's cell side so
    /// bounds are comparable (any positive value is sound).
    pub fn new(points: &[Point], cell_side: f64) -> Self {
        assert!(!points.is_empty(), "queries must contain at least one point");
        let traj = Trajectory::new(u64::MAX, points.to_vec());
        QueryContext {
            mbr: traj.mbr(),
            cells: CellList::compress(&traj, cell_side),
            points: points.to_vec(),
        }
    }

    /// Builds the context from already-computed artifacts — the join uses
    /// this to reuse the shipped trajectory's clustered-index entries
    /// instead of recompressing.
    pub fn from_parts(points: Vec<Point>, mbr: Mbr, cells: CellList) -> Self {
        assert!(!points.is_empty(), "queries must contain at least one point");
        QueryContext { points, mbr, cells }
    }

    /// The query points.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// The query MBR.
    pub fn mbr(&self) -> &Mbr {
        &self.mbr
    }

    /// The query's cell compression.
    pub fn cells(&self) -> &CellList {
        &self.cells
    }
}

/// Verifies one candidate: returns `Some(distance)` iff
/// `func(candidate, query) ≤ tau`. `cand_mbr`/`cand_cells` are the
/// candidate's precomputed artifacts from the clustered index.
pub fn verify_pair(
    cand_points: &[Point],
    cand_mbr: &Mbr,
    cand_cells: &CellList,
    q: &QueryContext,
    tau: f64,
    func: &DistanceFunction,
) -> Option<f64> {
    match func {
        DistanceFunction::Dtw => {
            if bounds::mbr_coverage_prune(cand_mbr, &q.mbr, tau) {
                return None;
            }
            if cand_cells.lower_bound(&q.cells) > tau || q.cells.lower_bound(cand_cells) > tau {
                return None;
            }
            func.verify(cand_points, &q.points, tau)
        }
        DistanceFunction::Frechet => {
            if bounds::mbr_coverage_prune(cand_mbr, &q.mbr, tau) {
                return None;
            }
            if cand_cells.bottleneck_bound(&q.cells) > tau
                || q.cells.bottleneck_bound(cand_cells) > tau
            {
                return None;
            }
            func.verify(cand_points, &q.points, tau)
        }
        DistanceFunction::Edr { .. } => {
            if bounds::length_bound_edr(cand_points.len(), q.points.len(), tau) {
                return None;
            }
            func.verify(cand_points, &q.points, tau)
        }
        DistanceFunction::Erp { gap } => {
            // Magnitude bound (Chen & Ng): ERP ≥ |Σ dist(t_i, g) − Σ dist(q_j, g)|.
            let g = Point::new(gap.0, gap.1);
            let st: f64 = cand_points.iter().map(|p| p.dist(&g)).sum();
            let sq: f64 = q.points.iter().map(|p| p.dist(&g)).sum();
            if (st - sq).abs() > tau {
                return None;
            }
            func.verify(cand_points, &q.points, tau)
        }
        _ => func.verify(cand_points, &q.points, tau),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dita_trajectory::trajectory::figure1_trajectories;

    fn ctx(points: &[Point]) -> QueryContext {
        QueryContext::new(points, 2.0)
    }

    fn artifacts(t: &Trajectory) -> (Mbr, CellList) {
        (t.mbr(), CellList::compress(t, 2.0))
    }

    #[test]
    fn verification_agrees_with_ground_truth_for_all_functions() {
        let ts = figure1_trajectories();
        let fns = [
            DistanceFunction::Dtw,
            DistanceFunction::Frechet,
            DistanceFunction::Edr { eps: 1.0 },
            DistanceFunction::Lcss { eps: 1.0, delta: 2 },
            DistanceFunction::Erp { gap: (0.0, 0.0) },
        ];
        for f in fns {
            for a in &ts {
                let (mbr, cells) = artifacts(a);
                for b in &ts {
                    let q = ctx(b.points());
                    let d = f.distance(a.points(), b.points());
                    for tau in [0.5, 1.5, 3.0, 6.0] {
                        match verify_pair(a.points(), &mbr, &cells, &q, tau, &f) {
                            Some(v) => {
                                assert!(d <= tau + 1e-9, "{f}: accepted d={d} tau={tau}");
                                assert!((v - d).abs() < 1e-9);
                            }
                            None => assert!(d > tau - 1e-9, "{f}: rejected d={d} tau={tau}"),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn example_5_5_pruned_by_mbr_coverage() {
        // Example 5.5: the pair survives OPAMD but fails MBR coverage.
        let ts = figure1_trajectories();
        let q = Trajectory::from_coords(
            10,
            &[
                (0.0, 4.0),
                (0.0, 5.0),
                (3.0, 7.0),
                (3.0, 9.0),
                (3.0, 11.0),
                (3.0, 3.0),
                (7.0, 5.0),
            ],
        );
        let (mbr, cells) = artifacts(&ts[4]);
        let qc = ctx(q.points());
        assert!(verify_pair(ts[4].points(), &mbr, &cells, &qc, 3.0, &DistanceFunction::Dtw)
            .is_none());
    }

    #[test]
    fn example_5_7_pruned_by_cell_bound() {
        // Example 5.7: pruned by the cell lower bound (Cell(Q, T1) = 4 > 3)
        // even though the pair's MBRs are compatible.
        let ts = figure1_trajectories();
        let q = Trajectory::from_coords(
            10,
            &[
                (1.0, 1.0),
                (1.0, 5.0),
                (1.0, 4.0),
                (2.0, 4.0),
                (2.0, 5.0),
                (4.0, 4.0),
                (5.0, 6.0),
                (5.0, 5.0),
            ],
        );
        let (mbr, cells) = artifacts(&ts[0]);
        let qc = ctx(q.points());
        assert!(verify_pair(ts[0].points(), &mbr, &cells, &qc, 3.0, &DistanceFunction::Dtw)
            .is_none());
    }

    #[test]
    fn self_verification_always_passes() {
        let ts = figure1_trajectories();
        for t in &ts {
            let (mbr, cells) = artifacts(t);
            let q = ctx(t.points());
            let v = verify_pair(t.points(), &mbr, &cells, &q, 0.0, &DistanceFunction::Dtw);
            assert_eq!(v, Some(0.0));
        }
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_query_context_rejected() {
        let _ = QueryContext::new(&[], 1.0);
    }
}
