//! The verification pipeline (§5.3.3).
//!
//! Candidates that survive the trie filter are verified in three stages of
//! increasing cost:
//!
//! 1. **MBR coverage** (Lemma 5.4) — O(1) rectangle containment on
//!    τ-extended MBRs. Sound for DTW and Fréchet, whose alignments may not
//!    skip points; the edit family can delete outliers, so the stage is
//!    bypassed for EDR/LCSS/ERP.
//! 2. **Cell bounds** (Lemma 5.6) — the compressed cell lists give an
//!    additive lower bound for DTW and a bottleneck bound for Fréchet.
//! 3. **Thresholded distance** — the band-pruned SoA kernels of
//!    `dita_distance::kernel` on the hot path ([`verify_pair_soa`]), or the
//!    double-direction DTW of §5.3.3(3) via the AoS [`verify_pair`].
//!
//! [`verify_candidates`] runs a worker task's whole candidate list through
//! the pipeline, optionally on a rayon pool scoped to the worker, with
//! deterministic output order and honest CPU-time accounting.

use dita_cluster::{charge_compute, thread_cpu_time, TaskError};
use dita_distance::kernel::Scratch;
use dita_distance::{bounds, DistanceFunction};
use dita_index::{EntryRef, IndexedTrajectory, TrieIndex};
use dita_trajectory::{
    cell_bottleneck_bound, cell_lower_bound, Cell, CellList, Mbr, Point, SoaPoints, SoaView,
    Trajectory, TrajectoryId,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Pre-computed query artifacts shared across all verifications of one
/// query: its MBR, cell compression and SoA coordinate layout.
#[derive(Debug, Clone)]
pub struct QueryContext {
    points: Vec<Point>,
    mbr: Mbr,
    cells: CellList,
    soa: SoaPoints,
}

impl QueryContext {
    /// Builds the context; `cell_side` should match the index's cell side so
    /// bounds are comparable (any positive value is sound).
    pub fn new(points: &[Point], cell_side: f64) -> Self {
        assert!(
            !points.is_empty(),
            "queries must contain at least one point"
        );
        let traj = Trajectory::new(u64::MAX, points.to_vec());
        QueryContext {
            mbr: traj.mbr(),
            cells: CellList::compress(&traj, cell_side),
            soa: SoaPoints::from_points(points),
            points: points.to_vec(),
        }
    }

    /// Builds the context from already-computed artifacts — the join uses
    /// this to reuse the shipped trajectory's clustered-index entries
    /// instead of recompressing.
    pub fn from_parts(points: Vec<Point>, mbr: Mbr, cells: CellList) -> Self {
        assert!(
            !points.is_empty(),
            "queries must contain at least one point"
        );
        let soa = SoaPoints::from_points(&points);
        QueryContext {
            points,
            mbr,
            cells,
            soa,
        }
    }

    /// The query points.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// The query MBR.
    pub fn mbr(&self) -> &Mbr {
        &self.mbr
    }

    /// The query's cell compression.
    pub fn cells(&self) -> &CellList {
        &self.cells
    }

    /// The query points in structure-of-arrays layout.
    pub fn soa(&self) -> &SoaPoints {
        &self.soa
    }
}

/// Borrowed candidate artifacts for verification — everything the filter
/// stages and the SoA kernels need, independent of whether the candidate
/// lives in a flat [`dita_index::TrajStore`] arena (borrow via
/// [`EntryRef`]) or an owned [`IndexedTrajectory`] (delta tails).
#[derive(Debug, Clone, Copy)]
pub struct CandidateView<'a> {
    /// The candidate's trajectory id.
    pub id: TrajectoryId,
    /// Whole-trajectory MBR (Lemma 5.4 coverage filtering).
    pub mbr: &'a Mbr,
    /// Cell compression (Lemma 5.6 bounds), side matching the index.
    pub cells: &'a [Cell],
    /// The point sequence in structure-of-arrays layout.
    pub soa: SoaView<'a>,
}

impl<'a> From<&'a IndexedTrajectory> for CandidateView<'a> {
    fn from(it: &'a IndexedTrajectory) -> Self {
        CandidateView {
            id: it.traj.id,
            mbr: &it.mbr,
            cells: it.cells.cells(),
            soa: it.soa.view(),
        }
    }
}

impl<'a> From<EntryRef<'a>> for CandidateView<'a> {
    fn from(e: EntryRef<'a>) -> Self {
        CandidateView {
            id: e.id(),
            mbr: e.mbr(),
            cells: e.cells(),
            soa: e.soa(),
        }
    }
}

/// The cheap filter stages shared by both verification paths: returns true
/// when the candidate is provably outside the threshold.
fn prefiltered(
    cand_soa: SoaView<'_>,
    cand_mbr: &Mbr,
    cand_cells: &[Cell],
    q: &QueryContext,
    tau: f64,
    func: &DistanceFunction,
) -> bool {
    match func {
        DistanceFunction::Dtw => {
            bounds::mbr_coverage_prune(cand_mbr, &q.mbr, tau)
                || cell_lower_bound(cand_cells, q.cells.cells()) > tau
                || cell_lower_bound(q.cells.cells(), cand_cells) > tau
        }
        DistanceFunction::Frechet => {
            bounds::mbr_coverage_prune(cand_mbr, &q.mbr, tau)
                || cell_bottleneck_bound(cand_cells, q.cells.cells()) > tau
                || cell_bottleneck_bound(q.cells.cells(), cand_cells) > tau
        }
        DistanceFunction::Edr { .. } => {
            bounds::length_bound_edr(cand_soa.len(), q.points.len(), tau)
        }
        DistanceFunction::Erp { gap } => {
            // Magnitude bound (Chen & Ng): ERP ≥ |Σ dist(t_i, g) − Σ dist(q_j, g)|.
            let g = Point::new(gap.0, gap.1);
            let st: f64 = (0..cand_soa.len())
                .map(|i| cand_soa.point(i).dist(&g))
                .sum();
            let sq: f64 = q.points.iter().map(|p| p.dist(&g)).sum();
            (st - sq).abs() > tau
        }
        _ => false,
    }
}

/// Verifies one candidate: returns `Some(distance)` iff
/// `func(candidate, query) ≤ tau`. `cand_mbr`/`cand_cells` are the
/// candidate's precomputed artifacts from the clustered index.
pub fn verify_pair(
    cand_points: &[Point],
    cand_mbr: &Mbr,
    cand_cells: &CellList,
    q: &QueryContext,
    tau: f64,
    func: &DistanceFunction,
) -> Option<f64> {
    let soa = SoaPoints::from_points(cand_points);
    if prefiltered(soa.view(), cand_mbr, cand_cells.cells(), q, tau, func) {
        return None;
    }
    func.verify(cand_points, &q.points, tau)
}

/// Verifies one candidate against the query using the SoA band-pruned
/// kernels — the allocation-free hot path. Same filter stages as
/// [`verify_pair`]; `scratch` is reused across candidates.
pub fn verify_pair_soa(
    cand: CandidateView<'_>,
    q: &QueryContext,
    tau: f64,
    func: &DistanceFunction,
    scratch: &mut Scratch,
) -> Option<f64> {
    if prefiltered(cand.soa, cand.mbr, cand.cells, q, tau, func) {
        return None;
    }
    func.verify_soa(cand.soa, q.soa.view(), tau, scratch)
}

/// Verifies a worker task's candidate list, returning `(id, distance)` hits
/// in candidate order — the fallible form worker tasks run under
/// [`dita_cluster::Cluster::execute_try`].
///
/// Candidate ids are validated up front: an out-of-range id (a corrupted
/// candidate list) returns a [`TaskError`] that the executor's retry path
/// treats like a task panic, instead of unwinding the worker thread. The
/// hot loops below are panic-free by construction after that check.
///
/// With `threads ≤ 1` the list is verified serially on the calling thread.
/// With `threads > 1` it is split across a rayon pool scoped to this call
/// (per-thread scratch buffers, chunked statically), and the pool threads'
/// CPU time is reported to the cluster executor via
/// [`dita_cluster::charge_compute`] so the simulated cost model sees the
/// work, not the host parallelism. The output is identical for every thread
/// count: results land in pre-assigned slots, so ordering never depends on
/// scheduling.
pub fn try_verify_candidates(
    trie: &TrieIndex,
    cands: &[u32],
    q: &QueryContext,
    tau: f64,
    func: &DistanceFunction,
    threads: usize,
) -> Result<Vec<(TrajectoryId, f64)>, TaskError> {
    if let Some(&bad) = cands.iter().find(|&&c| trie.try_get(c).is_none()) {
        return Err(TaskError::new(format!(
            "candidate id {bad} out of range for a trie of {} entries",
            trie.len()
        )));
    }
    let serial = |out: &mut Vec<(TrajectoryId, f64)>| {
        let mut scratch = Scratch::new();
        for &c in cands {
            let e = trie.get(c);
            if let Some(d) = verify_pair_soa(e.into(), q, tau, func, &mut scratch) {
                out.push((e.id(), d));
            }
        }
    };
    if threads <= 1 || cands.len() < 2 {
        let mut out = Vec::new();
        serial(&mut out);
        return Ok(out);
    }
    let pool = match rayon::ThreadPoolBuilder::new().num_threads(threads).build() {
        Ok(p) => p,
        Err(_) => {
            // Pool creation can fail under resource limits; verification
            // must still complete.
            let mut out = Vec::new();
            serial(&mut out);
            return Ok(out);
        }
    };

    let mut slots: Vec<Option<(TrajectoryId, f64)>> = vec![None; cands.len()];
    let cpu_ns = AtomicU64::new(0);
    // ~4 chunks per thread: large enough to amortize spawn overhead, small
    // enough to smooth out uneven early-abandon costs.
    let chunk = cands.len().div_ceil(threads * 4).max(1);
    pool.scope(|s| {
        for (part, out) in cands.chunks(chunk).zip(slots.chunks_mut(chunk)) {
            let cpu_ns = &cpu_ns;
            s.spawn(move |_| {
                let t0 = thread_cpu_time();
                let mut scratch = Scratch::new();
                for (&c, slot) in part.iter().zip(out.iter_mut()) {
                    let e = trie.get(c);
                    *slot =
                        verify_pair_soa(e.into(), q, tau, func, &mut scratch).map(|d| (e.id(), d));
                }
                let dt = thread_cpu_time().saturating_sub(t0);
                cpu_ns.fetch_add(dt.as_nanos() as u64, Ordering::Relaxed);
            });
        }
    });
    // Back on the worker thread: fold the pool's CPU time into this task's
    // compute cost.
    charge_compute(Duration::from_nanos(cpu_ns.load(Ordering::Relaxed)));
    Ok(slots.into_iter().flatten().collect())
}

/// Infallible [`try_verify_candidates`] for driver-side overlays, benches
/// and tests, where the candidate list comes straight from a trie probe
/// and an out-of-range id is an immediate programming error.
pub fn verify_candidates(
    trie: &TrieIndex,
    cands: &[u32],
    q: &QueryContext,
    tau: f64,
    func: &DistanceFunction,
    threads: usize,
) -> Vec<(TrajectoryId, f64)> {
    try_verify_candidates(trie, cands, q, tau, func, threads)
        // lint: allow(worker-panic, reason = "driver-side wrapper; worker tasks call try_verify_candidates under execute_try")
        .expect("candidate ids must be in range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dita_trajectory::trajectory::figure1_trajectories;

    fn ctx(points: &[Point]) -> QueryContext {
        QueryContext::new(points, 2.0)
    }

    fn artifacts(t: &Trajectory) -> (Mbr, CellList) {
        (t.mbr(), CellList::compress(t, 2.0))
    }

    #[test]
    fn verification_agrees_with_ground_truth_for_all_functions() {
        let ts = figure1_trajectories();
        let fns = [
            DistanceFunction::Dtw,
            DistanceFunction::Frechet,
            DistanceFunction::Edr { eps: 1.0 },
            DistanceFunction::Lcss { eps: 1.0, delta: 2 },
            DistanceFunction::Erp { gap: (0.0, 0.0) },
        ];
        for f in fns {
            for a in &ts {
                let (mbr, cells) = artifacts(a);
                for b in &ts {
                    let q = ctx(b.points());
                    let d = f.distance(a.points(), b.points());
                    for tau in [0.5, 1.5, 3.0, 6.0] {
                        match verify_pair(a.points(), &mbr, &cells, &q, tau, &f) {
                            Some(v) => {
                                assert!(d <= tau + 1e-9, "{f}: accepted d={d} tau={tau}");
                                assert!((v - d).abs() < 1e-9);
                            }
                            None => assert!(d > tau - 1e-9, "{f}: rejected d={d} tau={tau}"),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn example_5_5_pruned_by_mbr_coverage() {
        // Example 5.5: the pair survives OPAMD but fails MBR coverage.
        let ts = figure1_trajectories();
        let q = Trajectory::from_coords(
            10,
            &[
                (0.0, 4.0),
                (0.0, 5.0),
                (3.0, 7.0),
                (3.0, 9.0),
                (3.0, 11.0),
                (3.0, 3.0),
                (7.0, 5.0),
            ],
        );
        let (mbr, cells) = artifacts(&ts[4]);
        let qc = ctx(q.points());
        assert!(verify_pair(
            ts[4].points(),
            &mbr,
            &cells,
            &qc,
            3.0,
            &DistanceFunction::Dtw
        )
        .is_none());
    }

    #[test]
    fn example_5_7_pruned_by_cell_bound() {
        // Example 5.7: pruned by the cell lower bound (Cell(Q, T1) = 4 > 3)
        // even though the pair's MBRs are compatible.
        let ts = figure1_trajectories();
        let q = Trajectory::from_coords(
            10,
            &[
                (1.0, 1.0),
                (1.0, 5.0),
                (1.0, 4.0),
                (2.0, 4.0),
                (2.0, 5.0),
                (4.0, 4.0),
                (5.0, 6.0),
                (5.0, 5.0),
            ],
        );
        let (mbr, cells) = artifacts(&ts[0]);
        let qc = ctx(q.points());
        assert!(verify_pair(
            ts[0].points(),
            &mbr,
            &cells,
            &qc,
            3.0,
            &DistanceFunction::Dtw
        )
        .is_none());
    }

    #[test]
    fn self_verification_always_passes() {
        let ts = figure1_trajectories();
        for t in &ts {
            let (mbr, cells) = artifacts(t);
            let q = ctx(t.points());
            let v = verify_pair(t.points(), &mbr, &cells, &q, 0.0, &DistanceFunction::Dtw);
            assert_eq!(v, Some(0.0));
        }
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_query_context_rejected() {
        let _ = QueryContext::new(&[], 1.0);
    }

    #[test]
    fn soa_path_agrees_with_aos_path() {
        use dita_index::PivotStrategy;
        let ts = figure1_trajectories();
        let fns = [
            DistanceFunction::Dtw,
            DistanceFunction::Frechet,
            DistanceFunction::Edr { eps: 1.0 },
            DistanceFunction::Lcss { eps: 1.0, delta: 2 },
            DistanceFunction::Erp { gap: (0.0, 0.0) },
        ];
        let mut scratch = Scratch::new();
        for f in fns {
            for a in &ts {
                let it = IndexedTrajectory::new(a.clone(), 2, PivotStrategy::NeighborDistance, 2.0);
                for b in &ts {
                    let q = ctx(b.points());
                    for tau in [0.5, 1.5, 3.0, 6.0] {
                        let aos = verify_pair(a.points(), &it.mbr, &it.cells, &q, tau, &f);
                        let soa = verify_pair_soa((&it).into(), &q, tau, &f, &mut scratch);
                        match (aos, soa) {
                            (Some(x), Some(y)) => assert!((x - y).abs() < 1e-9, "{f}"),
                            (None, None) => {}
                            other => panic!("{f} tau={tau}: aos/soa disagree: {other:?}"),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn verify_candidates_deterministic_across_thread_counts() {
        use dita_index::{TrieConfig, TrieIndex};
        let ts = figure1_trajectories();
        let trie = TrieIndex::build(
            ts.clone(),
            TrieConfig {
                k: 2,
                nl: 2,
                leaf_capacity: 0,
                cell_side: 2.0,
                ..TrieConfig::default()
            },
        );
        let q = ctx(ts[0].points());
        let cands: Vec<u32> = (0..ts.len() as u32).collect();
        let baseline = verify_candidates(&trie, &cands, &q, 3.0, &DistanceFunction::Dtw, 1);
        assert!(!baseline.is_empty());
        for threads in [2usize, 4, 8] {
            for _ in 0..3 {
                let got =
                    verify_candidates(&trie, &cands, &q, 3.0, &DistanceFunction::Dtw, threads);
                assert_eq!(got, baseline, "threads={threads}");
            }
        }
    }

    #[test]
    fn out_of_range_candidate_is_an_error_not_a_panic() {
        use dita_index::{TrieConfig, TrieIndex};
        let ts = figure1_trajectories();
        let n = ts.len() as u32;
        let trie = TrieIndex::build(
            ts.clone(),
            TrieConfig {
                k: 2,
                nl: 2,
                leaf_capacity: 0,
                cell_side: 2.0,
                ..TrieConfig::default()
            },
        );
        let q = ctx(ts[0].points());
        // A corrupted candidate list (id past the end of the trie) must
        // surface as a retryable TaskError, in both the serial and the
        // rayon-pool paths, without unwinding the worker thread.
        for threads in [1usize, 4] {
            let cands: Vec<u32> = (0..=n).collect();
            let err =
                try_verify_candidates(&trie, &cands, &q, 3.0, &DistanceFunction::Dtw, threads)
                    .expect_err("out-of-range candidate must be rejected");
            assert!(err.to_string().contains("out of range"), "{err}");
        }
        // In-range ids still verify identically through the fallible path.
        let cands: Vec<u32> = (0..n).collect();
        let ok = try_verify_candidates(&trie, &cands, &q, 3.0, &DistanceFunction::Dtw, 1)
            .expect("in-range candidates verify");
        assert_eq!(
            ok,
            verify_candidates(&trie, &cands, &q, 3.0, &DistanceFunction::Dtw, 1)
        );
    }
}
