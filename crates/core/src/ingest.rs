//! Online ingestion: the write path of [`DitaSystem`].
//!
//! The paper builds its indexes once over a static dataset; this module
//! adds `INSERT`/`DELETE` without a full rebuild, in the LSM mold:
//!
//! * [`DitaSystem::insert`] / [`DitaSystem::delete`] land in per-partition
//!   deltas — an unflushed tail plus tombstones — owned by
//!   [`dita_ingest::DeltaSet`]. Inserts are routed to the partition whose
//!   endpoint MBRs are nearest the new trajectory's endpoints (the same
//!   geometry STR partitioning used).
//! * [`DitaSystem::flush`] ships each dirty partition's tail (and pending
//!   tombstone markers) to its worker and builds a mini **delta segment**
//!   trie there, so subsequent queries prune delta state exactly like base
//!   state.
//! * [`DitaSystem::compact`] folds base + deltas into rebuilt base tries,
//!   partition by partition, escalating to a full STR repartition only
//!   when the partition-size skew shows the endpoint distribution drifted
//!   past [`CompactionPolicy::skew_threshold`].
//!
//! Queries never see a difference in *answers*: `search`, `knn_search` and
//! `join` overlay base + deltas with tombstone suppression, and the overlay
//! is byte-identical to a from-scratch rebuild over the live rows (the
//! property tests in `tests/ingest_equivalence.rs` pin this).
//!
//! Simplification relative to a real deployment: the delta-side query
//! overlay (segment probes and tail checks) runs on the driver rather than
//! on the partitions' workers, so it adds no cluster tasks or network
//! charges to reads. Writes are fully charged: flush and compaction ship
//! their bytes through [`dita_cluster::TaskSpec::incoming_bytes`] and
//! charge trie-build CPU to the worker that runs it.

use crate::system::DitaSystem;
use dita_cluster::{charge_compute, TaskSpec};
use dita_index::{GlobalIndex, TrieIndex};
use dita_ingest::{CompactionPolicy, DeltaSegment, IngestStats};
use dita_obs::names;
use dita_trajectory::{Dataset, Mbr, Point, Trajectory, TrajectoryId};
use std::time::Instant;

impl DitaSystem {
    /// Inserts (or overwrites — latest write wins) a trajectory. The row is
    /// immediately visible to `search`/`knn`/`join`; the index catches up
    /// via [`DitaSystem::flush`] and [`DitaSystem::compact`], which the
    /// configured [`CompactionPolicy`] triggers automatically by default.
    pub fn insert(&mut self, t: Trajectory) {
        assert!(!t.is_empty(), "cannot insert an empty trajectory");
        let obs = self.cluster.obs().clone();
        let _span = dita_obs::span!(obs, names::SPAN_INGEST, op = "insert", id = t.id);
        let pid = dita_ingest::DeltaSet::route(&self.partitioning, &t);
        self.deltas.insert(t, pid);
        if obs.is_enabled() {
            obs.counter_labeled(names::INGEST_APPLIED_TOTAL, &[("op", "insert")])
                .inc();
            obs.gauge(names::DELTA_RATIO).set(self.delta_ratio());
        }
        self.maybe_compact();
    }

    /// Deletes a trajectory by id. Returns `false` (and changes nothing)
    /// when no live trajectory has that id. A deleted base row is
    /// tombstoned until the next compaction physically drops it.
    pub fn delete(&mut self, id: TrajectoryId) -> bool {
        let obs = self.cluster.obs().clone();
        let _span = dita_obs::span!(obs, names::SPAN_INGEST, op = "delete", id = id);
        let existed = self.deltas.delete(id);
        if existed && obs.is_enabled() {
            obs.counter_labeled(names::INGEST_APPLIED_TOTAL, &[("op", "delete")])
                .inc();
            obs.gauge(names::DELTA_RATIO).set(self.delta_ratio());
        }
        if existed {
            self.maybe_compact();
        }
        existed
    }

    /// Ships every dirty partition's unflushed tail (plus pending tombstone
    /// markers) to its worker and (re)builds that partition's delta-segment
    /// trie there. After a flush, delta-side filtering uses the same trie
    /// pruning as the base index instead of exact-checking tail entries.
    pub fn flush(&mut self) {
        let jobs = self.deltas.plan_flush();
        if jobs.is_empty() {
            return;
        }
        let obs = self.cluster.obs().clone();
        let _span = dita_obs::span!(obs, names::SPAN_INGEST, op = "flush");
        let trie_cfg = self.config.trie;
        let tasks: Vec<TaskSpec<dita_ingest::FlushJob>> = jobs
            .into_iter()
            .map(|job| TaskSpec {
                worker: self.placement[job.pid],
                incoming_bytes: job.ship_bytes,
                partition: Some(job.pid),
                payload: job,
            })
            .collect();
        let task_obs = obs.clone();
        let (mut built, _stats) = self.cluster.execute(tasks, move |_w, job| {
            let seg = job.members.map(|members| {
                let _span = task_obs.span(names::SPAN_SEGMENT_BUILD);
                let (seg, helper_cpu) = DeltaSegment::build(members, trie_cfg);
                charge_compute(helper_cpu);
                seg
            });
            (job.pid, seg)
        });
        built.sort_by_key(|&(pid, _)| pid);
        for (pid, seg) in built {
            if let Some(seg) = seg {
                self.deltas.install_segment(pid, seg);
            }
        }
        self.deltas.rebuild_seg_global();
        self.deltas.stats_mut().flushes += 1;
    }

    /// Folds all delta state into rebuilt base tries (the LSM merge), then
    /// re-runs STR repartitioning if the fold left the partition sizes
    /// skewed past [`CompactionPolicy::skew_threshold`]. Only dirty
    /// partitions are rebuilt. Returns `true` when anything was folded.
    ///
    /// Cost model: each dirty partition's rebuild runs as a cluster task on
    /// the partition's worker, charged with the not-yet-shipped delta bytes
    /// and the trie build's CPU time.
    pub fn compact(&mut self) -> bool {
        if !self.deltas.has_deltas() {
            return false;
        }
        let obs = self.cluster.obs().clone();
        let _span = dita_obs::span!(obs, names::SPAN_COMPACT);
        let wall = Instant::now();

        // Assemble each dirty partition's post-merge member set: live base
        // rows plus live delta rows, clustered by id.
        let mut tasks: Vec<TaskSpec<(usize, Vec<Trajectory>)>> = Vec::new();
        for pid in self.deltas.dirty_partitions() {
            let (delta_members, ship_bytes) = self.deltas.drain_for_compact(pid);
            let mut members: Vec<Trajectory> = self.tries[pid]
                .entries()
                .filter(|e| !self.deltas.is_base_dead(e.id()))
                .map(|e| e.to_trajectory())
                .collect();
            members.extend(delta_members);
            members.sort_by_key(|t| t.id);
            tasks.push(TaskSpec {
                worker: self.placement[pid],
                incoming_bytes: ship_bytes,
                partition: Some(pid),
                payload: (pid, members),
            });
        }
        let trie_cfg = self.config.trie;
        let task_obs = obs.clone();
        let (mut built, _stats) = self.cluster.execute(tasks, move |_w, (pid, members)| {
            let t0 = Instant::now();
            let (trie, helper_cpu) = TrieIndex::build_timed(members, trie_cfg);
            charge_compute(helper_cpu);
            // Per-partition rebuild time lands in the same histogram the
            // initial build uses; the whole fold is dita_compaction_seconds.
            task_obs
                .histogram_seconds(names::INDEX_BUILD_SECONDS)
                .observe(t0.elapsed().as_secs_f64());
            (pid, trie)
        });
        built.sort_by_key(|&(pid, _)| pid);

        // Install the rebuilt tries and refresh the partition metadata the
        // global index and insert routing read.
        for (pid, trie) in built {
            let p = &mut self.partitioning.partitions[pid];
            if trie.is_empty() {
                // A fully drained partition keeps a degenerate placeholder
                // MBR; its empty trie can never produce candidates, so any
                // coverage the global index keeps for it is sound.
                p.mbr_first = Mbr::from_point(Point::new(0.0, 0.0));
                p.mbr_last = p.mbr_first;
                p.min_len = 0;
                p.max_len = 0;
            } else {
                let firsts: Vec<Point> = trie.entries().map(|e| e.first()).collect();
                let lasts: Vec<Point> = trie.entries().map(|e| e.last()).collect();
                p.mbr_first = Mbr::from_points(firsts.iter());
                p.mbr_last = Mbr::from_points(lasts.iter());
                p.min_len = trie.entries().map(|e| e.len()).min().unwrap();
                p.max_len = trie.entries().map(|e| e.len()).max().unwrap();
            }
            // Membership indices are positional within the rebuilt trie;
            // keeping them length-accurate keeps `Partitioning::skew` and
            // the trie/partitioning alignment invariant truthful.
            p.members = (0..trie.len()).collect();
            self.tries[pid] = trie;
        }
        self.global = GlobalIndex::build(&self.partitioning);
        self.deltas
            .reset_after_compact(self.tries.len(), Self::base_home(&self.tries));
        self.deltas.stats_mut().compactions += 1;

        // Size bookkeeping follows the merged layout.
        self.build_stats.global_size_bytes = self.global.size_bytes();
        self.build_stats.local_size_bytes =
            self.tries.iter().map(TrieIndex::index_size_bytes).sum();
        self.build_stats.total_size_bytes = self.build_stats.global_size_bytes
            + self.tries.iter().map(TrieIndex::size_bytes).sum::<usize>();

        // Escalate to a full repartition only when the endpoint
        // distribution drifted enough to skew the original tiling.
        let skew = self.partitioning.skew();
        if skew > self.ingest_policy.skew_threshold && !self.is_empty() {
            self.repartition();
            self.deltas.stats_mut().repartitions += 1;
        }
        obs.histogram_seconds(names::COMPACTION_SECONDS)
            .observe(wall.elapsed().as_secs_f64());
        if obs.is_enabled() {
            obs.gauge(names::DELTA_RATIO).set(0.0);
            obs.gauge(names::INDEX_BYTES)
                .set(self.build_stats.local_size_bytes as f64);
        }
        true
    }

    /// Rebuilds the whole system from its live rows with fresh STR
    /// partitioning — the compaction escalation path.
    fn repartition(&mut self) {
        let dataset = Dataset::new_unchecked(self.name.clone(), self.live_trajectories());
        let mut rebuilt = DitaSystem::build(&dataset, self.config, self.cluster.clone());
        rebuilt.ingest_policy = self.ingest_policy;
        *rebuilt.deltas.stats_mut() = *self.deltas.stats();
        *self = rebuilt;
    }

    /// Runs [`DitaSystem::compact`] when the policy's auto-trigger trips.
    fn maybe_compact(&mut self) {
        if !self.ingest_policy.auto {
            return;
        }
        let d = &self.deltas;
        if self.ingest_policy.should_compact(
            d.delta_live(),
            d.tombstones(),
            self.len(),
            d.ops_since_compact(),
        ) {
            self.compact();
        }
    }

    /// The active compaction policy.
    pub fn compaction_policy(&self) -> CompactionPolicy {
        self.ingest_policy
    }

    /// Replaces the compaction policy (e.g. `auto: false` to drive
    /// [`DitaSystem::flush`]/[`DitaSystem::compact`] manually).
    pub fn set_compaction_policy(&mut self, policy: CompactionPolicy) {
        self.ingest_policy = policy;
    }

    /// Lifetime ingestion counters (inserts, deletes, flushes, compactions,
    /// repartitions).
    pub fn ingest_stats(&self) -> IngestStats {
        *self.deltas.stats()
    }

    /// Pending delta work as a fraction of the logical table:
    /// `(delta inserts + tombstones) / len()`. Zero on a clean table.
    pub fn delta_ratio(&self) -> f64 {
        let pending = (self.deltas.delta_live() + self.deltas.tombstones()) as f64;
        pending / self.len().max(1) as f64
    }

    /// `true` when any unmerged delta state exists.
    pub fn has_deltas(&self) -> bool {
        self.deltas.has_deltas()
    }

    /// `true` when a live trajectory has this id.
    pub fn contains(&self, id: TrajectoryId) -> bool {
        self.deltas.contains(id)
    }

    /// Visits every *live* trajectory — base rows minus tombstones plus
    /// delta rows — in partition order, base before deltas within each
    /// partition, deterministic across calls.
    pub fn for_each_live<F: FnMut(&Trajectory)>(&self, mut f: F) {
        for (pid, trie) in self.tries.iter().enumerate() {
            for e in trie.entries() {
                if !self.deltas.is_base_dead(e.id()) {
                    f(&e.to_trajectory());
                }
            }
            let part = self.deltas.part(pid);
            if let Some(seg) = &part.seg {
                for t in seg.live() {
                    f(&t);
                }
            }
            for it in part.tail.values() {
                f(&it.traj);
            }
        }
    }

    /// Visits every live *delta* trajectory (flushed segments then
    /// unflushed tails, per partition), deterministic across calls.
    pub fn for_each_delta_live<F: FnMut(&Trajectory)>(&self, mut f: F) {
        for part in self.deltas.parts() {
            if let Some(seg) = &part.seg {
                for t in seg.live() {
                    f(&t);
                }
            }
            for it in part.tail.values() {
                f(&it.traj);
            }
        }
    }

    /// All live trajectories, sorted by id.
    pub fn live_trajectories(&self) -> Vec<Trajectory> {
        let mut out = Vec::with_capacity(self.len());
        self.for_each_live(|t| out.push(t.clone()));
        out.sort_by_key(|t| t.id);
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::system::{DitaConfig, DitaSystem};
    use dita_cluster::{Cluster, ClusterConfig};
    use dita_distance::DistanceFunction;
    use dita_index::{PivotStrategy, TrieConfig};
    use dita_ingest::CompactionPolicy;
    use dita_trajectory::trajectory::figure1_trajectories;
    use dita_trajectory::{Dataset, Trajectory};

    fn config() -> DitaConfig {
        DitaConfig {
            ng: 2,
            trie: TrieConfig {
                k: 2,
                nl: 2,
                leaf_capacity: 0,
                strategy: PivotStrategy::NeighborDistance,
                cell_side: 2.0,
                ..TrieConfig::default()
            },
        }
    }

    fn manual_policy() -> CompactionPolicy {
        CompactionPolicy {
            auto: false,
            ..CompactionPolicy::default()
        }
    }

    fn fig1_system(workers: usize) -> DitaSystem {
        let dataset = Dataset::new("fig1", figure1_trajectories()).unwrap();
        let mut sys = DitaSystem::build(
            &dataset,
            config(),
            Cluster::new(ClusterConfig::with_workers(workers)),
        );
        sys.set_compaction_policy(manual_policy());
        sys
    }

    fn ids(hits: &[(u64, f64)]) -> Vec<u64> {
        hits.iter().map(|&(id, _)| id).collect()
    }

    #[test]
    fn deleted_trajectory_never_reappears() {
        let mut sys = fig1_system(2);
        let ts = figure1_trajectories();
        let q = ts[2].points().to_vec(); // T3 queries itself
        let probe = |sys: &DitaSystem| ids(&crate::search(sys, &q, 0.0, &DistanceFunction::Dtw).0);
        assert_eq!(probe(&sys), vec![3]);

        // Tombstoned: invisible immediately.
        assert!(sys.delete(3));
        assert!(!sys.contains(3));
        assert!(probe(&sys).is_empty());
        // Still gone after flush (tombstones shipped, no segment entry).
        sys.flush();
        assert!(probe(&sys).is_empty());
        // Still gone after compaction physically drops the base row.
        assert!(sys.compact());
        assert!(!sys.has_deltas());
        assert!(probe(&sys).is_empty());
        assert_eq!(sys.len(), 4);
        // And kNN over the full table never resurrects it.
        let (knn, _) = crate::knn_search(&sys, &q, 10, &DistanceFunction::Dtw);
        assert!(knn.iter().all(|&(id, _)| id != 3));
        // Double delete is a no-op.
        assert!(!sys.delete(3));

        // A re-insert under the same id is a *new* row and is visible.
        sys.insert(ts[2].clone());
        assert_eq!(probe(&sys), vec![3]);
        sys.compact();
        assert_eq!(probe(&sys), vec![3]);
        assert_eq!(sys.len(), 5);
    }

    #[test]
    fn insert_is_visible_before_and_after_flush_and_compact() {
        let mut sys = fig1_system(2);
        let t6 = Trajectory::from_coords(6, &[(0.5, 1.5), (2.0, 2.0), (4.5, 2.5)]);
        sys.insert(t6.clone());
        assert_eq!(sys.len(), 6);
        let probe =
            |sys: &DitaSystem| ids(&crate::search(sys, t6.points(), 0.0, &DistanceFunction::Dtw).0);
        assert_eq!(probe(&sys), vec![6]); // unflushed tail
        sys.flush();
        assert_eq!(probe(&sys), vec![6]); // flushed segment
        assert!(sys.has_deltas());
        sys.compact();
        assert_eq!(probe(&sys), vec![6]); // folded into base
        assert!(!sys.has_deltas());
        let stats = sys.ingest_stats();
        assert_eq!(stats.inserts, 1);
        assert_eq!(stats.flushes, 1);
        assert_eq!(stats.compactions, 1);
    }

    #[test]
    fn upsert_replaces_and_delta_ratio_tracks_pending_work() {
        let mut sys = fig1_system(2);
        assert_eq!(sys.delta_ratio(), 0.0);
        // Overwrite T1 with a far-away version: old answers must not leak.
        let t1b = Trajectory::from_coords(1, &[(40.0, 40.0), (41.0, 41.0)]);
        sys.insert(t1b.clone());
        assert_eq!(sys.len(), 5); // replaced, not added
        assert!(sys.delta_ratio() > 0.0);
        let ts = figure1_trajectories();
        let (at_old, _) = crate::search(&sys, ts[0].points(), 0.0, &DistanceFunction::Dtw);
        assert!(ids(&at_old).iter().all(|&id| id != 1));
        let (at_new, _) = crate::search(&sys, t1b.points(), 0.0, &DistanceFunction::Dtw);
        assert_eq!(ids(&at_new), vec![1]);
        sys.compact();
        assert_eq!(sys.delta_ratio(), 0.0);
        let (at_new, _) = crate::search(&sys, t1b.points(), 0.0, &DistanceFunction::Dtw);
        assert_eq!(ids(&at_new), vec![1]);
    }

    #[test]
    fn auto_policy_compacts_by_itself() {
        let mut sys = fig1_system(2);
        sys.set_compaction_policy(CompactionPolicy {
            max_delta_ops: 3,
            auto: true,
            ..CompactionPolicy::default()
        });
        for i in 0..7u64 {
            sys.insert(Trajectory::from_coords(
                100 + i,
                &[(i as f64, 0.0), (i as f64 + 1.0, 1.0)],
            ));
        }
        let stats = sys.ingest_stats();
        assert!(stats.compactions >= 2, "{stats:?}");
        assert_eq!(sys.len(), 12);
        // Whatever remains pending is below the ops trigger.
        assert!(sys.deltas().ops_since_compact() < 3);
    }

    #[test]
    fn skewed_growth_escalates_to_repartition() {
        let mut sys = fig1_system(2);
        sys.set_compaction_policy(CompactionPolicy {
            skew_threshold: 1.5,
            auto: false,
            ..CompactionPolicy::default()
        });
        // Pile 40 new trajectories into one corner: after folding, one
        // partition dwarfs the rest and the skew gate trips.
        for i in 0..40u64 {
            let x = 0.1 * i as f64;
            sys.insert(Trajectory::from_coords(
                200 + i,
                &[(x, 0.0), (x + 0.5, 0.5)],
            ));
        }
        sys.compact();
        assert_eq!(sys.ingest_stats().repartitions, 1);
        assert_eq!(sys.len(), 45);
        assert!(!sys.has_deltas());
        // The repartitioned system still answers exactly.
        let ts = figure1_trajectories();
        let (hits, _) = crate::search(&sys, ts[0].points(), 0.0, &DistanceFunction::Dtw);
        assert_eq!(ids(&hits), vec![1]);
    }

    #[test]
    fn save_index_refuses_unmerged_deltas() {
        let mut sys = fig1_system(2);
        sys.insert(Trajectory::from_coords(9, &[(1.0, 1.0), (2.0, 2.0)]));
        let mut buf = Vec::new();
        assert!(sys.save_index(&mut buf).is_err());
        sys.compact();
        assert!(sys.save_index(&mut buf).is_ok());
    }
}
