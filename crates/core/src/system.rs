//! The indexed trajectory table: partitions, indexes and worker placement.

use dita_cluster::{charge_compute, Cluster, TaskSpec};
use dita_index::{str_partitioning_par, GlobalIndex, Partitioning, TrieConfig, TrieIndex};
use dita_ingest::{CompactionPolicy, DeltaSet};
use dita_obs::names;
use dita_trajectory::{Dataset, Trajectory, TrajectoryId};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Top-level DITA configuration: the paper's tunables of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DitaConfig {
    /// First/last-point bucket count `N_G` (the partition grid is `N_G²`).
    pub ng: usize,
    /// Local trie index configuration (K, N_L, pivot strategy, …).
    pub trie: TrieConfig,
}

impl Default for DitaConfig {
    fn default() -> Self {
        DitaConfig {
            ng: 8,
            trie: TrieConfig::default(),
        }
    }
}

/// Index construction statistics (Tables 5 and 7).
#[derive(Debug, Clone)]
pub struct BuildStats {
    /// Wall-clock build time (partitioning + global + local indexes).
    pub build_time: Duration,
    /// Global index size in bytes.
    pub global_size_bytes: usize,
    /// Total local index size in bytes (excluding the clustered data).
    pub local_size_bytes: usize,
    /// Total size including the clustered trajectory data.
    pub total_size_bytes: usize,
}

/// An indexed, partitioned trajectory table placed on a cluster.
///
/// Building one is the `CREATE INDEX TrieIndex ON T USE TRIE` of §3: the
/// table is STR-partitioned by endpoints, a global index is built on the
/// driver, and each partition's trie index is built on its worker.
pub struct DitaSystem {
    pub(crate) name: String,
    pub(crate) config: DitaConfig,
    pub(crate) cluster: Cluster,
    pub(crate) partitioning: Partitioning,
    pub(crate) global: GlobalIndex,
    /// One trie per partition, indexed by partition id.
    pub(crate) tries: Vec<TrieIndex>,
    /// Worker hosting each partition.
    pub(crate) placement: Vec<usize>,
    pub(crate) build_stats: BuildStats,
    /// Mutable LSM-style delta state layered over the frozen base tries.
    pub(crate) deltas: DeltaSet,
    /// When the write path folds deltas back into the base index.
    pub(crate) ingest_policy: CompactionPolicy,
}

impl DitaSystem {
    /// Partitions, places and indexes a dataset on `cluster`.
    pub fn build(dataset: &Dataset, config: DitaConfig, cluster: Cluster) -> Self {
        Self::build_with_partitioning(dataset, config, cluster, None)
    }

    /// Like [`DitaSystem::build`] but with a caller-provided partitioning —
    /// used by the Figure 13 ablation to swap in random partitioning.
    pub fn build_with_partitioning(
        dataset: &Dataset,
        config: DitaConfig,
        cluster: Cluster,
        partitioning: Option<Partitioning>,
    ) -> Self {
        let start = Instant::now();
        let trajectories = dataset.trajectories();
        // Partitioning runs on the driver, parallelized over the trie's
        // build-thread budget (no cluster task to charge).
        let partitioning = partitioning.unwrap_or_else(|| {
            str_partitioning_par(trajectories, config.ng, config.trie.build_threads)
        });
        let global = GlobalIndex::build(&partitioning);
        let placement: Vec<usize> = (0..partitioning.partitions.len())
            .map(|i| cluster.place(i))
            .collect();

        // Build local indexes as cluster tasks so build parallelism and
        // placement match the paper's executor-side index construction.
        let tasks: Vec<TaskSpec<(usize, Vec<Trajectory>)>> = partitioning
            .partitions
            .iter()
            .map(|p| {
                let members: Vec<Trajectory> =
                    p.members.iter().map(|&m| trajectories[m].clone()).collect();
                TaskSpec {
                    worker: placement[p.id],
                    incoming_bytes: members.iter().map(|t| t.size_bytes() as u64).sum(),
                    partition: Some(p.id),
                    payload: (p.id, members),
                }
            })
            .collect();
        let trie_cfg = config.trie;
        let obs = cluster.obs().clone();
        let (mut built, _stats) = cluster.execute(tasks, move |_w, (pid, members)| {
            let _span = obs.span(names::SPAN_INDEX_BUILD);
            let t0 = Instant::now();
            let (trie, helper_cpu) = TrieIndex::build_timed(members, trie_cfg);
            // Fold the build pool's CPU time into this task's compute cost —
            // same contract as parallel verification.
            charge_compute(helper_cpu);
            obs.histogram_seconds(names::INDEX_BUILD_SECONDS)
                .observe(t0.elapsed().as_secs_f64());
            (pid, trie)
        });
        built.sort_by_key(|(pid, _)| *pid);
        let tries: Vec<TrieIndex> = built.into_iter().map(|(_, t)| t).collect();

        let build_time = start.elapsed();
        let global_size_bytes = global.size_bytes();
        let local_size_bytes: usize = tries.iter().map(TrieIndex::index_size_bytes).sum();
        let total_size_bytes =
            global_size_bytes + tries.iter().map(TrieIndex::size_bytes).sum::<usize>();
        if cluster.obs().is_enabled() {
            cluster
                .obs()
                .gauge(names::INDEX_BYTES)
                .set(local_size_bytes as f64);
        }

        let deltas = DeltaSet::new(tries.len(), Self::base_home(&tries), config.trie);
        DitaSystem {
            name: dataset.name.clone(),
            config,
            cluster,
            partitioning,
            global,
            tries,
            placement,
            build_stats: BuildStats {
                build_time,
                global_size_bytes,
                local_size_bytes,
                total_size_bytes,
            },
            deltas,
            ingest_policy: CompactionPolicy::default(),
        }
    }

    /// Base-residency map: the partition of every id stored in a base trie.
    pub(crate) fn base_home(tries: &[TrieIndex]) -> BTreeMap<TrajectoryId, usize> {
        let mut home = BTreeMap::new();
        for (pid, trie) in tries.iter().enumerate() {
            for e in trie.entries() {
                home.insert(e.id(), pid);
            }
        }
        home
    }

    /// Table name (the dataset it was built from).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The configuration used at build time.
    pub fn config(&self) -> &DitaConfig {
        &self.config
    }

    /// The cluster this table lives on.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Attaches an observability context: the executor starts recording
    /// per-worker metrics and task spans, and the query operators
    /// ([`crate::search`], [`crate::join`], [`crate::knn_search`]) wrap
    /// themselves in top-level spans and mirror their statistics into the
    /// context's registry. Systems start with a disabled (zero-cost)
    /// context.
    pub fn attach_obs(&mut self, obs: dita_obs::Obs) {
        self.cluster.attach_obs(obs);
    }

    /// The observability context (disabled unless attached).
    pub fn obs(&self) -> &dita_obs::Obs {
        self.cluster.obs()
    }

    /// The partitioning.
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    /// The driver-side global index.
    pub fn global(&self) -> &GlobalIndex {
        &self.global
    }

    /// The local trie index of a partition.
    pub fn trie(&self, partition: usize) -> &TrieIndex {
        &self.tries[partition]
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.tries.len()
    }

    /// The worker hosting a partition.
    pub fn worker_of(&self, partition: usize) -> usize {
        self.placement[partition]
    }

    /// Number of live trajectories: base members minus tombstones plus
    /// delta inserts.
    pub fn len(&self) -> usize {
        self.tries.iter().map(TrieIndex::len).sum::<usize>() - self.deltas.tombstones()
            + self.deltas.delta_live()
    }

    /// The delta state (unflushed tails, flushed segments, tombstones)
    /// layered over the base tries. See [`crate::ingest`].
    pub fn deltas(&self) -> &DeltaSet {
        &self.deltas
    }

    /// `true` when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Index construction statistics.
    pub fn build_stats(&self) -> &BuildStats {
        &self.build_stats
    }

    /// Serializes the complete index (partitioning, global index, clustered
    /// tries) to a writer as JSON. The cluster binding, placement and build
    /// statistics are runtime state and are re-derived at load.
    pub fn save_index<W: std::io::Write>(&self, w: W) -> std::io::Result<()> {
        if self.deltas.has_deltas() {
            return Err(std::io::Error::other(
                "index has unmerged deltas; call compact() before save_index",
            ));
        }
        let snapshot = IndexSnapshot {
            name: self.name.clone(),
            config: self.config,
            partitioning: &self.partitioning,
            global: &self.global,
            tries: &self.tries,
        };
        serde_json::to_writer(w, &snapshot).map_err(std::io::Error::other)
    }

    /// Restores a saved index onto `cluster`, re-deriving placement with the
    /// cluster's round-robin rule. Searches and joins over the loaded system
    /// return exactly what the original returned.
    pub fn load_index<R: std::io::Read>(r: R, cluster: Cluster) -> std::io::Result<Self> {
        let snapshot: OwnedIndexSnapshot =
            serde_json::from_reader(r).map_err(std::io::Error::other)?;
        let placement: Vec<usize> = (0..snapshot.partitioning.partitions.len())
            .map(|i| cluster.place(i))
            .collect();
        let global_size_bytes = snapshot.global.size_bytes();
        let local_size_bytes = snapshot.tries.iter().map(TrieIndex::index_size_bytes).sum();
        let total_size_bytes = global_size_bytes
            + snapshot
                .tries
                .iter()
                .map(TrieIndex::size_bytes)
                .sum::<usize>();
        let deltas = DeltaSet::new(
            snapshot.tries.len(),
            Self::base_home(&snapshot.tries),
            snapshot.config.trie,
        );
        Ok(DitaSystem {
            name: snapshot.name,
            config: snapshot.config,
            cluster,
            partitioning: snapshot.partitioning,
            global: snapshot.global,
            tries: snapshot.tries,
            placement,
            build_stats: BuildStats {
                build_time: Duration::ZERO,
                global_size_bytes,
                local_size_bytes,
                total_size_bytes,
            },
            deltas,
            ingest_policy: CompactionPolicy::default(),
        })
    }
}

/// Borrowing snapshot used by [`DitaSystem::save_index`].
// The fields are read only by the serde derive; the offline stub's derive
// expands to nothing, so rustc cannot see those reads.
#[derive(serde::Serialize)]
#[allow(dead_code)]
struct IndexSnapshot<'a> {
    name: String,
    config: DitaConfig,
    partitioning: &'a Partitioning,
    global: &'a GlobalIndex,
    tries: &'a [TrieIndex],
}

/// Owning snapshot used by [`DitaSystem::load_index`].
#[derive(serde::Deserialize)]
struct OwnedIndexSnapshot {
    name: String,
    config: DitaConfig,
    partitioning: Partitioning,
    global: GlobalIndex,
    tries: Vec<TrieIndex>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dita_cluster::ClusterConfig;
    use dita_trajectory::trajectory::figure1_trajectories;

    fn tiny_system() -> DitaSystem {
        let dataset = Dataset::new("fig1", figure1_trajectories()).unwrap();
        let config = DitaConfig {
            ng: 2,
            trie: TrieConfig {
                k: 2,
                nl: 2,
                leaf_capacity: 0,
                strategy: dita_index::PivotStrategy::NeighborDistance,
                cell_side: 2.0,
                ..TrieConfig::default()
            },
        };
        DitaSystem::build(
            &dataset,
            config,
            Cluster::new(ClusterConfig::with_workers(2)),
        )
    }

    #[test]
    fn build_covers_all_trajectories() {
        let sys = tiny_system();
        assert_eq!(sys.len(), 5);
        assert!(!sys.is_empty());
        assert_eq!(sys.num_partitions(), sys.partitioning().partitions.len());
        assert_eq!(sys.global().num_partitions(), sys.num_partitions());
    }

    #[test]
    fn placement_is_within_cluster() {
        let sys = tiny_system();
        for p in 0..sys.num_partitions() {
            assert!(sys.worker_of(p) < sys.cluster().num_workers());
        }
    }

    #[test]
    fn build_stats_are_populated() {
        let sys = tiny_system();
        let s = sys.build_stats();
        assert!(s.global_size_bytes > 0);
        assert!(s.local_size_bytes > 0);
        assert!(s.total_size_bytes > s.local_size_bytes);
    }

    #[test]
    fn partition_tries_align_with_partitioning() {
        let sys = tiny_system();
        for p in &sys.partitioning().partitions {
            assert_eq!(sys.trie(p.id).len(), p.members.len());
        }
    }
}

#[cfg(test)]
mod persistence_tests {
    use super::*;
    use dita_cluster::ClusterConfig;
    use dita_distance::DistanceFunction;
    use dita_trajectory::trajectory::figure1_trajectories;

    #[test]
    fn save_load_round_trip_preserves_answers() {
        let dataset = Dataset::new("fig1", figure1_trajectories()).unwrap();
        let config = DitaConfig {
            ng: 2,
            trie: TrieConfig {
                k: 2,
                nl: 2,
                leaf_capacity: 0,
                strategy: dita_index::PivotStrategy::NeighborDistance,
                cell_side: 2.0,
                ..TrieConfig::default()
            },
        };
        let original = DitaSystem::build(
            &dataset,
            config,
            Cluster::new(ClusterConfig::with_workers(2)),
        );

        let mut buf = Vec::new();
        original.save_index(&mut buf).unwrap();
        // Load onto a *different* cluster shape.
        let loaded =
            DitaSystem::load_index(buf.as_slice(), Cluster::new(ClusterConfig::with_workers(3)))
                .unwrap();

        assert_eq!(loaded.name(), original.name());
        assert_eq!(loaded.len(), original.len());
        assert_eq!(loaded.num_partitions(), original.num_partitions());
        for q in figure1_trajectories() {
            for tau in [1.0, 3.0, 6.0] {
                let (a, _) = crate::search(&original, q.points(), tau, &DistanceFunction::Dtw);
                let (b, _) = crate::search(&loaded, q.points(), tau, &DistanceFunction::Dtw);
                assert_eq!(a, b, "Q=T{} tau={tau}", q.id);
            }
        }
        // Joins agree too.
        let opts = crate::JoinOptions::default();
        let (pa, _) = crate::join(&original, &original, 3.0, &DistanceFunction::Dtw, &opts);
        let (pb, _) = crate::join(&loaded, &loaded, 3.0, &DistanceFunction::Dtw, &opts);
        assert_eq!(pa, pb);
    }

    #[test]
    fn corrupt_input_is_an_error() {
        let r = DitaSystem::load_index(
            &b"not json"[..],
            Cluster::new(ClusterConfig::with_workers(1)),
        );
        assert!(r.is_err());
    }
}
