//! Distributed trajectory similarity search (§5).
//!
//! Three steps, matching §5.1.1: the driver consults the global index for
//! relevant partitions and ships the query to their workers; each worker
//! filters with its trie index and verifies the candidates on the spot (the
//! clustered layout means no second lookup); the driver collects results.

use crate::system::DitaSystem;
use crate::verify::{try_verify_candidates, verify_candidates, CandidateView, QueryContext};
use dita_cluster::{JobStats, TaskError, TaskSpec};
use dita_distance::DistanceFunction;
use dita_index::{BatchProbeScratch, FilterStats, ProbeScratch};
use dita_obs::names;
use dita_obs::sync::locks;
use dita_obs::OrderedMutex;
use dita_trajectory::{Point, TrajectoryId};

/// Statistics of one search execution.
#[derive(Debug, Clone)]
pub struct SearchStats {
    /// Partitions the global index could not prune.
    pub relevant_partitions: usize,
    /// Candidates produced by the trie filters.
    pub candidates: usize,
    /// Final result count.
    pub results: usize,
    /// Aggregated trie filter funnel (nodes visited/pruned, leaf checks).
    pub filter: FilterStats,
    /// Candidates produced by the delta overlay: live segment-trie
    /// candidates plus exact-checked unflushed tail entries. Zero on a
    /// clean (fully compacted) table.
    pub delta_candidates: usize,
    /// Aggregated delta-segment filter funnel.
    pub delta_filter: FilterStats,
    /// Cluster-level execution statistics.
    pub job: JobStats,
}

/// Tuning knobs for [`search_with_options`].
#[derive(Debug, Clone, Copy)]
pub struct SearchOptions {
    /// Rayon threads each worker task uses to verify its candidate list;
    /// 1 (the default) verifies serially on the worker thread. The pool's
    /// CPU time is charged back to the task either way, so the simulated
    /// cost model is unaffected — only wall-clock changes.
    pub verify_threads: usize,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions { verify_threads: 1 }
    }
}

/// Reusable allocations for repeated searches.
///
/// Worker tasks run concurrently and each needs its own probe stack, so the
/// probe scratches live in small mutex-guarded pools: a task pops one on
/// entry and returns it on exit, and by the second call every pool hit is
/// allocation-free. The kernel scratch is driver-only (delta tail checks).
/// [`knn_search`](crate::knn_search) holds one of these across its
/// bound-tightening rounds, and the batch drivers across whole batches.
pub struct SearchScratch {
    probes: OrderedMutex<Vec<ProbeScratch>>,
    batches: OrderedMutex<Vec<BatchProbeScratch>>,
    kernel: dita_distance::kernel::Scratch,
}

impl SearchScratch {
    /// Creates an empty scratch; the pools fill lazily as tasks run.
    pub fn new() -> Self {
        SearchScratch {
            probes: OrderedMutex::new(&locks::SEARCH_SCRATCH_PROBE, Vec::new()),
            batches: OrderedMutex::new(&locks::SEARCH_SCRATCH_BATCH, Vec::new()),
            kernel: dita_distance::kernel::Scratch::default(),
        }
    }

    fn take_probe(&self) -> ProbeScratch {
        self.probes.lock().pop().unwrap_or_default()
    }

    fn put_probe(&self, s: ProbeScratch) {
        self.probes.lock().push(s);
    }

    fn take_batch(&self) -> BatchProbeScratch {
        self.batches.lock().pop().unwrap_or_default()
    }

    fn put_batch(&self, s: BatchProbeScratch) {
        self.batches.lock().push(s);
    }
}

impl Default for SearchScratch {
    fn default() -> Self {
        SearchScratch::new()
    }
}

/// Per-query statistics of one [`search_batch`] execution — the same funnel
/// breakdown [`SearchStats`] reports for a standalone search, minus the
/// job-level fields that are shared by the whole batch.
#[derive(Debug, Clone)]
pub struct QueryStats {
    /// Partitions the global index could not prune for this query.
    pub relevant_partitions: usize,
    /// Candidates the trie filters produced for this query.
    pub candidates: usize,
    /// Final result count for this query.
    pub results: usize,
    /// This query's trie filter funnel.
    pub filter: FilterStats,
    /// Delta-overlay candidates (segments + exact-checked tails).
    pub delta_candidates: usize,
    /// This query's delta-segment filter funnel.
    pub delta_filter: FilterStats,
}

/// Statistics of one [`search_batch`] execution.
#[derive(Debug, Clone)]
pub struct BatchSearchStats {
    /// Per-query funnels, parallel to the input query slice.
    pub queries: Vec<QueryStats>,
    /// Cluster-level execution statistics for the whole batch job.
    pub job: JobStats,
}

/// Bytes shipped when a query trajectory is sent to a worker.
///
/// Priced exactly like [`dita_trajectory::Trajectory::size_bytes`] (id
/// envelope + 16 bytes per point) so search's query broadcast and join's
/// trajectory shipments charge the network model consistently — a
/// trajectory costs the same wherever it travels.
pub fn query_broadcast_bytes(q: &[Point]) -> u64 {
    (std::mem::size_of::<TrajectoryId>() + std::mem::size_of_val(q)) as u64
}

/// Finds all trajectories `T` in the table with `func(T, q) ≤ tau`.
///
/// Returns `(id, distance)` pairs sorted by id, plus execution statistics.
pub fn search(
    system: &DitaSystem,
    q: &[Point],
    tau: f64,
    func: &DistanceFunction,
) -> (Vec<(TrajectoryId, f64)>, SearchStats) {
    search_with_options(system, q, tau, func, SearchOptions::default())
}

/// [`search`] with explicit [`SearchOptions`].
pub fn search_with_options(
    system: &DitaSystem,
    q: &[Point],
    tau: f64,
    func: &DistanceFunction,
    options: SearchOptions,
) -> (Vec<(TrajectoryId, f64)>, SearchStats) {
    let mut scratch = SearchScratch::new();
    search_with_scratch(system, q, tau, func, options, &mut scratch)
}

/// [`search_with_options`] with caller-held scratch: repeated calls (kNN
/// bound tightening, benchmark loops) reuse probe stacks and kernel buffers
/// instead of reallocating them per query. Results are identical.
pub fn search_with_scratch(
    system: &DitaSystem,
    q: &[Point],
    tau: f64,
    func: &DistanceFunction,
    options: SearchOptions,
    scratch: &mut SearchScratch,
) -> (Vec<(TrajectoryId, f64)>, SearchStats) {
    assert!(!q.is_empty(), "queries must contain at least one point");

    // Top-level operation span: the executor captures the driver's current
    // span before spawning workers, so worker/task spans nest under it.
    let obs = system.obs();
    let _search_span = dita_obs::span!(obs, names::SPAN_SEARCH, func = func, tau = tau);

    // Step 1 (driver): global pruning.
    let relevant = system.global().relevant_partitions(
        &q[0],
        &q[q.len() - 1],
        q.len(),
        tau,
        func.index_mode(),
    );

    // Step 2 (workers): filter + verify.
    //
    // Broadcast accounting: the query is shipped once per *worker* with
    // relevant partitions — not once per partition — because each worker
    // receives exactly one task (one message) covering all of its
    // partitions. Each shipment is priced as a full trajectory record via
    // `query_broadcast_bytes`, the same formula join uses for shipped
    // trajectories, so the two operators charge the network identically.
    let q_ctx = QueryContext::new(q, system.config().trie.cell_side);
    let q_bytes = query_broadcast_bytes(q);
    let mut by_worker: std::collections::BTreeMap<usize, Vec<usize>> =
        std::collections::BTreeMap::new();
    for &pid in &relevant {
        by_worker
            .entry(system.worker_of(pid))
            .or_default()
            .push(pid);
    }
    let tasks: Vec<TaskSpec<Vec<usize>>> = by_worker
        .into_iter()
        .map(|(worker, pids)| TaskSpec {
            worker,
            incoming_bytes: q_bytes,
            // A search task scans several partitions; per-partition
            // attribution happens on its filter/verify child spans instead.
            partition: None,
            payload: pids,
        })
        .collect();

    let q_ctx = &q_ctx;
    let verify_threads = options.verify_threads;
    let scratch_ref: &SearchScratch = scratch;
    let (per_worker, job) = system.cluster().execute_try(tasks, move |_w, pids| {
        let mut candidates = 0usize;
        let mut funnel = FilterStats::default();
        let mut hits: Vec<(TrajectoryId, f64)> = Vec::new();
        let obs = system.obs();
        let mut probe = scratch_ref.take_probe();
        for pid in pids {
            let trie = system.trie(pid);
            // The executor opens a `task` span on this thread before calling
            // us, so `filter` and `verify` nest search → worker → task → …
            let cands = {
                let _fspan = dita_obs::span!(obs, names::SPAN_FILTER, pid = pid);
                let (cands, fs) =
                    trie.candidates_with_scratch(q_ctx.points(), tau, func, &mut probe);
                funnel.merge(&fs);
                cands
            };
            candidates += cands.len();
            let _vspan = dita_obs::span!(obs, names::SPAN_VERIFY, pid = pid);
            hits.extend(try_verify_candidates(
                trie,
                &cands,
                q_ctx,
                tau,
                func,
                verify_threads,
            )?);
        }
        scratch_ref.put_probe(probe);
        Ok((candidates, funnel, hits))
    });

    // Step 3 (driver): collect.
    let mut candidates = 0;
    let mut filter = FilterStats::default();
    let mut results: Vec<(TrajectoryId, f64)> = Vec::new();
    for (c, fs, hits) in per_worker {
        candidates += c;
        filter.merge(&fs);
        results.extend(hits);
    }

    let (delta_candidates, delta_filter, tail_checked, tail_hits) = overlay_deltas(
        system,
        q,
        q_ctx,
        tau,
        func,
        verify_threads,
        &mut results,
        scratch,
    );
    results.sort_by_key(|&(id, _)| id);
    let deltas = system.deltas();

    if obs.is_enabled() {
        filter.funnel().record(obs);
        obs.counter(names::SEARCH_QUERIES_TOTAL).inc();
        obs.counter(names::SEARCH_CANDIDATES_TOTAL)
            .add(candidates as u64);
        obs.counter(names::SEARCH_RESULTS_TOTAL)
            .add(results.len() as u64);
        if deltas.has_deltas() {
            let mut funnel = delta_funnel(&delta_filter);
            funnel.push_stage(
                names::STAGE_TAIL_EXACT,
                tail_checked,
                tail_checked - tail_hits,
            );
            funnel.record(obs);
        }
    }

    let stats = SearchStats {
        relevant_partitions: relevant.len(),
        candidates,
        results: results.len(),
        filter,
        delta_candidates,
        delta_filter,
        job,
    };
    (results, stats)
}

/// Delta overlay (driver-side): suppresses tombstoned base hits in
/// `results`, then adds matches from the flushed delta segments and the
/// unflushed tails. The segment path reuses the exact trie filter + verify
/// kernels; tail entries are exact-checked one by one (the compaction
/// policy keeps them few). Nothing here runs when the table is clean, so a
/// compacted table searches byte-for-byte like a freshly built one.
///
/// Returns `(delta_candidates, delta_filter, tail_checked, tail_hits)`.
#[allow(clippy::too_many_arguments)]
fn overlay_deltas(
    system: &DitaSystem,
    q: &[Point],
    q_ctx: &QueryContext,
    tau: f64,
    func: &DistanceFunction,
    verify_threads: usize,
    results: &mut Vec<(TrajectoryId, f64)>,
    scratch: &mut SearchScratch,
) -> (usize, FilterStats, u64, u64) {
    let deltas = system.deltas();
    let mut delta_filter = FilterStats::default();
    if !deltas.has_deltas() {
        return (0, delta_filter, 0, 0);
    }
    let obs = system.obs();
    let _dspan = dita_obs::span!(obs, names::SPAN_DELTA_OVERLAY);
    let mut delta_candidates = 0usize;
    let mut tail_checked = 0u64;
    let mut tail_hits = 0u64;
    results.retain(|&(id, _)| !deltas.is_base_dead(id));
    let mode = func.index_mode();
    let mut probe = scratch.take_probe();
    for pid in deltas.seg_relevant(&q[0], &q[q.len() - 1], q.len(), tau, mode) {
        let seg = deltas
            .part(pid)
            .seg
            .as_ref()
            .expect("segment-relevant partition has a segment");
        let (cands, fs) = seg
            .trie
            .candidates_with_scratch(q_ctx.points(), tau, func, &mut probe);
        delta_filter.merge(&fs);
        let cands: Vec<u32> = cands
            .into_iter()
            .filter(|&c| !seg.dead.contains(&seg.trie.get(c).id()))
            .collect();
        delta_candidates += cands.len();
        results.extend(verify_candidates(
            &seg.trie,
            &cands,
            q_ctx,
            tau,
            func,
            verify_threads,
        ));
    }
    scratch.put_probe(probe);
    for part in deltas.parts() {
        for it in part.tail.values() {
            tail_checked += 1;
            if let Some(d) =
                crate::verify::verify_pair_soa(it.into(), q_ctx, tau, func, &mut scratch.kernel)
            {
                tail_hits += 1;
                results.push((it.traj.id, d));
            }
        }
    }
    delta_candidates += tail_checked as usize;
    (delta_candidates, delta_filter, tail_checked, tail_hits)
}

/// Finds, for every query `queries[i]`, all trajectories within `taus[i]`
/// — answering the whole batch with one shared pass instead of a per-query
/// loop.
///
/// Three batching levers, each preserving byte-identical results:
///
/// * **One task per worker per batch.** Every query's relevant partitions
///   are computed up front; a worker receives a single task carrying every
///   query that reaches it, priced at one broadcast per distinct query —
///   the batch charges the network exactly what the per-query loop would.
/// * **Shared trie traversal.** Each partition's arena is walked once for
///   all of its queries via [`TrieIndex::candidates_batch`], per-query
///   funnels intact.
/// * **Partition-major verification.** The per-query candidate lists are
///   inverted so each stored trajectory is decoded once and checked
///   against every query that reached it through the SoA kernels.
///
/// Returns per-query result vectors (each sorted by id, exactly what
/// [`search`] returns for that query alone) plus per-query statistics.
pub fn search_batch(
    system: &DitaSystem,
    queries: &[&[Point]],
    taus: &[f64],
    func: &DistanceFunction,
    options: SearchOptions,
) -> (Vec<Vec<(TrajectoryId, f64)>>, BatchSearchStats) {
    let mut scratch = SearchScratch::new();
    search_batch_with_scratch(system, queries, taus, func, options, &mut scratch)
}

/// [`search_batch`] with caller-held scratch (see [`SearchScratch`]).
pub fn search_batch_with_scratch(
    system: &DitaSystem,
    queries: &[&[Point]],
    taus: &[f64],
    func: &DistanceFunction,
    options: SearchOptions,
    scratch: &mut SearchScratch,
) -> (Vec<Vec<(TrajectoryId, f64)>>, BatchSearchStats) {
    assert_eq!(queries.len(), taus.len(), "one tau per query");
    for q in queries {
        assert!(!q.is_empty(), "queries must contain at least one point");
    }
    let nq = queries.len();
    let obs = system.obs();
    let _batch_span = dita_obs::span!(obs, names::SPAN_SEARCH_BATCH, queries = nq, func = func);

    // Step 1 (driver): global pruning per query, grouped worker-major.
    let ctxs: Vec<QueryContext> = queries
        .iter()
        .map(|q| QueryContext::new(q, system.config().trie.cell_side))
        .collect();
    let mut relevant_counts = vec![0usize; nq];
    let mut by_worker: std::collections::BTreeMap<
        usize,
        std::collections::BTreeMap<usize, Vec<u32>>,
    > = std::collections::BTreeMap::new();
    for (qi, q) in queries.iter().enumerate() {
        let relevant = system.global().relevant_partitions(
            &q[0],
            &q[q.len() - 1],
            q.len(),
            taus[qi],
            func.index_mode(),
        );
        relevant_counts[qi] = relevant.len();
        for pid in relevant {
            by_worker
                .entry(system.worker_of(pid))
                .or_default()
                .entry(pid)
                .or_default()
                .push(qi as u32);
        }
    }

    // Step 2 (workers): one task per worker. Broadcast accounting: the task
    // is charged one `query_broadcast_bytes` shipment per *distinct* query
    // reaching that worker — summed over the batch this equals exactly what
    // the sequential per-query loop charges, and a query never pays twice
    // for two partitions on the same worker.
    // One task payload: this worker's `(partition, query indexes)` list.
    type BatchPayload = Vec<(usize, Vec<u32>)>;
    let tasks: Vec<TaskSpec<BatchPayload>> = by_worker
        .into_iter()
        .map(|(worker, pids)| {
            let mut qset: Vec<u32> = pids.values().flatten().copied().collect();
            qset.sort_unstable();
            qset.dedup();
            let incoming_bytes = qset
                .iter()
                .map(|&qi| query_broadcast_bytes(queries[qi as usize]))
                .sum();
            TaskSpec {
                worker,
                incoming_bytes,
                partition: None,
                payload: pids.into_iter().collect(),
            }
        })
        .collect();

    let ctxs_ref = &ctxs;
    let scratch_ref: &SearchScratch = scratch;
    type WorkerOut = Vec<(u32, usize, FilterStats, Vec<(TrajectoryId, f64)>)>;
    let (per_worker, job) = system.cluster().execute_try(tasks, move |_w, pids| {
        let obs = system.obs();
        let mut probe = scratch_ref.take_batch();
        let mut kernel = dita_distance::kernel::Scratch::new();
        let mut out: WorkerOut = Vec::new();
        let mut slot: std::collections::BTreeMap<u32, usize> = std::collections::BTreeMap::new();
        for (pid, qidxs) in pids {
            let trie = system.trie(pid);
            let batch = {
                let _fspan = dita_obs::span!(obs, names::SPAN_FILTER, pid = pid);
                let qs: Vec<&[Point]> = qidxs
                    .iter()
                    .map(|&qi| ctxs_ref[qi as usize].points())
                    .collect();
                let ts: Vec<f64> = qidxs.iter().map(|&qi| taus[qi as usize]).collect();
                trie.candidates_batch(&qs, &ts, func, &mut probe)
            };
            let _vspan = dita_obs::span!(obs, names::SPAN_VERIFY, pid = pid);
            // Partition-major verify: invert the per-query candidate lists
            // so each trajectory is decoded once for every query that
            // reached it. Ids are validated first, mirroring
            // `try_verify_candidates`.
            let mut by_cand: std::collections::BTreeMap<u32, Vec<usize>> =
                std::collections::BTreeMap::new();
            for (local, (ids, _)) in batch.iter().enumerate() {
                for &c in ids {
                    if trie.try_get(c).is_none() {
                        return Err(TaskError::new(format!(
                            "candidate id {c} out of range for a trie of {} entries",
                            trie.len()
                        )));
                    }
                    by_cand.entry(c).or_default().push(local);
                }
            }
            let mut hits: Vec<Vec<(TrajectoryId, f64)>> = vec![Vec::new(); qidxs.len()];
            for (&c, locals) in &by_cand {
                let view = CandidateView::from(trie.get(c));
                for &local in locals {
                    let qi = qidxs[local] as usize;
                    if let Some(d) = crate::verify::verify_pair_soa(
                        view,
                        &ctxs_ref[qi],
                        taus[qi],
                        func,
                        &mut kernel,
                    ) {
                        hits[local].push((view.id, d));
                    }
                }
            }
            for (local, (ids, fs)) in batch.into_iter().enumerate() {
                let qi = qidxs[local];
                // Per-query child span under the batch task, so critical-
                // path attribution can split the task's wall time by query.
                let _qspan = dita_obs::span!(obs, names::SPAN_BATCH_QUERY, query = qi, pid = pid);
                let h = std::mem::take(&mut hits[local]);
                match slot.get(&qi) {
                    Some(&s) => {
                        out[s].1 += ids.len();
                        out[s].2.merge(&fs);
                        out[s].3.extend(h);
                    }
                    None => {
                        slot.insert(qi, out.len());
                        out.push((qi, ids.len(), fs, h));
                    }
                }
            }
        }
        scratch_ref.put_batch(probe);
        Ok(out)
    });

    // Step 3 (driver): collect per query, then run each query's delta
    // overlay + sort + obs accounting exactly as the sequential path would.
    let mut results: Vec<Vec<(TrajectoryId, f64)>> = vec![Vec::new(); nq];
    let mut stats: Vec<QueryStats> = relevant_counts
        .iter()
        .map(|&r| QueryStats {
            relevant_partitions: r,
            candidates: 0,
            results: 0,
            filter: FilterStats::default(),
            delta_candidates: 0,
            delta_filter: FilterStats::default(),
        })
        .collect();
    for worker_out in per_worker {
        for (qi, cands, fs, hits) in worker_out {
            let qi = qi as usize;
            stats[qi].candidates += cands;
            stats[qi].filter.merge(&fs);
            results[qi].extend(hits);
        }
    }
    let deltas = system.deltas();
    for qi in 0..nq {
        let _qspan = dita_obs::span!(obs, names::SPAN_BATCH_QUERY, query = qi);
        let (dc, df, tail_checked, tail_hits) = overlay_deltas(
            system,
            queries[qi],
            &ctxs[qi],
            taus[qi],
            func,
            options.verify_threads,
            &mut results[qi],
            scratch,
        );
        results[qi].sort_by_key(|&(id, _)| id);
        stats[qi].delta_candidates = dc;
        stats[qi].delta_filter = df;
        stats[qi].results = results[qi].len();
        if obs.is_enabled() {
            stats[qi].filter.funnel().record(obs);
            obs.counter(names::SEARCH_QUERIES_TOTAL).inc();
            obs.counter(names::SEARCH_CANDIDATES_TOTAL)
                .add(stats[qi].candidates as u64);
            obs.counter(names::SEARCH_RESULTS_TOTAL)
                .add(results[qi].len() as u64);
            if deltas.has_deltas() {
                let mut funnel = delta_funnel(&stats[qi].delta_filter);
                funnel.push_stage(
                    names::STAGE_TAIL_EXACT,
                    tail_checked,
                    tail_checked - tail_hits,
                );
                funnel.record(obs);
            }
        }
    }

    (
        results,
        BatchSearchStats {
            queries: stats,
            job,
        },
    )
}

/// The delta-side mirror of [`FilterStats::funnel`]: identical stage math,
/// recorded under its own name so the base and delta funnels stay
/// distinguishable in the registry.
fn delta_funnel(fs: &FilterStats) -> dita_obs::Funnel {
    let mut f = dita_obs::Funnel::new(names::FUNNEL_DELTA_FILTER);
    f.push_stage(
        names::STAGE_NODE_LENGTH,
        fs.nodes_visited as u64,
        fs.nodes_pruned_length as u64,
    );
    f.push_stage(
        names::STAGE_NODE_BUDGET,
        (fs.nodes_visited - fs.nodes_pruned_length) as u64,
        fs.nodes_pruned_budget as u64,
    );
    f.push_stage(
        names::STAGE_LEAF_LENGTH,
        fs.members_checked as u64,
        fs.members_pruned_length as u64,
    );
    f.push_stage(
        names::STAGE_LEAF_OPAMD,
        (fs.members_checked - fs.members_pruned_length) as u64,
        fs.members_pruned_opamd as u64,
    );
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::DitaConfig;
    use dita_cluster::{Cluster, ClusterConfig};
    use dita_index::{PivotStrategy, TrieConfig};
    use dita_trajectory::trajectory::figure1_trajectories;
    use dita_trajectory::Dataset;

    fn tiny_system(workers: usize) -> DitaSystem {
        let dataset = Dataset::new("fig1", figure1_trajectories()).unwrap();
        DitaSystem::build(
            &dataset,
            DitaConfig {
                ng: 2,
                trie: TrieConfig {
                    k: 2,
                    nl: 2,
                    leaf_capacity: 0,
                    strategy: PivotStrategy::NeighborDistance,
                    cell_side: 2.0,
                    ..TrieConfig::default()
                },
            },
            Cluster::new(ClusterConfig::with_workers(workers)),
        )
    }

    #[test]
    fn example_2_6_end_to_end() {
        // Q = T1, τ = 3, DTW → {T1, T2}.
        let sys = tiny_system(2);
        let ts = figure1_trajectories();
        let (results, stats) = search(&sys, ts[0].points(), 3.0, &DistanceFunction::Dtw);
        let ids: Vec<u64> = results.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, vec![1, 2]);
        assert_eq!(results[0].1, 0.0);
        assert!(stats.relevant_partitions >= 1);
        assert!(stats.candidates >= 2);
        assert_eq!(stats.results, 2);
    }

    #[test]
    fn search_matches_naive_scan_for_all_functions() {
        let sys = tiny_system(3);
        let ts = figure1_trajectories();
        let fns = [
            DistanceFunction::Dtw,
            DistanceFunction::Frechet,
            DistanceFunction::Edr { eps: 1.0 },
            DistanceFunction::Lcss { eps: 1.0, delta: 2 },
            DistanceFunction::Erp { gap: (0.0, 0.0) },
        ];
        for f in fns {
            for q in &ts {
                for tau in [0.0, 1.0, 3.0, 6.0] {
                    let (results, _) = search(&sys, q.points(), tau, &f);
                    let expect: Vec<u64> = ts
                        .iter()
                        .filter(|t| f.distance(t.points(), q.points()) <= tau)
                        .map(|t| t.id)
                        .collect();
                    let got: Vec<u64> = results.iter().map(|&(id, _)| id).collect();
                    assert_eq!(got, expect, "{f} Q=T{} tau={tau}", q.id);
                }
            }
        }
    }

    #[test]
    fn distances_in_results_are_exact() {
        let sys = tiny_system(2);
        let ts = figure1_trajectories();
        let (results, _) = search(&sys, ts[1].points(), 5.0, &DistanceFunction::Dtw);
        for (id, d) in results {
            let t = &ts[(id - 1) as usize];
            let expect = dita_distance::dtw(t.points(), ts[1].points());
            assert!((d - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_result_when_nothing_close() {
        let sys = tiny_system(2);
        let q = [Point::new(100.0, 100.0), Point::new(101.0, 100.0)];
        let (results, stats) = search(&sys, &q, 1.0, &DistanceFunction::Dtw);
        assert!(results.is_empty());
        assert_eq!(stats.relevant_partitions, 0);
        assert_eq!(stats.candidates, 0);
    }

    #[test]
    fn single_worker_cluster_works() {
        let sys = tiny_system(1);
        let ts = figure1_trajectories();
        let (results, _) = search(&sys, ts[0].points(), 3.0, &DistanceFunction::Dtw);
        assert_eq!(results.len(), 2);
    }

    #[test]
    fn broadcast_charged_once_per_relevant_worker() {
        let sys = tiny_system(2);
        let ts = figure1_trajectories();
        let q = ts[0].points();
        let (_, stats) = search(&sys, q, 3.0, &DistanceFunction::Dtw);
        // Every task is one query broadcast priced as a full trajectory
        // record; no other bytes move during a search.
        let tasks: usize = stats.job.workers.iter().map(|w| w.tasks).sum();
        let bytes: u64 = stats.job.workers.iter().map(|w| w.bytes_received).sum();
        assert!(tasks >= 1);
        assert_eq!(bytes, query_broadcast_bytes(q) * tasks as u64);
    }

    #[test]
    fn parallel_verification_matches_serial() {
        let sys = tiny_system(2);
        let ts = figure1_trajectories();
        let serial = search(&sys, ts[0].points(), 3.0, &DistanceFunction::Dtw).0;
        for threads in [2usize, 4] {
            let par = search_with_options(
                &sys,
                ts[0].points(),
                3.0,
                &DistanceFunction::Dtw,
                SearchOptions {
                    verify_threads: threads,
                },
            )
            .0;
            assert_eq!(par, serial, "threads={threads}");
        }
    }
}
