//! Distributed trajectory similarity join (§6).
//!
//! The join between two indexed tables T and Q proceeds as:
//!
//! 1. **Partition bi-graph** — candidate partition pairs `(T_i, Q_j)` are
//!    those whose endpoint MBRs can host a similar pair under the threshold.
//!    Each pair becomes an edge with two weights per direction: `trans`
//!    (bytes that would be shipped) and `comp` (estimated candidate pairs),
//!    the latter estimated by sampling (§6.2).
//! 2. **Graph orientation** — a greedy approximation picks each edge's
//!    direction to minimize the bottleneck total cost
//!    `TC_global = max_P (λ·NC_P + CC_P)`; exact minimization is NP-hard
//!    (graph balancing).
//! 3. **Division-based load balancing** (§6.3) — partitions whose total cost
//!    exceeds the 98th-percentile cost are replicated and their incoming
//!    edges spread across the replicas (placed on distinct workers), which
//!    is what defeats stragglers in Figure 16.
//! 4. **Local joins** — for each oriented edge, the source's relevant
//!    trajectories are shipped to the destination's worker and probed
//!    against the destination's trie index, verifying on the fly.

use crate::feedback::CostFeedback;
use crate::system::DitaSystem;
use crate::verify::{verify_pair_soa, QueryContext};
use dita_cluster::JobStats;
use dita_distance::function::IndexMode;
use dita_distance::kernel::Scratch;
use dita_distance::DistanceFunction;
use dita_index::ProbeScratch;
use dita_obs::{names, thread_cpu_time};
use dita_trajectory::{CellList, TrajectoryId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Which load-balancing stages to apply — the knob behind the Figure 16
/// ablation ("Naive" = none).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BalanceStrategy {
    /// No cost-based optimization: edges run T→Q on Q's worker as-is.
    None,
    /// Greedy graph orientation only.
    Orientation,
    /// Orientation plus division-based replication (the full DITA).
    #[default]
    Full,
}

/// Host parallelism — the default for [`JoinOptions::plan_threads`].
fn default_plan_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Join tuning knobs.
#[derive(Debug, Clone)]
pub struct JoinOptions {
    /// Load-balancing strategy.
    pub balance: BalanceStrategy,
    /// Trajectories sampled per edge to estimate `comp` (§6.2).
    pub sample_size: usize,
    /// Average seconds to verify one candidate pair (`Δ` in λ = 1/(Δ·B)).
    pub delta_sec: f64,
    /// Percentile defining the division threshold `TC_p` (§6.3 uses 0.98).
    pub division_percentile: f64,
    /// Threads used to weigh bi-graph edges during planning; 1 plans
    /// serially on the driver thread. Edge order and weights are identical
    /// for every thread count.
    pub plan_threads: usize,
    /// Observed per-node costs from a previous run (see
    /// [`JoinStats::feedback`]). When set, every edge's sampled compute
    /// estimate is multiplied by the destination node's
    /// observed/predicted ratio before orientation and division balancing
    /// consume it, so a partition the sample underpriced gets replicated
    /// the next time around. Plans change; results never do.
    pub observed_costs: Option<CostFeedback>,
}

impl Default for JoinOptions {
    fn default() -> Self {
        JoinOptions {
            balance: BalanceStrategy::Full,
            sample_size: 16,
            delta_sec: 2e-6,
            division_percentile: 0.98,
            plan_threads: default_plan_threads(),
            observed_costs: None,
        }
    }
}

/// Statistics of one join execution.
#[derive(Debug, Clone)]
pub struct JoinStats {
    /// Edges in the partition bi-graph.
    pub edges: usize,
    /// Edges oriented T→Q after the greedy pass.
    pub forward_edges: usize,
    /// Total bytes shipped between workers.
    pub shipped_bytes: u64,
    /// Candidate pairs examined by local joins.
    pub candidates: usize,
    /// Result pair count.
    pub results: usize,
    /// Partition replicas created by division balancing.
    pub replicas: usize,
    /// The predicted bottleneck cost after optimization (in candidate-pair
    /// equivalents).
    pub predicted_tc_global: f64,
    /// Wall-clock seconds spent planning: bi-graph construction, edge
    /// weighting, orientation and division balancing.
    pub plan_secs: f64,
    /// CPU seconds burned by plan helper threads (zero when
    /// [`JoinOptions::plan_threads`] ≤ 1). Planning runs on the driver,
    /// outside any cluster task, so this cost is reported here instead of
    /// being charged to a worker's compute account.
    pub plan_cpu_secs: f64,
    /// Bi-graph partition pairs that passed the compatibility check and had
    /// their edge weights computed (a superset of `edges`: pairs whose
    /// shipped sets both come back empty are dropped).
    pub edges_weighed: usize,
    /// Per-node predicted vs. observed costs from this run — feed it back
    /// through [`JoinOptions::observed_costs`] to replan with measured
    /// reality instead of sampled guesses.
    pub feedback: CostFeedback,
    /// Cluster execution statistics.
    pub job: JobStats,
}

#[derive(Debug, Clone)]
struct Edge {
    t_pid: usize,
    q_pid: usize,
    /// Local ids of T-partition trajectories relevant to Q_j.
    ship_t: Vec<u32>,
    /// Local ids of Q-partition trajectories relevant to T_i.
    ship_q: Vec<u32>,
    trans_t2q: f64,
    comp_t2q: f64,
    trans_q2t: f64,
    comp_q2t: f64,
    /// `true` = T→Q (ship T's rows to Q's worker).
    forward: bool,
}

/// Joins two indexed tables: all pairs `(t, q)` with `func(t, q) ≤ tau`.
///
/// Returns `(t_id, q_id, distance)` triples sorted lexicographically, plus
/// execution statistics.
///
/// When either table carries unmerged deltas, the base-index join is
/// overlaid: pairs with a tombstoned side are dropped, and each delta-side
/// row is joined via a broadcast [`crate::search`] against the opposite
/// table (whose own overlay handles its tombstones and deltas). Distances
/// are byte-identical to a join over from-scratch rebuilds because every
/// supported distance function is exactly symmetric in IEEE arithmetic.
/// [`JoinStats`] reflects the base-index pass; delta-side probes account
/// their work through the search metrics.
///
/// # Panics
/// Panics if the two systems live on clusters of different sizes.
pub fn join(
    t_sys: &DitaSystem,
    q_sys: &DitaSystem,
    tau: f64,
    func: &DistanceFunction,
    opts: &JoinOptions,
) -> (Vec<(TrajectoryId, TrajectoryId, f64)>, JoinStats) {
    let (pairs, mut stats) = join_base(t_sys, q_sys, tau, func, opts);
    let td = t_sys.deltas();
    let qd = q_sys.deltas();
    if (!td.has_deltas() && !qd.has_deltas()) || tau < 0.0 {
        return (pairs, stats);
    }
    let _span = t_sys.obs().span(names::SPAN_JOIN_DELTA_OVERLAY);
    let mut merged: std::collections::BTreeMap<(TrajectoryId, TrajectoryId), f64> = pairs
        .into_iter()
        .filter(|&(t, q, _)| !td.is_base_dead(t) && !qd.is_base_dead(q))
        .map(|(t, q, d)| ((t, q), d))
        .collect();
    // Delta rows on the T side probe the whole Q table, and vice versa; a
    // delta×delta pair is found by both loops with the exact same distance
    // (symmetry), so the map insert is idempotent.
    t_sys.for_each_delta_live(|t| {
        let (hits, _) = crate::search::search(q_sys, t.points(), tau, func);
        for (qid, d) in hits {
            merged.insert((t.id, qid), d);
        }
    });
    q_sys.for_each_delta_live(|q| {
        let (hits, _) = crate::search::search(t_sys, q.points(), tau, func);
        for (tid, d) in hits {
            merged.insert((tid, q.id), d);
        }
    });
    let results: Vec<(TrajectoryId, TrajectoryId, f64)> =
        merged.into_iter().map(|((t, q), d)| (t, q, d)).collect();
    stats.results = results.len();
    (results, stats)
}

/// The base-index join: the four-stage pipeline over the frozen tries,
/// blind to delta state.
fn join_base(
    t_sys: &DitaSystem,
    q_sys: &DitaSystem,
    tau: f64,
    func: &DistanceFunction,
    opts: &JoinOptions,
) -> (Vec<(TrajectoryId, TrajectoryId, f64)>, JoinStats) {
    assert_eq!(
        t_sys.cluster().num_workers(),
        q_sys.cluster().num_workers(),
        "both tables must live on the same cluster"
    );
    let cluster = t_sys.cluster();
    let mode = func.index_mode();
    let lambda = cluster.network().lambda(opts.delta_sec);

    // Top-level operation span; the executor parents the dynamic-schedule
    // and worker spans under it.
    let obs = t_sys.obs();
    let _join_span = dita_obs::span!(obs, names::SPAN_JOIN, func = func, tau = tau);

    // --- 1. Build the bi-graph ---
    let plan_start = std::time::Instant::now();
    let (mut edges, edges_weighed, plan_helper_cpu) = {
        let _span = obs.span(names::SPAN_BUILD_EDGES);
        build_edges(t_sys, q_sys, tau, mode, func, opts)
    };

    // --- 2. Orient ---
    let orient_span = obs.span(names::SPAN_ORIENT);
    match opts.balance {
        BalanceStrategy::None => {
            for e in &mut edges {
                e.forward = true;
            }
        }
        BalanceStrategy::Orientation | BalanceStrategy::Full => {
            orient(
                &mut edges,
                t_sys.num_partitions(),
                q_sys.num_partitions(),
                lambda,
            );
        }
    }
    let forward_edges = edges.iter().filter(|e| e.forward).count();

    // --- 3. Division balancing: split each destination's incoming work
    //        into one or more replica slots ---
    let (replica_counts, replicas, predicted) = assign_replicas(
        &edges,
        t_sys,
        q_sys,
        lambda,
        matches!(opts.balance, BalanceStrategy::Full),
        opts.division_percentile,
    );
    drop(orient_span);
    let plan_secs = plan_start.elapsed().as_secs_f64();
    let plan_cpu_secs = plan_helper_cpu.as_secs_f64();

    // --- 4. Local joins: one task per destination replica slot, scheduled
    //        dynamically (Spark-style) onto the cluster ---
    let nt = t_sys.num_partitions();
    let home = |node: usize| -> usize {
        if node < nt {
            t_sys.worker_of(node)
        } else {
            q_sys.worker_of(node - nt)
        }
    };
    let node_index_bytes = |node: usize| -> u64 {
        if node < nt {
            t_sys.trie(node).size_bytes() as u64
        } else {
            q_sys.trie(node - nt).size_bytes() as u64
        }
    };
    // Each destination with r replica slots receives every incoming edge's
    // shipped set *striped* over the slots (slot s gets trajectories
    // s, s+r, s+2r, ...), which is how the paper's division splits a single
    // huge partition-pair workload.
    use std::collections::BTreeMap;
    let mut groups: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
    for (ei, e) in edges.iter().enumerate() {
        let dst = if e.forward { nt + e.q_pid } else { e.t_pid };
        for slot in 0..replica_counts[dst] {
            groups.entry((dst, slot)).or_default().push(ei);
        }
    }
    let edges_ref = &edges;
    let replica_counts_ref = &replica_counts;
    let tasks: Vec<dita_cluster::DynTaskSpec<(usize, Vec<usize>)>> = groups
        .into_iter()
        .map(|((dst, slot), eis)| {
            let nslots = replica_counts_ref[dst];
            let shipped: f64 = eis
                .iter()
                .map(|&ei| {
                    let e = &edges_ref[ei];
                    let t = if e.forward { e.trans_t2q } else { e.trans_q2t };
                    t / nslots as f64
                })
                .sum();
            dita_cluster::DynTaskSpec {
                shipped_bytes: shipped as u64,
                home: Some(home(dst)),
                home_data_bytes: node_index_bytes(dst),
                partition: Some(dst),
                payload: (slot, eis),
            }
        })
        .collect();

    let (outputs, job) = cluster.execute_dynamic(tasks, move |(slot, eis): (usize, Vec<usize>)| {
        let mut candidates = 0usize;
        let mut pairs: Vec<(TrajectoryId, TrajectoryId, f64)> = Vec::new();
        let mut scratch = Scratch::new();
        for ei in eis {
            // Nested under the executor's worker task span.
            let e = &edges_ref[ei];
            let (src_sys, dst_sys, src_pid, dst_pid, shipped) = if e.forward {
                (t_sys, q_sys, e.t_pid, e.q_pid, &e.ship_t)
            } else {
                (q_sys, t_sys, e.q_pid, e.t_pid, &e.ship_q)
            };
            let _espan = dita_obs::span!(obs, names::SPAN_LOCAL_JOIN, pid = dst_pid);
            let dst_node = if e.forward { nt + e.q_pid } else { e.t_pid };
            let nslots = replica_counts_ref[dst_node];
            let src_trie = src_sys.trie(src_pid);
            let dst_trie = dst_sys.trie(dst_pid);
            // Filter stage: probe the destination trie with every shipped
            // trajectory, buffering the candidate lists so the verify
            // stage gets its own span (mirroring the search task's
            // filter → verify split for the critical-path analyzer).
            let mut probes: Vec<(TrajectoryId, QueryContext, Vec<u32>)> = Vec::new();
            {
                let _fspan = dita_obs::span!(obs, names::SPAN_FILTER, pid = dst_pid);
                for &sid in shipped.iter().skip(slot).step_by(nslots.max(1)) {
                    let s = src_trie.get(sid);
                    // Reuse the shipped trajectory's clustered-index
                    // artifacts (MBR, cell compression) instead of
                    // recompressing.
                    let ctx = QueryContext::from_parts(
                        s.points_vec(),
                        *s.mbr(),
                        CellList::from_cells(s.cells().to_vec(), src_trie.store().cell_side()),
                    );
                    let cands = dst_trie.candidates(ctx.points(), tau, func);
                    candidates += cands.len();
                    probes.push((s.id(), ctx, cands));
                }
            }
            let _vspan = dita_obs::span!(obs, names::SPAN_VERIFY, pid = dst_pid);
            for (s_id, ctx, cands) in probes {
                for c in cands {
                    let d = dst_trie.get(c);
                    if let Some(dist) = verify_pair_soa(d.into(), &ctx, tau, func, &mut scratch) {
                        if e.forward {
                            pairs.push((s_id, d.id(), dist));
                        } else {
                            pairs.push((d.id(), s_id, dist));
                        }
                    }
                }
            }
        }
        (candidates, pairs)
    });

    // Close the planning loop: per destination node, pair the compute the
    // plan predicted (under the chosen orientation) with what the cluster
    // measured. Task outputs and `job.task_costs` are both in submission
    // order, and every join task carries its destination node as the
    // partition attribution.
    let mut feedback = CostFeedback::new();
    for e in &edges {
        let (node, comp) = if e.forward {
            (nt + e.q_pid, e.comp_t2q)
        } else {
            (e.t_pid, e.comp_q2t)
        };
        let prior = feedback.node(node).map_or(0.0, |o| o.predicted_comp);
        feedback.set_predicted(node, prior + comp);
    }
    let mut candidates = 0usize;
    let mut results: Vec<(TrajectoryId, TrajectoryId, f64)> = Vec::new();
    for ((c, pairs), cost) in outputs.into_iter().zip(&job.task_costs) {
        if let Some(node) = cost.partition {
            feedback.observe(node, c as f64, cost.compute_sec, cost.bytes);
        }
        candidates += c;
        results.extend(pairs);
    }
    results.sort_by_key(|a| (a.0, a.1));

    let shipped_bytes: u64 = edges
        .iter()
        .map(|e| {
            if e.forward {
                e.trans_t2q as u64
            } else {
                e.trans_q2t as u64
            }
        })
        .sum();
    if obs.is_enabled() {
        obs.counter(names::JOIN_SHIPPED_BYTES_TOTAL)
            .add(shipped_bytes);
        obs.counter(names::JOIN_CANDIDATES_TOTAL)
            .add(candidates as u64);
        obs.counter(names::JOIN_RESULTS_TOTAL)
            .add(results.len() as u64);
        obs.gauge(names::JOIN_REPLICAS).set(replicas as f64);
        obs.histogram_seconds(names::JOIN_PLAN_SECONDS)
            .observe(plan_secs);
        obs.counter(names::JOIN_EDGES_WEIGHTED_TOTAL)
            .add(edges_weighed as u64);
    }
    let stats = JoinStats {
        edges: edges.len(),
        forward_edges,
        shipped_bytes,
        candidates,
        results: results.len(),
        replicas,
        predicted_tc_global: predicted,
        plan_secs,
        plan_cpu_secs,
        edges_weighed,
        feedback,
        job,
    };
    (results, stats)
}

/// Builds the candidate partition pairs and their edge weights, on
/// [`JoinOptions::plan_threads`] threads. Returns the edges, the number of
/// compatible pairs weighed, and the CPU time burned by helper threads.
///
/// The cheap MBR compatibility screen runs serially (it is O(1) per pair);
/// the expensive part — `relevant_members` scans and `estimate_comp` trie
/// probes per surviving pair — is chunked over a scoped pool with one
/// [`ProbeScratch`] per chunk, results landing in pre-assigned slots so the
/// edge list is identical for every thread count.
fn build_edges(
    t_sys: &DitaSystem,
    q_sys: &DitaSystem,
    tau: f64,
    mode: IndexMode,
    func: &DistanceFunction,
    opts: &JoinOptions,
) -> (Vec<Edge>, usize, Duration) {
    if tau < 0.0 {
        return (Vec::new(), 0, Duration::ZERO);
    }
    // --- Compatibility screen (serial, O(1) per pair) ---
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for tp in &t_sys.partitioning().partitions {
        for qp in &q_sys.partitioning().partitions {
            let df = tp.mbr_first.min_dist_mbr(&qp.mbr_first);
            let dl = tp.mbr_last.min_dist_mbr(&qp.mbr_last);
            let compatible = match mode {
                IndexMode::Additive => {
                    // 1-point vs 1-point pairs share the single DTW cell.
                    if tp.min_len <= 1 && qp.min_len <= 1 {
                        df.max(dl) <= tau
                    } else {
                        df + dl <= tau
                    }
                }
                IndexMode::Max => df <= tau && dl <= tau,
                IndexMode::EditCount { eps, symmetric } => {
                    // LCSS: the endpoint misses are chargeable only when one
                    // side is guaranteed the shorter of *every* pair.
                    if !symmetric && tp.max_len > qp.min_len && qp.max_len > tp.min_len {
                        true
                    } else {
                        let (f, l) = (usize::from(df > eps), usize::from(dl > eps));
                        let edits = if tp.min_len <= 1 || qp.min_len <= 1 {
                            f.max(l)
                        } else {
                            f + l
                        };
                        edits as f64 <= tau
                    }
                }
                IndexMode::Scan => true,
            };
            if compatible {
                pairs.push((tp.id, qp.id));
            }
        }
    }
    let weighed = pairs.len();

    // --- Edge weighting (parallel across pairs) ---
    let nt = t_sys.num_partitions();
    // In a self-join, T-partition p and Q-partition p are the same physical
    // data under two node ids; observed-cost factors must pool both ids or
    // orientation sidesteps an inflated destination via its mirror.
    let self_join = std::ptr::eq(t_sys, q_sys);
    let weigh = |&(t_pid, q_pid): &(usize, usize), scratch: &mut ProbeScratch| -> Option<Edge> {
        let tp = &t_sys.partitioning().partitions[t_pid];
        let qp = &q_sys.partitioning().partitions[q_pid];
        // Exact shipped sets via the opposite side's global index MBRs
        // (the paper's "check whether T has candidates in Q_j by
        // querying the global index of Q").
        let ship_t = relevant_members(
            t_sys,
            t_pid,
            &qp.mbr_first,
            &qp.mbr_last,
            qp.min_len,
            tau,
            mode,
        );
        let ship_q = relevant_members(
            q_sys,
            q_pid,
            &tp.mbr_first,
            &tp.mbr_last,
            tp.min_len,
            tau,
            mode,
        );
        if ship_t.is_empty() && ship_q.is_empty() {
            return None;
        }
        let trans_t2q = shipped_bytes(t_sys, t_pid, &ship_t);
        let trans_q2t = shipped_bytes(q_sys, q_pid, &ship_q);
        let mut comp_t2q = estimate_comp(
            t_sys, t_pid, &ship_t, q_sys, q_pid, tau, func, opts, scratch,
        );
        let mut comp_q2t = estimate_comp(
            q_sys, q_pid, &ship_q, t_sys, t_pid, tau, func, opts, scratch,
        );
        // Observed-cost correction: scale each direction's sampled
        // estimate by its *destination* node's measured ratio (T→Q
        // computes on Q_j = node nt + q_pid, Q→T on T_i = node t_pid).
        // Self-joins pool each partition's two node ids.
        if let Some(fb) = &opts.observed_costs {
            if self_join {
                comp_t2q *= fb.comp_factor_pooled(&[q_pid, nt + q_pid], opts.delta_sec);
                comp_q2t *= fb.comp_factor_pooled(&[t_pid, nt + t_pid], opts.delta_sec);
            } else {
                comp_t2q *= fb.comp_factor(nt + q_pid, opts.delta_sec);
                comp_q2t *= fb.comp_factor(t_pid, opts.delta_sec);
            }
        }
        Some(Edge {
            t_pid,
            q_pid,
            ship_t,
            ship_q,
            trans_t2q,
            comp_t2q,
            trans_q2t,
            comp_q2t,
            forward: true,
        })
    };

    let threads = opts.plan_threads.max(1);
    let pool = if threads > 1 && pairs.len() > 1 {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .ok()
    } else {
        None
    };
    let edges: Vec<Edge>;
    let mut helper_cpu = Duration::ZERO;
    match pool {
        None => {
            let mut scratch = ProbeScratch::new();
            edges = pairs
                .iter()
                .filter_map(|p| weigh(p, &mut scratch))
                .collect();
        }
        Some(pool) => {
            let chunk = pairs.len().div_ceil(threads * 4).max(1);
            let mut slots: Vec<Option<Edge>> = Vec::new();
            slots.resize_with(pairs.len(), || None);
            let cpu_ns = AtomicU64::new(0);
            pool.scope(|s| {
                for (part, out) in pairs.chunks(chunk).zip(slots.chunks_mut(chunk)) {
                    let cpu_ns = &cpu_ns;
                    let weigh = &weigh;
                    s.spawn(move |_| {
                        let t0 = thread_cpu_time();
                        let mut scratch = ProbeScratch::new();
                        for (pair, slot) in part.iter().zip(out.iter_mut()) {
                            *slot = weigh(pair, &mut scratch);
                        }
                        let dt = thread_cpu_time().saturating_sub(t0);
                        cpu_ns.fetch_add(dt.as_nanos() as u64, Ordering::Relaxed);
                    });
                }
            });
            helper_cpu = Duration::from_nanos(cpu_ns.load(Ordering::Relaxed));
            edges = slots.into_iter().flatten().collect();
        }
    }
    (edges, weighed, helper_cpu)
}

/// Local ids in `sys`'s partition `pid` whose endpoints are compatible with
/// the opposite partition's endpoint MBRs. `other_min_len` is the shortest
/// trajectory on the opposite side (LCSS shorter-side rule).
fn relevant_members(
    sys: &DitaSystem,
    pid: usize,
    other_first: &dita_trajectory::Mbr,
    other_last: &dita_trajectory::Mbr,
    other_min_len: usize,
    tau: f64,
    mode: IndexMode,
) -> Vec<u32> {
    let trie = sys.trie(pid);
    (0..trie.len() as u32)
        .filter(|&i| {
            let t = trie.get(i);
            let df = other_first.min_dist_point(&t.first());
            let dl = other_last.min_dist_point(&t.last());
            match mode {
                IndexMode::Additive => {
                    if t.len() <= 1 && other_min_len <= 1 {
                        df.max(dl) <= tau
                    } else {
                        df + dl <= tau
                    }
                }
                IndexMode::Max => df <= tau && dl <= tau,
                IndexMode::EditCount { eps, symmetric } => {
                    // LCSS: this trajectory's endpoint misses charge only
                    // when it is the shorter side of every possible pair.
                    if !symmetric && t.len() > other_min_len {
                        return true;
                    }
                    let (f, l) = (usize::from(df > eps), usize::from(dl > eps));
                    // A 1-point trajectory's endpoints coincide: cap at one
                    // edit.
                    let edits = if t.len() <= 1 { f.max(l) } else { f + l };
                    edits as f64 <= tau
                }
                IndexMode::Scan => true,
            }
        })
        .collect()
}

fn shipped_bytes(sys: &DitaSystem, pid: usize, ids: &[u32]) -> f64 {
    let trie = sys.trie(pid);
    ids.iter().map(|&i| trie.get(i).size_bytes() as f64).sum()
}

/// Positions sampled from a list of `len` entries when `sample_size` probes
/// are allowed: `k * len / sample` for `k in 0..sample`, which is strictly
/// increasing and spreads evenly across the whole list including the tail
/// (a plain `k * (len / sample)` stride never reaches the last
/// `len % sample` entries).
fn sample_indices(len: usize, sample_size: usize) -> impl Iterator<Item = usize> {
    let sample = sample_size.max(1).min(len);
    (0..sample).map(move |k| k * len / sample)
}

/// Estimates the candidate-pair count for shipping `ids` from `src` to
/// `dst` by probing the destination trie with a sample (§6.2). Uses
/// [`TrieIndex::candidate_count`](dita_index::TrieIndex::candidate_count)
/// so the probe allocates nothing beyond the reusable `scratch` stack.
#[allow(clippy::too_many_arguments)]
fn estimate_comp(
    src: &DitaSystem,
    src_pid: usize,
    ids: &[u32],
    dst: &DitaSystem,
    dst_pid: usize,
    tau: f64,
    func: &DistanceFunction,
    opts: &JoinOptions,
    scratch: &mut ProbeScratch,
) -> f64 {
    if ids.is_empty() {
        return 0.0;
    }
    let src_trie = src.trie(src_pid);
    let dst_trie = dst.trie(dst_pid);
    let mut total = 0usize;
    let mut taken = 0usize;
    for k in sample_indices(ids.len(), opts.sample_size) {
        let pts = src_trie.get(ids[k]).points_vec();
        total += dst_trie.candidate_count(&pts, tau, func, scratch);
        taken += 1;
    }
    total as f64 / taken as f64 * ids.len() as f64
}

/// Greedy orientation (§6.2): initialize each edge to its cheaper direction,
/// then repeatedly flip the most profitable edge incident to the bottleneck
/// node until `TC_global` stops improving.
fn orient(edges: &mut [Edge], nt: usize, nq: usize, lambda: f64) {
    let n = nt + nq;
    // Node id: T_i → i, Q_j → nt + j.
    let mut nc = vec![0.0f64; n];
    let mut cc = vec![0.0f64; n];

    let apply = |e: &Edge, sign: f64, nc: &mut [f64], cc: &mut [f64]| {
        if e.forward {
            nc[e.t_pid] += sign * e.trans_t2q;
            cc[nt + e.q_pid] += sign * e.comp_t2q;
        } else {
            nc[nt + e.q_pid] += sign * e.trans_q2t;
            cc[e.t_pid] += sign * e.comp_q2t;
        }
    };

    for e in edges.iter_mut() {
        e.forward = lambda * e.trans_t2q + e.comp_t2q <= lambda * e.trans_q2t + e.comp_q2t;
    }
    for e in edges.iter() {
        apply(e, 1.0, &mut nc, &mut cc);
    }

    let tc = |i: usize, nc: &[f64], cc: &[f64]| lambda * nc[i] + cc[i];
    let global = |nc: &[f64], cc: &[f64]| (0..n).map(|i| tc(i, nc, cc)).fold(0.0f64, f64::max);

    let mut best_global = global(&nc, &cc);
    for _ in 0..edges.len().max(8) * 2 {
        // Find the bottleneck node.
        let bottleneck = (0..n)
            .max_by(|&a, &b| tc(a, &nc, &cc).total_cmp(&tc(b, &nc, &cc)))
            .unwrap();
        // Try flipping each incident edge; keep the best improvement.
        let mut best: Option<(usize, f64)> = None;
        for (ei, e) in edges.iter().enumerate() {
            let incident = e.t_pid == bottleneck || nt + e.q_pid == bottleneck;
            if !incident {
                continue;
            }
            apply(e, -1.0, &mut nc, &mut cc);
            let mut flipped = e.clone();
            flipped.forward = !e.forward;
            apply(&flipped, 1.0, &mut nc, &mut cc);
            let g = global(&nc, &cc);
            // Undo.
            apply(&flipped, -1.0, &mut nc, &mut cc);
            apply(e, 1.0, &mut nc, &mut cc);
            if g < best_global - 1e-12 && best.is_none_or(|(_, bg)| g < bg) {
                best = Some((ei, g));
            }
        }
        match best {
            Some((ei, g)) => {
                apply(&edges[ei], -1.0, &mut nc, &mut cc);
                edges[ei].forward = !edges[ei].forward;
                apply(&edges[ei], 1.0, &mut nc, &mut cc);
                best_global = g;
            }
            None => break,
        }
    }
}

/// Assigns each edge to a replica slot of its destination node (§6.3).
///
/// Every destination starts with one slot; when division balancing is on,
/// nodes whose total cost exceeds the percentile threshold get
/// `ceil(TC / TC_p)` slots; the caller stripes each incoming edge's shipped
/// trajectories over the slots — producing several smaller tasks the
/// dynamic scheduler can spread over workers. Returns `(replica counts per
/// node, extra replicas created, predicted TC_global)`.
fn assign_replicas(
    edges: &[Edge],
    t_sys: &DitaSystem,
    q_sys: &DitaSystem,
    lambda: f64,
    divide: bool,
    percentile: f64,
) -> (Vec<usize>, usize, f64) {
    let nt = t_sys.num_partitions();
    let nq = q_sys.num_partitions();
    let n = nt + nq;
    let workers = t_sys.cluster().num_workers();

    // Total cost per destination node under the chosen orientation.
    let mut tc = vec![0.0f64; n];
    for e in edges {
        if e.forward {
            tc[nt + e.q_pid] += lambda * e.trans_t2q + e.comp_t2q;
        } else {
            tc[e.t_pid] += lambda * e.trans_q2t + e.comp_q2t;
        }
    }
    let predicted = tc.iter().copied().fold(0.0f64, f64::max);

    let mut replica_counts = vec![1usize; n];
    let mut total_replicas = 0usize;
    if divide {
        let mut busy: Vec<f64> = tc.iter().copied().filter(|&c| c > 0.0).collect();
        busy.sort_by(f64::total_cmp);
        if !busy.is_empty() {
            // Floor-indexed percentile so that, even with few partitions,
            // the heaviest node sits *above* the threshold and is divided.
            let idx = (((busy.len() - 1) as f64) * percentile).floor() as usize;
            let tc_p = busy[idx.min(busy.len().saturating_sub(2))].max(1e-12);
            for (node, &c) in tc.iter().enumerate() {
                // 10% slack keeps near-balanced loads from spawning useless
                // replicas (each replica may cost one index shipment).
                if c > tc_p * 1.1 {
                    let r = ((c / tc_p).ceil() as usize).clamp(2, workers.max(2));
                    replica_counts[node] = r;
                    total_replicas += r - 1;
                }
            }
        }
    }

    (replica_counts, total_replicas, predicted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{DitaConfig, DitaSystem};
    use dita_cluster::{Cluster, ClusterConfig};
    use dita_index::{PivotStrategy, TrieConfig};
    use dita_trajectory::trajectory::figure1_trajectories;
    use dita_trajectory::Dataset;

    fn tiny_config() -> DitaConfig {
        DitaConfig {
            ng: 2,
            trie: TrieConfig {
                k: 2,
                nl: 2,
                leaf_capacity: 0,
                strategy: PivotStrategy::NeighborDistance,
                cell_side: 2.0,
                ..TrieConfig::default()
            },
        }
    }

    fn fig1_system(workers: usize) -> DitaSystem {
        let dataset = Dataset::new("fig1", figure1_trajectories()).unwrap();
        DitaSystem::build(
            &dataset,
            tiny_config(),
            Cluster::new(ClusterConfig::with_workers(workers)),
        )
    }

    fn ground_truth(tau: f64, f: &DistanceFunction) -> Vec<(u64, u64, f64)> {
        let ts = figure1_trajectories();
        let mut out = Vec::new();
        for a in &ts {
            for b in &ts {
                let d = f.distance(a.points(), b.points());
                if d <= tau {
                    out.push((a.id, b.id, d));
                }
            }
        }
        out.sort_by_key(|a| (a.0, a.1));
        out
    }

    #[test]
    fn self_join_matches_nested_loop() {
        let t = fig1_system(2);
        let q = fig1_system(2);
        for tau in [0.0, 1.0, 3.0, 6.0] {
            let (results, stats) =
                join(&t, &q, tau, &DistanceFunction::Dtw, &JoinOptions::default());
            let expect = ground_truth(tau, &DistanceFunction::Dtw);
            let got: Vec<(u64, u64)> = results.iter().map(|&(a, b, _)| (a, b)).collect();
            let want: Vec<(u64, u64)> = expect.iter().map(|&(a, b, _)| (a, b)).collect();
            assert_eq!(got, want, "tau={tau}");
            assert!(stats.results == results.len());
        }
    }

    #[test]
    fn join_matches_for_all_functions_and_strategies() {
        let t = fig1_system(3);
        let q = fig1_system(3);
        let fns = [
            DistanceFunction::Dtw,
            DistanceFunction::Frechet,
            DistanceFunction::Edr { eps: 1.0 },
            DistanceFunction::Lcss { eps: 1.0, delta: 2 },
            DistanceFunction::Erp { gap: (0.0, 0.0) },
        ];
        for f in fns {
            let expect: Vec<(u64, u64)> = ground_truth(2.0, &f)
                .iter()
                .map(|&(a, b, _)| (a, b))
                .collect();
            for balance in [
                BalanceStrategy::None,
                BalanceStrategy::Orientation,
                BalanceStrategy::Full,
            ] {
                let opts = JoinOptions {
                    balance,
                    ..JoinOptions::default()
                };
                let (results, _) = join(&t, &q, 2.0, &f, &opts);
                let got: Vec<(u64, u64)> = results.iter().map(|&(a, b, _)| (a, b)).collect();
                assert_eq!(got, expect, "{f} balance={balance:?}");
            }
        }
    }

    #[test]
    fn join_distances_are_exact() {
        let t = fig1_system(2);
        let q = fig1_system(2);
        let (results, _) = join(&t, &q, 4.0, &DistanceFunction::Dtw, &JoinOptions::default());
        let ts = figure1_trajectories();
        for (a, b, d) in results {
            let expect =
                dita_distance::dtw(ts[(a - 1) as usize].points(), ts[(b - 1) as usize].points());
            assert!((d - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn negative_tau_empty() {
        let t = fig1_system(2);
        let q = fig1_system(2);
        let (results, stats) = join(
            &t,
            &q,
            -1.0,
            &DistanceFunction::Dtw,
            &JoinOptions::default(),
        );
        assert!(results.is_empty());
        assert_eq!(stats.edges, 0);
    }

    #[test]
    fn orientation_never_worsens_predicted_bottleneck() {
        let t = fig1_system(2);
        let q = fig1_system(2);
        let none = JoinOptions {
            balance: BalanceStrategy::None,
            ..JoinOptions::default()
        };
        let orient = JoinOptions {
            balance: BalanceStrategy::Orientation,
            ..JoinOptions::default()
        };
        let (_, s_none) = join(&t, &q, 3.0, &DistanceFunction::Dtw, &none);
        let (_, s_orient) = join(&t, &q, 3.0, &DistanceFunction::Dtw, &orient);
        assert!(s_orient.predicted_tc_global <= s_none.predicted_tc_global + 1e-9);
    }

    #[test]
    fn sample_indices_cover_whole_list_evenly() {
        let take = |len, sample| sample_indices(len, sample).collect::<Vec<_>>();
        // Pinned: the old `len / sample` stride gave [0, 2, 4, 6] for
        // (10, 4), never looking past index 6; the even formula reaches
        // the tail.
        assert_eq!(take(10, 4), vec![0, 2, 5, 7]);
        assert_eq!(take(7, 3), vec![0, 2, 4]);
        // Sample >= len degenerates to the identity.
        assert_eq!(take(3, 16), vec![0, 1, 2]);
        assert_eq!(take(1, 1), vec![0]);
        // Strictly increasing and in range for a spread of shapes.
        for len in 1..40usize {
            for sample in 1..20usize {
                let idx = take(len, sample);
                assert_eq!(idx.len(), sample.min(len));
                assert!(idx.windows(2).all(|w| w[0] < w[1]), "{len} {sample}");
                assert!(*idx.last().unwrap() < len);
                // The last sampled index lands in the final stride-sized
                // chunk, i.e. the tail is represented.
                assert!(*idx.last().unwrap() >= len - len.div_ceil(sample.min(len)));
            }
        }
    }

    #[test]
    fn join_records_cost_feedback() {
        let t = fig1_system(2);
        let q = fig1_system(2);
        let (_, stats) = join(&t, &q, 3.0, &DistanceFunction::Dtw, &JoinOptions::default());
        assert!(!stats.feedback.is_empty());
        // Every task attributes its candidates to a destination node, so
        // the per-node observations add back up to the job total.
        let pairs: f64 = stats.feedback.iter().map(|(_, o)| o.observed_pairs).sum();
        assert_eq!(pairs as usize, stats.candidates);
        // Predictions were recorded for the nodes that received work.
        assert!(stats
            .feedback
            .iter()
            .any(|(_, o)| o.predicted_comp > 0.0 && o.tasks > 0));
    }

    #[test]
    fn observed_costs_change_the_plan_not_the_results() {
        let t = fig1_system(3);
        let q = fig1_system(3);
        let (r_base, s_base) = join(&t, &q, 3.0, &DistanceFunction::Dtw, &JoinOptions::default());
        // A store claiming every node massively underpredicted: all comps
        // scale by the clamp maximum, so the predicted bottleneck must
        // rise — while the result set stays bit-identical.
        let mut fb = CostFeedback::new();
        for node in 0..t.num_partitions() + q.num_partitions() {
            fb.set_predicted(node, 1.0);
            fb.observe(node, 1e9, 0.0, 0);
        }
        let opts = JoinOptions {
            observed_costs: Some(fb),
            ..JoinOptions::default()
        };
        let (r_fb, s_fb) = join(&t, &q, 3.0, &DistanceFunction::Dtw, &opts);
        assert_eq!(r_base, r_fb);
        assert!(s_fb.predicted_tc_global > s_base.predicted_tc_global);
    }

    #[test]
    fn plan_threads_do_not_change_join_results() {
        let t = fig1_system(2);
        let q = fig1_system(2);
        let serial = JoinOptions {
            plan_threads: 1,
            ..JoinOptions::default()
        };
        let par = JoinOptions {
            plan_threads: 4,
            ..JoinOptions::default()
        };
        for f in [DistanceFunction::Dtw, DistanceFunction::Frechet] {
            let (r1, s1) = join(&t, &q, 2.0, &f, &serial);
            let (r4, s4) = join(&t, &q, 2.0, &f, &par);
            assert_eq!(r1, r4, "{f}");
            assert_eq!(s1.edges, s4.edges, "{f}");
            assert_eq!(s1.edges_weighed, s4.edges_weighed, "{f}");
            assert!(s1.edges_weighed >= s1.edges, "{f}");
        }
    }
}
