//! Property-style equivalence: random insert/delete/compact interleavings
//! over a live [`DitaSystem`] must answer search, kNN and join queries
//! byte-identically to a from-scratch rebuild of the same logical dataset.
//!
//! Deterministic seeded xorshift streams stand in for proptest (same
//! randomized coverage, zero external dependencies): each seed drives a
//! distinct schedule of operations and maintenance calls, and equivalence
//! is asserted with `assert_eq!` on full result vectors *including* the
//! f64 distances.

use dita_cluster::{Cluster, ClusterConfig};
use dita_core::{join, knn_search, search, CompactionPolicy, DitaConfig, DitaSystem, JoinOptions};
use dita_distance::DistanceFunction;
use dita_index::{PivotStrategy, TrieConfig};
use dita_trajectory::{Dataset, Point, Trajectory};
use std::collections::BTreeMap;

struct XorShift(u64);

impl XorShift {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn random_trajectory(rng: &mut XorShift, id: u64) -> Trajectory {
    let len = 3 + (rng.next_u64() % 10) as usize;
    let (mut x, mut y) = (rng.next_f64() * 8.0, rng.next_f64() * 8.0);
    let mut pts = Vec::with_capacity(len);
    for _ in 0..len {
        x += (rng.next_f64() - 0.5) * 0.5;
        y += (rng.next_f64() - 0.5) * 0.5;
        pts.push(Point::new(x, y));
    }
    Trajectory::new(id, pts)
}

fn config() -> DitaConfig {
    DitaConfig {
        ng: 3,
        trie: TrieConfig {
            k: 2,
            nl: 2,
            leaf_capacity: 3,
            strategy: PivotStrategy::NeighborDistance,
            cell_side: 1.5,
            ..TrieConfig::default()
        },
    }
}

fn build(name: &str, trajectories: Vec<Trajectory>) -> DitaSystem {
    DitaSystem::build(
        &Dataset::new_unchecked(name, trajectories),
        config(),
        Cluster::new(ClusterConfig::with_workers(3)),
    )
}

fn rebuild_of(model: &BTreeMap<u64, Trajectory>) -> DitaSystem {
    build("rebuild", model.values().cloned().collect())
}

/// Asserts that `live` (base + deltas) and a fresh rebuild of `model`
/// agree exactly on threshold search and kNN for a batch of seeded
/// queries across distance functions.
fn assert_read_equivalence(live: &DitaSystem, model: &BTreeMap<u64, Trajectory>, seed: u64) {
    let fresh = rebuild_of(model);
    let mut rng = XorShift(seed.wrapping_mul(0xA5A5) | 1);
    let funcs = [
        DistanceFunction::Dtw,
        DistanceFunction::Frechet,
        DistanceFunction::Edr { eps: 0.25 },
    ];
    for qi in 0..5u64 {
        let q = random_trajectory(&mut rng, 900_000 + qi);
        for func in &funcs {
            for tau in [0.25, 1.0, 4.0] {
                let (mut a, _) = search(live, q.points(), tau, func);
                let (mut b, _) = search(&fresh, q.points(), tau, func);
                a.sort_by_key(|x| x.0);
                b.sort_by_key(|x| x.0);
                assert_eq!(a, b, "search seed={seed} q={qi} func={func} tau={tau}");
            }
        }
        if !model.is_empty() {
            let (a, _) = knn_search(live, q.points(), 3, &DistanceFunction::Dtw);
            let (b, _) = knn_search(&fresh, q.points(), 3, &DistanceFunction::Dtw);
            assert_eq!(a, b, "knn seed={seed} q={qi}");
        }
    }
}

#[test]
fn random_interleavings_match_rebuild() {
    for seed in [1u64, 7, 42] {
        let mut rng = XorShift(seed | 1);
        let mut model: BTreeMap<u64, Trajectory> = (1..=60u64)
            .map(|id| (id, random_trajectory(&mut rng, id)))
            .collect();
        let mut sys = build("live", model.values().cloned().collect());
        sys.set_compaction_policy(CompactionPolicy {
            auto: false,
            ..CompactionPolicy::default()
        });
        let mut next_id = 1_000u64;

        for segment in 0..8 {
            for _ in 0..10 {
                let roll = rng.next_u64() % 100;
                if roll < 60 || model.is_empty() {
                    let t = random_trajectory(&mut rng, next_id);
                    next_id += 1;
                    model.insert(t.id, t.clone());
                    sys.insert(t);
                } else if roll < 80 {
                    let keys: Vec<u64> = model.keys().copied().collect();
                    let id = keys[(rng.next_u64() as usize) % keys.len()];
                    let t = random_trajectory(&mut rng, id);
                    model.insert(id, t.clone());
                    sys.insert(t);
                } else {
                    let keys: Vec<u64> = model.keys().copied().collect();
                    let id = keys[(rng.next_u64() as usize) % keys.len()];
                    model.remove(&id);
                    assert!(sys.delete(id));
                }
            }
            // Random maintenance between segments: sometimes flush,
            // sometimes compact, sometimes leave the tail hot.
            match rng.next_u64() % 3 {
                0 => sys.flush(),
                1 => {
                    sys.compact();
                }
                _ => {}
            }
            assert_eq!(sys.len(), model.len(), "seed={seed} segment={segment}");
            assert_read_equivalence(&sys, &model, seed ^ (segment as u64) << 8);
        }

        // Terminal fold: compaction must leave a clean, still-equivalent base.
        sys.compact();
        assert!(!sys.has_deltas(), "seed={seed}: compact left deltas behind");
        assert_read_equivalence(&sys, &model, seed ^ 0xFFFF);
    }
}

#[test]
fn join_over_deltas_matches_rebuild() {
    for seed in [3u64, 11] {
        let mut rng = XorShift(seed | 1);
        let mut t_model: BTreeMap<u64, Trajectory> = (1..=40u64)
            .map(|id| (id, random_trajectory(&mut rng, id)))
            .collect();
        let q_model: BTreeMap<u64, Trajectory> = (101..=140u64)
            .map(|id| (id, random_trajectory(&mut rng, id)))
            .collect();
        let mut t_sys = build("t-live", t_model.values().cloned().collect());
        t_sys.set_compaction_policy(CompactionPolicy {
            auto: false,
            ..CompactionPolicy::default()
        });
        let q_sys = build("q-static", q_model.values().cloned().collect());

        // Mutate the left side only: inserts near the right side's extent
        // (so some join pairs genuinely involve delta rows) and deletes.
        for i in 0..25u64 {
            let roll = rng.next_u64() % 100;
            if roll < 70 {
                let t = random_trajectory(&mut rng, 2_000 + i);
                t_model.insert(t.id, t.clone());
                t_sys.insert(t);
            } else {
                let keys: Vec<u64> = t_model.keys().copied().collect();
                let id = keys[(rng.next_u64() as usize) % keys.len()];
                t_model.remove(&id);
                assert!(t_sys.delete(id));
            }
            if rng.next_u64().is_multiple_of(4) {
                t_sys.flush();
            }
        }
        assert!(t_sys.has_deltas(), "seed={seed}: schedule left no deltas");

        let t_fresh = rebuild_of(&t_model);
        let opts = JoinOptions::default();
        for func in [DistanceFunction::Dtw, DistanceFunction::Edr { eps: 0.25 }] {
            for tau in [1.0, 4.0] {
                let (a, _) = join(&t_sys, &q_sys, tau, &func, &opts);
                let (b, _) = join(&t_fresh, &q_sys, tau, &func, &opts);
                assert_eq!(a, b, "join seed={seed} func={func} tau={tau}");
                // And with the delta side as the right relation.
                let (c, _) = join(&q_sys, &t_sys, tau, &func, &opts);
                let (d, _) = join(&q_sys, &t_fresh, tau, &func, &opts);
                assert_eq!(c, d, "join-right seed={seed} func={func} tau={tau}");
            }
        }
    }
}
