//! Parallel verification must be invisible in the results: the same system
//! and query produce identical `(id, distance)` vectors — bit-equal
//! distances, same order — whatever the worker count, however many rayon
//! threads each worker verifies with, and however often the search is
//! repeated.

use dita_cluster::{Cluster, ClusterConfig};
use dita_core::{search_with_options, DitaConfig, DitaSystem, SearchOptions};
use dita_distance::DistanceFunction;
use dita_index::{PivotStrategy, TrieConfig};
use dita_trajectory::{Dataset, Point, Trajectory, TrajectoryId};

/// xorshift64* — deterministic, dependency-free randomness.
struct XorShift(u64);

impl XorShift {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Random-walk trajectories spread over a [0, 8]² region.
fn random_trajectories(n: usize, seed: u64) -> Vec<Trajectory> {
    let mut rng = XorShift(seed | 1);
    (0..n)
        .map(|i| {
            let len = 8 + (rng.next_u64() % 33) as usize;
            let mut x = rng.next_f64() * 8.0;
            let mut y = rng.next_f64() * 8.0;
            let mut pts = Vec::with_capacity(len);
            for _ in 0..len {
                pts.push(Point::new(x, y));
                x += (rng.next_f64() - 0.5) * 0.6;
                y += (rng.next_f64() - 0.5) * 0.6;
            }
            Trajectory::new(i as u64 + 1, pts)
        })
        .collect()
}

fn build_system(ts: &[Trajectory], workers: usize) -> DitaSystem {
    let dataset = Dataset::new_unchecked("det", ts.to_vec());
    DitaSystem::build(
        &dataset,
        DitaConfig {
            ng: 4,
            trie: TrieConfig {
                k: 3,
                nl: 3,
                leaf_capacity: 4,
                strategy: PivotStrategy::NeighborDistance,
                cell_side: 1.0,
                ..TrieConfig::default()
            },
        },
        Cluster::new(ClusterConfig::with_workers(workers)),
    )
}

#[test]
fn results_identical_across_workers_threads_and_repeats() {
    let ts = random_trajectories(120, 0x5eed_2026);
    let funcs = [
        DistanceFunction::Dtw,
        DistanceFunction::Frechet,
        DistanceFunction::Edr { eps: 0.3 },
        DistanceFunction::Lcss { eps: 0.3, delta: 2 },
        DistanceFunction::Erp { gap: (4.0, 4.0) },
    ];
    let queries = [&ts[3], &ts[47], &ts[101]];

    for func in &funcs {
        for q in queries {
            let tau = match func {
                DistanceFunction::Edr { .. } | DistanceFunction::Lcss { .. } => 6.0,
                _ => 2.5,
            };
            // Baseline: one worker, serial verification.
            let baseline: Vec<(TrajectoryId, f64)> = {
                let sys = build_system(&ts, 1);
                search_with_options(
                    &sys,
                    q.points(),
                    tau,
                    func,
                    SearchOptions { verify_threads: 1 },
                )
                .0
            };
            assert!(
                !baseline.is_empty(),
                "{func} Q=T{}: baseline found nothing — test is vacuous",
                q.id
            );

            for workers in [1usize, 4, 8] {
                let sys = build_system(&ts, workers);
                for verify_threads in [1usize, 2, 4] {
                    for repeat in 0..2 {
                        let got = search_with_options(
                            &sys,
                            q.points(),
                            tau,
                            func,
                            SearchOptions { verify_threads },
                        )
                        .0;
                        // Bit-equal distances, identical order.
                        assert_eq!(
                            got, baseline,
                            "{func} Q=T{} workers={workers} \
                             verify_threads={verify_threads} repeat={repeat}",
                            q.id
                        );
                    }
                }
            }
        }
    }
}
