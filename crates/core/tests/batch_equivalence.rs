//! Batched execution equivalence: `search_batch` and `knn_batch` must be
//! *byte-identical* to the sequential per-query loop — same result vectors
//! (f64 distances included), same per-query statistics, same network
//! charges — across every distance function, mixed taus, and a table
//! carrying unmerged delta state (post-insert/delete overlay).
//!
//! Deterministic seeded xorshift streams stand in for proptest, matching
//! the ingest-equivalence harness.

use dita_cluster::{Cluster, ClusterConfig};
use dita_core::{
    knn_batch, knn_search, search, search_batch, CompactionPolicy, DitaConfig, DitaSystem,
    SearchOptions,
};
use dita_distance::DistanceFunction;
use dita_index::{PivotStrategy, TrieConfig};
use dita_trajectory::{Dataset, Point, Trajectory};

struct XorShift(u64);

impl XorShift {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn random_trajectory(rng: &mut XorShift, id: u64) -> Trajectory {
    let len = 3 + (rng.next_u64() % 10) as usize;
    let (mut x, mut y) = (rng.next_f64() * 8.0, rng.next_f64() * 8.0);
    let mut pts = Vec::with_capacity(len);
    for _ in 0..len {
        x += (rng.next_f64() - 0.5) * 0.5;
        y += (rng.next_f64() - 0.5) * 0.5;
        pts.push(Point::new(x, y));
    }
    Trajectory::new(id, pts)
}

fn all_functions() -> [DistanceFunction; 5] {
    [
        DistanceFunction::Dtw,
        DistanceFunction::Frechet,
        DistanceFunction::Edr { eps: 0.25 },
        DistanceFunction::Lcss {
            eps: 0.25,
            delta: 2,
        },
        DistanceFunction::Erp { gap: (0.0, 0.0) },
    ]
}

fn build(seed: u64, n: u64) -> DitaSystem {
    let mut rng = XorShift(seed | 1);
    let ts: Vec<Trajectory> = (1..=n).map(|id| random_trajectory(&mut rng, id)).collect();
    DitaSystem::build(
        &Dataset::new_unchecked("batch-eq", ts),
        DitaConfig {
            ng: 3,
            trie: TrieConfig {
                k: 2,
                nl: 2,
                leaf_capacity: 3,
                strategy: PivotStrategy::NeighborDistance,
                cell_side: 1.5,
                ..TrieConfig::default()
            },
        },
        Cluster::new(ClusterConfig::with_workers(3)),
    )
}

/// Seeded query batch with mixed taus (some tight, some loose, some huge).
fn query_batch(seed: u64, n: usize) -> (Vec<Trajectory>, Vec<f64>) {
    let mut rng = XorShift(seed.wrapping_mul(0x9E37_79B9) | 1);
    let qs: Vec<Trajectory> = (0..n)
        .map(|i| random_trajectory(&mut rng, 500_000 + i as u64))
        .collect();
    let taus: Vec<f64> = (0..n)
        .map(|_| match rng.next_u64() % 4 {
            0 => 0.25,
            1 => 1.0,
            2 => 4.0,
            _ => 50.0,
        })
        .collect();
    (qs, taus)
}

/// Asserts that a batch answers exactly like the per-query loop on `sys`:
/// results, per-query funnels, and total network charge.
fn assert_batch_matches_sequential(sys: &DitaSystem, seed: u64, batch_size: usize) {
    let (qs, taus) = query_batch(seed, batch_size);
    let q_slices: Vec<&[Point]> = qs.iter().map(|t| t.points()).collect();
    for func in all_functions() {
        let (batched, bstats) =
            search_batch(sys, &q_slices, &taus, &func, SearchOptions::default());
        assert_eq!(batched.len(), batch_size);
        assert_eq!(bstats.queries.len(), batch_size);
        let mut sequential_bytes = 0u64;
        for (qi, q) in q_slices.iter().enumerate() {
            let (solo, sstats) = search(sys, q, taus[qi], &func);
            assert_eq!(
                batched[qi], solo,
                "results diverge: seed={seed} func={func} q={qi} tau={}",
                taus[qi]
            );
            let bq = &bstats.queries[qi];
            assert_eq!(bq.relevant_partitions, sstats.relevant_partitions);
            assert_eq!(bq.candidates, sstats.candidates, "func={func} q={qi}");
            assert_eq!(bq.results, sstats.results);
            assert_eq!(
                bq.filter, sstats.filter,
                "funnel diverges func={func} q={qi}"
            );
            assert_eq!(bq.delta_candidates, sstats.delta_candidates);
            assert_eq!(bq.delta_filter, sstats.delta_filter);
            sequential_bytes += sstats
                .job
                .workers
                .iter()
                .map(|w| w.bytes_received)
                .sum::<u64>();
        }
        // Broadcast parity: the batch job charges exactly what the
        // sequential loop charged in total — one shipment per (query,
        // relevant worker), never one per partition and never one per
        // batch member that didn't need the worker.
        let batch_bytes: u64 = bstats.job.workers.iter().map(|w| w.bytes_received).sum();
        assert_eq!(
            batch_bytes, sequential_bytes,
            "broadcast parity broken: seed={seed} func={func}"
        );
    }
}

#[test]
fn search_batch_matches_sequential_on_clean_table() {
    for seed in [1u64, 7, 42] {
        let sys = build(seed, 60);
        for batch_size in [1usize, 2, 5, 16] {
            assert_batch_matches_sequential(&sys, seed, batch_size);
        }
    }
}

#[test]
fn search_batch_matches_sequential_with_delta_overlay() {
    for seed in [3u64, 11] {
        let mut sys = build(seed, 60);
        sys.set_compaction_policy(CompactionPolicy {
            auto: false,
            ..CompactionPolicy::default()
        });
        let mut rng = XorShift(seed.wrapping_mul(0xBEEF) | 1);
        // Mutate into a dirty state: inserts (some overwriting live ids),
        // deletes, and a flush so both segment tries and unflushed tails
        // are live during the probes.
        for i in 0..20u64 {
            match rng.next_u64() % 3 {
                0 => {
                    let id = 1 + rng.next_u64() % 60;
                    sys.delete(id);
                }
                _ => {
                    let id = if rng.next_u64().is_multiple_of(2) {
                        1 + rng.next_u64() % 60
                    } else {
                        2_000 + i
                    };
                    let t = random_trajectory(&mut rng, id);
                    sys.insert(t);
                }
            }
            if i == 9 {
                sys.flush();
            }
        }
        for batch_size in [2usize, 8] {
            assert_batch_matches_sequential(&sys, seed, batch_size);
        }
    }
}

#[test]
fn knn_batch_matches_sequential_knn() {
    for seed in [5u64, 13] {
        let sys = build(seed, 60);
        let (qs, _) = query_batch(seed, 6);
        let q_slices: Vec<&[Point]> = qs.iter().map(|t| t.points()).collect();
        for func in all_functions() {
            for k in [1usize, 3, 10] {
                let batched = knn_batch(&sys, &q_slices, k, &func);
                assert_eq!(batched.len(), q_slices.len());
                for (qi, q) in q_slices.iter().enumerate() {
                    let (solo, sstats) = knn_search(&sys, q, k, &func);
                    let (bhits, bstats) = &batched[qi];
                    assert_eq!(
                        bhits, &solo,
                        "knn diverges seed={seed} func={func} q={qi} k={k}"
                    );
                    assert_eq!(bstats.rounds, sstats.rounds, "func={func} q={qi} k={k}");
                    assert_eq!(
                        bstats.final_radius, sstats.final_radius,
                        "func={func} q={qi} k={k}"
                    );
                    assert_eq!(
                        bstats.candidates, sstats.candidates,
                        "func={func} q={qi} k={k}"
                    );
                }
            }
        }
    }
}

#[test]
fn knn_batch_matches_sequential_with_delta_overlay() {
    let mut sys = build(17, 50);
    sys.set_compaction_policy(CompactionPolicy {
        auto: false,
        ..CompactionPolicy::default()
    });
    let mut rng = XorShift(0x5EED | 1);
    for _ in 0..12 {
        if rng.next_u64().is_multiple_of(3) {
            sys.delete(1 + rng.next_u64() % 50);
        } else {
            let id = 3_000 + rng.next_u64() % 20;
            let t = random_trajectory(&mut rng, id);
            sys.insert(t);
        }
    }
    let (qs, _) = query_batch(17, 5);
    let q_slices: Vec<&[Point]> = qs.iter().map(|t| t.points()).collect();
    let batched = knn_batch(&sys, &q_slices, 4, &DistanceFunction::Dtw);
    for (qi, q) in q_slices.iter().enumerate() {
        let (solo, _) = knn_search(&sys, q, 4, &DistanceFunction::Dtw);
        assert_eq!(batched[qi].0, solo, "q={qi}");
    }
}

#[test]
fn degenerate_batches_behave() {
    let sys = build(23, 40);
    // Empty batch.
    let (results, stats) = search_batch(
        &sys,
        &[],
        &[],
        &DistanceFunction::Dtw,
        SearchOptions::default(),
    );
    assert!(results.is_empty());
    assert!(stats.queries.is_empty());
    // k = 0 answers every query with nothing and zero rounds.
    let (qs, _) = query_batch(23, 3);
    let q_slices: Vec<&[Point]> = qs.iter().map(|t| t.points()).collect();
    for (hits, st) in knn_batch(&sys, &q_slices, 0, &DistanceFunction::Dtw) {
        assert!(hits.is_empty());
        assert_eq!(st.rounds, 0);
    }
}
