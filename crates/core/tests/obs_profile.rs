//! Acceptance tests for the observability wiring (OBSERVABILITY.md): one
//! instrumented search yields the documented span hierarchy
//! `search → worker → task → {filter, verify}`, a filter funnel whose
//! per-stage counts are self-consistent with `SearchStats`, and mirrored
//! registry metrics. Joins and kNN searches get their own top-level spans.

use dita_cluster::{Cluster, ClusterConfig};
use dita_core::{
    join, knn_search, search_with_options, DitaConfig, DitaSystem, JoinOptions, SearchOptions,
};
use dita_distance::DistanceFunction;
use dita_index::{PivotStrategy, TrieConfig};
use dita_obs::Obs;
use dita_trajectory::trajectory::figure1_trajectories;
use dita_trajectory::Dataset;

fn instrumented_system(workers: usize) -> DitaSystem {
    let dataset = Dataset::new("fig1", figure1_trajectories()).unwrap();
    let mut sys = DitaSystem::build(
        &dataset,
        DitaConfig {
            ng: 2,
            trie: TrieConfig {
                k: 2,
                nl: 2,
                leaf_capacity: 0,
                strategy: PivotStrategy::NeighborDistance,
                cell_side: 2.0,
                ..TrieConfig::default()
            },
        },
        Cluster::new(ClusterConfig::with_workers(workers)),
    );
    sys.attach_obs(Obs::enabled());
    sys
}

#[test]
fn search_profile_has_expected_hierarchy() {
    let sys = instrumented_system(2);
    let ts = figure1_trajectories();
    let (results, stats) = search_with_options(
        &sys,
        ts[0].points(),
        3.0,
        &DistanceFunction::Dtw,
        SearchOptions { verify_threads: 1 },
    );
    assert_eq!(results.len(), 2);

    let report = sys.obs().report();
    let search = report
        .profile
        .iter()
        .find(|n| n.name == "search")
        .expect("top-level search span");

    // Per-worker child spans, one per worker that received a task.
    let workers: Vec<_> = search
        .children
        .iter()
        .filter(|c| c.name == "worker")
        .collect();
    assert!(!workers.is_empty(), "search span has worker children");
    let tasks_under_workers: usize = workers
        .iter()
        .flat_map(|w| w.children.iter())
        .filter(|t| t.name == "task")
        .map(|t| t.count as usize)
        .sum();
    assert!(tasks_under_workers >= 1, "worker spans contain task spans");
    let job_tasks: usize = stats.job.workers.iter().map(|w| w.tasks).sum();
    assert_eq!(
        tasks_under_workers, job_tasks,
        "one task span per executed task"
    );

    // filter and verify live somewhere below search (under worker → task).
    let filter = search.find("filter").expect("filter span under search");
    let verify = search.find("verify").expect("verify span under search");
    assert!(filter.count >= 1);
    assert!(verify.count >= 1);
    // ... and NOT directly under search: they are opened on worker threads
    // inside the task span.
    assert!(search.children.iter().all(|c| c.name != "filter"));
    assert!(search.children.iter().all(|c| c.name != "verify"));

    // The timeline carries one row per task.
    let task_rows = report.timeline.iter().filter(|r| r.name == "task").count();
    assert_eq!(task_rows, job_tasks);
}

#[test]
fn filter_funnel_is_consistent_with_search_stats() {
    let sys = instrumented_system(2);
    let ts = figure1_trajectories();
    let (_, stats) = search_with_options(
        &sys,
        ts[1].points(),
        3.0,
        &DistanceFunction::Dtw,
        SearchOptions { verify_threads: 1 },
    );

    let funnel = stats.filter.funnel();
    assert_eq!(funnel.name, "trie-filter");
    let names: Vec<&str> = funnel.stages.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(
        names,
        ["node-length", "node-budget", "leaf-length", "leaf-opamd"]
    );

    // The funnel's final survivors are exactly the candidates verification
    // received, and adjacent stages chain within each tier (node stages
    // count trie nodes, leaf stages count member trajectories).
    assert_eq!(funnel.survivors() as usize, stats.candidates);
    assert_eq!(funnel.stages[1].entered, funnel.stages[0].survivors());
    assert_eq!(funnel.stages[3].entered, funnel.stages[2].survivors());

    // The registry mirror agrees with the in-band stats.
    let report = sys.obs().report();
    let pruned_sum: f64 = report
        .metrics
        .iter()
        .filter(|m| m.name == "dita_funnel_pruned_total")
        .map(|m| m.value)
        .sum();
    assert_eq!(pruned_sum as u64, funnel.total_pruned());
    let candidates = report
        .metrics
        .iter()
        .find(|m| m.name == "dita_search_candidates_total")
        .expect("candidate counter");
    assert_eq!(candidates.value as usize, stats.candidates);
}

#[test]
fn executor_metrics_are_recorded_per_worker() {
    let sys = instrumented_system(2);
    let ts = figure1_trajectories();
    let (_, stats) = search_with_options(
        &sys,
        ts[0].points(),
        3.0,
        &DistanceFunction::Dtw,
        SearchOptions { verify_threads: 1 },
    );

    let report = sys.obs().report();
    let task_total: f64 = report
        .metrics
        .iter()
        .filter(|m| m.name == "dita_tasks_total")
        .map(|m| m.value)
        .sum();
    let job_tasks: usize = stats.job.workers.iter().map(|w| w.tasks).sum();
    assert_eq!(task_total as usize, job_tasks);
    let bytes_total: f64 = report
        .metrics
        .iter()
        .filter(|m| m.name == "dita_network_bytes_total")
        .map(|m| m.value)
        .sum();
    let job_bytes: u64 = stats.job.workers.iter().map(|w| w.bytes_received).sum();
    assert_eq!(bytes_total as u64, job_bytes);
}

#[test]
fn join_and_knn_get_top_level_spans() {
    let sys = instrumented_system(2);
    let ts = figure1_trajectories();

    let (pairs, jstats) = join(
        &sys,
        &sys,
        3.0,
        &DistanceFunction::Dtw,
        &JoinOptions::default(),
    );
    assert!(!pairs.is_empty());
    let (hits, _) = knn_search(&sys, ts[0].points(), 2, &DistanceFunction::Dtw);
    assert_eq!(hits.len(), 2);

    let report = sys.obs().report();
    let join_span = report
        .profile
        .iter()
        .find(|n| n.name == "join")
        .expect("top-level join span");
    assert!(join_span.find("build-edges").is_some());
    assert!(join_span.find("orient").is_some());
    assert!(join_span.find("execute_dynamic").is_some());
    assert!(join_span.find("local-join").is_some());

    let knn_span = report
        .profile
        .iter()
        .find(|n| n.name == "knn")
        .expect("top-level knn span");
    let inner_search = knn_span
        .find("search")
        .expect("knn probes via search spans");
    assert!(inner_search.count >= 1);

    // Join metrics mirror JoinStats.
    let shipped = report
        .metrics
        .iter()
        .find(|m| m.name == "dita_join_shipped_bytes_total")
        .expect("join shipped-bytes counter");
    assert_eq!(shipped.value as u64, jstats.shipped_bytes);
}

#[test]
fn unattached_system_records_nothing() {
    let dataset = Dataset::new("fig1", figure1_trajectories()).unwrap();
    let sys = DitaSystem::build(
        &dataset,
        DitaConfig {
            ng: 2,
            trie: TrieConfig {
                k: 2,
                nl: 2,
                leaf_capacity: 0,
                strategy: PivotStrategy::NeighborDistance,
                cell_side: 2.0,
                ..TrieConfig::default()
            },
        },
        Cluster::new(ClusterConfig::with_workers(2)),
    );
    let ts = figure1_trajectories();
    let (results, _) = search_with_options(
        &sys,
        ts[0].points(),
        3.0,
        &DistanceFunction::Dtw,
        SearchOptions { verify_threads: 1 },
    );
    assert_eq!(results.len(), 2);
    assert!(!sys.obs().is_enabled());
    let report = sys.obs().report();
    assert!(report.metrics.is_empty());
    assert!(report.profile.is_empty());
}
