//! Property test: the two places a trajectory crosses the simulated
//! network — search's query broadcast ([`query_broadcast_bytes`]) and
//! join's shipped-trajectory pricing ([`Trajectory::size_bytes`]) — must
//! charge the identical per-point byte formula, or the cost model would
//! value the same record differently depending on which operator moves it.

use dita_core::query_broadcast_bytes;
use dita_trajectory::{Point, Trajectory, TrajectoryId};
use proptest::prelude::*;

fn tiny_system(workers: usize) -> dita_core::DitaSystem {
    use dita_trajectory::trajectory::figure1_trajectories;
    dita_core::DitaSystem::build(
        &dita_trajectory::Dataset::new("fig1", figure1_trajectories()).unwrap(),
        dita_core::DitaConfig {
            ng: 2,
            trie: dita_index::TrieConfig {
                k: 2,
                nl: 2,
                leaf_capacity: 0,
                strategy: dita_index::PivotStrategy::NeighborDistance,
                cell_side: 2.0,
                ..dita_index::TrieConfig::default()
            },
        },
        dita_cluster::Cluster::new(dita_cluster::ClusterConfig::with_workers(workers)),
    )
}

proptest! {
    #[test]
    fn broadcast_and_shipment_price_trajectories_identically(
        coords in proptest::collection::vec(
            (-180.0f64..180.0, -90.0f64..90.0),
            1..64,
        ),
        id in 1u64..1_000_000,
    ) {
        let points: Vec<Point> = coords.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let shipped = Trajectory::new(id, points.clone()).size_bytes() as u64;
        prop_assert_eq!(query_broadcast_bytes(&points), shipped);
    }

    #[test]
    fn both_formulas_are_linear_in_points(
        coords in proptest::collection::vec(
            (-180.0f64..180.0, -90.0f64..90.0),
            2..64,
        ),
    ) {
        let points: Vec<Point> = coords.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let per_point = std::mem::size_of::<Point>() as u64;
        let envelope = std::mem::size_of::<TrajectoryId>() as u64;
        prop_assert_eq!(
            query_broadcast_bytes(&points),
            envelope + per_point * points.len() as u64
        );
        // Dropping one point saves exactly one point's bytes in both.
        let shorter = &points[..points.len() - 1];
        prop_assert_eq!(
            query_broadcast_bytes(&points) - query_broadcast_bytes(shorter),
            per_point
        );
        let t_full = Trajectory::new(1, points.clone()).size_bytes() as u64;
        let t_short = Trajectory::new(1, shorter.to_vec()).size_bytes() as u64;
        prop_assert_eq!(t_full - t_short, per_point);
    }

    /// The batched search path preserves broadcast parity: one batch job
    /// charges exactly the bytes the sequential per-query loop charges —
    /// a query pays one broadcast per relevant *worker*, never per
    /// partition, and joining a batch neither adds nor saves bytes.
    #[test]
    fn batched_broadcast_charges_match_sequential(
        queries in proptest::collection::vec(
            (proptest::collection::vec((0.0f64..8.0, 0.0f64..8.0), 1..8), 0.0f64..8.0),
            1..5,
        ),
        workers in 1usize..4,
    ) {
        use dita_core::{search, search_batch, SearchOptions};
        use dita_distance::DistanceFunction;

        let sys = tiny_system(workers);
        let pts: Vec<Vec<Point>> = queries
            .iter()
            .map(|(coords, _)| coords.iter().map(|&(x, y)| Point::new(x, y)).collect())
            .collect();
        let q_slices: Vec<&[Point]> = pts.iter().map(|p| p.as_slice()).collect();
        let taus: Vec<f64> = queries.iter().map(|&(_, tau)| tau).collect();
        let func = DistanceFunction::Dtw;

        let mut sequential = 0u64;
        for (qi, q) in q_slices.iter().enumerate() {
            let (_, s) = search(&sys, q, taus[qi], &func);
            sequential += s.job.workers.iter().map(|w| w.bytes_received).sum::<u64>();
        }
        let (_, bstats) = search_batch(&sys, &q_slices, &taus, &func, SearchOptions::default());
        let batched: u64 = bstats.job.workers.iter().map(|w| w.bytes_received).sum();
        prop_assert_eq!(batched, sequential);
    }
}
