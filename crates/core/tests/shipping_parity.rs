//! Property test: the two places a trajectory crosses the simulated
//! network — search's query broadcast ([`query_broadcast_bytes`]) and
//! join's shipped-trajectory pricing ([`Trajectory::size_bytes`]) — must
//! charge the identical per-point byte formula, or the cost model would
//! value the same record differently depending on which operator moves it.

use dita_core::query_broadcast_bytes;
use dita_trajectory::{Point, Trajectory, TrajectoryId};
use proptest::prelude::*;

proptest! {
    #[test]
    fn broadcast_and_shipment_price_trajectories_identically(
        coords in proptest::collection::vec(
            (-180.0f64..180.0, -90.0f64..90.0),
            1..64,
        ),
        id in 1u64..1_000_000,
    ) {
        let points: Vec<Point> = coords.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let shipped = Trajectory::new(id, points.clone()).size_bytes() as u64;
        prop_assert_eq!(query_broadcast_bytes(&points), shipped);
    }

    #[test]
    fn both_formulas_are_linear_in_points(
        coords in proptest::collection::vec(
            (-180.0f64..180.0, -90.0f64..90.0),
            2..64,
        ),
    ) {
        let points: Vec<Point> = coords.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let per_point = std::mem::size_of::<Point>() as u64;
        let envelope = std::mem::size_of::<TrajectoryId>() as u64;
        prop_assert_eq!(
            query_broadcast_bytes(&points),
            envelope + per_point * points.len() as u64
        );
        // Dropping one point saves exactly one point's bytes in both.
        let shorter = &points[..points.len() - 1];
        prop_assert_eq!(
            query_broadcast_bytes(&points) - query_broadcast_bytes(shorter),
            per_point
        );
        let t_full = Trajectory::new(1, points.clone()).size_bytes() as u64;
        let t_short = Trajectory::new(1, shorter.to_vec()).size_bytes() as u64;
        prop_assert_eq!(t_full - t_short, per_point);
    }
}
