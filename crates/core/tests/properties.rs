//! Property tests for the full DITA pipeline: search and join must agree
//! with brute force on arbitrary data, configurations and thresholds.

use dita_cluster::{Cluster, ClusterConfig};
use dita_core::{join, knn_search, search, DitaConfig, DitaSystem, JoinOptions};
use dita_distance::DistanceFunction;
use dita_index::{PivotStrategy, TrieConfig};
use dita_trajectory::{Dataset, Trajectory};
use proptest::prelude::*;

fn arb_dataset(max_n: usize) -> impl Strategy<Value = Vec<Trajectory>> {
    prop::collection::vec(
        prop::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 1..12),
        2..max_n,
    )
    .prop_map(|all| {
        all.into_iter()
            .enumerate()
            .map(|(i, coords)| Trajectory::from_coords(i as u64, &coords))
            .collect()
    })
}

fn build(ts: &[Trajectory], ng: usize, k: usize, workers: usize) -> DitaSystem {
    let dataset = Dataset::new_unchecked("prop", ts.to_vec());
    DitaSystem::build(
        &dataset,
        DitaConfig {
            ng,
            trie: TrieConfig {
                k,
                nl: 3,
                leaf_capacity: 2,
                strategy: PivotStrategy::NeighborDistance,
                cell_side: 1.0,
                ..TrieConfig::default()
            },
        },
        Cluster::new(ClusterConfig::with_workers(workers)),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn search_equals_brute_force(
        ts in arb_dataset(20),
        qsel in 0usize..20,
        tau in 0.0f64..20.0,
        ng in 1usize..4,
        k in 0usize..4,
        workers in 1usize..4,
    ) {
        let sys = build(&ts, ng, k, workers);
        let q = &ts[qsel % ts.len()];
        for f in [
            DistanceFunction::Dtw,
            DistanceFunction::Frechet,
            DistanceFunction::Edr { eps: 1.0 },
            DistanceFunction::Lcss { eps: 1.0, delta: 2 },
            DistanceFunction::Erp { gap: (0.0, 0.0) },
        ] {
            let (hits, _) = search(&sys, q.points(), tau, &f);
            let expect: Vec<u64> = ts
                .iter()
                .filter(|t| f.distance(t.points(), q.points()) <= tau)
                .map(|t| t.id)
                .collect();
            let got: Vec<u64> = hits.iter().map(|&(id, _)| id).collect();
            prop_assert_eq!(got, expect, "{} tau={}", f, tau);
        }
    }

    #[test]
    fn join_equals_brute_force(
        ts in arb_dataset(14),
        tau in 0.0f64..15.0,
        ng in 1usize..4,
        workers in 1usize..4,
    ) {
        let sys = build(&ts, ng, 2, workers);
        for f in [DistanceFunction::Dtw, DistanceFunction::Frechet] {
            let (pairs, _) = join(&sys, &sys, tau, &f, &JoinOptions::default());
            let mut expect: Vec<(u64, u64)> = Vec::new();
            for a in &ts {
                for b in &ts {
                    if f.distance(a.points(), b.points()) <= tau {
                        expect.push((a.id, b.id));
                    }
                }
            }
            expect.sort_unstable();
            let got: Vec<(u64, u64)> = pairs.iter().map(|&(a, b, _)| (a, b)).collect();
            prop_assert_eq!(got, expect, "{} tau={}", f, tau);
        }
    }

    #[test]
    fn knn_equals_brute_force(
        ts in arb_dataset(16),
        qsel in 0usize..16,
        k in 1usize..6,
    ) {
        let sys = build(&ts, 2, 2, 2);
        let q = &ts[qsel % ts.len()];
        let f = DistanceFunction::Dtw;
        let (hits, _) = knn_search(&sys, q.points(), k, &f);
        let mut expect: Vec<(u64, f64)> = ts
            .iter()
            .map(|t| (t.id, f.distance(t.points(), q.points())))
            .collect();
        expect.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        expect.truncate(k.min(ts.len()));
        let got: Vec<u64> = hits.iter().map(|&(id, _)| id).collect();
        let want: Vec<u64> = expect.iter().map(|&(id, _)| id).collect();
        prop_assert_eq!(got, want);
    }
}
