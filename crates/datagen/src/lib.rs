//! Deterministic synthetic trajectory generators.
//!
//! The paper evaluates on two proprietary taxi datasets (Beijing, Chengdu)
//! and a 110 GB OpenStreetMap GPS dump, none of which are available here.
//! Per the substitution rule (DESIGN.md §2) this crate generates scaled
//! stand-ins that preserve the properties DITA's behaviour depends on:
//!
//! * **spatial locality** — trips follow a road-grid random walk inside a
//!   city extent, so first/last points cluster and STR partitioning has
//!   structure to exploit;
//! * **length distributions** — mean/min/max trajectory lengths match the
//!   paper's Table 2 rows;
//! * **query workloads** — queries are sampled from the dataset itself,
//!   exactly as §7.2 does ("randomly sampled 1,000 queries").
//!
//! Everything is seeded: the same configuration always yields byte-identical
//! datasets.

#![warn(missing_docs)]

pub mod city;
pub mod queries;
pub mod world;

pub use city::{city_dataset, CityConfig};
pub use queries::sample_queries;
pub use world::{world_dataset, WorldConfig};

use dita_trajectory::Dataset;

/// A Beijing-like taxi dataset (Table 2: avg 22.2, min 7, max 112 points)
/// scaled to `n` trajectories.
pub fn beijing_like(n: usize, seed: u64) -> Dataset {
    city_dataset(&CityConfig {
        name: "beijing-like".into(),
        cardinality: n,
        center: (39.9, 116.4),
        extent_deg: 0.30,
        grid_step_deg: 0.0015,
        avg_len: 22.2,
        min_len: 7,
        max_len: 112,
        gps_noise_deg: 0.00008,
        route_popularity: 0.25,
        popular_routes: 0,
        hotspot_fraction: 0.4,
        seed,
    })
}

/// A Chengdu-like taxi dataset (Table 2: avg 37.4, min 10, max 209 points)
/// scaled to `n` trajectories.
pub fn chengdu_like(n: usize, seed: u64) -> Dataset {
    city_dataset(&CityConfig {
        name: "chengdu-like".into(),
        cardinality: n,
        center: (30.66, 104.06),
        extent_deg: 0.40,
        grid_step_deg: 0.0015,
        avg_len: 37.4,
        min_len: 10,
        max_len: 209,
        gps_noise_deg: 0.00008,
        route_popularity: 0.25,
        popular_routes: 0,
        hotspot_fraction: 0.4,
        seed,
    })
}

/// An OSM-like worldwide dataset (Table 2: avg ≈ 114–120, min 9, max 3000)
/// scaled to `n` trajectories, including the paper's "split long
/// trajectories at 3000 points" preprocessing.
pub fn osm_like(n: usize, seed: u64) -> Dataset {
    world_dataset(&WorldConfig {
        name: "osm-like".into(),
        cardinality: n,
        clusters: 64,
        avg_len: 115.0,
        min_len: 9,
        max_len: 3000,
        seed,
    })
}

/// The small centralized dataset of Appendix C's Table 6 (Chengdu(tiny)):
/// Chengdu-shaped, `n` trajectories.
pub fn chengdu_tiny(n: usize, seed: u64) -> Dataset {
    let mut d = chengdu_like(n, seed);
    d.name = "chengdu-tiny".into();
    d
}
