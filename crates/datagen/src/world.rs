//! Worldwide GPS-trace generator (the OSM stand-in).
//!
//! OpenStreetMap traces come from heterogeneous objects (hikers, cars,
//! boats) scattered across the globe. The generator reproduces the two
//! properties the paper's §7.3 calls out: trajectories form *worldwide
//! clusters* (so joins have "smaller numbers of candidates and results"
//! than a citywide dataset of comparable size), and individual traces are
//! long — up to the 3000-point cap the paper enforces by splitting.

use dita_trajectory::{Dataset, Trajectory, TrajectoryId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Configuration for a worldwide dataset.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Dataset name.
    pub name: String,
    /// Number of trajectories (after splitting).
    pub cardinality: usize,
    /// Number of activity clusters spread over the globe.
    pub clusters: usize,
    /// Target mean length, points.
    pub avg_len: f64,
    /// Minimum length, points.
    pub min_len: usize,
    /// Maximum length; longer traces are split (§7.1 preprocessing).
    pub max_len: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Generates a worldwide dataset per `cfg`.
pub fn world_dataset(cfg: &WorldConfig) -> Dataset {
    assert!(cfg.min_len >= 2 && cfg.min_len <= cfg.max_len);
    assert!(cfg.clusters >= 1);
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);

    // Activity clusters: population centers with different densities.
    let centers: Vec<(f64, f64, f64)> = (0..cfg.clusters)
        .map(|_| {
            (
                rng.gen_range(-60.0..60.0),   // lat
                rng.gen_range(-180.0..180.0), // lon
                rng.gen_range(0.05..0.8),     // cluster radius, degrees
            )
        })
        .collect();

    let mut trajectories: Vec<Trajectory> = Vec::with_capacity(cfg.cardinality);
    let mut next_id: TrajectoryId = 0;
    while trajectories.len() < cfg.cardinality {
        let &(clat, clon, radius) = &centers[rng.gen_range(0..centers.len())];
        // Raw traces are drawn longer than max_len occasionally so the
        // splitting path is really exercised.
        let mean_excess = (cfg.avg_len - cfg.min_len as f64).max(1.0);
        let u: f64 = rng.gen_range(1e-12..1.0);
        let raw_len = (cfg.min_len as f64 - mean_excess * u.ln()).round() as usize;
        let raw_len = raw_len.clamp(cfg.min_len, cfg.max_len * 2);

        // A meandering trace: smooth heading drift, variable speed.
        let mut lat = clat + rng.gen_range(-radius..radius);
        let mut lon = clon + rng.gen_range(-radius..radius);
        let mut heading: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        let step = radius / 500.0;
        let mut coords = Vec::with_capacity(raw_len);
        for _ in 0..raw_len {
            coords.push((lat, lon));
            heading += rng.gen_range(-0.4..0.4);
            let speed = step * rng.gen_range(0.5..1.5);
            lat += heading.sin() * speed;
            lon += heading.cos() * speed;
        }
        let raw = Trajectory::from_coords(next_id, &coords);
        next_id += 1;
        for piece in raw.split_long(cfg.max_len, &mut next_id) {
            if trajectories.len() < cfg.cardinality {
                trajectories.push(piece);
            }
        }
    }
    // Re-assign dense ids (splitting produced gaps).
    for (i, t) in trajectories.iter_mut().enumerate() {
        t.id = i as u64;
    }
    Dataset::new_unchecked(cfg.name.clone(), trajectories)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: usize) -> WorldConfig {
        WorldConfig {
            name: "test-world".into(),
            cardinality: n,
            clusters: 8,
            avg_len: 60.0,
            min_len: 9,
            max_len: 150,
            seed: 5,
        }
    }

    #[test]
    fn produces_requested_cardinality_with_dense_ids() {
        let d = world_dataset(&cfg(300));
        assert_eq!(d.len(), 300);
        for (i, t) in d.trajectories().iter().enumerate() {
            assert_eq!(t.id, i as u64);
        }
    }

    #[test]
    fn lengths_respect_bounds() {
        let d = world_dataset(&cfg(500));
        let s = d.stats();
        assert!(s.min_len >= 2);
        // split_long may emit max_len + 1 when absorbing a trailing point.
        assert!(s.max_len <= 151, "max {}", s.max_len);
    }

    #[test]
    fn deterministic() {
        let a = world_dataset(&cfg(100));
        let b = world_dataset(&cfg(100));
        assert_eq!(a.trajectories(), b.trajectories());
    }

    #[test]
    fn worldwide_spread_exceeds_city_scale() {
        let d = world_dataset(&cfg(400));
        let mbr = dita_trajectory::Mbr::from_points(d.trajectories().iter().map(|t| t.first()));
        // Clusters span continents, not one city.
        assert!(mbr.max.y - mbr.min.y > 50.0);
    }

    #[test]
    fn osm_preset_shape() {
        let d = crate::osm_like(400, 9);
        let s = d.stats();
        assert!(s.min_len >= 2);
        assert!(s.max_len <= 3001);
        assert!(s.avg_len > 50.0, "avg {}", s.avg_len);
    }
}
