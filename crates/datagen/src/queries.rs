//! Query workload sampling.
//!
//! §7.2: "we randomly sampled 1,000 queries from the dataset and reported
//! the average running time".

use dita_trajectory::{Dataset, Trajectory};
use rand::{seq::SliceRandom, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Samples `n` query trajectories uniformly without replacement (with
/// replacement once `n` exceeds the dataset size). Deterministic in `seed`.
pub fn sample_queries(dataset: &Dataset, n: usize, seed: u64) -> Vec<Trajectory> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5151_5151);
    let ts = dataset.trajectories();
    if ts.is_empty() || n == 0 {
        return Vec::new();
    }
    if n <= ts.len() {
        let mut idx: Vec<usize> = (0..ts.len()).collect();
        idx.shuffle(&mut rng);
        idx[..n].iter().map(|&i| ts[i].clone()).collect()
    } else {
        (0..n)
            .map(|_| ts.choose(&mut rng).expect("non-empty").clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dita_trajectory::trajectory::figure1_trajectories;

    fn fig1() -> Dataset {
        Dataset::new("fig1", figure1_trajectories()).unwrap()
    }

    #[test]
    fn samples_without_replacement_when_possible() {
        let d = fig1();
        let qs = sample_queries(&d, 5, 1);
        let mut ids: Vec<u64> = qs.iter().map(|q| q.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn oversampling_repeats() {
        let d = fig1();
        let qs = sample_queries(&d, 12, 1);
        assert_eq!(qs.len(), 12);
    }

    #[test]
    fn deterministic_per_seed() {
        let d = fig1();
        let a = sample_queries(&d, 3, 9);
        let b = sample_queries(&d, 3, 9);
        assert_eq!(a, b);
        let c = sample_queries(&d, 3, 10);
        assert!(a != c || a.len() <= 1);
    }

    #[test]
    fn empty_inputs() {
        let d = Dataset::new("empty", vec![]).unwrap();
        assert!(sample_queries(&d, 5, 0).is_empty());
        assert!(sample_queries(&fig1(), 0, 0).is_empty());
    }
}
