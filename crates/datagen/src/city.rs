//! City-taxi trajectory generator: random walks over a synthetic road grid.

use dita_trajectory::{Dataset, Trajectory};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Configuration for a city-shaped dataset.
#[derive(Debug, Clone)]
pub struct CityConfig {
    /// Dataset name.
    pub name: String,
    /// Number of trajectories.
    pub cardinality: usize,
    /// City center `(lat, lon)` in degrees.
    pub center: (f64, f64),
    /// Side length of the square city extent, degrees.
    pub extent_deg: f64,
    /// Road-grid spacing, degrees (one GPS fix per grid step).
    pub grid_step_deg: f64,
    /// Target mean trajectory length, points.
    pub avg_len: f64,
    /// Minimum trajectory length, points.
    pub min_len: usize,
    /// Maximum trajectory length, points.
    pub max_len: usize,
    /// Standard deviation of GPS noise added to each fix, degrees.
    pub gps_noise_deg: f64,
    /// Probability that a trip replays an earlier trip's route (with fresh
    /// GPS noise). Taxi fleets drive popular corridors repeatedly; this is
    /// what gives similarity search/join non-trivial result sets.
    pub route_popularity: f64,
    /// Size of the popular-route pool. Replayed trips copy a route drawn
    /// from the first `popular_routes` generated trips; `0` means "any
    /// earlier trip" (a rich-get-richer process with a mild tail). Small
    /// pools concentrate similarity into few clone cliques — the heavy
    /// workload skew behind the paper's straggler experiments (Figure 16).
    pub popular_routes: usize,
    /// Probability that a fresh trip starts inside the downtown hotspot
    /// (the central ~1/5 of the extent). Real taxi data is heavily
    /// center-skewed, which is what makes load balancing matter (§6.3).
    pub hotspot_fraction: f64,
    /// RNG seed; equal configurations yield identical datasets.
    pub seed: u64,
}

/// Samples a trajectory length: `min + Exp(avg − min)`, clamped to `max`.
///
/// The exponential body reproduces the heavy right tail of real trip-length
/// distributions while hitting the configured mean closely.
fn sample_len<R: Rng>(rng: &mut R, min: usize, max: usize, avg: f64) -> usize {
    debug_assert!(min <= max);
    if min == max {
        return min;
    }
    let mean_excess = (avg - min as f64).max(0.5);
    let u: f64 = rng.gen_range(1e-12..1.0);
    let e = -mean_excess * u.ln();
    ((min as f64 + e).round() as usize).clamp(min, max)
}

/// Generates one road-grid random-walk trip.
fn walk<R: Rng>(rng: &mut R, cfg: &CityConfig, id: u64, len: usize) -> Trajectory {
    let half = cfg.extent_deg / 2.0;
    let steps_per_axis = (cfg.extent_deg / cfg.grid_step_deg) as i64;
    // Start on a random grid node — downtown with probability
    // `hotspot_fraction`, anywhere otherwise.
    let (mut gx, mut gy) = if rng.gen::<f64>() < cfg.hotspot_fraction {
        let lo = steps_per_axis * 2 / 5;
        let hi = steps_per_axis * 3 / 5;
        (rng.gen_range(lo..=hi), rng.gen_range(lo..=hi))
    } else {
        (
            rng.gen_range(0..=steps_per_axis),
            rng.gen_range(0..=steps_per_axis),
        )
    };
    // Initial heading: one of the four grid directions.
    let mut dir = rng.gen_range(0..4u8);
    let mut coords = Vec::with_capacity(len);
    for _ in 0..len {
        let lat = cfg.center.0 - half
            + gx as f64 * cfg.grid_step_deg
            + rng.gen_range(-1.0..1.0) * cfg.gps_noise_deg;
        let lon = cfg.center.1 - half
            + gy as f64 * cfg.grid_step_deg
            + rng.gen_range(-1.0..1.0) * cfg.gps_noise_deg;
        coords.push((lat, lon));
        // Momentum: mostly keep going, sometimes turn (never U-turn), which
        // produces the inflection structure pivot selection keys on.
        let r: f64 = rng.gen();
        if r > 0.70 {
            let left = r > 0.85;
            dir = match (dir, left) {
                (0, true) => 3,
                (0, false) => 1,
                (1, true) => 0,
                (1, false) => 2,
                (2, true) => 1,
                (2, false) => 3,
                (_, true) => 2,
                (_, false) => 0,
            };
        }
        let (dx, dy) = match dir {
            0 => (1i64, 0i64),
            1 => (0, 1),
            2 => (-1, 0),
            _ => (0, -1),
        };
        gx = (gx + dx).clamp(0, steps_per_axis);
        gy = (gy + dy).clamp(0, steps_per_axis);
        // Bounce off the city border.
        if gx == 0 || gx == steps_per_axis {
            dir = if gx == 0 { 0 } else { 2 };
        }
        if gy == 0 || gy == steps_per_axis {
            dir = if gy == 0 { 1 } else { 3 };
        }
    }
    Trajectory::from_coords(id, &coords)
}

/// Generates a city dataset per `cfg`.
///
/// # Panics
/// Panics if the configuration is degenerate (zero cardinality is allowed;
/// `min_len` must be ≥ 2 and ≤ `max_len`, the grid must have ≥ 2 nodes).
pub fn city_dataset(cfg: &CityConfig) -> Dataset {
    assert!(cfg.min_len >= 2, "trajectories need at least 2 points");
    assert!(cfg.min_len <= cfg.max_len);
    assert!(
        cfg.extent_deg / cfg.grid_step_deg >= 1.0,
        "grid must have at least 2 nodes per axis"
    );
    assert!((0.0..=1.0).contains(&cfg.route_popularity));
    assert!((0.0..=1.0).contains(&cfg.hotspot_fraction));
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut trajectories: Vec<Trajectory> = Vec::with_capacity(cfg.cardinality);
    for i in 0..cfg.cardinality {
        let replay = !trajectories.is_empty() && rng.gen::<f64>() < cfg.route_popularity;
        let t = if replay {
            // Re-drive a popular route with fresh GPS noise.
            let pool = if cfg.popular_routes == 0 {
                trajectories.len()
            } else {
                cfg.popular_routes.min(trajectories.len())
            };
            let source = &trajectories[rng.gen_range(0..pool)];
            let coords: Vec<(f64, f64)> = source
                .points()
                .iter()
                .map(|p| {
                    (
                        p.x + rng.gen_range(-1.0..1.0) * cfg.gps_noise_deg,
                        p.y + rng.gen_range(-1.0..1.0) * cfg.gps_noise_deg,
                    )
                })
                .collect();
            Trajectory::from_coords(i as u64, &coords)
        } else {
            let len = sample_len(&mut rng, cfg.min_len, cfg.max_len, cfg.avg_len);
            walk(&mut rng, cfg, i as u64, len)
        };
        trajectories.push(t);
    }
    Dataset::new_unchecked(cfg.name.clone(), trajectories)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(n: usize, seed: u64) -> CityConfig {
        CityConfig {
            name: "test-city".into(),
            cardinality: n,
            center: (40.0, 116.0),
            extent_deg: 0.2,
            grid_step_deg: 0.002,
            avg_len: 20.0,
            min_len: 5,
            max_len: 80,
            gps_noise_deg: 0.0001,
            route_popularity: 0.2,
            popular_routes: 0,
            hotspot_fraction: 0.0,
            seed,
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = city_dataset(&small_cfg(50, 7));
        let b = city_dataset(&small_cfg(50, 7));
        assert_eq!(a.trajectories(), b.trajectories());
        let c = city_dataset(&small_cfg(50, 8));
        assert_ne!(a.trajectories(), c.trajectories());
    }

    #[test]
    fn respects_length_bounds_and_mean() {
        let d = city_dataset(&small_cfg(2000, 1));
        let s = d.stats();
        assert_eq!(s.cardinality, 2000);
        assert!(s.min_len >= 5);
        assert!(s.max_len <= 80);
        assert!(
            (s.avg_len - 20.0).abs() < 2.0,
            "mean length {} too far from target 20",
            s.avg_len
        );
    }

    #[test]
    fn points_stay_within_city_extent() {
        let cfg = small_cfg(100, 3);
        let d = city_dataset(&cfg);
        let slack = cfg.gps_noise_deg * 2.0;
        for t in d.trajectories() {
            for p in t.points() {
                assert!((p.x - cfg.center.0).abs() <= cfg.extent_deg / 2.0 + slack);
                assert!((p.y - cfg.center.1).abs() <= cfg.extent_deg / 2.0 + slack);
            }
        }
    }

    #[test]
    fn consecutive_points_move_at_grid_scale() {
        let cfg = small_cfg(50, 11);
        let d = city_dataset(&cfg);
        for t in d.trajectories() {
            for w in t.points().windows(2) {
                let step = w[0].dist(&w[1]);
                assert!(step <= cfg.grid_step_deg * 2.0, "step {step} too large");
            }
        }
    }

    #[test]
    fn endpoints_spread_across_city() {
        // Partitioning needs diverse endpoints: check the first points span
        // a significant fraction of the extent.
        let cfg = small_cfg(500, 13);
        let d = city_dataset(&cfg);
        let mbr = dita_trajectory::Mbr::from_points(d.trajectories().iter().map(|t| t.first()));
        assert!(mbr.max.x - mbr.min.x > cfg.extent_deg * 0.5);
        assert!(mbr.max.y - mbr.min.y > cfg.extent_deg * 0.5);
    }

    #[test]
    fn presets_match_table2_shapes() {
        let b = crate::beijing_like(1500, 42);
        let s = b.stats();
        assert!(s.min_len >= 7 && s.max_len <= 112);
        assert!((s.avg_len - 22.2).abs() < 3.0, "beijing avg {}", s.avg_len);

        let c = crate::chengdu_like(1500, 42);
        let s = c.stats();
        assert!(s.min_len >= 10 && s.max_len <= 209);
        assert!((s.avg_len - 37.4).abs() < 4.0, "chengdu avg {}", s.avg_len);
        // Chengdu trajectories are longer on average than Beijing's.
        assert!(c.stats().avg_len > b.stats().avg_len);
    }
}
