//! End-to-end tests over real sockets: routing, parity with direct
//! library calls, admission shedding, cooperative cancellation
//! (deadline and client disconnect) and graceful shutdown.

use dita_cluster::{Cluster, ClusterConfig, SchedulerConfig};
use dita_core::{knn_batch, search_batch, DitaConfig, SearchOptions};
use dita_distance::DistanceFunction;
use dita_index::{PivotStrategy, TrieConfig};
use dita_obs::json::Value;
use dita_obs::names;
use dita_server::{wire, Server, ServerConfig};
use dita_sql::Engine;
use dita_trajectory::trajectory::figure1_trajectories;
use dita_trajectory::Dataset;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

fn dita_config() -> DitaConfig {
    DitaConfig {
        ng: 2,
        trie: TrieConfig {
            k: 2,
            nl: 2,
            leaf_capacity: 0,
            strategy: PivotStrategy::NeighborDistance,
            cell_side: 2.0,
            ..TrieConfig::default()
        },
    }
}

fn engine() -> Engine {
    let mut e = Engine::new(Cluster::new(ClusterConfig::with_workers(2)), dita_config());
    e.register(
        "taxi",
        Dataset::new("fig1", figure1_trajectories()).unwrap(),
    )
    .unwrap();
    e.register(
        "taxi2",
        Dataset::new("fig1b", figure1_trajectories()).unwrap(),
    )
    .unwrap();
    e
}

fn start(config: ServerConfig) -> Server {
    Server::start(engine(), config).unwrap()
}

/// Minimal blocking HTTP client: one request, full response.
fn call(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    headers: &[(&str, &str)],
) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut extra = String::new();
    for (k, v) in headers {
        extra.push_str(&format!("{k}: {v}\r\n"));
    }
    let req = format!(
        "{method} {path} HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n{extra}connection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> (u16, Vec<u8>) {
    let text = String::from_utf8_lossy(raw);
    let status: u16 = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad response: {text}"));
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("head terminator");
    (status, raw[head_end + 4..].to_vec())
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, Vec<u8>) {
    call(addr, "POST", path, body, &[])
}

/// Reads one counter metric's summed value from the server registry.
fn counter_value(server: &Server, name: &str) -> f64 {
    server
        .obs()
        .registry()
        .map(|r| {
            r.snapshot()
                .into_iter()
                .filter(|s| s.name == name)
                .map(|s| s.value)
                .sum()
        })
        .unwrap_or(0.0)
}

const Q1: &str = "[[1,1],[1,2],[3,2],[4,4],[4,5],[5,5]]";

#[test]
fn routing_health_metrics_and_errors() {
    let server = start(ServerConfig::default());
    let addr = server.addr();

    let (status, body) = call(addr, "GET", "/healthz", "", &[]);
    assert_eq!(status, 200);
    assert_eq!(
        String::from_utf8_lossy(&body).trim(),
        "{\n  \"ok\": true\n}"
    );

    let (status, body) = call(addr, "GET", "/metrics", "", &[]);
    assert_eq!(status, 200);
    let metrics = String::from_utf8_lossy(&body);
    assert!(metrics.contains("dita_server_requests_total"));
    // The ranked-lock layer registers contention series at lock
    // construction, so they are visible (at least at zero) for every
    // `with_obs` lock the server owns.
    assert!(
        metrics.contains("dita_lock_wait_seconds"),
        "lock wait histogram missing"
    );
    assert!(
        metrics.contains("dita_lock_contended_total"),
        "lock contention counter missing"
    );
    assert!(
        metrics.contains("lock=\"server-engine\""),
        "engine lock series missing"
    );

    assert_eq!(call(addr, "GET", "/nope", "", &[]).0, 404);
    assert_eq!(call(addr, "GET", "/search", "", &[]).0, 405);
    assert_eq!(call(addr, "POST", "/healthz", "", &[]).0, 405);
    assert_eq!(post(addr, "/search", "{not json").0, 400);
    assert_eq!(
        post(addr, "/search", "{\"table\": \"taxi\", \"tau\": 1}").0,
        400
    );
    // Unknown table → 404 with the typed message.
    let (status, body) = post(
        addr,
        "/search",
        &format!("{{\"table\": \"ghost\", \"query\": {Q1}, \"tau\": 3}}"),
    );
    assert_eq!(status, 404);
    assert!(String::from_utf8_lossy(&body).contains("unknown table"));
    // Literal NaN is not JSON → rejected at the parse layer.
    assert_eq!(
        post(
            addr,
            "/search",
            &format!("{{\"table\": \"taxi\", \"query\": {Q1}, \"tau\": NaN}}"),
        )
        .0,
        400
    );
    // A non-finite threshold (1e999 overflows to ∞) is unpriceable:
    // its NaN cost is refused by admission control with the typed
    // message, not executed.
    let (status, body) = post(
        addr,
        "/search",
        &format!("{{\"table\": \"taxi\", \"query\": {Q1}, \"tau\": 1e999}}"),
    );
    assert_eq!(status, 400);
    assert!(
        String::from_utf8_lossy(&body).contains("unpriceable"),
        "{}",
        String::from_utf8_lossy(&body)
    );
    server.shutdown().unwrap();
}

#[test]
fn responses_are_byte_identical_to_direct_library_calls() {
    let server = start(ServerConfig::default());
    let addr = server.addr();

    // A reference engine built identically answers directly.
    let mut direct = engine();
    direct.ensure_index("taxi").unwrap();
    direct.ensure_index("taxi2").unwrap();

    // /search parity via the shared wire encoder.
    let (status, body) = post(
        addr,
        "/search",
        &format!("{{\"table\": \"taxi\", \"query\": {Q1}, \"tau\": 3}}"),
    );
    assert_eq!(status, 200);
    let q: Vec<_> = figure1_trajectories()[0].points().to_vec();
    let system = direct.system("taxi").unwrap();
    let (results, _) = search_batch(
        system,
        &[q.as_slice()],
        &[3.0],
        &DistanceFunction::Dtw,
        SearchOptions::default(),
    );
    let expect = wire::body_bytes(&wire::hits_value(&results[0]));
    assert_eq!(body, expect, "search response must be byte-identical");

    // /knn parity.
    let (status, body) = post(
        addr,
        "/knn",
        &format!("{{\"table\": \"taxi\", \"query\": {Q1}, \"k\": 3}}"),
    );
    assert_eq!(status, 200);
    let knn = knn_batch(system, &[q.as_slice()], 3, &DistanceFunction::Dtw);
    let expect = wire::body_bytes(&wire::hits_value(&knn[0].0));
    assert_eq!(body, expect, "knn response must be byte-identical");

    // /join parity.
    let (status, body) = post(
        addr,
        "/join",
        "{\"left\": \"taxi\", \"right\": \"taxi2\", \"tau\": 3}",
    );
    assert_eq!(status, 200);
    let (pairs, _) = dita_core::join(
        direct.system("taxi").unwrap(),
        direct.system("taxi2").unwrap(),
        3.0,
        &DistanceFunction::Dtw,
        &dita_core::JoinOptions::default(),
    );
    let expect = wire::body_bytes(&wire::pairs_value(&pairs));
    assert_eq!(body, expect, "join response must be byte-identical");

    // /sql parity over a mixed script.
    let stmts = [
        "SHOW TABLES",
        "SELECT * FROM taxi WHERE DTW(taxi, TRAJECTORY((1,1),(1,2),(3,2))) <= 3",
    ];
    let body_json = format!(
        "{{\"statements\": [\"{}\", \"{}\"]}}",
        stmts[0],
        stmts[1].replace('"', "\\\"")
    );
    let (status, body) = post(addr, "/sql", &body_json);
    assert_eq!(status, 200);
    let results = direct.execute_batch(&stmts).unwrap();
    let expect = wire::body_bytes(&wire::sql_results_value(&results));
    assert_eq!(body, expect, "sql response must be byte-identical");

    server.shutdown().unwrap();
}

#[test]
fn ingest_write_path_flows_through_http() {
    let server = start(ServerConfig::default());
    let addr = server.addr();

    let (status, body) = post(
        addr,
        "/insert",
        "{\"table\": \"taxi\", \"rows\": [{\"id\": 9, \"points\": [[50,50],[51,51]]}]}",
    );
    assert_eq!(status, 200);
    assert!(String::from_utf8_lossy(&body).contains("inserted 1 row(s) into taxi"));

    // The write is visible to a search through the same server.
    let (status, body) = post(
        addr,
        "/search",
        "{\"table\": \"taxi\", \"query\": [[50,50],[51,51]], \"tau\": 0}",
    );
    assert_eq!(status, 200);
    let v = Value::parse(&String::from_utf8_lossy(&body)).unwrap();
    let hits = match v.get("hits") {
        Some(Value::Arr(items)) => items.clone(),
        other => panic!("{other:?}"),
    };
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].get("id"), Some(&Value::Num(9.0)));

    assert_eq!(post(addr, "/flush", "{\"table\": \"taxi\"}").0, 200);
    assert_eq!(post(addr, "/compact", "{\"table\": \"taxi\"}").0, 200);
    let (status, body) = post(addr, "/delete", "{\"table\": \"taxi\", \"id\": 9}");
    assert_eq!(status, 200);
    assert!(String::from_utf8_lossy(&body).contains("deleted id 9 from taxi"));

    // Finite-coordinate validation surfaces as 400.
    let (status, _) = post(
        addr,
        "/insert",
        "{\"table\": \"taxi\", \"rows\": [{\"id\": 10, \"points\": [[NaN,0]]}]}",
    );
    assert_eq!(status, 400);
    server.shutdown().unwrap();
}

#[test]
fn overload_sheds_with_429_and_bounded_depth() {
    // More connection threads than queue slots, so the overflowing
    // request still finds a free worker while four sit waiting.
    let server = start(ServerConfig {
        http_workers: 8,
        scheduler: SchedulerConfig {
            queue_capacity: 4,
            ..SchedulerConfig::default()
        },
        ..ServerConfig::default()
    });
    let addr = server.addr();
    server.pause_dispatch();

    // Fill the queue with waiting clients, then overflow it.
    let mut waiting = Vec::new();
    for _ in 0..4 {
        let h = thread::spawn(move || {
            post(
                addr,
                "/search",
                &format!("{{\"table\": \"taxi\", \"query\": {Q1}, \"tau\": 3}}"),
            )
        });
        waiting.push(h);
    }
    let t0 = Instant::now();
    while server.queue_depth() < 4 && t0.elapsed() < Duration::from_secs(5) {
        thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(server.queue_depth(), 4);

    let (status, body) = post(
        addr,
        "/search",
        &format!("{{\"table\": \"taxi\", \"query\": {Q1}, \"tau\": 3}}"),
    );
    assert_eq!(status, 429, "{}", String::from_utf8_lossy(&body));
    let v = Value::parse(&String::from_utf8_lossy(&body)).unwrap();
    assert_eq!(v.get("queue_depth"), Some(&Value::Num(4.0)));
    assert_eq!(v.get("retryable"), Some(&Value::Bool(true)));
    assert!(server.queue_depth() <= 4, "depth stays bounded");

    server.resume_dispatch();
    for h in waiting {
        let (status, _) = h.join().unwrap();
        assert_eq!(status, 200);
    }
    let counters = server.scheduler_counters();
    assert!(counters.shed >= 1);
    assert!(counter_value(&server, names::QUERIES_SHED_TOTAL) >= 1.0);
    server.shutdown().unwrap();
}

#[test]
fn deadline_exceeded_cancels_and_counts() {
    let server = start(ServerConfig::default());
    let addr = server.addr();
    server.pause_dispatch();

    let (status, body) = call(
        addr,
        "POST",
        "/search",
        &format!("{{\"table\": \"taxi\", \"query\": {Q1}, \"tau\": 3}}"),
        &[("x-dita-deadline-ms", "60")],
    );
    assert_eq!(status, 504, "{}", String::from_utf8_lossy(&body));
    assert!(String::from_utf8_lossy(&body).contains("deadline exceeded"));

    // The entry is reaped (counted cancelled or expired) once dispatch
    // touches its class again.
    server.resume_dispatch();
    let t0 = Instant::now();
    let counters = loop {
        let c = server.scheduler_counters();
        if c.cancelled + c.expired >= 1 || t0.elapsed() > Duration::from_secs(5) {
            break c;
        }
        thread::sleep(Duration::from_millis(5));
    };
    assert!(
        counters.cancelled + counters.expired >= 1,
        "timed-out query must be reaped: {counters:?}"
    );
    assert_eq!(
        counters.admitted,
        counters.dispatched + counters.cancelled + counters.expired,
        "scheduler invariant: {counters:?}"
    );
    assert!(
        counter_value(&server, names::QUERIES_CANCELLED_TOTAL) >= 1.0,
        "cancellations must be visible on the wire metric"
    );
    server.shutdown().unwrap();
}

#[test]
fn client_disconnect_cancels_queued_query() {
    let server = start(ServerConfig::default());
    let addr = server.addr();
    server.pause_dispatch();

    // Send a request, then hang up before the answer.
    let body = format!("{{\"table\": \"taxi\", \"query\": {Q1}, \"tau\": 3}}");
    let mut stream = TcpStream::connect(addr).unwrap();
    let req = format!(
        "POST /search HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).unwrap();
    let t0 = Instant::now();
    while server.queue_depth() < 1 && t0.elapsed() < Duration::from_secs(5) {
        thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(server.queue_depth(), 1);
    drop(stream);

    // The connection thread notices the hangup at its poll cadence and
    // cancels the token; give it a few poll periods, then let dispatch
    // reap the entry instead of running it.
    let t0 = Instant::now();
    while server.inflight() > 0 && t0.elapsed() < Duration::from_secs(5) {
        thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(
        server.inflight(),
        0,
        "worker must abandon the hung-up request"
    );
    server.resume_dispatch();
    let t0 = Instant::now();
    let counters = loop {
        let c = server.scheduler_counters();
        if c.cancelled >= 1 || t0.elapsed() > Duration::from_secs(5) {
            break c;
        }
        thread::sleep(Duration::from_millis(5));
    };
    assert!(
        counters.cancelled >= 1,
        "disconnect must cancel the queued query: {counters:?}"
    );
    assert_eq!(counters.dispatched, 0, "cancelled query must not run");
    assert_eq!(
        counters.admitted,
        counters.dispatched + counters.cancelled + counters.expired
    );
    assert!(counter_value(&server, names::QUERIES_CANCELLED_TOTAL) >= 1.0);
    server.shutdown().unwrap();
}

#[test]
fn graceful_shutdown_drains_in_flight_query_and_flushes() {
    let server = start(ServerConfig {
        drain_deadline: Duration::from_secs(10),
        ..ServerConfig::default()
    });
    let addr = server.addr();
    let handle = server.handle();

    // Park a query in the queue, start shutdown, then let dispatch
    // resume *while the server is draining*: the in-flight request
    // must complete with 200, not be dropped.
    server.pause_dispatch();
    let client = thread::spawn(move || {
        post(
            addr,
            "/search",
            &format!("{{\"table\": \"taxi\", \"query\": {Q1}, \"tau\": 3}}"),
        )
    });
    let t0 = Instant::now();
    while server.queue_depth() < 1 && t0.elapsed() < Duration::from_secs(5) {
        thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(server.queue_depth(), 1);
    let resumer = thread::spawn(move || {
        thread::sleep(Duration::from_millis(100));
        handle.resume_dispatch();
    });
    let engine = server.shutdown().expect("engine returned after shutdown");
    resumer.join().unwrap();
    let (status, _) = client.join().unwrap();
    assert_eq!(status, 200, "draining shutdown must answer in-flight work");
    // Shutdown flushed every table: no pending deltas anywhere.
    for table in ["taxi", "taxi2"] {
        if let Some(sys) = engine.system(table) {
            assert!(!sys.deltas().has_deltas(), "{table} must be flushed");
        }
    }
}

#[test]
fn shutdown_drain_deadline_fails_stragglers_with_503() {
    let server = start(ServerConfig {
        drain_deadline: Duration::from_millis(150),
        ..ServerConfig::default()
    });
    let addr = server.addr();
    server.pause_dispatch();

    // A queued query with a long client deadline outlives the drain
    // window (dispatch stays paused), so shutdown must fail it loudly.
    let client = thread::spawn(move || {
        call(
            addr,
            "POST",
            "/search",
            &format!("{{\"table\": \"taxi\", \"query\": {Q1}, \"tau\": 3}}"),
            &[("x-dita-deadline-ms", "60000")],
        )
    });
    let t0 = Instant::now();
    while server.queue_depth() < 1 && t0.elapsed() < Duration::from_secs(5) {
        thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(server.queue_depth(), 1);
    server.shutdown().unwrap();
    let (status, body) = client.join().unwrap();
    assert_eq!(status, 503, "{}", String::from_utf8_lossy(&body));
    assert!(String::from_utf8_lossy(&body).contains("draining"));
}

#[test]
fn new_requests_after_stop_get_503_and_inserts_survive_shutdown_flush() {
    // Writes acknowledged before shutdown are in the returned engine,
    // flushed (satellite: flush-on-shutdown).
    let server = start(ServerConfig::default());
    let addr = server.addr();
    // Build the index first so the insert lands in the delta path.
    assert_eq!(
        post(
            addr,
            "/sql",
            "{\"sql\": \"CREATE INDEX i ON taxi USE TRIE\"}"
        )
        .0,
        200
    );
    assert_eq!(
        post(
            addr,
            "/insert",
            "{\"table\": \"taxi\", \"rows\": [{\"id\": 77, \"points\": [[9,9]]}]}",
        )
        .0,
        200
    );
    let engine = server.shutdown().expect("engine returned");
    let sys = engine.system("taxi").expect("index kept");
    assert!(
        !sys.deltas().has_deltas(),
        "shutdown must flush pending deltas"
    );
    let live: Vec<u64> = engine
        .dataset("taxi")
        .unwrap()
        .trajectories()
        .iter()
        .map(|t| t.id)
        .collect();
    assert!(live.contains(&77), "acknowledged insert must survive");
}
