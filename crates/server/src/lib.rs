//! `dita-server`: the HTTP query service over the embedded DITA engine.
//!
//! The paper's system runs inside Spark; this crate is the repo's
//! stand-in for that serving surface — a dependency-free HTTP/1.1
//! service (std `TcpListener`, a sized thread pool, hand-rolled
//! framing) that exposes the whole query and write surface:
//!
//! | endpoint        | body                                             | answers |
//! |-----------------|--------------------------------------------------|---------|
//! | `POST /sql`     | `{"sql": "..."} \| {"statements": [...]}`        | `{"results": [...]}` |
//! | `POST /search`  | `{"table", "query": [[x,y],..], "tau", "func"?}` | `{"hits": [...]}` |
//! | `POST /knn`     | `{"table", "query", "k", "func"?}`               | `{"hits": [...]}` |
//! | `POST /join`    | `{"left", "right", "tau", "func"?}`              | `{"pairs": [...]}` |
//! | `POST /insert`  | `{"table", "rows": [{"id", "points"}]}`          | `{"ack": "..."}` |
//! | `POST /delete`  | `{"table", "id"}`                                | `{"ack": "..."}` |
//! | `POST /flush`   | `{"table"}`                                      | `{"ack": "..."}` |
//! | `POST /compact` | `{"table"}`                                      | `{"ack": "..."}` |
//! | `GET /metrics`  | —                                                | Prometheus text |
//! | `GET /healthz`  | —                                                | `{"ok": true}` |
//!
//! Every query request passes the bounded [`dita_cluster::QueryScheduler`]:
//! a full queue sheds with `429` (+ observed depth), an unpriceable
//! (NaN-cost) query is refused with `400`, and each admitted request
//! carries a deadline (`x-dita-deadline-ms` header or the configured
//! default) that cancels it cooperatively — as does a client
//! disconnect. See `SERVER.md` for the protocol and `serve_smoke`
//! (dita-bench) for the load harness.

pub mod http;
pub mod server;
pub mod wire;

pub use server::{Server, ServerConfig, ServerHandle};
