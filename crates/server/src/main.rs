//! Demo binary: serve a synthetic dataset over HTTP.
//!
//! ```text
//! dita-server [ADDR]        # default 127.0.0.1:7878
//! ```
//!
//! Registers one table `taxi` (the paper's Figure 1 trajectories) and
//! serves until the process is killed. Meant for manual poking; the
//! benchmark harness (`serve_smoke`) embeds [`dita_server::Server`]
//! directly instead.

use dita_cluster::{Cluster, ClusterConfig};
use dita_core::DitaConfig;
use dita_server::{Server, ServerConfig};
use dita_sql::Engine;
use dita_trajectory::trajectory::figure1_trajectories;
use dita_trajectory::Dataset;

fn main() {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let mut engine = Engine::new(
        Cluster::new(ClusterConfig::with_workers(4)),
        DitaConfig::default(),
    );
    engine
        .register(
            "taxi",
            Dataset::new("fig1", figure1_trajectories()).expect("valid dataset"),
        )
        .expect("fresh catalog");
    let config = ServerConfig {
        addr,
        ..ServerConfig::default()
    };
    let server = Server::start(engine, config).expect("bind server");
    println!("dita-server listening on http://{}", server.addr());
    println!("try: curl -s http://{}/healthz", server.addr());
    loop {
        std::thread::park();
    }
}
