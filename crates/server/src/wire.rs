//! The service's JSON wire format.
//!
//! Every body the server emits is produced here, and the encoders are
//! `pub` so the `serve_smoke` harness can apply them to *direct*
//! library results and assert byte-identical responses — the parity
//! check that pins "the HTTP layer adds transport, not semantics".
//!
//! Bodies are the pretty form of [`dita_obs::json::Value`] plus a
//! trailing newline; field order is fixed by construction order, so
//! encoding is deterministic.

use dita_obs::json::{Obj, ToJson, Value};
use dita_sql::{QueryResult, SqlError};
use dita_trajectory::{Trajectory, TrajectoryId};

/// Serializes a body value to its on-the-wire bytes.
pub fn body_bytes(v: &Value) -> Vec<u8> {
    let mut s = v.pretty();
    s.push('\n');
    s.into_bytes()
}

/// `{"hits": [{"id": .., "distance": ..}, ...]}` — the `/search`,
/// `/knn` and indexed-search SQL result shape.
pub fn hits_value(hits: &[(TrajectoryId, f64)]) -> Value {
    Obj::new().field("hits", &encode_hits(hits)).build()
}

fn encode_hits(hits: &[(TrajectoryId, f64)]) -> Vec<Value> {
    hits.iter()
        .map(|&(id, distance)| {
            Obj::new()
                .field("id", &id)
                .field("distance", &distance)
                .build()
        })
        .collect()
}

/// `{"pairs": [{"left": .., "right": .., "distance": ..}, ...]}` — the
/// `/join` result shape.
pub fn pairs_value(pairs: &[(TrajectoryId, TrajectoryId, f64)]) -> Value {
    let encoded: Vec<Value> = pairs
        .iter()
        .map(|&(left, right, distance)| {
            Obj::new()
                .field("left", &left)
                .field("right", &right)
                .field("distance", &distance)
                .build()
        })
        .collect();
    Obj::new().field("pairs", &encoded).build()
}

/// `{"ack": "..."}` — the ingest write path's acknowledgement shape.
pub fn ack_value(message: &str) -> Value {
    Obj::new().field("ack", &message).build()
}

/// One SQL statement's result, tagged by variant.
pub fn query_result_value(r: &QueryResult) -> Value {
    match r {
        QueryResult::Rows(rows) => Obj::new()
            .field("type", &"rows")
            .field(
                "rows",
                &rows.iter().map(trajectory_value).collect::<Vec<_>>(),
            )
            .build(),
        QueryResult::SearchHits(hits) => Obj::new()
            .field("type", &"hits")
            .field("hits", &encode_hits(hits))
            .build(),
        QueryResult::JoinPairs(pairs) => {
            let encoded: Vec<Value> = pairs
                .iter()
                .map(|&(left, right, distance)| {
                    Obj::new()
                        .field("left", &left)
                        .field("right", &right)
                        .field("distance", &distance)
                        .build()
                })
                .collect();
            Obj::new()
                .field("type", &"pairs")
                .field("pairs", &encoded)
                .build()
        }
        QueryResult::Ack(message) => Obj::new()
            .field("type", &"ack")
            .field("ack", message)
            .build(),
        QueryResult::TableNames(names) => Obj::new()
            .field("type", &"tables")
            .field("tables", names)
            .build(),
        QueryResult::Plan(plan) => Obj::new()
            .field("type", &"plan")
            .field("plan", plan)
            .build(),
    }
}

/// `{"results": [...]}` — the `/sql` response over a statement batch.
pub fn sql_results_value(results: &[QueryResult]) -> Value {
    let encoded: Vec<Value> = results.iter().map(query_result_value).collect();
    Obj::new().field("results", &encoded).build()
}

fn trajectory_value(t: &Trajectory) -> Value {
    let points: Vec<Value> = t
        .points()
        .iter()
        .map(|p| Value::Arr(vec![p.x.to_json(), p.y.to_json()]))
        .collect();
    Obj::new()
        .field("id", &t.id)
        .field("points", &Value::Arr(points))
        .build()
}

/// An error body plus the HTTP status it travels with.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorBody {
    /// HTTP status code.
    pub status: u16,
    /// The JSON body.
    pub body: Value,
}

impl ErrorBody {
    /// A plain error body from a status and message.
    pub fn new(status: u16, message: impl Into<String>) -> ErrorBody {
        ErrorBody {
            status,
            body: Obj::new().field("error", &message.into()).build(),
        }
    }
}

/// Maps a front-end error to its HTTP shape. Admission refusals carry
/// their context fields so clients can implement backoff without
/// parsing the message text.
pub fn error_of(err: &SqlError) -> ErrorBody {
    let status = match err {
        SqlError::UnknownTable { .. } => 404,
        SqlError::DuplicateTable { .. } => 409,
        SqlError::QueueFull { .. } => 429,
        // Includes NaN-priced (unpriceable) queries: a client input
        // problem, not server overload.
        SqlError::OverBudget { .. } => 400,
        SqlError::Lex { .. } | SqlError::Parse { .. } | SqlError::Unsupported { .. } => 400,
    };
    let obj = Obj::new()
        .field("error", &err.to_string())
        .field("retryable", &err.is_retryable());
    let obj = match err {
        SqlError::QueueFull { depth } => obj.field("queue_depth", depth),
        SqlError::OverBudget { cost } if cost.is_finite() => obj.field("cost", cost),
        _ => obj,
    };
    ErrorBody {
        status,
        body: obj.build(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoders_are_deterministic_and_tagged() {
        let hits = vec![(1u64, 0.5f64), (2, 1.25)];
        let body = String::from_utf8(body_bytes(&hits_value(&hits))).unwrap();
        assert!(body.contains("\"hits\""));
        assert!(body.ends_with('\n'));
        assert_eq!(body_bytes(&hits_value(&hits)), body.as_bytes());

        let sql = sql_results_value(&[QueryResult::Ack("done".into())]);
        let first = match sql.get("results") {
            Some(Value::Arr(items)) => &items[0],
            other => panic!("{other:?}"),
        };
        assert_eq!(first.get("type"), Some(&Value::Str("ack".into())));
        assert_eq!(first.get("ack"), Some(&Value::Str("done".into())));
    }

    #[test]
    fn error_status_mapping() {
        assert_eq!(
            error_of(&SqlError::UnknownTable { name: "x".into() }).status,
            404
        );
        assert_eq!(error_of(&SqlError::QueueFull { depth: 7 }).status, 429);
        assert_eq!(
            error_of(&SqlError::OverBudget { cost: f64::NAN }).status,
            400
        );
        assert_eq!(
            error_of(&SqlError::Parse {
                message: "m".into()
            })
            .status,
            400
        );
        let shed = error_of(&SqlError::QueueFull { depth: 7 });
        assert_eq!(shed.body.get("queue_depth"), Some(&Value::Num(7.0)));
        assert_eq!(shed.body.get("retryable"), Some(&Value::Bool(true)));
    }
}
