//! Minimal HTTP/1.1 framing over a [`TcpStream`].
//!
//! `dita-server` carries small JSON bodies over plain sockets, so this
//! module implements exactly the slice of RFC 9112 the service needs:
//! request-line + headers + `Content-Length` bodies, keep-alive by
//! default, `Connection: close` honored, hard caps on head and body
//! sizes. No chunked transfer, no TLS, no HTTP/2 — a client that needs
//! them is out of scope for an in-memory analytics demo.
//!
//! Everything here is on the per-connection serving path, so it is
//! panic-free by policy (dita-lint L1 scopes this crate): malformed
//! input surfaces as [`ParseError`] (answered with `400` and a close),
//! never as a panic that would take the connection thread down.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Largest accepted request head (request line + headers), bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Read chunk size; also bounds how often the stop flag is polled.
const READ_CHUNK: usize = 4096;

/// How a request failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The request line or a header line is malformed.
    Malformed(&'static str),
    /// The head exceeded [`MAX_HEAD_BYTES`].
    HeadTooLarge,
    /// The declared `Content-Length` exceeds the server's body cap.
    BodyTooLarge(usize),
}

impl ParseError {
    /// The HTTP status this parse failure is answered with.
    pub fn status(&self) -> u16 {
        match self {
            ParseError::Malformed(_) => 400,
            ParseError::HeadTooLarge => 431,
            ParseError::BodyTooLarge(_) => 413,
        }
    }

    /// Human-readable description for the error body.
    pub fn message(&self) -> String {
        match self {
            ParseError::Malformed(what) => format!("malformed request: {what}"),
            ParseError::HeadTooLarge => {
                format!("request head exceeds {MAX_HEAD_BYTES} bytes")
            }
            ParseError::BodyTooLarge(cap) => format!("request body exceeds {cap} bytes"),
        }
    }
}

/// What one read attempt on a connection produced.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request.
    Request(Request),
    /// The peer closed (or the server is stopping and the connection
    /// is idle); nothing more to serve.
    Closed,
    /// The request could not be parsed; answer with
    /// [`ParseError::status`] and close.
    Bad(ParseError),
}

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method token as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Request target, e.g. `/search`.
    pub path: String,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to drop keep-alive.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// One serving-side connection: the socket plus a carry-over buffer so
/// back-to-back keep-alive requests parse without re-reading.
pub struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
    max_body: usize,
}

impl Conn {
    /// Wraps an accepted stream. The read timeout bounds how long an
    /// idle keep-alive connection can keep its thread from noticing a
    /// server shutdown.
    pub fn new(stream: TcpStream, max_body: usize, poll: Duration) -> Conn {
        let _ = stream.set_read_timeout(Some(poll));
        let _ = stream.set_nodelay(true);
        Conn {
            stream,
            buf: Vec::new(),
            max_body,
        }
    }

    /// The underlying stream (for disconnect probing and writes).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Reads the next request. Blocks, polling `should_stop` at the
    /// read timeout cadence; an idle connection returns
    /// [`ReadOutcome::Closed`] once `should_stop` is true.
    pub fn read_request(&mut self, should_stop: &dyn Fn() -> bool) -> io::Result<ReadOutcome> {
        // Accumulate until the head terminator is buffered.
        let head_end = loop {
            if let Some(at) = find_subslice(&self.buf, b"\r\n\r\n") {
                break at;
            }
            if self.buf.len() > MAX_HEAD_BYTES {
                return Ok(ReadOutcome::Bad(ParseError::HeadTooLarge));
            }
            match self.fill(should_stop)? {
                Fill::Data => {}
                Fill::Eof => {
                    return if self.buf.is_empty() {
                        Ok(ReadOutcome::Closed)
                    } else {
                        Ok(ReadOutcome::Bad(ParseError::Malformed(
                            "connection closed mid-request",
                        )))
                    }
                }
                Fill::Stopped => return Ok(ReadOutcome::Closed),
            }
        };
        let head = self.buf[..head_end].to_vec();
        let mut rest = self.buf.split_off(head_end + 4);
        std::mem::swap(&mut self.buf, &mut rest);

        let (method, path, headers) = match parse_head(&head) {
            Ok(parsed) => parsed,
            Err(e) => return Ok(ReadOutcome::Bad(e)),
        };
        let content_length = match header_of(&headers, "content-length") {
            None => 0usize,
            Some(v) => match v.trim().parse::<usize>() {
                Ok(n) => n,
                Err(_) => {
                    return Ok(ReadOutcome::Bad(ParseError::Malformed(
                        "unparsable content-length",
                    )))
                }
            },
        };
        if content_length > self.max_body {
            return Ok(ReadOutcome::Bad(ParseError::BodyTooLarge(self.max_body)));
        }
        while self.buf.len() < content_length {
            match self.fill(should_stop)? {
                Fill::Data => {}
                Fill::Eof | Fill::Stopped => {
                    return Ok(ReadOutcome::Bad(ParseError::Malformed(
                        "connection closed mid-body",
                    )))
                }
            }
        }
        let mut after = self.buf.split_off(content_length);
        std::mem::swap(&mut self.buf, &mut after);
        Ok(ReadOutcome::Request(Request {
            method,
            path,
            headers,
            body: after,
        }))
    }

    /// One chunk into the buffer, honoring the poll timeout.
    fn fill(&mut self, should_stop: &dyn Fn() -> bool) -> io::Result<Fill> {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return Ok(Fill::Eof),
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    return Ok(Fill::Data);
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    // Only an *idle* connection may give up on stop; a
                    // half-received request keeps waiting for its tail.
                    if should_stop() && self.buf.is_empty() {
                        return Ok(Fill::Stopped);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Writes a response; `keep_alive: false` advertises the close.
    pub fn write_response(
        &mut self,
        status: u16,
        content_type: &str,
        body: &[u8],
        keep_alive: bool,
    ) -> io::Result<()> {
        let head = format!(
            "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\n\
             content-length: {len}\r\nconnection: {conn}\r\n\r\n",
            reason = reason_of(status),
            len = body.len(),
            conn = if keep_alive { "keep-alive" } else { "close" },
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)?;
        self.stream.flush()
    }

    /// Whether the peer has hung up (half-closed its write side or
    /// reset). Non-destructive: uses `MSG_PEEK`, so pipelined bytes are
    /// left for the next [`Conn::read_request`].
    pub fn client_gone(&self) -> bool {
        let mut probe = [0u8; 1];
        if self.stream.set_nonblocking(true).is_err() {
            return true;
        }
        let gone = match self.stream.peek(&mut probe) {
            Ok(0) => true,
            Ok(_) => false,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                false
            }
            Err(_) => true,
        };
        let _ = self.stream.set_nonblocking(false);
        gone
    }
}

enum Fill {
    Data,
    Eof,
    Stopped,
}

/// Method, path and lowercased headers of one request head.
type ParsedHead = (String, String, Vec<(String, String)>);

/// Parses the request line + header block (no trailing `\r\n\r\n`).
fn parse_head(head: &[u8]) -> Result<ParsedHead, ParseError> {
    let text = std::str::from_utf8(head).map_err(|_| ParseError::Malformed("head is not UTF-8"))?;
    let mut lines = text.split("\r\n");
    let request_line = lines
        .next()
        .ok_or(ParseError::Malformed("empty request line"))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or(ParseError::Malformed("missing method"))?;
    let path = parts
        .next()
        .filter(|p| p.starts_with('/'))
        .ok_or(ParseError::Malformed("missing request target"))?;
    let version = parts
        .next()
        .ok_or(ParseError::Malformed("missing HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Malformed("unsupported HTTP version"));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(ParseError::Malformed("header without a colon"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok((method.to_string(), path.to_string(), headers))
}

fn header_of<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack
        .windows(needle.len())
        .position(|window| window == needle)
}

/// Canonical reason phrase for the statuses this server emits.
pub fn reason_of(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::thread;

    fn pair() -> (TcpStream, Conn) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = thread::spawn(move || TcpStream::connect(addr).unwrap());
        let (served, _) = listener.accept().unwrap();
        let conn = Conn::new(served, 1024, Duration::from_millis(20));
        (client.join().unwrap(), conn)
    }

    #[test]
    fn parses_request_with_body_and_keep_alive_reuse() {
        let (mut client, mut conn) = pair();
        client
            .write_all(
                b"POST /search HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd\
                  GET /healthz HTTP/1.1\r\n\r\n",
            )
            .unwrap();
        let never = || false;
        let r = match conn.read_request(&never).unwrap() {
            ReadOutcome::Request(r) => r,
            other => panic!("{other:?}"),
        };
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/search");
        assert_eq!(r.header("host"), Some("x"));
        assert_eq!(r.body, b"abcd");
        assert!(!r.wants_close());
        // The pipelined second request parses from the carry-over buffer.
        let r2 = match conn.read_request(&never).unwrap() {
            ReadOutcome::Request(r) => r,
            other => panic!("{other:?}"),
        };
        assert_eq!((r2.method.as_str(), r2.path.as_str()), ("GET", "/healthz"));
        assert!(r2.body.is_empty());
        // Clean close afterwards.
        drop(client);
        assert!(matches!(
            conn.read_request(&never).unwrap(),
            ReadOutcome::Closed
        ));
    }

    #[test]
    fn malformed_and_oversized_requests_are_rejected_not_panicked() {
        let (mut client, mut conn) = pair();
        client.write_all(b"NONSENSE\r\n\r\n").unwrap();
        match conn.read_request(&|| false).unwrap() {
            ReadOutcome::Bad(e) => assert_eq!(e.status(), 400),
            other => panic!("{other:?}"),
        }
        // Body beyond the cap → 413 before reading it.
        let (mut client, mut conn) = pair();
        client
            .write_all(b"POST /sql HTTP/1.1\r\nContent-Length: 9999\r\n\r\n")
            .unwrap();
        match conn.read_request(&|| false).unwrap() {
            ReadOutcome::Bad(e) => assert_eq!(e.status(), 413),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn idle_connection_yields_closed_on_stop() {
        let (_client, mut conn) = pair();
        let outcome = conn.read_request(&|| true).unwrap();
        assert!(matches!(outcome, ReadOutcome::Closed));
    }

    #[test]
    fn response_writing_frames_status_and_length() {
        let (mut client, mut conn) = pair();
        conn.write_response(429, "application/json", b"{\"e\":1}", true)
            .unwrap();
        drop(conn);
        let mut got = String::new();
        client.read_to_string(&mut got).unwrap();
        assert!(
            got.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{got}"
        );
        assert!(got.contains("content-length: 7"));
        assert!(got.ends_with("{\"e\":1}"));
    }
}
