//! The HTTP query service.
//!
//! Architecture (all std, no external dependencies):
//!
//! * an **accept thread** owns the [`TcpListener`] and hands accepted
//!   sockets to a bounded hand-off queue; when the queue is full the
//!   connection is refused with `503` (counted in
//!   `dita_server_connections_refused_total`, written outside the
//!   queue lock) instead of queueing unboundedly;
//! * a sized pool of **connection threads** parses requests
//!   ([`crate::http`]), prices and submits each query to the shared
//!   [`QueryScheduler`] (shed → `429`, unpriceable → `400`), then waits
//!   on the reply slot while watching the client socket and the
//!   request deadline — both a disconnect and a timeout cancel the
//!   queued query cooperatively via its [`CancelToken`];
//! * one **dispatcher thread** owns the [`Engine`] and drains the
//!   scheduler batch by batch: compatible searches run through
//!   `search_batch`, kNN through `knn_batch`, SQL scripts through
//!   `Engine::execute_batch`, joins and ingest writes per job. Each
//!   dispatched batch runs under a `server-request` span, so the
//!   existing operator spans (`search-batch`, `knn-batch`, `join`,
//!   `ingest`) nest under the service layer in the trace tree.
//!
//! Graceful shutdown ([`Server::shutdown`]) stops accepting, drains
//! in-flight work bounded by [`ServerConfig::drain_deadline`] (a
//! condvar wait notified as requests retire, so drain latency is not
//! quantized to a poll interval), answers anything still queued with
//! `503`, joins every thread and flushes all tables' pending deltas
//! before handing the engine back.
//!
//! Every lock here is a `dita_obs::sync` ordered wrapper with a rank
//! from the CONCURRENCY.md table (`server-engine` < `server-accept-
//! queue` < `server-dispatch-work` < `server-drain` < `server-reply`),
//! so misordered nesting fails fast under debug assertions and
//! contention shows up in `/metrics`.

use crate::http::{Conn, ReadOutcome, Request};
use crate::wire::{self, ErrorBody};
use dita_cluster::{CancelToken, QueryBatch, QueryScheduler, SchedulerConfig, SchedulerCounters};
use dita_core::{join, knn_batch, price_query, search_batch, JoinOptions, SearchOptions};
use dita_distance::DistanceFunction;
use dita_obs::json::Value;
use dita_obs::sync::locks;
use dita_obs::{names, Obs, OrderedCondvar, OrderedMutex};
use dita_sql::{Engine, SqlError};
use dita_trajectory::{Point, TrajectoryId};
use std::collections::VecDeque;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Tunables for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (see [`Server::addr`]).
    pub addr: String,
    /// Connection-serving threads.
    pub http_workers: usize,
    /// Accepted-socket handoff queue; beyond it connections are refused.
    pub accept_backlog: usize,
    /// Admission control bounds, shared by every endpoint.
    pub scheduler: SchedulerConfig,
    /// Per-request deadline when the client sends no
    /// `x-dita-deadline-ms` header.
    pub default_deadline: Duration,
    /// How long [`Server::shutdown`] lets in-flight work finish before
    /// failing the remainder with `503`.
    pub drain_deadline: Duration,
    /// Largest accepted request body, bytes.
    pub max_body_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            http_workers: 4,
            accept_backlog: 64,
            scheduler: SchedulerConfig::default(),
            default_deadline: Duration::from_secs(10),
            drain_deadline: Duration::from_secs(5),
            max_body_bytes: 1 << 20,
        }
    }
}

/// Cadence for reply polling, disconnect probing and stop checks.
const POLL: Duration = Duration::from_millis(5);

/// One admitted query, owned by the scheduler until dispatch.
struct Job {
    kind: JobKind,
    reply: Arc<Reply>,
}

enum JobKind {
    Search {
        table: String,
        query: Vec<Point>,
        tau: f64,
        func: DistanceFunction,
    },
    Knn {
        table: String,
        query: Vec<Point>,
        k: usize,
        func: DistanceFunction,
    },
    Join {
        left: String,
        right: String,
        tau: f64,
        func: DistanceFunction,
    },
    Sql {
        statements: Vec<String>,
    },
    Insert {
        table: String,
        rows: Vec<(TrajectoryId, Vec<Point>)>,
    },
    Delete {
        table: String,
        id: TrajectoryId,
    },
    Flush {
        table: String,
    },
    Compact {
        table: String,
    },
}

impl JobKind {
    /// The endpoint this job arrived through (metric label and span tag).
    fn endpoint(&self) -> &'static str {
        match self {
            JobKind::Search { .. } => "/search",
            JobKind::Knn { .. } => "/knn",
            JobKind::Join { .. } => "/join",
            JobKind::Sql { .. } => "/sql",
            JobKind::Insert { .. } => "/insert",
            JobKind::Delete { .. } => "/delete",
            JobKind::Flush { .. } => "/flush",
            JobKind::Compact { .. } => "/compact",
        }
    }
}

/// A one-shot result slot the connection thread waits on. The
/// dispatcher fills it while still holding the engine lock
/// (`server-engine` 10 < `server-reply` 32), which is why the reply
/// slot ranks innermost of the server locks.
struct Reply {
    slot: OrderedMutex<Option<Result<Value, ErrorBody>>>,
    cv: OrderedCondvar,
}

impl Reply {
    fn new(obs: &Obs) -> Reply {
        Reply {
            slot: OrderedMutex::with_obs(&locks::SERVER_REPLY, None, obs),
            cv: OrderedCondvar::new(),
        }
    }

    fn fill(&self, result: Result<Value, ErrorBody>) {
        let mut slot = self.slot.lock();
        *slot = Some(result);
        self.cv.notify_all();
    }

    /// Waits up to `step` for the result.
    fn take(&self, step: Duration) -> Option<Result<Value, ErrorBody>> {
        let slot = self.slot.lock();
        let (mut slot, _) = self.cv.wait_timeout(slot, step);
        slot.take()
    }
}

/// Bounded hand-off queue between the accept thread and the worker
/// pool — what the mpsc channel used to be, rebuilt on an ordered
/// mutex + condvar so worker pickup is rank-checked and queue
/// contention is metered like every other lock.
struct AcceptQueue {
    state: OrderedMutex<AcceptState>,
    cv: OrderedCondvar,
}

struct AcceptState {
    streams: VecDeque<TcpStream>,
    capacity: usize,
    /// Set by the accept thread on exit; workers drain then stop.
    closed: bool,
}

impl AcceptQueue {
    fn new(capacity: usize, obs: &Obs) -> AcceptQueue {
        AcceptQueue {
            state: OrderedMutex::with_obs(
                &locks::SERVER_ACCEPT_QUEUE,
                AcceptState {
                    streams: VecDeque::new(),
                    capacity: capacity.max(1),
                    closed: false,
                },
                obs,
            ),
            cv: OrderedCondvar::new(),
        }
    }

    /// Hands a stream to the pool, or returns it when the queue is full
    /// or closed. The caller refuses the returned stream *outside* this
    /// call — writing the 503 under the queue lock would be exactly the
    /// blocking-under-lock hazard rule L7 bans.
    fn try_push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut state = self.state.lock();
        if state.closed || state.streams.len() >= state.capacity {
            return Err(stream);
        }
        state.streams.push_back(stream);
        drop(state);
        self.cv.notify_one();
        Ok(())
    }

    /// Blocks until a stream is available or the queue is closed and
    /// drained (`None` — the worker should exit). The guard is released
    /// before returning, so the caller serves the connection unlocked.
    fn pop(&self) -> Option<TcpStream> {
        let mut state = self.state.lock();
        loop {
            if let Some(stream) = state.streams.pop_front() {
                return Some(stream);
            }
            if state.closed {
                return None;
            }
            // Bounded wait: push/close notify, the timeout only bounds
            // the cost of a lost race.
            let (reacquired, _) = self.cv.wait_timeout(state, POLL);
            state = reacquired;
        }
    }

    fn close(&self) {
        self.state.lock().closed = true;
        self.cv.notify_all();
    }
}

struct Shared {
    engine: OrderedMutex<Engine>,
    scheduler: QueryScheduler<Job>,
    accept_queue: AcceptQueue,
    obs: Obs,
    /// No new requests; existing connections close after their response.
    stopping: AtomicBool,
    /// Dispatcher exit flag, set only after the drain window.
    dispatch_stop: AtomicBool,
    /// Test/ops hook: freeze dispatch to observe queue behavior.
    dispatch_paused: AtomicBool,
    inflight: AtomicUsize,
    work_mx: OrderedMutex<()>,
    work_cv: OrderedCondvar,
    /// Shutdown drain rendezvous: [`Server::shutdown`] waits here and
    /// [`Shared::note_drain_progress`] notifies as in-flight requests
    /// retire and batches dispatch.
    drain_mx: OrderedMutex<()>,
    drain_cv: OrderedCondvar,
    default_deadline: Duration,
    max_body_bytes: usize,
}

impl Shared {
    fn stopping(&self) -> bool {
        self.stopping.load(Ordering::Relaxed)
    }

    fn wake_dispatcher(&self) {
        let _g = self.work_mx.lock();
        self.work_cv.notify_all();
    }

    /// Wakes the shutdown drain wait after any progress it watches for
    /// (an in-flight request retiring, a batch leaving the queue).
    fn note_drain_progress(&self) {
        let _g = self.drain_mx.lock();
        self.drain_cv.notify_all();
    }
}

/// A running HTTP query service over an embedded [`Engine`].
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    drain_deadline: Duration,
    accept: JoinHandle<()>,
    dispatcher: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the accept/worker/dispatcher threads and starts
    /// serving. The engine gets this server's observability context
    /// attached, so `/metrics` exports engine and scheduler state too.
    pub fn start(mut engine: Engine, config: ServerConfig) -> io::Result<Server> {
        let obs = Obs::enabled();
        engine.attach_obs(obs.clone());
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            engine: OrderedMutex::with_obs(&locks::SERVER_ENGINE, engine, &obs),
            scheduler: QueryScheduler::with_obs(config.scheduler, obs.clone()),
            accept_queue: AcceptQueue::new(config.accept_backlog, &obs),
            obs: obs.clone(),
            stopping: AtomicBool::new(false),
            dispatch_stop: AtomicBool::new(false),
            dispatch_paused: AtomicBool::new(false),
            inflight: AtomicUsize::new(0),
            work_mx: OrderedMutex::with_obs(&locks::SERVER_DISPATCH_WORK, (), &obs),
            work_cv: OrderedCondvar::new(),
            drain_mx: OrderedMutex::with_obs(&locks::SERVER_DRAIN, (), &obs),
            drain_cv: OrderedCondvar::new(),
            default_deadline: config.default_deadline,
            max_body_bytes: config.max_body_bytes,
        });

        let mut workers = Vec::with_capacity(config.http_workers.max(1));
        for i in 0..config.http_workers.max(1) {
            let shared = Arc::clone(&shared);
            workers.push(
                thread::Builder::new()
                    .name(format!("dita-http-{i}"))
                    .spawn(move || {
                        while let Some(stream) = shared.accept_queue.pop() {
                            serve_connection(&shared, stream);
                        }
                    })?,
            );
        }

        let accept = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("dita-accept".into())
                .spawn(move || {
                    for incoming in listener.incoming() {
                        if shared.stopping() {
                            break;
                        }
                        let Ok(stream) = incoming else { continue };
                        if let Err(stream) = shared.accept_queue.try_push(stream) {
                            refuse(&shared, stream);
                        }
                    }
                    // Closing the queue ends the worker pool once the
                    // backlog drains.
                    shared.accept_queue.close();
                })?
        };

        let dispatcher = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("dita-dispatch".into())
                .spawn(move || run_dispatcher(&shared))?
        };

        Ok(Server {
            addr,
            shared,
            drain_deadline: config.drain_deadline,
            accept,
            dispatcher,
            workers,
        })
    }

    /// The bound address (resolves port 0 binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's observability context.
    pub fn obs(&self) -> &Obs {
        &self.shared.obs
    }

    /// Scheduler counters snapshot (admitted/shed/cancelled/...).
    pub fn scheduler_counters(&self) -> SchedulerCounters {
        self.shared.scheduler.counters()
    }

    /// Current admission queue depth.
    pub fn queue_depth(&self) -> usize {
        self.shared.scheduler.queue_depth()
    }

    /// Requests currently being handled by connection threads.
    pub fn inflight(&self) -> usize {
        self.shared.inflight.load(Ordering::Relaxed)
    }

    /// Freezes the dispatcher (admission keeps running), so queued
    /// state can be observed or overload provoked deterministically.
    pub fn pause_dispatch(&self) {
        self.shared.dispatch_paused.store(true, Ordering::Relaxed);
    }

    /// Undoes [`Server::pause_dispatch`].
    pub fn resume_dispatch(&self) {
        self.shared.dispatch_paused.store(false, Ordering::Relaxed);
        self.shared.wake_dispatcher();
    }

    /// A weak ops handle for pausing/resuming dispatch and reading
    /// counters from another thread — e.g. while this server is being
    /// consumed by [`Server::shutdown`]. Handle methods become no-ops
    /// once the server is gone.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::downgrade(&self.shared),
        }
    }

    /// Graceful shutdown: stop accepting, drain in-flight requests
    /// (bounded by the drain deadline), answer the rest with `503`,
    /// join all threads and flush every table's pending deltas.
    /// Returns the engine unless a leaked reference keeps it alive.
    pub fn shutdown(self) -> Option<Engine> {
        let Server {
            addr,
            shared,
            drain_deadline,
            accept,
            dispatcher,
            workers,
        } = self;
        shared.stopping.store(true, Ordering::Relaxed);
        // Unblock the accept loop; the probe connection is discarded.
        let _ = TcpStream::connect(addr);

        // Drain window: let the dispatcher finish what clients are
        // still waiting on. Retiring requests and dispatched batches
        // notify `drain_cv`, so the wait ends the moment the server is
        // idle instead of at the next poll tick. Checking the scheduler
        // depth under the drain lock nests 28 → 40, within rank order.
        {
            let guard = shared.drain_mx.lock();
            let (_guard, _) = shared
                .drain_cv
                .wait_timeout_while(guard, drain_deadline, |()| {
                    shared.inflight.load(Ordering::Relaxed) > 0
                        || shared.scheduler.queue_depth() > 0
                });
        }

        shared.dispatch_stop.store(true, Ordering::Relaxed);
        shared.wake_dispatcher();
        let _ = dispatcher.join();
        // Whatever outlived the drain window is failed loudly, which
        // also releases its connection thread.
        for batch in shared.scheduler.drain() {
            for job in batch.payloads {
                job.reply
                    .fill(Err(ErrorBody::new(503, "server draining; request aborted")));
            }
        }
        let _ = accept.join();
        for w in workers {
            let _ = w.join();
        }

        let shared = Arc::try_unwrap(shared).ok()?;
        let mut engine = shared.engine.into_inner();
        engine.flush_all();
        Some(engine)
    }
}

/// A weak reference to a running server's shared state (see
/// [`Server::handle`]). Safe to hold across shutdown: once the server
/// is gone, mutators are no-ops and readers return `None`/defaults.
#[derive(Clone)]
pub struct ServerHandle {
    shared: std::sync::Weak<Shared>,
}

impl ServerHandle {
    /// See [`Server::pause_dispatch`].
    pub fn pause_dispatch(&self) {
        if let Some(s) = self.shared.upgrade() {
            s.dispatch_paused.store(true, Ordering::Relaxed);
        }
    }

    /// See [`Server::resume_dispatch`].
    pub fn resume_dispatch(&self) {
        if let Some(s) = self.shared.upgrade() {
            s.dispatch_paused.store(false, Ordering::Relaxed);
            s.wake_dispatcher();
        }
    }

    /// See [`Server::queue_depth`]; `0` once the server is gone.
    pub fn queue_depth(&self) -> usize {
        self.shared
            .upgrade()
            .map_or(0, |s| s.scheduler.queue_depth())
    }

    /// See [`Server::scheduler_counters`]; `None` once the server is gone.
    pub fn scheduler_counters(&self) -> Option<SchedulerCounters> {
        self.shared.upgrade().map(|s| s.scheduler.counters())
    }
}

/// Refuses a connection the backlog has no room for.
fn refuse(shared: &Shared, mut stream: TcpStream) {
    shared
        .obs
        .counter(names::SERVER_CONNECTIONS_REFUSED_TOTAL)
        .inc();
    let body = b"{\n  \"error\": \"server connection backlog full\"\n}\n";
    let head = format!(
        "HTTP/1.1 503 Service Unavailable\r\ncontent-type: application/json\r\n\
         content-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body);
}

/// Serves one connection until close, error or server stop.
fn serve_connection(shared: &Shared, stream: TcpStream) {
    let mut conn = Conn::new(stream, shared.max_body_bytes, POLL);
    loop {
        match conn.read_request(&|| shared.stopping()) {
            Ok(ReadOutcome::Closed) | Err(_) => return,
            Ok(ReadOutcome::Bad(e)) => {
                let body = wire::body_bytes(&ErrorBody::new(e.status(), e.message()).body);
                let _ = conn.write_response(e.status(), "application/json", &body, false);
                return;
            }
            Ok(ReadOutcome::Request(req)) => {
                let keep_alive = !req.wants_close() && !shared.stopping();
                let endpoint = endpoint_label(&req.path);
                let started = Instant::now();
                shared.inflight.fetch_add(1, Ordering::Relaxed);
                shared
                    .obs
                    .gauge(names::SERVER_INFLIGHT_REQUESTS)
                    .set(shared.inflight.load(Ordering::Relaxed) as f64);
                let handled = handle_request(shared, &conn, req);
                let remaining = shared.inflight.fetch_sub(1, Ordering::Relaxed) - 1;
                shared
                    .obs
                    .gauge(names::SERVER_INFLIGHT_REQUESTS)
                    .set(remaining as f64);
                // A retiring request is drain progress shutdown waits on.
                shared.note_drain_progress();
                match handled {
                    Handled::Hangup => return,
                    Handled::Respond {
                        status,
                        content_type,
                        body,
                    } => {
                        let status_text = status.to_string();
                        shared
                            .obs
                            .counter_labeled(
                                names::SERVER_REQUESTS_TOTAL,
                                &[("endpoint", endpoint), ("status", &status_text)],
                            )
                            .inc();
                        shared
                            .obs
                            .histogram_seconds_labeled(
                                names::SERVER_REQUEST_SECONDS,
                                &[("endpoint", endpoint)],
                            )
                            .observe_duration(started.elapsed());
                        if conn
                            .write_response(status, content_type, &body, keep_alive)
                            .is_err()
                            || !keep_alive
                        {
                            return;
                        }
                    }
                }
            }
        }
    }
}

/// Metric label for a request path; unknown paths pool under "other"
/// so clients cannot inflate label cardinality.
fn endpoint_label(path: &str) -> &'static str {
    match path {
        "/sql" => "/sql",
        "/search" => "/search",
        "/knn" => "/knn",
        "/join" => "/join",
        "/insert" => "/insert",
        "/delete" => "/delete",
        "/flush" => "/flush",
        "/compact" => "/compact",
        "/metrics" => "/metrics",
        "/healthz" => "/healthz",
        _ => "other",
    }
}

enum Handled {
    Respond {
        status: u16,
        content_type: &'static str,
        body: Vec<u8>,
    },
    /// The client went away mid-request; close without writing.
    Hangup,
}

fn respond(status: u16, body: Value) -> Handled {
    Handled::Respond {
        status,
        content_type: "application/json",
        body: wire::body_bytes(&body),
    }
}

fn respond_error(e: ErrorBody) -> Handled {
    respond(e.status, e.body)
}

fn handle_request(shared: &Shared, conn: &Conn, req: Request) -> Handled {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => respond(200, dita_obs::json::Obj::new().field("ok", &true).build()),
        ("GET", "/metrics") => Handled::Respond {
            status: 200,
            content_type: "text/plain; version=0.0.4",
            body: shared.obs.report().to_prometheus().into_bytes(),
        },
        ("POST", "/sql")
        | ("POST", "/search")
        | ("POST", "/knn")
        | ("POST", "/join")
        | ("POST", "/insert")
        | ("POST", "/delete")
        | ("POST", "/flush")
        | ("POST", "/compact") => {
            if shared.stopping() {
                return respond_error(ErrorBody::new(503, "server is shutting down"));
            }
            handle_query(shared, conn, &req)
        }
        (_, "/healthz") | (_, "/metrics") => {
            respond_error(ErrorBody::new(405, "use GET on this endpoint"))
        }
        (
            _,
            "/sql" | "/search" | "/knn" | "/join" | "/insert" | "/delete" | "/flush" | "/compact",
        ) => respond_error(ErrorBody::new(405, "use POST on this endpoint")),
        _ => respond_error(ErrorBody::new(404, "no such endpoint")),
    }
}

/// Parses, prices, admits and awaits one query request.
fn handle_query(shared: &Shared, conn: &Conn, req: &Request) -> Handled {
    let deadline = match request_deadline(shared, req) {
        Ok(d) => d,
        Err(e) => return respond_error(e),
    };
    let body = match Value::parse(&String::from_utf8_lossy(&req.body)) {
        Ok(v) => v,
        Err(e) => {
            return respond_error(ErrorBody::new(400, format!("invalid JSON body: {e}")));
        }
    };
    let kind = match parse_job(req.path.as_str(), &body) {
        Ok(kind) => kind,
        Err(e) => return respond_error(e),
    };
    // Pricing needs the engine (table sizes, global index); keep the
    // lock only for this step.
    let (class, cost) = {
        let mut engine = shared.engine.lock();
        match price_and_classify(&mut engine, &kind) {
            Ok(pc) => pc,
            Err(e) => return respond_error(wire::error_of(&e)),
        }
    };

    let reply = Arc::new(Reply::new(&shared.obs));
    let job = Job {
        kind,
        reply: Arc::clone(&reply),
    };
    let token = match shared
        .scheduler
        .submit_with_deadline(class, cost, job, Some(deadline))
    {
        Ok(token) => token,
        Err(admit) => {
            let err = SqlError::from_admit(&admit, shared.scheduler.queue_depth(), cost);
            return respond_error(wire::error_of(&err));
        }
    };
    shared.wake_dispatcher();
    await_reply(shared, conn, &reply, &token, deadline)
}

/// Waits for the dispatcher, watching the deadline and the socket.
fn await_reply(
    shared: &Shared,
    conn: &Conn,
    reply: &Reply,
    token: &CancelToken,
    deadline: Instant,
) -> Handled {
    loop {
        if let Some(result) = reply.take(POLL) {
            return match result {
                Ok(v) => respond(200, v),
                Err(e) => respond_error(e),
            };
        }
        if Instant::now() >= deadline {
            token.cancel();
            shared.wake_dispatcher();
            return respond_error(ErrorBody::new(504, "deadline exceeded; query cancelled"));
        }
        if conn.client_gone() {
            token.cancel();
            shared.wake_dispatcher();
            return Handled::Hangup;
        }
    }
}

/// The request's absolute deadline (header override or server default).
fn request_deadline(shared: &Shared, req: &Request) -> Result<Instant, ErrorBody> {
    match req.header("x-dita-deadline-ms") {
        None => Ok(Instant::now() + shared.default_deadline),
        Some(v) => match v.trim().parse::<u64>() {
            Ok(ms) => Ok(Instant::now() + Duration::from_millis(ms)),
            Err(_) => Err(ErrorBody::new(
                400,
                "x-dita-deadline-ms must be an integer millisecond count",
            )),
        },
    }
}

// ---------------------------------------------------------------- parsing

fn bad(msg: impl Into<String>) -> ErrorBody {
    ErrorBody::new(400, msg)
}

fn parse_points(v: &Value, key: &str) -> Result<Vec<Point>, ErrorBody> {
    let raw: Vec<Vec<f64>> = v.req(key).map_err(|e| bad(format!("field `{key}`: {e}")))?;
    let mut points = Vec::with_capacity(raw.len());
    for (i, pair) in raw.iter().enumerate() {
        match pair.as_slice() {
            [x, y] => points.push(Point { x: *x, y: *y }),
            _ => return Err(bad(format!("`{key}[{i}]` must be a two-element [x, y]"))),
        }
    }
    if points.is_empty() {
        return Err(bad(format!("`{key}` must be a non-empty point list")));
    }
    Ok(points)
}

fn parse_func(v: &Value) -> Result<DistanceFunction, ErrorBody> {
    match v.opt::<String>("func") {
        Ok(None) => Ok(DistanceFunction::Dtw),
        Ok(Some(name)) => DistanceFunction::from_str(&name)
            .map_err(|_| bad(format!("unknown distance function {name:?}"))),
        Err(e) => Err(bad(format!("field `func`: {e}"))),
    }
}

fn req_field<T: dita_obs::json::FromJson>(v: &Value, key: &str) -> Result<T, ErrorBody> {
    v.req(key).map_err(|e| bad(format!("field `{key}`: {e}")))
}

fn parse_job(path: &str, body: &Value) -> Result<JobKind, ErrorBody> {
    match path {
        "/search" => Ok(JobKind::Search {
            table: req_field(body, "table")?,
            query: parse_points(body, "query")?,
            tau: req_field(body, "tau")?,
            func: parse_func(body)?,
        }),
        "/knn" => {
            let k: f64 = req_field(body, "k")?;
            if !(k.is_finite() && k >= 0.0 && k.fract() == 0.0) {
                return Err(bad("`k` must be a non-negative integer"));
            }
            Ok(JobKind::Knn {
                table: req_field(body, "table")?,
                query: parse_points(body, "query")?,
                k: k as usize,
                func: parse_func(body)?,
            })
        }
        "/join" => Ok(JobKind::Join {
            left: req_field(body, "left")?,
            right: req_field(body, "right")?,
            tau: req_field(body, "tau")?,
            func: parse_func(body)?,
        }),
        "/sql" => {
            let statements: Vec<String> = match body.get("statements") {
                Some(_) => req_field(body, "statements")?,
                None => vec![req_field(body, "sql")?],
            };
            if statements.is_empty() {
                return Err(bad("`statements` must be non-empty"));
            }
            Ok(JobKind::Sql { statements })
        }
        "/insert" => {
            let rows_raw: Vec<Value> = req_field(body, "rows")?;
            let mut rows = Vec::with_capacity(rows_raw.len());
            for (i, row) in rows_raw.iter().enumerate() {
                let id: TrajectoryId = row
                    .req("id")
                    .map_err(|e| bad(format!("`rows[{i}].id`: {e}")))?;
                let points = parse_points(row, "points")
                    .map_err(|e| bad(format!("`rows[{i}]`: {}", err_text(&e))))?;
                rows.push((id, points));
            }
            if rows.is_empty() {
                return Err(bad("`rows` must be non-empty"));
            }
            Ok(JobKind::Insert {
                table: req_field(body, "table")?,
                rows,
            })
        }
        "/delete" => Ok(JobKind::Delete {
            table: req_field(body, "table")?,
            id: req_field(body, "id")?,
        }),
        "/flush" => Ok(JobKind::Flush {
            table: req_field(body, "table")?,
        }),
        "/compact" => Ok(JobKind::Compact {
            table: req_field(body, "table")?,
        }),
        _ => Err(ErrorBody::new(404, "no such endpoint")),
    }
}

fn err_text(e: &ErrorBody) -> String {
    match e.body.get("error") {
        Some(Value::Str(s)) => s.clone(),
        _ => "invalid".into(),
    }
}

// ---------------------------------------------------------- admission

/// FNV-1a over the job's compatibility descriptor. Jobs in one class
/// are batchable together (same table/function/k or same write
/// stream), and ingest writes to a table share a class so their
/// submission order is their execution order.
fn class_of(descriptor: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in descriptor.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Prices a job for admission and assigns its compatibility class.
/// Search pricing uses the paper's candidate-pair estimate via
/// [`price_query`] (which needs the index, built here on first touch);
/// the rest use structural proxies in the same unit.
fn price_and_classify(engine: &mut Engine, kind: &JobKind) -> Result<(u64, f64), SqlError> {
    match kind {
        JobKind::Search {
            table,
            query,
            tau,
            func,
        } => {
            engine.ensure_index(table)?;
            let cost = match engine.system(table) {
                Some(system) if tau.is_finite() => price_query(system, query, *tau, func, None),
                // An unpriceable threshold is surfaced as a NaN price,
                // which admission control refuses up front.
                _ => f64::NAN,
            };
            Ok((class_of(&format!("search:{table}:{func}")), cost))
        }
        JobKind::Knn {
            table,
            query,
            k,
            func,
        } => {
            engine.ensure_index(table)?;
            let n = engine.dataset(table)?.trajectories().len();
            Ok((
                class_of(&format!("knn:{table}:{func}:k={k}")),
                (n * query.len()) as f64,
            ))
        }
        JobKind::Join {
            left,
            right,
            tau,
            func,
        } => {
            engine.ensure_index(left)?;
            engine.ensure_index(right)?;
            let nl = engine.dataset(left)?.trajectories().len();
            let nr = engine.dataset(right)?.trajectories().len();
            let cost = if tau.is_finite() {
                (nl as f64) * (nr as f64)
            } else {
                f64::NAN
            };
            Ok((class_of(&format!("join:{left}:{right}:{func}")), cost))
        }
        JobKind::Sql { statements } => Ok((class_of("sql"), statements.len() as f64)),
        JobKind::Insert { table, rows } => {
            Ok((class_of(&format!("ingest:{table}")), rows.len() as f64))
        }
        JobKind::Delete { table, .. } | JobKind::Flush { table } | JobKind::Compact { table } => {
            Ok((class_of(&format!("ingest:{table}")), 1.0))
        }
    }
}

// --------------------------------------------------------- dispatcher

fn run_dispatcher(shared: &Shared) {
    loop {
        if shared.dispatch_stop.load(Ordering::Relaxed) {
            return;
        }
        if shared.dispatch_paused.load(Ordering::Relaxed) {
            // Parked on the work condvar; `resume_dispatch` notifies.
            // The POLL bound only re-checks the flag after a lost race.
            let guard = shared.work_mx.lock();
            let _ = shared.work_cv.wait_timeout(guard, POLL);
            continue;
        }
        match shared.scheduler.next_batch() {
            Some(batch) => {
                execute_batch(shared, batch);
                // Queue depth just moved; shutdown may be waiting on it.
                shared.note_drain_progress();
            }
            None => {
                let guard = shared.work_mx.lock();
                // Losing this wait's wakeup only costs one POLL tick.
                let _ = shared.work_cv.wait_timeout(guard, POLL);
            }
        }
    }
}

/// Executes one scheduler batch against the engine. All payloads share
/// a compatibility class, so a batched operator applies when the class
/// is a search or kNN class; everything else runs per job.
fn execute_batch(shared: &Shared, batch: QueryBatch<Job>) {
    let jobs = batch.payloads;
    let Some(first) = jobs.first() else { return };
    let endpoint = first.kind.endpoint();
    let mut engine = shared.engine.lock();
    // The service-layer span: operator spans opened by the engine and
    // the query operators nest under it on this thread.
    let _span = shared.obs.span_labeled(
        names::SPAN_SERVER_REQUEST,
        format!("{endpoint} x{}", jobs.len()),
    );
    match &first.kind {
        JobKind::Search { table, func, .. } => {
            let table = table.clone();
            let func = *func;
            run_search_batch(&engine, &table, func, &jobs);
        }
        JobKind::Knn { table, k, func, .. } => {
            let (table, k, func) = (table.clone(), *k, *func);
            run_knn_batch(&engine, &table, k, func, &jobs);
        }
        JobKind::Sql { .. } => run_sql_batch(&mut engine, &jobs),
        JobKind::Join { .. }
        | JobKind::Insert { .. }
        | JobKind::Delete { .. }
        | JobKind::Flush { .. }
        | JobKind::Compact { .. } => {
            for job in &jobs {
                let result = run_single(&mut engine, &job.kind);
                job.reply.fill(result);
            }
        }
    }
}

fn run_search_batch(engine: &Engine, table: &str, func: DistanceFunction, jobs: &[Job]) {
    let Some(system) = engine.system(table) else {
        fail_all(jobs, &SqlError::UnknownTable { name: table.into() });
        return;
    };
    let mut qs: Vec<&[Point]> = Vec::with_capacity(jobs.len());
    let mut taus: Vec<f64> = Vec::with_capacity(jobs.len());
    for job in jobs {
        if let JobKind::Search { query, tau, .. } = &job.kind {
            qs.push(query.as_slice());
            taus.push(*tau);
        }
    }
    if qs.len() != jobs.len() {
        // A mixed batch cannot happen (class hash covers the kind);
        // fail loudly rather than misattributing results.
        fail_all(
            jobs,
            &SqlError::Unsupported {
                message: "mixed search batch".into(),
            },
        );
        return;
    }
    let (results, _) = search_batch(system, &qs, &taus, &func, SearchOptions::default());
    for (job, hits) in jobs.iter().zip(results) {
        job.reply.fill(Ok(wire::hits_value(&hits)));
    }
}

fn run_knn_batch(engine: &Engine, table: &str, k: usize, func: DistanceFunction, jobs: &[Job]) {
    let Some(system) = engine.system(table) else {
        fail_all(jobs, &SqlError::UnknownTable { name: table.into() });
        return;
    };
    let mut qs: Vec<&[Point]> = Vec::with_capacity(jobs.len());
    for job in jobs {
        if let JobKind::Knn { query, .. } = &job.kind {
            qs.push(query.as_slice());
        }
    }
    if qs.len() != jobs.len() {
        fail_all(
            jobs,
            &SqlError::Unsupported {
                message: "mixed knn batch".into(),
            },
        );
        return;
    }
    let results = knn_batch(system, &qs, k, &func);
    for (job, (hits, _)) in jobs.iter().zip(results) {
        job.reply.fill(Ok(wire::hits_value(&hits)));
    }
}

/// Runs a batch of SQL scripts as one concatenated `execute_batch`
/// (adjacent compatible searches across requests share trie work); on
/// any error, falls back to per-request execution so one bad script
/// only fails its own request.
fn run_sql_batch(engine: &mut Engine, jobs: &[Job]) {
    let mut all: Vec<&str> = Vec::new();
    let mut counts: Vec<usize> = Vec::with_capacity(jobs.len());
    for job in jobs {
        if let JobKind::Sql { statements } = &job.kind {
            counts.push(statements.len());
            all.extend(statements.iter().map(String::as_str));
        } else {
            counts.push(0);
        }
    }
    match engine.execute_batch(&all) {
        Ok(results) => {
            let mut cursor = results.into_iter();
            for (job, count) in jobs.iter().zip(counts) {
                let chunk: Vec<_> = cursor.by_ref().take(count).collect();
                job.reply.fill(Ok(wire::sql_results_value(&chunk)));
            }
        }
        Err(_) => {
            for job in jobs {
                let result = run_single(engine, &job.kind);
                job.reply.fill(result);
            }
        }
    }
}

/// Executes one non-batchable job.
fn run_single(engine: &mut Engine, kind: &JobKind) -> Result<Value, ErrorBody> {
    let to_err = |e: SqlError| wire::error_of(&e);
    match kind {
        JobKind::Sql { statements } => {
            let refs: Vec<&str> = statements.iter().map(String::as_str).collect();
            let results = engine.execute_batch(&refs).map_err(to_err)?;
            Ok(wire::sql_results_value(&results))
        }
        JobKind::Join {
            left,
            right,
            tau,
            func,
        } => {
            let (Some(lsys), Some(rsys)) = (engine.system(left), engine.system(right)) else {
                let name = if engine.system(left).is_none() {
                    left.clone()
                } else {
                    right.clone()
                };
                return Err(to_err(SqlError::UnknownTable { name }));
            };
            let (pairs, _) = join(lsys, rsys, *tau, func, &JoinOptions::default());
            Ok(wire::pairs_value(&pairs))
        }
        JobKind::Insert { table, rows } => {
            let n = engine.insert_rows(table, rows.clone()).map_err(to_err)?;
            Ok(wire::ack_value(&format!(
                "inserted {n} row(s) into {table}"
            )))
        }
        JobKind::Delete { table, id } => {
            let removed = engine.delete_row(table, *id).map_err(to_err)?;
            Ok(wire::ack_value(&if removed {
                format!("deleted id {id} from {table}")
            } else {
                format!("id {id} not found in {table}")
            }))
        }
        JobKind::Flush { table } => {
            engine.flush(table).map_err(to_err)?;
            Ok(wire::ack_value(&format!("flushed {table}")))
        }
        JobKind::Compact { table } => {
            let compacted = engine.compact(table).map_err(to_err)?;
            Ok(wire::ack_value(&if compacted {
                format!("compacted {table}")
            } else {
                format!("nothing to compact in {table}")
            }))
        }
        JobKind::Search {
            table, query, tau, ..
        } => {
            // Only reachable via the mixed-batch defensive path.
            let _ = (table, query, tau);
            Err(ErrorBody::new(500, "search dispatched outside its batch"))
        }
        JobKind::Knn { table, .. } => {
            let _ = table;
            Err(ErrorBody::new(500, "knn dispatched outside its batch"))
        }
    }
}

fn fail_all(jobs: &[Job], err: &SqlError) {
    for job in jobs {
        job.reply.fill(Err(wire::error_of(err)));
    }
}
