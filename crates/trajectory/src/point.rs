//! 2-dimensional points and the Euclidean point-to-point distance.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A 2-dimensional point.
///
/// The paper represents every trajectory point as a `(latitude, longitude)`
/// tuple and measures point-to-point distance with the Euclidean distance in
/// degree space (§2.1); thresholds like τ = 0.001 are "roughly 111 meters".
/// We keep the same convention: `x` plays the role of latitude and `y`
/// longitude, but nothing in the system depends on that interpretation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// First coordinate (latitude in the paper's datasets).
    pub x: f64,
    /// Second coordinate (longitude in the paper's datasets).
    pub y: f64,
}

impl Point {
    /// Creates a point from its two coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(&self, other: &Point) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// Useful to avoid the square root when only comparisons are needed.
    #[inline]
    pub fn dist_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Squared L2 norm of the point seen as a vector.
    #[inline]
    pub fn norm_sq(&self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Component-wise minimum of two points.
    #[inline]
    pub fn min(&self, other: &Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum of two points.
    #[inline]
    pub fn max(&self, other: &Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// The interior angle at vertex `b` formed by segments `a→b` and `b→c`,
    /// in radians within `[0, π]`.
    ///
    /// The inflection-point pivot strategy (§4.1.2) weights a point `b` by
    /// `π − ∠abc`: straight-line motion gives weight 0, a U-turn gives π.
    /// Degenerate configurations (`a == b` or `b == c`) yield an angle of π
    /// (weight 0) so duplicated GPS fixes are never preferred as pivots.
    pub fn angle_at(a: &Point, b: &Point, c: &Point) -> f64 {
        let v1 = (a.x - b.x, a.y - b.y);
        let v2 = (c.x - b.x, c.y - b.y);
        let n1 = (v1.0 * v1.0 + v1.1 * v1.1).sqrt();
        let n2 = (v2.0 * v2.0 + v2.1 * v2.1).sqrt();
        if n1 == 0.0 || n2 == 0.0 {
            return std::f64::consts::PI;
        }
        let cos = ((v1.0 * v2.0 + v1.1 * v2.1) / (n1 * n2)).clamp(-1.0, 1.0);
        cos.acos()
    }

    /// Returns `true` if both coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn dist_matches_hand_computation() {
        let a = Point::new(1.0, 1.0);
        let b = Point::new(4.0, 5.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.dist_sq(&b), 25.0);
    }

    #[test]
    fn dist_is_symmetric_and_zero_on_self() {
        let a = Point::new(-2.5, 3.75);
        let b = Point::new(10.0, -0.5);
        assert_eq!(a.dist(&b), b.dist(&a));
        assert_eq!(a.dist(&a), 0.0);
    }

    #[test]
    fn paper_distance_matrix_entries() {
        // Spot-check entries of Table 1 (point-to-point distances between
        // T1 and T3 of Figure 1).
        let t1 = [
            Point::new(1.0, 1.0),
            Point::new(1.0, 2.0),
            Point::new(3.0, 2.0),
            Point::new(4.0, 4.0),
            Point::new(4.0, 5.0),
            Point::new(5.0, 5.0),
        ];
        let t3 = [
            Point::new(1.0, 1.0),
            Point::new(4.0, 1.0),
            Point::new(4.0, 3.0),
            Point::new(4.0, 5.0),
            Point::new(4.0, 6.0),
            Point::new(5.0, 6.0),
        ];
        assert!((t1[0].dist(&t3[0]) - 0.0).abs() < 1e-9);
        assert!((t1[0].dist(&t3[1]) - 3.0).abs() < 1e-9);
        assert!((t1[2].dist(&t3[1]) - 1.41).abs() < 0.01);
        assert!((t1[5].dist(&t3[0]) - 5.66).abs() < 0.01);
        assert!((t1[5].dist(&t3[5]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn angle_at_straight_line_is_pi() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        let c = Point::new(2.0, 0.0);
        assert!((Point::angle_at(&a, &b, &c) - PI).abs() < 1e-12);
    }

    #[test]
    fn angle_at_right_angle() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        let c = Point::new(1.0, 1.0);
        assert!((Point::angle_at(&a, &b, &c) - PI / 2.0).abs() < 1e-12);
    }

    #[test]
    fn angle_at_degenerate_returns_pi() {
        let a = Point::new(1.0, 1.0);
        assert_eq!(Point::angle_at(&a, &a, &a), PI);
    }

    #[test]
    fn min_max_are_componentwise() {
        let a = Point::new(1.0, 5.0);
        let b = Point::new(3.0, 2.0);
        assert_eq!(a.min(&b), Point::new(1.0, 2.0));
        assert_eq!(a.max(&b), Point::new(3.0, 5.0));
    }

    #[test]
    fn conversions_round_trip() {
        let p: Point = (2.0, 3.0).into();
        let t: (f64, f64) = p.into();
        assert_eq!(t, (2.0, 3.0));
    }
}
