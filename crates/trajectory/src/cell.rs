//! Cell-based trajectory compression (§5.3.3(2)).
//!
//! A trajectory is scanned once: the first point opens a square cell of side
//! `d` centred on it; each subsequent point either falls into an existing
//! cell (incrementing its count) or opens a new cell centred on itself. The
//! resulting list of `(cell, count)` pairs is a compact summary used to
//! compute a cheap lower bound on DTW (Lemma 5.6) during verification.

use crate::mbr::Mbr;
use crate::point::Point;
use crate::trajectory::Trajectory;
use serde::{Deserialize, Serialize};

/// One cell of the compressed representation: a square of side `side`
/// centred at `center`, covering `count` consecutive-or-not points of the
/// source trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    /// Center of the square (the first trajectory point that opened it).
    pub center: Point,
    /// Number of trajectory points falling inside the square.
    pub count: u32,
    /// Side length of the square.
    pub side: f64,
}

impl Cell {
    /// The square as an [`Mbr`].
    #[inline]
    pub fn mbr(&self) -> Mbr {
        let h = self.side / 2.0;
        Mbr {
            min: Point::new(self.center.x - h, self.center.y - h),
            max: Point::new(self.center.x + h, self.center.y + h),
        }
    }

    /// Returns `true` if `p` falls inside (or on the border of) the square.
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        let h = self.side / 2.0;
        (p.x - self.center.x).abs() <= h && (p.y - self.center.y).abs() <= h
    }

    /// Minimum distance between two cells (zero if they overlap).
    #[inline]
    pub fn min_dist(&self, other: &Cell) -> f64 {
        self.mbr().min_dist_mbr(&other.mbr())
    }
}

/// The compressed form of one trajectory: an ordered list of cells.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellList {
    cells: Vec<Cell>,
    side: f64,
}

impl CellList {
    /// Compresses `t` with cell side length `side` (the paper's `D`).
    ///
    /// # Panics
    /// Panics if `side` is not strictly positive.
    pub fn compress(t: &Trajectory, side: f64) -> Self {
        assert!(side > 0.0, "cell side length must be positive");
        let mut cells: Vec<Cell> = Vec::new();
        'outer: for p in t.points() {
            for c in cells.iter_mut() {
                if c.contains(p) {
                    c.count += 1;
                    continue 'outer;
                }
            }
            cells.push(Cell {
                center: *p,
                count: 1,
                side,
            });
        }
        CellList { cells, side }
    }

    /// Wraps an already-compressed cell sequence (e.g. borrowed back out of
    /// a pooled arena) with its side length.
    ///
    /// # Panics
    /// Panics if `side` is not strictly positive.
    pub fn from_cells(cells: Vec<Cell>, side: f64) -> Self {
        assert!(side > 0.0, "cell side length must be positive");
        CellList { cells, side }
    }

    /// The cells in creation order.
    #[inline]
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// The configured side length `D`.
    #[inline]
    pub fn side(&self) -> f64 {
        self.side
    }

    /// Total number of source points represented (`Σ count`).
    pub fn total_points(&self) -> u64 {
        self.cells.iter().map(|c| c.count as u64).sum()
    }

    /// The one-sided cell lower bound of Lemma 5.6:
    /// `Cell(T, Q) = Σ_{c_T} min_{c_Q} dist(c_T, c_Q) · |c_T| ≤ DTW(T, Q)`.
    ///
    /// `self` plays the role of `T` and `other` of `Q`. Calling it both ways
    /// and taking the max gives the strongest available bound.
    pub fn lower_bound(&self, other: &CellList) -> f64 {
        cell_lower_bound(&self.cells, &other.cells)
    }

    /// Bottleneck cell bound: `max_{c_T} min_{c_Q} dist(c_T, c_Q)`.
    ///
    /// A lower bound of the discrete Fréchet distance: every point of `T`
    /// must be coupled to some point of `Q`, so the worst point's nearest
    /// cell distance cannot exceed `F(T, Q)`.
    pub fn bottleneck_bound(&self, other: &CellList) -> f64 {
        cell_bottleneck_bound(&self.cells, &other.cells)
    }

    /// Allocated heap size in bytes (capacity, not length — `compress`
    /// grows its vector by pushing, and that slack is real memory).
    pub fn size_bytes(&self) -> usize {
        self.cells.capacity() * std::mem::size_of::<Cell>() + std::mem::size_of::<f64>()
    }
}

/// [`CellList::lower_bound`] on borrowed cell slices, so pooled layouts can
/// evaluate Lemma 5.6 without materializing a `CellList`.
pub fn cell_lower_bound(t: &[Cell], q: &[Cell]) -> f64 {
    let mut sum = 0.0;
    for ct in t {
        let mut best = f64::INFINITY;
        for cq in q {
            let d = ct.min_dist(cq);
            if d < best {
                best = d;
                if best == 0.0 {
                    break;
                }
            }
        }
        if best.is_finite() {
            sum += best * ct.count as f64;
        }
    }
    sum
}

/// [`CellList::bottleneck_bound`] on borrowed cell slices.
pub fn cell_bottleneck_bound(t: &[Cell], q: &[Cell]) -> f64 {
    let mut worst = 0.0f64;
    for ct in t {
        let mut best = f64::INFINITY;
        for cq in q {
            let d = ct.min_dist(cq);
            if d < best {
                best = d;
                if best == 0.0 {
                    break;
                }
            }
        }
        if best.is_finite() && best > worst {
            worst = best;
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compress_merges_nearby_points() {
        // Three points within one cell of side 2 centred at the first.
        let t = Trajectory::from_coords(1, &[(0.0, 0.0), (0.5, 0.5), (-0.9, 0.2), (5.0, 5.0)]);
        let cl = CellList::compress(&t, 2.0);
        assert_eq!(cl.cells().len(), 2);
        assert_eq!(cl.cells()[0].count, 3);
        assert_eq!(cl.cells()[1].count, 1);
        assert_eq!(cl.total_points(), 4);
    }

    #[test]
    fn compress_paper_example_5_7() {
        // Example 5.7: T1 compressed with D = 2 becomes
        // [t1,2; t3,1; t4,3].
        let t1 = crate::trajectory::figure1_trajectories()[0].clone();
        let cl = CellList::compress(&t1, 2.0);
        let counts: Vec<u32> = cl.cells().iter().map(|c| c.count).collect();
        assert_eq!(counts, vec![2, 1, 3]);
        assert_eq!(cl.cells()[0].center, Point::new(1.0, 1.0));
        assert_eq!(cl.cells()[1].center, Point::new(3.0, 2.0));
        assert_eq!(cl.cells()[2].center, Point::new(4.0, 4.0));
    }

    #[test]
    fn lower_bound_paper_example_5_7() {
        // Q of Example 5.7 compressed with D = 2 is [q1,1; q2,4; q6,2; q7,1]
        // and Cell(Q, T1) = 4.
        let t1 = crate::trajectory::figure1_trajectories()[0].clone();
        let q = Trajectory::from_coords(
            100,
            &[
                (1.0, 1.0),
                (1.0, 5.0),
                (1.0, 4.0),
                (2.0, 4.0),
                (2.0, 5.0),
                (4.0, 4.0),
                (5.0, 6.0),
                (5.0, 5.0),
            ],
        );
        let ct = CellList::compress(&t1, 2.0);
        let cq = CellList::compress(&q, 2.0);
        let qcounts: Vec<u32> = cq.cells().iter().map(|c| c.count).collect();
        assert_eq!(qcounts, vec![1, 4, 2, 1]);
        let bound = cq.lower_bound(&ct);
        assert!((bound - 4.0).abs() < 1e-9, "bound was {bound}");
    }

    #[test]
    fn lower_bound_zero_for_identical() {
        let t = Trajectory::from_coords(1, &[(0.0, 0.0), (3.0, 3.0), (6.0, 0.0)]);
        let c = CellList::compress(&t, 1.0);
        assert_eq!(c.lower_bound(&c), 0.0);
    }

    #[test]
    fn cell_min_dist_overlapping_is_zero() {
        let a = Cell {
            center: Point::new(0.0, 0.0),
            count: 1,
            side: 2.0,
        };
        let b = Cell {
            center: Point::new(1.5, 0.0),
            count: 1,
            side: 2.0,
        };
        assert_eq!(a.min_dist(&b), 0.0);
        let c = Cell {
            center: Point::new(5.0, 0.0),
            count: 1,
            side: 2.0,
        };
        assert_eq!(a.min_dist(&c), 3.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_side_rejected() {
        let t = Trajectory::from_coords(1, &[(0.0, 0.0)]);
        let _ = CellList::compress(&t, 0.0);
    }

    #[test]
    fn slice_bounds_match_celllist_bounds() {
        let ts = crate::trajectory::figure1_trajectories();
        let lists: Vec<CellList> = ts.iter().map(|t| CellList::compress(t, 2.0)).collect();
        for a in &lists {
            for b in &lists {
                assert_eq!(a.lower_bound(b), cell_lower_bound(a.cells(), b.cells()));
                assert_eq!(
                    a.bottleneck_bound(b),
                    cell_bottleneck_bound(a.cells(), b.cells())
                );
            }
        }
    }

    #[test]
    fn from_cells_round_trips() {
        let t = Trajectory::from_coords(1, &[(0.0, 0.0), (5.0, 5.0)]);
        let c = CellList::compress(&t, 2.0);
        let rebuilt = CellList::from_cells(c.cells().to_vec(), c.side());
        assert_eq!(rebuilt, c);
    }

    #[test]
    fn size_bytes_counts_capacity_not_len() {
        // compress() grows by pushing, so capacity can exceed len; the
        // reported size must include that slack (it is allocated memory).
        let pts: Vec<(f64, f64)> = (0..20).map(|i| (10.0 * i as f64, 0.0)).collect();
        let t = Trajectory::from_coords(1, &pts);
        let c = CellList::compress(&t, 1.0); // every point opens a cell
        assert!(c.size_bytes() >= std::mem::size_of_val(c.cells()) + 8);
        let exact = CellList::from_cells(c.cells().to_vec(), c.side());
        // to_vec allocates exactly; compress's pushed vector cannot be
        // smaller than that.
        assert!(c.size_bytes() >= exact.size_bytes());
    }
}
