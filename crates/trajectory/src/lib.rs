//! Trajectory data model for DITA.
//!
//! This crate provides the base geometric and data-model types used across
//! the DITA reproduction:
//!
//! * [`Point`] — a 2-dimensional location (the paper's `(latitude, longitude)`
//!   tuples; §2.1 notes the extension to d ≥ 3 is mechanical).
//! * [`Mbr`] — minimum bounding rectangles with the `MinDist` primitives the
//!   trie and R-tree indexes are built on (§4.2, §5.3).
//! * [`Trajectory`] — an identified point sequence.
//! * [`CellList`] — the cell-based compressed representation used by the
//!   verification optimizations (§5.3.3).
//! * [`SoaPoints`] / [`SoaView`] — the structure-of-arrays coordinate layout
//!   the verification kernels stream through (built once per indexed
//!   trajectory).
//! * [`Dataset`] — an owned trajectory collection with the summary statistics
//!   the paper reports in Table 2, plus simple text serialization.
//! * [`preprocess`] — ingestion-side simplification, resampling and GPS
//!   glitch removal.

#![warn(missing_docs)]

pub mod cell;
pub mod dataset;
pub mod error;
pub mod mbr;
pub mod point;
pub mod preprocess;
pub mod soa;
pub mod trajectory;

pub use cell::{cell_bottleneck_bound, cell_lower_bound, Cell, CellList};
pub use dataset::{Dataset, DatasetStats};
pub use error::TrajectoryError;
pub use mbr::Mbr;
pub use point::Point;
pub use preprocess::{douglas_peucker, remove_outliers, resample};
pub use soa::{SoaPoints, SoaView};
pub use trajectory::{Trajectory, TrajectoryId};
