//! Owned trajectory collections with Table-2-style statistics and a simple
//! line-oriented text format for persistence.

use crate::error::TrajectoryError;
use crate::point::Point;
use crate::trajectory::{Trajectory, TrajectoryId};
use std::collections::HashSet;
use std::fmt;
use std::io::{BufRead, Write};

/// A named, owned collection of trajectories.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Human-readable dataset name (e.g. `"beijing-like"`).
    pub name: String,
    trajectories: Vec<Trajectory>,
}

/// Summary statistics matching the columns of the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetStats {
    /// Number of trajectories.
    pub cardinality: usize,
    /// Mean trajectory length in points.
    pub avg_len: f64,
    /// Minimum trajectory length.
    pub min_len: usize,
    /// Maximum trajectory length.
    pub max_len: usize,
    /// Total number of points.
    pub total_points: u64,
    /// Approximate in-memory size in bytes.
    pub size_bytes: u64,
}

impl fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cardinality={} avg_len={:.1} min_len={} max_len={} size={:.2}MB",
            self.cardinality,
            self.avg_len,
            self.min_len,
            self.max_len,
            self.size_bytes as f64 / (1024.0 * 1024.0)
        )
    }
}

impl Dataset {
    /// Creates a dataset, validating that ids are unique, trajectories are
    /// non-empty and all coordinates are finite.
    pub fn new(
        name: impl Into<String>,
        trajectories: Vec<Trajectory>,
    ) -> Result<Self, TrajectoryError> {
        let mut seen = HashSet::with_capacity(trajectories.len());
        for t in &trajectories {
            if t.is_empty() {
                return Err(TrajectoryError::Empty { id: t.id });
            }
            if t.points().iter().any(|p| !p.is_finite()) {
                return Err(TrajectoryError::NonFinite { id: t.id });
            }
            if !seen.insert(t.id) {
                return Err(TrajectoryError::DuplicateId { id: t.id });
            }
        }
        Ok(Dataset {
            name: name.into(),
            trajectories,
        })
    }

    /// Creates a dataset without validation. Intended for generators that
    /// guarantee the invariants by construction.
    pub fn new_unchecked(name: impl Into<String>, trajectories: Vec<Trajectory>) -> Self {
        Dataset {
            name: name.into(),
            trajectories,
        }
    }

    /// The trajectories.
    #[inline]
    pub fn trajectories(&self) -> &[Trajectory] {
        &self.trajectories
    }

    /// Number of trajectories.
    #[inline]
    pub fn len(&self) -> usize {
        self.trajectories.len()
    }

    /// Returns `true` when the dataset holds no trajectories.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.trajectories.is_empty()
    }

    /// Consumes the dataset, returning its trajectories.
    pub fn into_trajectories(self) -> Vec<Trajectory> {
        self.trajectories
    }

    /// Computes Table-2-style statistics.
    pub fn stats(&self) -> DatasetStats {
        let cardinality = self.trajectories.len();
        let mut min_len = usize::MAX;
        let mut max_len = 0usize;
        let mut total_points = 0u64;
        let mut size_bytes = 0u64;
        for t in &self.trajectories {
            min_len = min_len.min(t.len());
            max_len = max_len.max(t.len());
            total_points += t.len() as u64;
            size_bytes += t.size_bytes() as u64;
        }
        if cardinality == 0 {
            min_len = 0;
        }
        DatasetStats {
            cardinality,
            avg_len: if cardinality == 0 {
                0.0
            } else {
                total_points as f64 / cardinality as f64
            },
            min_len,
            max_len,
            total_points,
            size_bytes,
        }
    }

    /// Keeps the first `ceil(rate * len)` trajectories — the paper's
    /// "sample rate" axis in the scalability experiments (§7.2).
    ///
    /// # Panics
    /// Panics unless `0.0 < rate <= 1.0`.
    pub fn sample(&self, rate: f64) -> Dataset {
        assert!(rate > 0.0 && rate <= 1.0, "sample rate must be in (0, 1]");
        let n = ((self.trajectories.len() as f64) * rate).ceil() as usize;
        Dataset {
            name: format!("{}@{rate}", self.name),
            trajectories: self.trajectories[..n.min(self.trajectories.len())].to_vec(),
        }
    }

    /// Writes the dataset in the line format
    /// `id x1 y1 x2 y2 ...` (one trajectory per line).
    pub fn write_text<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        for t in &self.trajectories {
            write!(w, "{}", t.id)?;
            for p in t.points() {
                write!(w, " {} {}", p.x, p.y)?;
            }
            writeln!(w)?;
        }
        Ok(())
    }

    /// Reads a dataset from the line format produced by [`Dataset::write_text`].
    pub fn read_text<R: BufRead>(name: impl Into<String>, r: R) -> Result<Self, TrajectoryError> {
        let mut trajectories = Vec::new();
        for (lineno, line) in r.lines().enumerate() {
            let line = line.map_err(|e| TrajectoryError::Parse {
                line: lineno + 1,
                message: e.to_string(),
            })?;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut it = line.split_ascii_whitespace();
            let id: TrajectoryId =
                it.next()
                    .unwrap()
                    .parse()
                    .map_err(|_| TrajectoryError::Parse {
                        line: lineno + 1,
                        message: "invalid trajectory id".into(),
                    })?;
            let coords: Vec<f64> = it
                .map(|s| {
                    s.parse().map_err(|_| TrajectoryError::Parse {
                        line: lineno + 1,
                        message: format!("invalid coordinate {s:?}"),
                    })
                })
                .collect::<Result<_, _>>()?;
            if coords.is_empty() || !coords.len().is_multiple_of(2) {
                return Err(TrajectoryError::Parse {
                    line: lineno + 1,
                    message: "expected an even, non-zero number of coordinates".into(),
                });
            }
            let points: Vec<Point> = coords.chunks(2).map(|c| Point::new(c[0], c[1])).collect();
            trajectories.push(Trajectory::new(id, points));
        }
        Dataset::new(name, trajectories)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trajectory::figure1_trajectories;

    #[test]
    fn stats_of_figure1() {
        let d = Dataset::new("fig1", figure1_trajectories()).unwrap();
        let s = d.stats();
        assert_eq!(s.cardinality, 5);
        assert_eq!(s.min_len, 5);
        assert_eq!(s.max_len, 6);
        assert_eq!(s.total_points, 28);
        assert!((s.avg_len - 5.6).abs() < 1e-12);
        assert!(s.size_bytes > 0);
    }

    #[test]
    fn empty_dataset_stats() {
        let d = Dataset::new("empty", vec![]).unwrap();
        let s = d.stats();
        assert_eq!(s.cardinality, 0);
        assert_eq!(s.min_len, 0);
        assert_eq!(s.avg_len, 0.0);
    }

    #[test]
    fn duplicate_ids_rejected() {
        let ts = vec![
            Trajectory::from_coords(1, &[(0.0, 0.0)]),
            Trajectory::from_coords(1, &[(1.0, 1.0)]),
        ];
        assert_eq!(
            Dataset::new("dup", ts).unwrap_err(),
            TrajectoryError::DuplicateId { id: 1 }
        );
    }

    #[test]
    fn non_finite_rejected() {
        let ts = vec![Trajectory::from_coords(1, &[(f64::NAN, 0.0)])];
        assert_eq!(
            Dataset::new("nan", ts).unwrap_err(),
            TrajectoryError::NonFinite { id: 1 }
        );
    }

    #[test]
    fn sample_keeps_prefix() {
        let d = Dataset::new("fig1", figure1_trajectories()).unwrap();
        let half = d.sample(0.5);
        assert_eq!(half.len(), 3); // ceil(5 * 0.5)
        assert_eq!(half.trajectories()[0].id, 1);
        let all = d.sample(1.0);
        assert_eq!(all.len(), 5);
    }

    #[test]
    #[should_panic(expected = "sample rate")]
    fn sample_rejects_zero() {
        let d = Dataset::new("fig1", figure1_trajectories()).unwrap();
        let _ = d.sample(0.0);
    }

    #[test]
    fn text_round_trip() {
        let d = Dataset::new("fig1", figure1_trajectories()).unwrap();
        let mut buf = Vec::new();
        d.write_text(&mut buf).unwrap();
        let d2 = Dataset::read_text("fig1", buf.as_slice()).unwrap();
        assert_eq!(d.trajectories(), d2.trajectories());
    }

    #[test]
    fn read_text_skips_comments_and_blank_lines() {
        let text = "# comment\n\n7 1.0 2.0 3.0 4.0\n";
        let d = Dataset::read_text("t", text.as_bytes()).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d.trajectories()[0].id, 7);
        assert_eq!(d.trajectories()[0].len(), 2);
    }

    #[test]
    fn read_text_rejects_odd_coordinates() {
        let text = "1 1.0 2.0 3.0\n";
        let err = Dataset::read_text("t", text.as_bytes()).unwrap_err();
        assert!(matches!(err, TrajectoryError::Parse { line: 1, .. }));
    }

    #[test]
    fn read_text_rejects_bad_float() {
        let text = "1 1.0 oops\n";
        let err = Dataset::read_text("t", text.as_bytes()).unwrap_err();
        assert!(matches!(err, TrajectoryError::Parse { line: 1, .. }));
    }
}
