//! Trajectory preprocessing: simplification, resampling and outlier
//! removal.
//!
//! The paper's related work (§2.3) points at trajectory simplification
//! [28–30] as a standard companion to similarity analytics: raw GPS feeds
//! carry redundant straight-line fixes and occasional jumps, and both index
//! size and distance-computation cost scale with point count. This module
//! provides the ingestion-side tools a deployment of DITA needs:
//!
//! * [`douglas_peucker`] — error-bounded line simplification: every dropped
//!   point stays within `epsilon` of the simplified polyline.
//! * [`resample`] — arc-length resampling to a fixed point count, useful to
//!   normalize wildly different sampling rates before indexing.
//! * [`remove_outliers`] — drops single-point GPS glitches whose implied
//!   speed to *both* neighbors is impossible.

use crate::point::Point;
use crate::trajectory::Trajectory;

/// Perpendicular distance from `p` to the segment `a`–`b` (to the nearer
/// endpoint when the projection falls outside the segment).
fn segment_dist(p: &Point, a: &Point, b: &Point) -> f64 {
    let (vx, vy) = (b.x - a.x, b.y - a.y);
    let len_sq = vx * vx + vy * vy;
    if len_sq == 0.0 {
        return p.dist(a);
    }
    let t = (((p.x - a.x) * vx + (p.y - a.y) * vy) / len_sq).clamp(0.0, 1.0);
    let proj = Point::new(a.x + t * vx, a.y + t * vy);
    p.dist(&proj)
}

/// Douglas–Peucker simplification with error bound `epsilon`.
///
/// Keeps the first and last points; every removed point lies within
/// `epsilon` of the surviving polyline. Returns a new trajectory with the
/// same id.
///
/// # Panics
/// Panics if `epsilon` is negative.
pub fn douglas_peucker(t: &Trajectory, epsilon: f64) -> Trajectory {
    assert!(epsilon >= 0.0, "epsilon must be non-negative");
    let pts = t.points();
    if pts.len() <= 2 {
        return t.clone();
    }
    let mut keep = vec![false; pts.len()];
    keep[0] = true;
    keep[pts.len() - 1] = true;

    // Iterative stack-based recursion over (start, end) spans.
    let mut stack = vec![(0usize, pts.len() - 1)];
    while let Some((lo, hi)) = stack.pop() {
        if hi <= lo + 1 {
            continue;
        }
        let (mut worst, mut worst_d) = (lo, -1.0f64);
        for (i, p) in pts.iter().enumerate().take(hi).skip(lo + 1) {
            let d = segment_dist(p, &pts[lo], &pts[hi]);
            if d > worst_d {
                worst_d = d;
                worst = i;
            }
        }
        if worst_d > epsilon {
            keep[worst] = true;
            stack.push((lo, worst));
            stack.push((worst, hi));
        }
    }
    let kept: Vec<Point> = pts
        .iter()
        .zip(&keep)
        .filter_map(|(p, &k)| k.then_some(*p))
        .collect();
    Trajectory::new(t.id, kept)
}

/// Resamples a trajectory to exactly `n` points, equally spaced along its
/// arc length (endpoints preserved).
///
/// # Panics
/// Panics if `n < 2`.
pub fn resample(t: &Trajectory, n: usize) -> Trajectory {
    assert!(n >= 2, "resampling needs at least 2 output points");
    let pts = t.points();
    if pts.len() == 1 {
        return Trajectory::new(t.id, vec![pts[0]; n]);
    }
    // Cumulative arc length.
    let mut cum = Vec::with_capacity(pts.len());
    cum.push(0.0);
    for w in pts.windows(2) {
        cum.push(cum.last().unwrap() + w[0].dist(&w[1]));
    }
    let total = *cum.last().unwrap();
    if total == 0.0 {
        return Trajectory::new(t.id, vec![pts[0]; n]);
    }
    let mut out = Vec::with_capacity(n);
    let mut seg = 0usize;
    for i in 0..n {
        let target = total * i as f64 / (n - 1) as f64;
        while seg + 1 < cum.len() - 1 && cum[seg + 1] < target {
            seg += 1;
        }
        let span = cum[seg + 1] - cum[seg];
        let frac = if span == 0.0 {
            0.0
        } else {
            (target - cum[seg]) / span
        };
        let (a, b) = (&pts[seg], &pts[seg + 1]);
        out.push(Point::new(
            a.x + (b.x - a.x) * frac,
            a.y + (b.y - a.y) * frac,
        ));
    }
    Trajectory::new(t.id, out)
}

/// Removes single-point GPS glitches: an interior point is dropped when its
/// distance to *both* neighbors exceeds `max_step` while its neighbors are
/// within `max_step` of each other (i.e. the trajectory is locally sane and
/// the point alone jumped). Endpoints are never dropped.
pub fn remove_outliers(t: &Trajectory, max_step: f64) -> Trajectory {
    assert!(max_step > 0.0, "max_step must be positive");
    let pts = t.points();
    if pts.len() <= 2 {
        return t.clone();
    }
    let mut out: Vec<Point> = Vec::with_capacity(pts.len());
    out.push(pts[0]);
    for i in 1..pts.len() - 1 {
        let prev = out.last().unwrap();
        let next = &pts[i + 1];
        let glitch = pts[i].dist(prev) > max_step
            && pts[i].dist(next) > max_step
            && prev.dist(next) <= 2.0 * max_step;
        if !glitch {
            out.push(pts[i]);
        }
    }
    out.push(pts[pts.len() - 1]);
    Trajectory::new(t.id, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dp_collinear_collapses_to_endpoints() {
        let t = Trajectory::from_coords(1, &[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0)]);
        let s = douglas_peucker(&t, 0.01);
        assert_eq!(s.len(), 2);
        assert_eq!(*s.first(), Point::new(0.0, 0.0));
        assert_eq!(*s.last(), Point::new(3.0, 0.0));
    }

    #[test]
    fn dp_keeps_significant_corners() {
        let t = Trajectory::from_coords(
            1,
            &[(0.0, 0.0), (1.0, 0.0), (2.0, 5.0), (3.0, 0.0), (4.0, 0.0)],
        );
        let s = douglas_peucker(&t, 0.5);
        assert!(s.points().contains(&Point::new(2.0, 5.0)));
    }

    #[test]
    fn dp_error_bound_holds() {
        // Every original point must be within epsilon of the simplified
        // polyline.
        let coords: Vec<(f64, f64)> = (0..50)
            .map(|i| {
                let x = i as f64 * 0.1;
                (x, (x * 2.0).sin())
            })
            .collect();
        let t = Trajectory::from_coords(1, &coords);
        for eps in [0.05, 0.2, 1.0] {
            let s = douglas_peucker(&t, eps);
            for p in t.points() {
                let d = s
                    .points()
                    .windows(2)
                    .map(|w| segment_dist(p, &w[0], &w[1]))
                    .fold(f64::INFINITY, f64::min);
                assert!(d <= eps + 1e-9, "point {p} at distance {d} > {eps}");
            }
            assert!(s.len() <= t.len());
        }
    }

    #[test]
    fn dp_zero_epsilon_keeps_everything_noncollinear() {
        let t = Trajectory::from_coords(1, &[(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)]);
        let s = douglas_peucker(&t, 0.0);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn resample_preserves_endpoints_and_count() {
        let t = Trajectory::from_coords(1, &[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0)]);
        for n in [2usize, 5, 16] {
            let r = resample(&t, n);
            assert_eq!(r.len(), n);
            assert!(r.first().dist(t.first()) < 1e-12);
            assert!(r.last().dist(t.last()) < 1e-12);
        }
    }

    #[test]
    fn resample_spacing_is_uniform() {
        let t = Trajectory::from_coords(1, &[(0.0, 0.0), (10.0, 0.0)]);
        let r = resample(&t, 6);
        for w in r.points().windows(2) {
            assert!((w[0].dist(&w[1]) - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn resample_degenerate_single_location() {
        let t = Trajectory::from_coords(1, &[(2.0, 2.0), (2.0, 2.0)]);
        let r = resample(&t, 4);
        assert_eq!(r.len(), 4);
        assert!(r.points().iter().all(|p| *p == Point::new(2.0, 2.0)));
    }

    #[test]
    fn outlier_glitch_removed() {
        let t = Trajectory::from_coords(
            1,
            &[(0.0, 0.0), (0.1, 0.0), (5.0, 5.0), (0.2, 0.0), (0.3, 0.0)],
        );
        let c = remove_outliers(&t, 0.5);
        assert_eq!(c.len(), 4);
        assert!(!c.points().contains(&Point::new(5.0, 5.0)));
    }

    #[test]
    fn outlier_real_movement_kept() {
        // A genuine far move (both neighbors also far apart) is not a glitch.
        let t = Trajectory::from_coords(1, &[(0.0, 0.0), (5.0, 5.0), (10.0, 10.0)]);
        let c = remove_outliers(&t, 0.5);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn endpoints_always_survive() {
        let t = Trajectory::from_coords(1, &[(0.0, 0.0), (9.0, 9.0)]);
        let c = remove_outliers(&t, 0.1);
        assert_eq!(c.len(), 2);
    }
}
