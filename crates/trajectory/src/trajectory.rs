//! Trajectories: identified sequences of points.

use crate::mbr::Mbr;
use crate::point::Point;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a trajectory within a [`crate::Dataset`].
pub type TrajectoryId = u64;

/// A trajectory `T = (t_1, ..., t_m)`: a sequence of points produced by one
/// moving object (Definition 2.1), tagged with a dataset-unique id.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    /// Dataset-unique identifier.
    pub id: TrajectoryId,
    points: Vec<Point>,
}

impl Trajectory {
    /// Creates a trajectory from its id and points.
    ///
    /// # Panics
    /// Panics if `points` is empty: the paper's definitions (first/last point
    /// alignment, pivot selection) all assume at least one point.
    pub fn new(id: TrajectoryId, points: Vec<Point>) -> Self {
        assert!(
            !points.is_empty(),
            "a trajectory must contain at least one point"
        );
        Trajectory { id, points }
    }

    /// Convenience constructor from `(x, y)` tuples.
    pub fn from_coords(id: TrajectoryId, coords: &[(f64, f64)]) -> Self {
        Trajectory::new(id, coords.iter().map(|&(x, y)| Point::new(x, y)).collect())
    }

    /// Number of points `m`.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Always `false` (construction rejects empty point lists); provided to
    /// satisfy the `len`/`is_empty` convention.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The point sequence.
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// First point `t_1`.
    #[inline]
    pub fn first(&self) -> &Point {
        &self.points[0]
    }

    /// Last point `t_m`.
    #[inline]
    pub fn last(&self) -> &Point {
        &self.points[self.points.len() - 1]
    }

    /// The MBR covering the whole trajectory (`MBR_T` of §5.3.3).
    pub fn mbr(&self) -> Mbr {
        Mbr::from_points(self.points.iter())
    }

    /// Approximate in-memory size in bytes, used by the network cost model
    /// to charge trajectory shipments.
    #[inline]
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<TrajectoryId>() + self.points.len() * std::mem::size_of::<Point>()
    }

    /// The prefix `T^j`: first `j` points (1-based, matching the paper).
    ///
    /// # Panics
    /// Panics if `j` is zero or exceeds the length.
    pub fn prefix(&self, j: usize) -> Trajectory {
        assert!(j >= 1 && j <= self.len());
        Trajectory::new(self.id, self.points[..j].to_vec())
    }

    /// Splits a trajectory into chunks of at most `max_len` points, assigning
    /// fresh ids starting at `next_id`. Returns the produced trajectories.
    ///
    /// This mirrors the paper's OSM preprocessing (§7.1): "dividing long
    /// trajectories (length > 3000) into several shorter ones". Chunks share
    /// no points; a trailing chunk shorter than 2 points is merged into the
    /// previous chunk to keep every output non-degenerate.
    pub fn split_long(&self, max_len: usize, next_id: &mut TrajectoryId) -> Vec<Trajectory> {
        assert!(max_len >= 2, "chunks must hold at least two points");
        if self.len() <= max_len {
            return vec![self.clone()];
        }
        let mut out = Vec::with_capacity(self.len() / max_len + 1);
        let mut start = 0;
        while start < self.len() {
            let mut end = (start + max_len).min(self.len());
            // Avoid a trailing 1-point chunk.
            if self.len() - end == 1 {
                end = self.len();
            }
            let id = *next_id;
            *next_id += 1;
            out.push(Trajectory::new(
                id,
                self.points[start..end.min(start + max_len + 1)].to_vec(),
            ));
            start = end.min(start + max_len + 1);
        }
        out
    }
}

impl fmt::Display for Trajectory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}[", self.id)?;
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "]")
    }
}

/// The five example trajectories of the paper's Figure 1, used across the
/// test suites to encode the worked examples.
pub fn figure1_trajectories() -> Vec<Trajectory> {
    vec![
        Trajectory::from_coords(
            1,
            &[
                (1.0, 1.0),
                (1.0, 2.0),
                (3.0, 2.0),
                (4.0, 4.0),
                (4.0, 5.0),
                (5.0, 5.0),
            ],
        ),
        Trajectory::from_coords(
            2,
            &[
                (0.0, 1.0),
                (0.0, 2.0),
                (4.0, 2.0),
                (4.0, 4.0),
                (4.0, 5.0),
                (5.0, 5.0),
            ],
        ),
        Trajectory::from_coords(
            3,
            &[
                (1.0, 1.0),
                (4.0, 1.0),
                (4.0, 3.0),
                (4.0, 5.0),
                (4.0, 6.0),
                (5.0, 6.0),
            ],
        ),
        Trajectory::from_coords(
            4,
            &[(0.0, 4.0), (0.0, 5.0), (3.0, 3.0), (3.0, 7.0), (7.0, 5.0)],
        ),
        Trajectory::from_coords(
            5,
            &[(0.0, 4.0), (0.0, 5.0), (3.0, 7.0), (3.0, 3.0), (7.0, 5.0)],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_trajectory_rejected() {
        let _ = Trajectory::new(0, vec![]);
    }

    #[test]
    fn basic_accessors() {
        let t = Trajectory::from_coords(7, &[(0.0, 0.0), (1.0, 2.0), (3.0, 1.0)]);
        assert_eq!(t.id, 7);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(*t.first(), Point::new(0.0, 0.0));
        assert_eq!(*t.last(), Point::new(3.0, 1.0));
    }

    #[test]
    fn mbr_covers_all_points() {
        let t = Trajectory::from_coords(1, &[(1.0, 5.0), (-1.0, 2.0), (4.0, 0.0)]);
        let m = t.mbr();
        for p in t.points() {
            assert!(m.contains_point(p));
        }
        assert_eq!(m.min, Point::new(-1.0, 0.0));
        assert_eq!(m.max, Point::new(4.0, 5.0));
    }

    #[test]
    fn prefix_matches_paper_notation() {
        let t = Trajectory::from_coords(1, &[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        let p = t.prefix(2);
        assert_eq!(p.len(), 2);
        assert_eq!(*p.last(), Point::new(1.0, 0.0));
    }

    #[test]
    fn figure1_shapes() {
        let ts = figure1_trajectories();
        assert_eq!(ts.len(), 5);
        assert_eq!(ts[0].len(), 6);
        assert_eq!(ts[3].len(), 5);
        assert_eq!(*ts[2].first(), Point::new(1.0, 1.0));
        assert_eq!(*ts[4].last(), Point::new(7.0, 5.0));
    }

    #[test]
    fn split_long_covers_all_points_without_tiny_tail() {
        let pts: Vec<(f64, f64)> = (0..25).map(|i| (i as f64, 0.0)).collect();
        let t = Trajectory::from_coords(1, &pts);
        let mut next = 100;
        let chunks = t.split_long(10, &mut next);
        let total: usize = chunks.iter().map(|c| c.len()).sum();
        assert_eq!(total, 25);
        assert!(chunks.iter().all(|c| c.len() >= 2));
        assert!(chunks.iter().all(|c| c.len() <= 11));
        // Ids are freshly assigned.
        assert!(chunks.iter().all(|c| c.id >= 100));
        assert_eq!(next, 100 + chunks.len() as u64);
    }

    #[test]
    fn split_long_short_trajectory_untouched() {
        let t = Trajectory::from_coords(3, &[(0.0, 0.0), (1.0, 1.0)]);
        let mut next = 10;
        let chunks = t.split_long(10, &mut next);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].id, 3);
        assert_eq!(next, 10);
    }

    #[test]
    fn size_bytes_scales_with_length() {
        let a = Trajectory::from_coords(1, &[(0.0, 0.0), (1.0, 1.0)]);
        let b = Trajectory::from_coords(1, &[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0), (3.0, 3.0)]);
        assert!(b.size_bytes() > a.size_bytes());
        assert_eq!(
            b.size_bytes() - a.size_bytes(),
            2 * std::mem::size_of::<Point>()
        );
    }
}
