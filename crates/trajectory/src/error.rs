//! Error types for trajectory data handling.

use std::fmt;

/// Errors produced while parsing or validating trajectory data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrajectoryError {
    /// A text record could not be parsed.
    Parse {
        /// 1-based line number of the offending record.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// A trajectory had no points.
    Empty {
        /// Id of the offending trajectory.
        id: u64,
    },
    /// A coordinate was NaN or infinite.
    NonFinite {
        /// Id of the offending trajectory.
        id: u64,
    },
    /// Two trajectories shared the same id.
    DuplicateId {
        /// The duplicated id.
        id: u64,
    },
}

impl fmt::Display for TrajectoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrajectoryError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            TrajectoryError::Empty { id } => write!(f, "trajectory {id} has no points"),
            TrajectoryError::NonFinite { id } => {
                write!(f, "trajectory {id} contains a non-finite coordinate")
            }
            TrajectoryError::DuplicateId { id } => write!(f, "duplicate trajectory id {id}"),
        }
    }
}

impl std::error::Error for TrajectoryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = TrajectoryError::Parse {
            line: 3,
            message: "bad float".into(),
        };
        assert_eq!(e.to_string(), "parse error on line 3: bad float");
        assert_eq!(
            TrajectoryError::Empty { id: 9 }.to_string(),
            "trajectory 9 has no points"
        );
        assert_eq!(
            TrajectoryError::DuplicateId { id: 2 }.to_string(),
            "duplicate trajectory id 2"
        );
        assert!(TrajectoryError::NonFinite { id: 1 }
            .to_string()
            .contains("non-finite"));
    }
}
