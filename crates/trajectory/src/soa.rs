//! Structure-of-arrays trajectory storage for the distance kernels.
//!
//! The verification hot path (§5.3.3) streams through point coordinates in
//! tight dynamic-programming loops. The array-of-structs `&[Point]` layout
//! interleaves `x` and `y`, which is fine for geometry but leaves the
//! kernels loading twice the cache lines they need per coordinate pass and
//! blocks vectorization of the distance computation. [`SoaPoints`] stores
//! the same sequence as two contiguous `f64` arrays; it is built once per
//! indexed trajectory (alongside the trie's clustered entries) and borrowed
//! as a [`SoaView`] by every verification against it.

use crate::point::Point;
use serde::{Deserialize, Serialize};

/// A point sequence in structure-of-arrays layout: `xs[i]`/`ys[i]` are the
/// coordinates of point `i`.
///
/// Invariant: `xs.len() == ys.len()`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SoaPoints {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl SoaPoints {
    /// Converts an array-of-structs point slice (one pass, no other work).
    pub fn from_points(points: &[Point]) -> Self {
        SoaPoints {
            xs: points.iter().map(|p| p.x).collect(),
            ys: points.iter().map(|p| p.y).collect(),
        }
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the sequence is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Borrows the coordinate arrays for kernel use.
    #[inline]
    pub fn view(&self) -> SoaView<'_> {
        SoaView {
            xs: &self.xs,
            ys: &self.ys,
        }
    }

    /// Allocated heap size in bytes (capacity, not length).
    #[inline]
    pub fn size_bytes(&self) -> usize {
        (self.xs.capacity() + self.ys.capacity()) * std::mem::size_of::<f64>()
    }
}

/// A borrowed structure-of-arrays point sequence; the input type of the
/// `dita-distance` SoA kernels.
///
/// Both slices always have equal length.
#[derive(Debug, Clone, Copy)]
pub struct SoaView<'a> {
    /// The x (latitude) coordinates.
    pub xs: &'a [f64],
    /// The y (longitude) coordinates.
    pub ys: &'a [f64],
}

impl<'a> SoaView<'a> {
    /// Wraps two coordinate slices.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    #[inline]
    pub fn new(xs: &'a [f64], ys: &'a [f64]) -> Self {
        assert_eq!(xs.len(), ys.len(), "SoA coordinate arrays must match");
        SoaView { xs, ys }
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the sequence is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Point `i` as an AoS [`Point`].
    #[inline]
    pub fn point(&self, i: usize) -> Point {
        Point::new(self.xs[i], self.ys[i])
    }

    /// Squared Euclidean distance between `self[i]` and `other[j]`.
    #[inline]
    pub fn dist_sq(&self, i: usize, other: &SoaView<'_>, j: usize) -> f64 {
        let dx = self.xs[i] - other.xs[j];
        let dy = self.ys[i] - other.ys[j];
        dx * dx + dy * dy
    }

    /// Euclidean distance between `self[i]` and `other[j]`. Bit-identical
    /// to [`Point::dist`] on the same coordinates.
    #[inline]
    pub fn dist(&self, i: usize, other: &SoaView<'_>, j: usize) -> f64 {
        self.dist_sq(i, other, j).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_points() {
        let pts = [Point::new(1.0, 2.0), Point::new(3.0, -4.5)];
        let soa = SoaPoints::from_points(&pts);
        assert_eq!(soa.len(), 2);
        assert!(!soa.is_empty());
        let v = soa.view();
        assert_eq!(v.point(0), pts[0]);
        assert_eq!(v.point(1), pts[1]);
    }

    #[test]
    fn distances_match_aos_bitwise() {
        let a = [Point::new(0.1, 0.2), Point::new(-1.0, 7.0)];
        let b = [Point::new(2.5, -0.25)];
        let (sa, sb) = (SoaPoints::from_points(&a), SoaPoints::from_points(&b));
        for (i, pa) in a.iter().enumerate() {
            assert_eq!(sa.view().dist(i, &sb.view(), 0), pa.dist(&b[0]));
            assert_eq!(sa.view().dist_sq(i, &sb.view(), 0), pa.dist_sq(&b[0]));
        }
    }

    #[test]
    fn empty_is_fine() {
        let soa = SoaPoints::from_points(&[]);
        assert!(soa.is_empty());
        assert_eq!(soa.view().len(), 0);
        assert_eq!(soa.size_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn mismatched_views_rejected() {
        let _ = SoaView::new(&[0.0], &[]);
    }
}
