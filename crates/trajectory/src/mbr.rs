//! Minimum bounding rectangles and the `MinDist` primitives.
//!
//! DITA's indexes never compare raw trajectories during filtering: the global
//! index stores one MBR per partition for first and last points (§4.2.2), the
//! trie's internal nodes store MBRs of indexing points (§4.2.3), and the
//! verification step uses τ-extended MBRs (`EMBR`, Lemma 5.4). All of those
//! reduce to the point-to-rectangle and rectangle-to-rectangle minimum
//! distances implemented here.

use crate::point::Point;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An axis-aligned minimum bounding rectangle.
///
/// Invariant: `min.x <= max.x && min.y <= max.y` for every constructed value.
/// An empty MBR (no contained points yet) is represented by [`Mbr::EMPTY`],
/// which has inverted infinite bounds and acts as the identity for
/// [`Mbr::union`] / [`Mbr::extend`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mbr {
    /// Bottom-left corner.
    pub min: Point,
    /// Top-right corner.
    pub max: Point,
}

impl Mbr {
    /// The empty rectangle: identity for union, contains nothing.
    pub const EMPTY: Mbr = Mbr {
        min: Point {
            x: f64::INFINITY,
            y: f64::INFINITY,
        },
        max: Point {
            x: f64::NEG_INFINITY,
            y: f64::NEG_INFINITY,
        },
    };

    /// Creates an MBR from two corner points (in any order).
    pub fn new(a: Point, b: Point) -> Self {
        Mbr {
            min: a.min(&b),
            max: a.max(&b),
        }
    }

    /// The degenerate MBR containing exactly one point.
    #[inline]
    pub fn from_point(p: Point) -> Self {
        Mbr { min: p, max: p }
    }

    /// The MBR of a point sequence; [`Mbr::EMPTY`] for an empty iterator.
    pub fn from_points<'a, I: IntoIterator<Item = &'a Point>>(points: I) -> Self {
        let mut mbr = Mbr::EMPTY;
        for p in points {
            mbr.extend(p);
        }
        mbr
    }

    /// Returns `true` if the rectangle contains no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y
    }

    /// Grows the rectangle to include `p`.
    #[inline]
    pub fn extend(&mut self, p: &Point) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// The smallest rectangle covering both `self` and `other`.
    #[inline]
    pub fn union(&self, other: &Mbr) -> Mbr {
        Mbr {
            min: self.min.min(&other.min),
            max: self.max.max(&other.max),
        }
    }

    /// Returns the rectangle whose borders are pushed outward by `delta`.
    ///
    /// This is the paper's `EMBR_{Q,τ}` (§5.3.3(1)): extending a trajectory
    /// MBR by the threshold τ before testing coverage.
    #[inline]
    pub fn expanded(&self, delta: f64) -> Mbr {
        debug_assert!(delta >= 0.0);
        if self.is_empty() {
            return *self;
        }
        Mbr {
            min: Point::new(self.min.x - delta, self.min.y - delta),
            max: Point::new(self.max.x + delta, self.max.y + delta),
        }
    }

    /// Returns `true` if `p` lies inside or on the border.
    #[inline]
    pub fn contains_point(&self, p: &Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Returns `true` if `other` lies fully inside `self`.
    #[inline]
    pub fn covers(&self, other: &Mbr) -> bool {
        if other.is_empty() {
            return true;
        }
        !self.is_empty()
            && self.min.x <= other.min.x
            && self.min.y <= other.min.y
            && self.max.x >= other.max.x
            && self.max.y >= other.max.y
    }

    /// Returns `true` if the two rectangles share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Mbr) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// `MinDist(q, MBR)`: minimum Euclidean distance from a point to the
    /// rectangle; zero when the point is inside (§5.3.1).
    #[inline]
    pub fn min_dist_point(&self, p: &Point) -> f64 {
        self.min_dist_point_sq(p).sqrt()
    }

    /// Squared version of [`Mbr::min_dist_point`].
    #[inline]
    pub fn min_dist_point_sq(&self, p: &Point) -> f64 {
        if self.is_empty() {
            return f64::INFINITY;
        }
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        dx * dx + dy * dy
    }

    /// Minimum distance between two rectangles; zero when they intersect.
    #[inline]
    pub fn min_dist_mbr(&self, other: &Mbr) -> f64 {
        self.min_dist_mbr_sq(other).sqrt()
    }

    /// Squared version of [`Mbr::min_dist_mbr`].
    #[inline]
    pub fn min_dist_mbr_sq(&self, other: &Mbr) -> f64 {
        if self.is_empty() || other.is_empty() {
            return f64::INFINITY;
        }
        let dx = (self.min.x - other.max.x)
            .max(0.0)
            .max(other.min.x - self.max.x);
        let dy = (self.min.y - other.max.y)
            .max(0.0)
            .max(other.min.y - self.max.y);
        dx * dx + dy * dy
    }

    /// Maximum distance from a point to any point of the rectangle.
    ///
    /// Used by upper-bound style estimations; the farthest point of a
    /// rectangle from `p` is always one of its corners.
    pub fn max_dist_point(&self, p: &Point) -> f64 {
        if self.is_empty() {
            return f64::INFINITY;
        }
        let dx = (p.x - self.min.x).abs().max((p.x - self.max.x).abs());
        let dy = (p.y - self.min.y).abs().max((p.y - self.max.y).abs());
        (dx * dx + dy * dy).sqrt()
    }

    /// Rectangle area (zero for degenerate or empty rectangles).
    #[inline]
    pub fn area(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        (self.max.x - self.min.x) * (self.max.y - self.min.y)
    }

    /// Half-perimeter (the classic R-tree "margin" metric).
    #[inline]
    pub fn margin(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        (self.max.x - self.min.x) + (self.max.y - self.min.y)
    }

    /// Center of the rectangle.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min.x + self.max.x) / 2.0,
            (self.min.y + self.max.y) / 2.0,
        )
    }
}

impl fmt::Display for Mbr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mbr(x0: f64, y0: f64, x1: f64, y1: f64) -> Mbr {
        Mbr::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    #[test]
    fn new_normalizes_corners() {
        let m = Mbr::new(Point::new(3.0, 1.0), Point::new(1.0, 4.0));
        assert_eq!(m.min, Point::new(1.0, 1.0));
        assert_eq!(m.max, Point::new(3.0, 4.0));
    }

    #[test]
    fn empty_is_identity_for_union_and_extend() {
        let m = mbr(0.0, 0.0, 2.0, 2.0);
        assert_eq!(Mbr::EMPTY.union(&m), m);
        assert_eq!(m.union(&Mbr::EMPTY), m);
        let mut e = Mbr::EMPTY;
        e.extend(&Point::new(1.0, 1.0));
        assert_eq!(e, Mbr::from_point(Point::new(1.0, 1.0)));
        assert!(Mbr::EMPTY.is_empty());
        assert!(!m.is_empty());
    }

    #[test]
    fn from_points_covers_all() {
        let pts = [
            Point::new(1.0, 5.0),
            Point::new(-2.0, 0.0),
            Point::new(3.0, 3.0),
        ];
        let m = Mbr::from_points(pts.iter());
        for p in &pts {
            assert!(m.contains_point(p));
        }
        assert_eq!(m.min, Point::new(-2.0, 0.0));
        assert_eq!(m.max, Point::new(3.0, 5.0));
    }

    #[test]
    fn min_dist_point_inside_is_zero() {
        let m = mbr(0.0, 0.0, 4.0, 4.0);
        assert_eq!(m.min_dist_point(&Point::new(2.0, 2.0)), 0.0);
        assert_eq!(m.min_dist_point(&Point::new(0.0, 0.0)), 0.0); // on corner
        assert_eq!(m.min_dist_point(&Point::new(4.0, 2.0)), 0.0); // on side
    }

    #[test]
    fn min_dist_point_outside_side_and_corner() {
        let m = mbr(0.0, 0.0, 4.0, 4.0);
        // Directly right of the rectangle: distance to the side.
        assert_eq!(m.min_dist_point(&Point::new(6.0, 2.0)), 2.0);
        // Diagonal from the corner.
        let d = m.min_dist_point(&Point::new(7.0, 8.0));
        assert!((d - 5.0).abs() < 1e-12);
    }

    #[test]
    fn min_dist_mbr_zero_when_intersecting() {
        let a = mbr(0.0, 0.0, 4.0, 4.0);
        let b = mbr(3.0, 3.0, 6.0, 6.0);
        assert!(a.intersects(&b));
        assert_eq!(a.min_dist_mbr(&b), 0.0);
    }

    #[test]
    fn min_dist_mbr_separated() {
        let a = mbr(0.0, 0.0, 1.0, 1.0);
        let b = mbr(4.0, 5.0, 6.0, 7.0);
        assert!(!a.intersects(&b));
        assert_eq!(a.min_dist_mbr(&b), 5.0); // dx=3, dy=4
    }

    #[test]
    fn expanded_covers_original() {
        let m = mbr(1.0, 1.0, 2.0, 3.0);
        let e = m.expanded(0.5);
        assert!(e.covers(&m));
        assert_eq!(e.min, Point::new(0.5, 0.5));
        assert_eq!(e.max, Point::new(2.5, 3.5));
    }

    #[test]
    fn covers_and_intersects_edge_cases() {
        let a = mbr(0.0, 0.0, 4.0, 4.0);
        assert!(a.covers(&a));
        assert!(a.covers(&Mbr::EMPTY));
        assert!(!Mbr::EMPTY.covers(&a));
        // Touching at a single border point still intersects.
        let b = mbr(4.0, 4.0, 5.0, 5.0);
        assert!(a.intersects(&b));
        assert!(!a.covers(&b));
    }

    #[test]
    fn area_margin_center() {
        let m = mbr(0.0, 0.0, 2.0, 3.0);
        assert_eq!(m.area(), 6.0);
        assert_eq!(m.margin(), 5.0);
        assert_eq!(m.center(), Point::new(1.0, 1.5));
        assert_eq!(Mbr::EMPTY.area(), 0.0);
    }

    #[test]
    fn max_dist_point_is_corner_distance() {
        let m = mbr(0.0, 0.0, 4.0, 4.0);
        let d = m.max_dist_point(&Point::new(5.0, 5.0));
        assert!((d - (50.0f64).sqrt()).abs() < 1e-12);
        // From the center the max distance is half the diagonal.
        let d = m.max_dist_point(&Point::new(2.0, 2.0));
        assert!((d - (8.0f64).sqrt()).abs() < 1e-12);
    }
}
