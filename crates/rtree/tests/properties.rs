//! Property tests: R-tree queries always agree with a linear scan.

use dita_rtree::RTree;
use dita_trajectory::{Mbr, Point};
use proptest::prelude::*;

fn arb_mbr() -> impl Strategy<Value = Mbr> {
    (
        -100.0f64..100.0,
        -100.0f64..100.0,
        0.0f64..20.0,
        0.0f64..20.0,
    )
        .prop_map(|(x, y, w, h)| Mbr::new(Point::new(x, y), Point::new(x + w, y + h)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn within_point_equals_scan(
        entries in prop::collection::vec(arb_mbr(), 0..200),
        px in -120.0f64..120.0,
        py in -120.0f64..120.0,
        tau in 0.0f64..50.0,
        cap in 2usize..12,
    ) {
        let tagged: Vec<(Mbr, usize)> = entries.iter().cloned().zip(0..).collect();
        let tree = RTree::bulk_load_with_capacity(tagged.clone(), cap);
        let p = Point::new(px, py);
        let mut expect: Vec<usize> = tagged
            .iter()
            .filter(|(m, _)| m.min_dist_point(&p) <= tau)
            .map(|&(_, v)| v)
            .collect();
        let mut got: Vec<usize> = tree.within_point(&p, tau).into_iter().copied().collect();
        expect.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn intersect_equals_scan(
        entries in prop::collection::vec(arb_mbr(), 0..200),
        q in arb_mbr(),
        cap in 2usize..12,
    ) {
        let tagged: Vec<(Mbr, usize)> = entries.iter().cloned().zip(0..).collect();
        let tree = RTree::bulk_load_with_capacity(tagged.clone(), cap);
        let mut expect: Vec<usize> = tagged
            .iter()
            .filter(|(m, _)| m.intersects(&q))
            .map(|&(_, v)| v)
            .collect();
        let mut got = Vec::new();
        tree.for_each_intersecting(&q, |_, &v| got.push(v));
        expect.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn within_mbr_equals_scan(
        entries in prop::collection::vec(arb_mbr(), 0..150),
        q in arb_mbr(),
        tau in 0.0f64..40.0,
        cap in 2usize..12,
    ) {
        let tagged: Vec<(Mbr, usize)> = entries.iter().cloned().zip(0..).collect();
        let tree = RTree::bulk_load_with_capacity(tagged.clone(), cap);
        let mut expect: Vec<usize> = tagged
            .iter()
            .filter(|(m, _)| m.min_dist_mbr(&q) <= tau)
            .map(|&(_, v)| v)
            .collect();
        let mut got = Vec::new();
        tree.for_each_within_mbr(&q, tau, |_, &v| got.push(v));
        expect.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn root_mbr_covers_everything(entries in prop::collection::vec(arb_mbr(), 1..100)) {
        let tagged: Vec<(Mbr, usize)> = entries.iter().cloned().zip(0..).collect();
        let tree = RTree::bulk_load(tagged);
        let root = tree.root_mbr();
        for m in &entries {
            prop_assert!(root.covers(m));
        }
    }
}
