//! An STR-packed R-tree over planar rectangles.
//!
//! DITA's global index is "an R-tree for all `MBR_f` and an R-tree for all
//! `MBR_l` across all partitions" (§4.2.2), queried with
//! `MinDist(q, MBR) ≤ τ` predicates. The Simba- and DFT-style baselines
//! (§7.1) are R-tree based too, so the tree lives in its own crate.
//!
//! The tree is bulk-loaded with the Sort-Tile-Recursive packing of
//! Leutenegger et al. (ICDE 1997) — the same algorithm the paper adopts for
//! partitioning — and stored as a flat arena of nodes for cache-friendly
//! traversal. It is immutable after construction, which matches every use in
//! the paper (indexes are built once per dataset).

#![warn(missing_docs)]

use dita_trajectory::{Mbr, Point};
use serde::{Deserialize, Serialize};

/// Default maximum number of entries per node.
pub const DEFAULT_NODE_CAPACITY: usize = 16;

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Node {
    mbr: Mbr,
    /// Indices into `nodes` for internal nodes, or into `entries` for leaves.
    children: Vec<u32>,
    is_leaf: bool,
}

/// An immutable R-tree mapping rectangles to payload values.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RTree<T> {
    nodes: Vec<Node>,
    entries: Vec<(Mbr, T)>,
    root: Option<u32>,
}

impl<T> RTree<T> {
    /// Bulk-loads a tree with [`DEFAULT_NODE_CAPACITY`].
    pub fn bulk_load(entries: Vec<(Mbr, T)>) -> Self {
        Self::bulk_load_with_capacity(entries, DEFAULT_NODE_CAPACITY)
    }

    /// Bulk-loads a tree with the given node capacity using STR packing.
    ///
    /// # Panics
    /// Panics if `capacity < 2`.
    pub fn bulk_load_with_capacity(entries: Vec<(Mbr, T)>, capacity: usize) -> Self {
        assert!(capacity >= 2, "node capacity must be at least 2");
        let mut tree = RTree {
            nodes: Vec::new(),
            entries,
            root: None,
        };
        if tree.entries.is_empty() {
            return tree;
        }

        // --- STR-pack the leaf level ---
        let n = tree.entries.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        let leaf_count = n.div_ceil(capacity);
        let slabs = (leaf_count as f64).sqrt().ceil() as usize;
        let slab_size = n.div_ceil(slabs);
        order.sort_by(|&a, &b| {
            let ca = tree.entries[a as usize].0.center();
            let cb = tree.entries[b as usize].0.center();
            ca.x.total_cmp(&cb.x)
        });
        let mut level: Vec<u32> = Vec::with_capacity(leaf_count);
        for slab in order.chunks_mut(slab_size) {
            slab.sort_by(|&a, &b| {
                let ca = tree.entries[a as usize].0.center();
                let cb = tree.entries[b as usize].0.center();
                ca.y.total_cmp(&cb.y)
            });
            for run in slab.chunks(capacity) {
                let mbr = run
                    .iter()
                    .fold(Mbr::EMPTY, |acc, &i| acc.union(&tree.entries[i as usize].0));
                tree.nodes.push(Node {
                    mbr,
                    children: run.to_vec(),
                    is_leaf: true,
                });
                level.push(tree.nodes.len() as u32 - 1);
            }
        }

        // --- Pack upper levels until a single root remains ---
        while level.len() > 1 {
            let count = level.len().div_ceil(capacity);
            let slabs = (count as f64).sqrt().ceil() as usize;
            let slab_size = level.len().div_ceil(slabs);
            level.sort_by(|&a, &b| {
                let ca = tree.nodes[a as usize].mbr.center();
                let cb = tree.nodes[b as usize].mbr.center();
                ca.x.total_cmp(&cb.x)
            });
            let mut next: Vec<u32> = Vec::with_capacity(count);
            for slab in level.chunks_mut(slab_size) {
                slab.sort_by(|&a, &b| {
                    let ca = tree.nodes[a as usize].mbr.center();
                    let cb = tree.nodes[b as usize].mbr.center();
                    ca.y.total_cmp(&cb.y)
                });
                for run in slab.chunks(capacity) {
                    let mbr = run
                        .iter()
                        .fold(Mbr::EMPTY, |acc, &i| acc.union(&tree.nodes[i as usize].mbr));
                    tree.nodes.push(Node {
                        mbr,
                        children: run.to_vec(),
                        is_leaf: false,
                    });
                    next.push(tree.nodes.len() as u32 - 1);
                }
            }
            level = next;
        }
        tree.root = Some(level[0]);
        tree
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The bounding rectangle of all entries ([`Mbr::EMPTY`] when empty).
    pub fn root_mbr(&self) -> Mbr {
        self.root
            .map(|r| self.nodes[r as usize].mbr)
            .unwrap_or(Mbr::EMPTY)
    }

    /// Calls `visit` for every entry whose rectangle has
    /// `MinDist(p, mbr) ≤ tau` — the global-index predicate of §5.2.
    pub fn for_each_within_point<'a>(
        &'a self,
        p: &Point,
        tau: f64,
        mut visit: impl FnMut(&'a Mbr, &'a T),
    ) {
        let Some(root) = self.root else { return };
        let tau_sq = tau * tau;
        let mut stack = vec![root];
        while let Some(ni) = stack.pop() {
            let node = &self.nodes[ni as usize];
            if node.mbr.min_dist_point_sq(p) > tau_sq {
                continue;
            }
            if node.is_leaf {
                for &ei in &node.children {
                    let (mbr, value) = &self.entries[ei as usize];
                    if mbr.min_dist_point_sq(p) <= tau_sq {
                        visit(mbr, value);
                    }
                }
            } else {
                stack.extend_from_slice(&node.children);
            }
        }
    }

    /// Collects entries within `tau` of `p` (convenience over
    /// [`RTree::for_each_within_point`]).
    pub fn within_point(&self, p: &Point, tau: f64) -> Vec<&T> {
        let mut out = Vec::new();
        self.for_each_within_point(p, tau, |_, v| out.push(v));
        out
    }

    /// Calls `visit` for every entry whose rectangle intersects `query`.
    pub fn for_each_intersecting<'a>(&'a self, query: &Mbr, mut visit: impl FnMut(&'a Mbr, &'a T)) {
        let Some(root) = self.root else { return };
        let mut stack = vec![root];
        while let Some(ni) = stack.pop() {
            let node = &self.nodes[ni as usize];
            if !node.mbr.intersects(query) {
                continue;
            }
            if node.is_leaf {
                for &ei in &node.children {
                    let (mbr, value) = &self.entries[ei as usize];
                    if mbr.intersects(query) {
                        visit(mbr, value);
                    }
                }
            } else {
                stack.extend_from_slice(&node.children);
            }
        }
    }

    /// Calls `visit` for every entry whose rectangle is within `tau` of
    /// `query` (rectangle-to-rectangle MinDist).
    pub fn for_each_within_mbr<'a>(
        &'a self,
        query: &Mbr,
        tau: f64,
        mut visit: impl FnMut(&'a Mbr, &'a T),
    ) {
        let Some(root) = self.root else { return };
        let tau_sq = tau * tau;
        let mut stack = vec![root];
        while let Some(ni) = stack.pop() {
            let node = &self.nodes[ni as usize];
            if node.mbr.min_dist_mbr_sq(query) > tau_sq {
                continue;
            }
            if node.is_leaf {
                for &ei in &node.children {
                    let (mbr, value) = &self.entries[ei as usize];
                    if mbr.min_dist_mbr_sq(query) <= tau_sq {
                        visit(mbr, value);
                    }
                }
            } else {
                stack.extend_from_slice(&node.children);
            }
        }
    }

    /// Approximate heap size in bytes, for the index-size experiments
    /// (Tables 5 and 7).
    pub fn size_bytes(&self) -> usize {
        let node_bytes: usize = self
            .nodes
            .iter()
            .map(|n| std::mem::size_of::<Node>() + n.children.len() * 4)
            .sum();
        node_bytes + self.entries.len() * std::mem::size_of::<(Mbr, T)>()
    }

    /// Tree height (0 for an empty tree, 1 for a single leaf).
    pub fn height(&self) -> usize {
        let Some(mut ni) = self.root else { return 0 };
        let mut h = 1;
        while !self.nodes[ni as usize].is_leaf {
            ni = self.nodes[ni as usize].children[0];
            h += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_entries(n: usize) -> Vec<(Mbr, usize)> {
        (0..n)
            .map(|i| {
                let x = (i % 10) as f64;
                let y = (i / 10) as f64;
                (Mbr::from_point(Point::new(x, y)), i)
            })
            .collect()
    }

    #[test]
    fn empty_tree() {
        let t: RTree<usize> = RTree::bulk_load(vec![]);
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        assert!(t.within_point(&Point::new(0.0, 0.0), 10.0).is_empty());
        assert!(t.root_mbr().is_empty());
    }

    #[test]
    fn single_entry() {
        let t = RTree::bulk_load(vec![(Mbr::from_point(Point::new(1.0, 1.0)), 42u32)]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.height(), 1);
        assert_eq!(t.within_point(&Point::new(1.5, 1.0), 1.0), vec![&42]);
        assert!(t.within_point(&Point::new(5.0, 5.0), 1.0).is_empty());
    }

    #[test]
    fn within_point_matches_linear_scan() {
        let entries = grid_entries(100);
        let t = RTree::bulk_load_with_capacity(entries.clone(), 4);
        for (p, tau) in [
            (Point::new(4.5, 4.5), 1.0),
            (Point::new(0.0, 0.0), 2.5),
            (Point::new(9.0, 9.0), 0.0),
            (Point::new(-5.0, -5.0), 3.0),
            (Point::new(5.0, 5.0), 100.0),
        ] {
            let mut expect: Vec<usize> = entries
                .iter()
                .filter(|(m, _)| m.min_dist_point(&p) <= tau)
                .map(|&(_, v)| v)
                .collect();
            let mut got: Vec<usize> = t.within_point(&p, tau).into_iter().copied().collect();
            expect.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, expect, "p={p} tau={tau}");
        }
    }

    #[test]
    fn intersecting_matches_linear_scan() {
        let entries: Vec<(Mbr, usize)> = (0..60)
            .map(|i| {
                let x = (i % 8) as f64;
                let y = (i / 8) as f64;
                (Mbr::new(Point::new(x, y), Point::new(x + 1.5, y + 0.5)), i)
            })
            .collect();
        let t = RTree::bulk_load_with_capacity(entries.clone(), 5);
        let q = Mbr::new(Point::new(2.0, 1.0), Point::new(4.0, 3.0));
        let mut expect: Vec<usize> = entries
            .iter()
            .filter(|(m, _)| m.intersects(&q))
            .map(|&(_, v)| v)
            .collect();
        let mut got = Vec::new();
        t.for_each_intersecting(&q, |_, &v| got.push(v));
        expect.sort_unstable();
        got.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn within_mbr_matches_linear_scan() {
        let entries = grid_entries(100);
        let t = RTree::bulk_load_with_capacity(entries.clone(), 4);
        let q = Mbr::new(Point::new(3.0, 3.0), Point::new(4.0, 4.0));
        for tau in [0.0, 1.0, 2.5] {
            let mut expect: Vec<usize> = entries
                .iter()
                .filter(|(m, _)| m.min_dist_mbr(&q) <= tau)
                .map(|&(_, v)| v)
                .collect();
            let mut got = Vec::new();
            t.for_each_within_mbr(&q, tau, |_, &v| got.push(v));
            expect.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, expect, "tau={tau}");
        }
    }

    #[test]
    fn node_mbrs_cover_children() {
        let t = RTree::bulk_load_with_capacity(grid_entries(97), 4);
        for node in &t.nodes {
            if node.is_leaf {
                for &ei in &node.children {
                    assert!(node.mbr.covers(&t.entries[ei as usize].0));
                }
            } else {
                for &ci in &node.children {
                    assert!(node.mbr.covers(&t.nodes[ci as usize].mbr));
                }
            }
        }
    }

    #[test]
    fn every_entry_reachable_exactly_once() {
        let t = RTree::bulk_load_with_capacity(grid_entries(97), 4);
        let mut seen = vec![0u32; 97];
        let mut stack = vec![t.root.unwrap()];
        while let Some(ni) = stack.pop() {
            let node = &t.nodes[ni as usize];
            if node.is_leaf {
                for &ei in &node.children {
                    seen[t.entries[ei as usize].1] += 1;
                }
            } else {
                stack.extend_from_slice(&node.children);
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn height_grows_logarithmically() {
        let t = RTree::bulk_load_with_capacity(grid_entries(100), 4);
        // 100 entries at capacity 4: 25 leaves → ~7 → 2 → 1: height 3..=5.
        assert!(t.height() >= 3 && t.height() <= 5, "h = {}", t.height());
        assert!(t.size_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn tiny_capacity_rejected() {
        let _ = RTree::bulk_load_with_capacity(grid_entries(4), 1);
    }
}
