//! The global index (§4.2.2, §5.2).
//!
//! One R-tree indexes every partition's first-point MBR (`MBR_f`), another
//! every last-point MBR (`MBR_l`). Given a query, the driver intersects the
//! partitions within τ of the query's first point with those within τ of its
//! last point, and keeps a partition only if the two MinDists *together* fit
//! in the budget. The space complexity is `O(N_G²)` — small enough to
//! replicate to every worker, which the paper leans on for its join.

use crate::partitioner::Partitioning;
use dita_distance::function::IndexMode;
use dita_rtree::RTree;
use dita_trajectory::{Mbr, Point};
use serde::{Deserialize, Serialize};

/// The driver-side index over partition endpoint MBRs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GlobalIndex {
    rtree_first: RTree<usize>,
    rtree_last: RTree<usize>,
    /// `(MBR_f, MBR_l)` per partition id.
    mbrs: Vec<(Mbr, Mbr)>,
    /// Shortest member per partition (edit-family charge cap).
    min_lens: Vec<usize>,
    /// Longest member per partition (LCSS shorter-side rule).
    max_lens: Vec<usize>,
}

impl GlobalIndex {
    /// Builds the global index from a partitioning (Algorithm 1, lines 4–5).
    pub fn build(partitioning: &Partitioning) -> Self {
        let mbrs: Vec<(Mbr, Mbr)> = partitioning
            .partitions
            .iter()
            .map(|p| (p.mbr_first, p.mbr_last))
            .collect();
        let min_lens: Vec<usize> = partitioning.partitions.iter().map(|p| p.min_len).collect();
        let max_lens: Vec<usize> = partitioning.partitions.iter().map(|p| p.max_len).collect();
        let rtree_first =
            RTree::bulk_load(mbrs.iter().enumerate().map(|(i, m)| (m.0, i)).collect());
        let rtree_last = RTree::bulk_load(mbrs.iter().enumerate().map(|(i, m)| (m.1, i)).collect());
        GlobalIndex {
            rtree_first,
            rtree_last,
            mbrs,
            min_lens,
            max_lens,
        }
    }

    /// Number of indexed partitions.
    pub fn num_partitions(&self) -> usize {
        self.mbrs.len()
    }

    /// The stored `(MBR_f, MBR_l)` of a partition.
    pub fn partition_mbrs(&self, id: usize) -> (Mbr, Mbr) {
        self.mbrs[id]
    }

    /// Partitions that may contain trajectories similar to a query whose
    /// first point is `first` and last point is `last` (§5.2), sorted by id.
    ///
    /// The budget semantics follow the distance function's [`IndexMode`]:
    ///
    /// * `Additive` (DTW, ERP): `MinDist(q1, MBR_f) + MinDist(qn, MBR_l) ≤ τ`.
    /// * `Max` (Fréchet): both MinDists ≤ τ.
    /// * `EditCount` (EDR, LCSS): an endpoint farther than ϵ from its MBR
    ///   costs one edit; a partition stays relevant while the edit count ≤ τ.
    pub fn relevant_partitions(
        &self,
        first: &Point,
        last: &Point,
        query_len: usize,
        tau: f64,
        mode: IndexMode,
    ) -> Vec<usize> {
        if tau < 0.0 {
            return Vec::new();
        }
        match mode {
            IndexMode::Scan => (0..self.mbrs.len()).collect(),
            IndexMode::Additive | IndexMode::Max => {
                let mut first_hits = vec![f64::NAN; self.mbrs.len()];
                self.rtree_first
                    .for_each_within_point(first, tau, |mbr, &id| {
                        first_hits[id] = mbr.min_dist_point(first);
                    });
                let mut out = Vec::new();
                self.rtree_last
                    .for_each_within_point(last, tau, |mbr, &id| {
                        let df = first_hits[id];
                        if df.is_nan() {
                            return; // not in C_f
                        }
                        let dl = mbr.min_dist_point(last);
                        let ok = match mode {
                            // The endpoint sum uses two distinct DTW cells only
                            // when some side has ≥ 2 points; a 1-point member
                            // against a 1-point query shares the single cell.
                            IndexMode::Additive => {
                                if query_len <= 1 && self.min_lens[id] <= 1 {
                                    df.max(dl) <= tau
                                } else {
                                    df + dl <= tau
                                }
                            }
                            _ => true, // Max: both already ≤ τ individually
                        };
                        if ok {
                            out.push(id);
                        }
                    });
                out.sort_unstable();
                out
            }
            IndexMode::EditCount { eps, symmetric } => {
                // Edit budgets are small integers; enumerate the O(N_G²)
                // partition table directly.
                let budget = tau.floor() as i64;
                let mut out = Vec::new();
                for (id, (mf, ml)) in self.mbrs.iter().enumerate() {
                    // LCSS charges only the shorter side: member endpoint
                    // misses count only when every member is ≤ the query.
                    if !symmetric && self.max_lens[id] > query_len {
                        out.push(id);
                        continue;
                    }
                    let f_miss = i64::from(mf.min_dist_point(first) > eps);
                    let l_miss = i64::from(ml.min_dist_point(last) > eps);
                    // A single-point member's first and last are the same
                    // point — one edit covers both misses.
                    let edits = if self.min_lens[id] <= 1 {
                        f_miss.max(l_miss)
                    } else {
                        f_miss + l_miss
                    };
                    if edits <= budget {
                        out.push(id);
                    }
                }
                out
            }
        }
    }

    /// Approximate heap size in bytes (Tables 5 and 7 report index sizes).
    pub fn size_bytes(&self) -> usize {
        self.rtree_first.size_bytes()
            + self.rtree_last.size_bytes()
            + self.mbrs.len() * std::mem::size_of::<(Mbr, Mbr)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioner::str_partitioning;
    use dita_trajectory::Trajectory;

    fn dataset() -> Vec<Trajectory> {
        // Four clusters of trajectories by (first, last) corner.
        let mut ts = Vec::new();
        let mut id = 0u64;
        for &(fx, fy) in &[(0.0, 0.0), (100.0, 0.0), (0.0, 100.0), (100.0, 100.0)] {
            for i in 0..25 {
                let dx = (i % 5) as f64 * 0.1;
                let dy = (i / 5) as f64 * 0.1;
                ts.push(Trajectory::from_coords(
                    id,
                    &[
                        (fx + dx, fy + dy),
                        (fx + 1.0, fy + 1.0),
                        (fx + 2.0 + dx, fy + 2.0 + dy),
                    ],
                ));
                id += 1;
            }
        }
        ts
    }

    #[test]
    fn relevant_partitions_sound_and_selective() {
        let ts = dataset();
        let parts = str_partitioning(&ts, 4);
        let g = GlobalIndex::build(&parts);
        assert_eq!(g.num_partitions(), parts.partitions.len());

        // A query near the (0,0) cluster must select every partition that
        // holds a possible answer, and none near the far corners.
        let q_first = Point::new(0.2, 0.2);
        let q_last = Point::new(2.2, 2.2);
        let rel = g.relevant_partitions(&q_first, &q_last, 3, 1.0, IndexMode::Additive);
        assert!(!rel.is_empty());
        for p in &parts.partitions {
            let df = p.mbr_first.min_dist_point(&q_first);
            let dl = p.mbr_last.min_dist_point(&q_last);
            if df + dl <= 1.0 {
                assert!(rel.contains(&p.id), "missed partition {}", p.id);
            } else {
                assert!(!rel.contains(&p.id), "kept prunable partition {}", p.id);
            }
        }
        // Far-away corner partitions are pruned.
        let far: Vec<usize> = parts
            .partitions
            .iter()
            .filter(|p| p.mbr_first.min_dist_point(&q_first) > 50.0)
            .map(|p| p.id)
            .collect();
        assert!(!far.is_empty());
        assert!(far.iter().all(|id| !rel.contains(id)));
    }

    #[test]
    fn max_mode_requires_both_within_tau() {
        let ts = dataset();
        let parts = str_partitioning(&ts, 2);
        let g = GlobalIndex::build(&parts);
        let q_first = Point::new(0.0, 0.0);
        let q_last = Point::new(2.0, 2.0);
        let rel = g.relevant_partitions(&q_first, &q_last, 3, 0.5, IndexMode::Max);
        for p in &parts.partitions {
            let df = p.mbr_first.min_dist_point(&q_first);
            let dl = p.mbr_last.min_dist_point(&q_last);
            assert_eq!(
                rel.contains(&p.id),
                df <= 0.5 && dl <= 0.5,
                "partition {}",
                p.id
            );
        }
    }

    #[test]
    fn edit_mode_generous_budget_keeps_everything() {
        let ts = dataset();
        let parts = str_partitioning(&ts, 4);
        let g = GlobalIndex::build(&parts);
        let rel = g.relevant_partitions(
            &Point::new(0.0, 0.0),
            &Point::new(0.0, 0.0),
            3,
            2.0,
            IndexMode::EditCount {
                eps: 0.001,
                symmetric: true,
            },
        );
        assert_eq!(rel.len(), g.num_partitions());
        // Budget 0: only partitions whose both endpoint MBRs are within eps.
        let rel0 = g.relevant_partitions(
            &Point::new(500.0, 500.0),
            &Point::new(500.0, 500.0),
            3,
            0.0,
            IndexMode::EditCount {
                eps: 0.001,
                symmetric: true,
            },
        );
        assert!(rel0.is_empty());
    }

    #[test]
    fn negative_tau_yields_nothing() {
        let ts = dataset();
        let parts = str_partitioning(&ts, 2);
        let g = GlobalIndex::build(&parts);
        assert!(g
            .relevant_partitions(
                &Point::new(0.0, 0.0),
                &Point::new(0.0, 0.0),
                3,
                -1.0,
                IndexMode::Additive
            )
            .is_empty());
    }

    #[test]
    fn size_bytes_positive() {
        let ts = dataset();
        let g = GlobalIndex::build(&str_partitioning(&ts, 4));
        assert!(g.size_bytes() > 0);
    }
}
