//! Data partitioning (§4.2.1).
//!
//! Trajectories are first grouped by their *first* point into `NG` buckets
//! with Sort-Tile-Recursive tiling, then each bucket is split by the *last*
//! point into `NG` sub-buckets; every non-empty sub-bucket becomes a
//! partition. STR guarantees roughly equal bucket sizes even on highly
//! skewed data, and grouping by endpoints keeps similar trajectories (whose
//! endpoints must be close under the endpoint-aligned distance functions)
//! in the same partition — the data-locality property the paper's Appendix B
//! ablation (Figure 13) measures against random partitioning.

use dita_trajectory::{Mbr, Point, Trajectory};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// One partition: the indices of its trajectories within the source slice
/// plus the two MBRs the global index stores for it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Partition {
    /// Partition id, dense in `0..partitions.len()`.
    pub id: usize,
    /// Indices into the source trajectory slice.
    pub members: Vec<usize>,
    /// MBR of the members' first points (`MBR_f`).
    pub mbr_first: Mbr,
    /// MBR of the members' last points (`MBR_l`).
    pub mbr_last: Mbr,
    /// Shortest member length — the edit-family global filter may charge
    /// two endpoint edits only when first and last are distinct points.
    pub min_len: usize,
    /// Longest member length — LCSS may charge member endpoints only when
    /// every member is the shorter side of the pair.
    pub max_len: usize,
}

/// The result of partitioning a dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Partitioning {
    /// All non-empty partitions, ids dense from 0.
    pub partitions: Vec<Partition>,
}

impl Partitioning {
    /// Total number of trajectories covered.
    pub fn total_members(&self) -> usize {
        self.partitions.iter().map(|p| p.members.len()).sum()
    }

    /// Size of the largest partition divided by the average — a quick skew
    /// measure used in tests and the load-balancing experiments.
    pub fn skew(&self) -> f64 {
        if self.partitions.is_empty() {
            return 1.0;
        }
        let max = self
            .partitions
            .iter()
            .map(|p| p.members.len())
            .max()
            .unwrap_or(0) as f64;
        let avg = self.total_members() as f64 / self.partitions.len() as f64;
        if avg == 0.0 {
            1.0
        } else {
            max / avg
        }
    }
}

/// Splits `idx` (already containing indices into `keys`) into `n` STR tiles
/// by the associated points: sort by x, cut into `ceil(sqrt(n))` vertical
/// slabs, sort each slab by y and cut into enough rows that the total tile
/// count is exactly `n` (empty tiles are possible only when there are fewer
/// items than tiles).
fn str_tiles(keys: &[Point], idx: Vec<usize>, n: usize) -> Vec<Vec<usize>> {
    str_tiles_pub(keys, idx, n)
}

/// Stable sort of `idx` on a pool: chunks are sorted in parallel and merged
/// pairwise with a left-run-first tie rule, which reproduces the exact
/// permutation of a serial (stable) `sort_by` for every thread count.
fn par_sort_stable<F>(
    idx: Vec<usize>,
    pool: &rayon::ThreadPool,
    threads: usize,
    cmp: &F,
) -> Vec<usize>
where
    F: Fn(usize, usize) -> Ordering + Sync,
{
    let n = idx.len();
    let chunk = n.div_ceil(threads.max(1));
    if chunk == 0 || chunk >= n {
        let mut idx = idx;
        idx.sort_by(|&a, &b| cmp(a, b));
        return idx;
    }
    let mut runs: Vec<Vec<usize>> = idx.chunks(chunk).map(|c| c.to_vec()).collect();
    pool.scope(|s| {
        for run in runs.iter_mut() {
            s.spawn(move |_| run.sort_by(|&a, &b| cmp(a, b)));
        }
    });
    // Pairwise merges of adjacent runs keep the concatenation order, so
    // stability (equal keys keep their original relative order) holds.
    while runs.len() > 1 {
        let mut next: Vec<Vec<usize>> = Vec::with_capacity(runs.len().div_ceil(2));
        let mut iter = runs.into_iter();
        while let Some(a) = iter.next() {
            match iter.next() {
                None => next.push(a),
                Some(b) => {
                    let mut out = Vec::with_capacity(a.len() + b.len());
                    let (mut i, mut j) = (0usize, 0usize);
                    while i < a.len() && j < b.len() {
                        if cmp(a[i], b[j]) != Ordering::Greater {
                            out.push(a[i]);
                            i += 1;
                        } else {
                            out.push(b[j]);
                            j += 1;
                        }
                    }
                    out.extend_from_slice(&a[i..]);
                    out.extend_from_slice(&b[j..]);
                    next.push(out);
                }
            }
        }
        runs = next;
    }
    runs.pop().unwrap_or_default()
}

/// Sorts one x-slab by y and cuts it into `rows` row tiles, snapping cuts
/// off equal-y runs.
fn cut_slab(keys: &[Point], mut slab: Vec<usize>, rows: usize) -> Vec<Vec<usize>> {
    slab.sort_by(|&a, &b| {
        keys[a]
            .y
            .total_cmp(&keys[b].y)
            .then(keys[a].x.total_cmp(&keys[b].x))
    });
    let mut out = Vec::with_capacity(rows);
    let mut start = 0;
    for r in 0..rows {
        let end = if r + 1 == rows {
            slab.len()
        } else {
            let remaining_rows = rows - r;
            let ideal = start + (slab.len() - start).div_ceil(remaining_rows);
            let max_shift = ((slab.len() - start) / remaining_rows / 4).max(1);
            adjust_cut(&slab, |i| keys[i].y, ideal, max_shift).clamp(start, slab.len())
        };
        out.push(slab[start..end].to_vec());
        start = end;
    }
    out
}

/// Moves a cut index off the middle of a run of equal key values: a tile
/// boundary that splits identical coordinates produces overlapping MBRs, so
/// the cut snaps to whichever run edge is nearer (keeping the original cut
/// only when both edges would create an empty group).
fn adjust_cut(sorted: &[usize], key: impl Fn(usize) -> f64, b: usize, max_shift: usize) -> usize {
    if b == 0 || b >= sorted.len() {
        return b;
    }
    let v = key(sorted[b]);
    if key(sorted[b - 1]) != v {
        return b;
    }
    let mut lo = b;
    while lo > 0 && key(sorted[lo - 1]) == v {
        lo -= 1;
    }
    let mut hi = b;
    while hi < sorted.len() && key(sorted[hi]) == v {
        hi += 1;
    }
    // Shifting the cut must stay bounded: on pathological data where one
    // coordinate value repeats massively, balanced counts beat tile purity
    // (the paper's STR guarantee "roughly the same number of points, even
    // for highly skewed data").
    let lo_ok = lo > 0 && b - lo <= max_shift;
    let hi_ok = hi < sorted.len() && hi - b <= max_shift;
    match (lo_ok, hi_ok) {
        (true, true) => {
            if b - lo <= hi - b {
                lo
            } else {
                hi
            }
        }
        (true, false) => lo,
        (false, true) => hi,
        (false, false) => b,
    }
}

/// STR tiling of indexed points into exactly `n` tiles; shared with the trie
/// index, which tiles on per-level indexing points.
pub fn str_tiles_pub(keys: &[Point], idx: Vec<usize>, n: usize) -> Vec<Vec<usize>> {
    str_tiles_with(keys, idx, n, None)
}

/// [`str_tiles_pub`] with an optional `(pool, threads)` for the x-sort and
/// the per-slab y-sorts. The output is identical with and without a pool.
fn str_tiles_with(
    keys: &[Point],
    mut idx: Vec<usize>,
    n: usize,
    pool: Option<(&rayon::ThreadPool, usize)>,
) -> Vec<Vec<usize>> {
    assert!(n >= 1);
    if n == 1 || idx.len() <= 1 {
        let mut out = vec![idx];
        out.resize_with(n.max(1), Vec::new);
        return out;
    }
    let slabs = (n as f64).sqrt().ceil() as usize;
    // Distribute n tiles over `slabs` slabs as evenly as possible.
    let base = n / slabs;
    let extra = n % slabs;
    let cmp_x = |a: usize, b: usize| {
        keys[a]
            .x
            .total_cmp(&keys[b].x)
            .then(keys[a].y.total_cmp(&keys[b].y))
    };
    match pool {
        Some((pool, threads)) if idx.len() > threads.max(1) => {
            idx = par_sort_stable(idx, pool, threads, &cmp_x);
        }
        _ => idx.sort_by(|&a, &b| cmp_x(a, b)),
    }
    // Slab boundaries are sequential — each cut depends on the previous —
    // but cheap: only the sorts below them dominate.
    let total = idx.len();
    let mut slab_specs: Vec<(Vec<usize>, usize)> = Vec::with_capacity(slabs);
    let mut consumed = 0;
    let mut tiles_done = 0;
    for s in 0..slabs {
        let tiles_here = base + usize::from(s < extra);
        if tiles_here == 0 {
            continue;
        }
        // Number of items for this slab, proportional to its tile share,
        // with the boundary snapped off equal-x runs.
        let remaining_tiles = n - tiles_done;
        let remaining_items = total - consumed;
        let items_here = if tiles_here == remaining_tiles {
            remaining_items
        } else {
            let ideal = consumed + (remaining_items * tiles_here).div_ceil(remaining_tiles);
            let max_shift = (remaining_items / remaining_tiles / 4).max(1);
            adjust_cut(&idx, |i| keys[i].x, ideal, max_shift).max(consumed) - consumed
        };
        let slab: Vec<usize> = idx[consumed..consumed + items_here].to_vec();
        consumed += items_here;
        tiles_done += tiles_here;
        slab_specs.push((slab, tiles_here));
    }
    // Row cuts: slabs are disjoint, so their y-sorts run in parallel when a
    // pool exists, landing in pre-assigned slots to keep slab order.
    let groups: Vec<Vec<Vec<usize>>> = match pool {
        Some((pool, _)) if slab_specs.len() > 1 => {
            let mut slots: Vec<Option<Vec<Vec<usize>>>> = Vec::new();
            slots.resize_with(slab_specs.len(), || None);
            pool.scope(|s| {
                for ((slab, rows), slot) in slab_specs.into_iter().zip(slots.iter_mut()) {
                    s.spawn(move |_| *slot = Some(cut_slab(keys, slab, rows)));
                }
            });
            slots
                .into_iter()
                .map(|s| s.expect("slab slot left unfilled"))
                .collect()
        }
        _ => slab_specs
            .into_iter()
            .map(|(slab, rows)| cut_slab(keys, slab, rows))
            .collect(),
    };
    let out: Vec<Vec<usize>> = groups.into_iter().flatten().collect();
    debug_assert_eq!(out.len(), n);
    out
}

/// First/last-point STR partitioning (Algorithm 1, lines 1–3).
///
/// Produces up to `ng * ng` non-empty partitions.
///
/// # Panics
/// Panics if `ng == 0`.
pub fn str_partitioning(trajectories: &[Trajectory], ng: usize) -> Partitioning {
    str_partitioning_par(trajectories, ng, 1)
}

/// The sub-partitions of one first-point bucket (ids assigned later).
fn split_bucket(
    trajectories: &[Trajectory],
    firsts: &[Point],
    lasts: &[Point],
    bucket: Vec<usize>,
    ng: usize,
) -> Vec<Partition> {
    let mut out = Vec::new();
    for sub in str_tiles(lasts, bucket, ng) {
        if sub.is_empty() {
            continue;
        }
        let mbr_first = Mbr::from_points(sub.iter().map(|&i| &firsts[i]));
        let mbr_last = Mbr::from_points(sub.iter().map(|&i| &lasts[i]));
        let min_len = sub
            .iter()
            .map(|&i| trajectories[i].len())
            .min()
            .unwrap_or(0);
        let max_len = sub
            .iter()
            .map(|&i| trajectories[i].len())
            .max()
            .unwrap_or(0);
        out.push(Partition {
            id: 0, // dense ids assigned by the caller, in bucket order
            members: sub,
            mbr_first,
            mbr_last,
            min_len,
            max_len,
        });
    }
    out
}

/// [`str_partitioning`] on `threads` threads: key extraction, the top-level
/// x-sort, slab y-sorts and the per-bucket second-level tilings all run on a
/// scoped pool. The partitioning is identical for every thread count
/// (results land in pre-assigned slots; the parallel sort is stable).
///
/// Partitioning runs on the driver, outside any cluster task, so — unlike
/// `TrieIndex::build_timed` — there is no task to charge helper CPU back to.
///
/// # Panics
/// Panics if `ng == 0`.
// lint: allow(unpriced-parallelism, reason = "runs on the driver before any cluster task exists; there is no task to charge helper CPU back to")
pub fn str_partitioning_par(
    trajectories: &[Trajectory],
    ng: usize,
    threads: usize,
) -> Partitioning {
    assert!(ng >= 1, "NG must be at least 1");
    let threads = threads.max(1);
    let n = trajectories.len();
    let pool = if threads > 1 && n > 1 {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .ok()
    } else {
        None
    };

    // Key extraction: first/last point per trajectory.
    let (firsts, lasts): (Vec<Point>, Vec<Point>) = match &pool {
        None => (
            trajectories.iter().map(|t| *t.first()).collect(),
            trajectories.iter().map(|t| *t.last()).collect(),
        ),
        Some(pool) => {
            let mut firsts = vec![Point::new(0.0, 0.0); n];
            let mut lasts = vec![Point::new(0.0, 0.0); n];
            let chunk = n.div_ceil(threads * 4).max(1);
            pool.scope(|s| {
                for ((ts, fs), ls) in trajectories
                    .chunks(chunk)
                    .zip(firsts.chunks_mut(chunk))
                    .zip(lasts.chunks_mut(chunk))
                {
                    s.spawn(move |_| {
                        for ((t, f), l) in ts.iter().zip(fs.iter_mut()).zip(ls.iter_mut()) {
                            *f = *t.first();
                            *l = *t.last();
                        }
                    });
                }
            });
            (firsts, lasts)
        }
    };

    let all: Vec<usize> = (0..n).collect();
    let buckets = str_tiles_with(&firsts, all, ng, pool.as_ref().map(|p| (p, threads)));

    // Second level: buckets are independent of one another.
    let groups: Vec<Vec<Partition>> = match &pool {
        Some(pool) if buckets.iter().filter(|b| b.len() > 1).count() > 1 => {
            let mut slots: Vec<Option<Vec<Partition>>> = Vec::new();
            slots.resize_with(buckets.len(), || None);
            let (ts, fs, ls) = (trajectories, firsts.as_slice(), lasts.as_slice());
            pool.scope(|s| {
                for (bucket, slot) in buckets.into_iter().zip(slots.iter_mut()) {
                    s.spawn(move |_| {
                        *slot = Some(if bucket.is_empty() {
                            Vec::new()
                        } else {
                            split_bucket(ts, fs, ls, bucket, ng)
                        });
                    });
                }
            });
            slots
                .into_iter()
                .map(|s| s.expect("bucket slot left unfilled"))
                .collect()
        }
        _ => buckets
            .into_iter()
            .map(|bucket| {
                if bucket.is_empty() {
                    Vec::new()
                } else {
                    split_bucket(trajectories, &firsts, &lasts, bucket, ng)
                }
            })
            .collect(),
    };

    let mut partitions = Vec::new();
    for group in groups {
        for mut p in group {
            p.id = partitions.len();
            partitions.push(p);
        }
    }
    Partitioning { partitions }
}

/// Random partitioning into `n` partitions — the ablation baseline of
/// Appendix B (Figure 13). Deterministic for a given `seed`.
pub fn random_partitioning(trajectories: &[Trajectory], n: usize, seed: u64) -> Partitioning {
    assert!(n >= 1);
    // SplitMix64: tiny, deterministic, no external dependency.
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..trajectories.len() {
        members[(next() % n as u64) as usize].push(i);
    }
    let mut partitions = Vec::new();
    for m in members {
        if m.is_empty() {
            continue;
        }
        let mbr_first = Mbr::from_points(m.iter().map(|&i| trajectories[i].first()));
        let mbr_last = Mbr::from_points(m.iter().map(|&i| trajectories[i].last()));
        let min_len = m.iter().map(|&i| trajectories[i].len()).min().unwrap_or(0);
        let max_len = m.iter().map(|&i| trajectories[i].len()).max().unwrap_or(0);
        partitions.push(Partition {
            id: partitions.len(),
            members: m,
            mbr_first,
            mbr_last,
            min_len,
            max_len,
        });
    }
    Partitioning { partitions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dita_trajectory::trajectory::figure1_trajectories;

    fn line_trajectories(n: usize) -> Vec<Trajectory> {
        (0..n)
            .map(|i| {
                let x = (i % 37) as f64;
                let y = (i / 37) as f64;
                Trajectory::from_coords(i as u64, &[(x, y), (x + 1.0, y + 1.0), (x + 2.0, y)])
            })
            .collect()
    }

    #[test]
    fn every_trajectory_in_exactly_one_partition() {
        let ts = line_trajectories(500);
        for ng in [1, 2, 4, 8] {
            let p = str_partitioning(&ts, ng);
            assert_eq!(p.total_members(), 500, "ng={ng}");
            let mut seen = vec![false; 500];
            for part in &p.partitions {
                for &m in &part.members {
                    assert!(!seen[m], "duplicate member {m}");
                    seen[m] = true;
                }
            }
            assert!(seen.iter().all(|&s| s));
            assert!(p.partitions.len() <= ng * ng);
        }
    }

    #[test]
    fn partition_mbrs_cover_endpoints() {
        let ts = line_trajectories(300);
        let p = str_partitioning(&ts, 4);
        for part in &p.partitions {
            for &m in &part.members {
                assert!(part.mbr_first.contains_point(ts[m].first()));
                assert!(part.mbr_last.contains_point(ts[m].last()));
            }
        }
    }

    #[test]
    fn str_balances_even_skewed_data() {
        // Heavily skewed: 80% of first points at the same location.
        let mut ts = Vec::new();
        for i in 0..400u64 {
            ts.push(Trajectory::from_coords(
                i,
                &[(0.0, 0.0), (i as f64 % 13.0, 1.0)],
            ));
        }
        for i in 400..500u64 {
            ts.push(Trajectory::from_coords(
                i,
                &[((i % 10) as f64, (i % 7) as f64), (1.0, 1.0)],
            ));
        }
        let p = str_partitioning(&ts, 4);
        assert_eq!(p.total_members(), 500);
        // STR splits by rank, not by location, so no partition explodes.
        assert!(p.skew() < 2.0, "skew = {}", p.skew());
    }

    #[test]
    fn figure1_small_partitioning() {
        let ts = figure1_trajectories();
        let p = str_partitioning(&ts, 2);
        assert_eq!(p.total_members(), 5);
        assert!(!p.partitions.is_empty());
        // Ids are dense.
        for (i, part) in p.partitions.iter().enumerate() {
            assert_eq!(part.id, i);
        }
    }

    #[test]
    fn ng_one_is_single_partition() {
        let ts = line_trajectories(50);
        let p = str_partitioning(&ts, 1);
        assert_eq!(p.partitions.len(), 1);
        assert_eq!(p.partitions[0].members.len(), 50);
    }

    #[test]
    fn random_partitioning_covers_and_is_deterministic() {
        let ts = line_trajectories(200);
        let a = random_partitioning(&ts, 8, 42);
        let b = random_partitioning(&ts, 8, 42);
        assert_eq!(a.total_members(), 200);
        assert_eq!(
            a.partitions
                .iter()
                .map(|p| p.members.clone())
                .collect::<Vec<_>>(),
            b.partitions
                .iter()
                .map(|p| p.members.clone())
                .collect::<Vec<_>>()
        );
        let c = random_partitioning(&ts, 8, 7);
        assert_ne!(
            a.partitions
                .iter()
                .map(|p| p.members.clone())
                .collect::<Vec<_>>(),
            c.partitions
                .iter()
                .map(|p| p.members.clone())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn more_trajectories_than_tiles_needed() {
        // Fewer trajectories than NG*NG: partitions stay non-empty and small.
        let ts = line_trajectories(3);
        let p = str_partitioning(&ts, 8);
        assert_eq!(p.total_members(), 3);
        assert!(p.partitions.iter().all(|q| !q.members.is_empty()));
    }
}
