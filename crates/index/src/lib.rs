//! DITA indexing (§4): pivot selection, STR partitioning, the global dual
//! R-tree index and the trie-like local index.
//!
//! * [`pivot`] — the three pivot-point selection strategies of §4.1.2.
//! * [`partitioner`] — first/last-point STR partitioning (§4.2.1) plus the
//!   random partitioner used as the Appendix-B ablation baseline.
//! * [`global`] — the global index: one R-tree over first-point MBRs, one
//!   over last-point MBRs (§4.2.2, §5.2).
//! * [`trie`] — the (K+2)-level trie local index with the accumulated-budget
//!   filter and the ordered-suffix optimization (§4.2.3, §5.3).
//! * [`flat`] — the succinct flat encoding the trie is stored in: a
//!   fixed-width node arena with CSR children/members arrays plus pooled
//!   trajectory storage.
//! * [`pointer`] — the reference pointer-rich trie encoding, kept for parity
//!   tests and memory-density comparisons.

#![warn(missing_docs)]

pub mod flat;
pub mod global;
pub mod partitioner;
pub mod pivot;
pub mod pointer;
pub mod trie;

pub use flat::{EntryRef, FlatNodes, NodeRec, TrajStore};
pub use global::GlobalIndex;
pub use partitioner::{
    random_partitioning, str_partitioning, str_partitioning_par, Partition, Partitioning,
};
pub use pivot::{select_pivots, PivotStrategy};
pub use pointer::PointerTrie;
pub use trie::{
    BatchProbeScratch, FilterStats, IndexedTrajectory, ProbeScratch, TrieConfig, TrieIndex,
};
