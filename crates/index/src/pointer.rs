//! The reference pointer-rich trie encoding: one heap `Vec` per node for
//! children and members, one [`IndexedTrajectory`] per stored member.
//!
//! This is the layout [`crate::trie::TrieIndex`] used before the succinct
//! flat re-encoding ([`crate::flat`]). It is kept — built from the *same*
//! deterministic pending tree and probed through the *same* shared
//! [`crate::trie::visit_node`] / [`crate::trie::member_admits`] predicates —
//! for two purposes:
//!
//! 1. **Parity gates**: the flat probe must emit byte-identical candidate
//!    sets and [`FilterStats`] funnels (see `tests/flat_parity.rs`).
//! 2. **Memory-density baseline**: `bench_smoke`'s memory section reports
//!    bytes/trajectory for both encodings from the same build.
//!
//! It is not wired into the cluster path and takes no part in worker
//! execution.

use crate::trie::{
    build_pending, member_admits, visit_node, FilterStats, IndexedTrajectory, PendingNode,
    ProbeScratch, TrieConfig, Walk,
};
use dita_distance::DistanceFunction;
use dita_trajectory::{Mbr, Point, Trajectory};

/// One trie node in the pointer-rich encoding: per-node heap vectors for
/// the child and member id lists.
#[derive(Debug, Clone)]
pub struct PointerNode {
    /// MBR of the members' indexing point at this node's level.
    pub mbr: Mbr,
    /// 1-based trie level.
    pub depth: u8,
    /// Arena ids of the child nodes.
    pub children: Vec<u32>,
    /// Local ids of the trajectories stored at this node.
    pub members: Vec<u32>,
    /// Maximum member length in the subtree.
    pub max_len: u32,
    /// Minimum member length in the subtree.
    pub min_len: u32,
}

/// A trie index in the pointer-rich reference encoding.
#[derive(Debug, Clone)]
pub struct PointerTrie {
    config: TrieConfig,
    nodes: Vec<PointerNode>,
    roots: Vec<u32>,
    data: Vec<IndexedTrajectory>,
}

/// Flattens a pending subtree into the node vector in the same DFS
/// preorder as the flat encoding, returning the root's id.
fn flatten(nodes: &mut Vec<PointerNode>, pending: PendingNode) -> u32 {
    let id = nodes.len() as u32;
    nodes.push(PointerNode {
        mbr: pending.mbr,
        depth: pending.depth,
        children: Vec::new(),
        members: pending.members,
        max_len: pending.max_len,
        min_len: pending.min_len,
    });
    let kids: Vec<u32> = pending
        .children
        .into_iter()
        .map(|c| flatten(nodes, c))
        .collect();
    nodes[id as usize].children = kids;
    id
}

impl PointerTrie {
    /// Builds the reference encoding over a partition's trajectories from
    /// the same deterministic pending tree as [`crate::trie::TrieIndex`].
    pub fn build(trajectories: Vec<Trajectory>, config: TrieConfig) -> Self {
        let (data, pending, _helper) = build_pending(trajectories, &config);
        let mut nodes = Vec::new();
        let roots: Vec<u32> = pending
            .into_iter()
            .map(|p| flatten(&mut nodes, p))
            .collect();
        PointerTrie {
            config,
            nodes,
            roots,
            data,
        }
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> &TrieConfig {
        &self.config
    }

    /// Number of indexed trajectories.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when no trajectories are indexed.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The stored members.
    pub fn data(&self) -> &[IndexedTrajectory] {
        &self.data
    }

    /// Allocated heap size of the index structures in bytes (capacity, not
    /// length), excluding the raw trajectory payload — the pointer-encoding
    /// counterpart of [`crate::trie::TrieIndex::index_size_bytes`].
    pub fn index_size_bytes(&self) -> usize {
        let u32s = std::mem::size_of::<u32>();
        let nodes: usize = self.nodes.capacity() * std::mem::size_of::<PointerNode>()
            + self
                .nodes
                .iter()
                .map(|n| (n.children.capacity() + n.members.capacity()) * u32s)
                .sum::<usize>();
        let aux: usize = self
            .data
            .iter()
            .map(|d| {
                d.pivots.capacity() * std::mem::size_of::<usize>()
                    + d.index_points.capacity() * std::mem::size_of::<Point>()
                    + std::mem::size_of::<Mbr>()
                    + d.cells.size_bytes()
                    + d.soa.size_bytes()
            })
            .sum();
        nodes + self.roots.capacity() * u32s + aux
    }

    /// Total allocated size including the clustered trajectory payload.
    pub fn size_bytes(&self) -> usize {
        self.index_size_bytes() + self.data.iter().map(|d| d.size_bytes).sum::<usize>()
    }

    /// The filter probe, byte-for-byte equivalent to
    /// [`crate::trie::TrieIndex::candidates`].
    pub fn candidates(&self, q: &[Point], tau: f64, func: &DistanceFunction) -> Vec<u32> {
        self.candidates_with_stats(q, tau, func).0
    }

    /// Like [`PointerTrie::candidates`] but also reports the filter funnel.
    pub fn candidates_with_stats(
        &self,
        q: &[Point],
        tau: f64,
        func: &DistanceFunction,
    ) -> (Vec<u32>, FilterStats) {
        let mut scratch = ProbeScratch::new();
        self.candidates_with_scratch(q, tau, func, &mut scratch)
    }

    /// [`PointerTrie::candidates_with_stats`] with a caller-held
    /// [`ProbeScratch`].
    pub fn candidates_with_scratch(
        &self,
        q: &[Point],
        tau: f64,
        func: &DistanceFunction,
        scratch: &mut ProbeScratch,
    ) -> (Vec<u32>, FilterStats) {
        let mut stats = FilterStats::default();
        let mut out = Vec::new();
        self.probe(q, tau, func, &mut stats, &mut scratch.stack, |m| {
            out.push(m)
        });
        out.sort_unstable();
        out.dedup();
        (out, stats)
    }

    /// Counting probe, equivalent to
    /// [`crate::trie::TrieIndex::candidate_count`].
    pub fn candidate_count(
        &self,
        q: &[Point],
        tau: f64,
        func: &DistanceFunction,
        scratch: &mut ProbeScratch,
    ) -> usize {
        let mut stats = FilterStats::default();
        let mut count = 0usize;
        self.probe(q, tau, func, &mut stats, &mut scratch.stack, |_| count += 1);
        count
    }

    /// The pointer-layout traversal: same shared node/member predicates as
    /// the flat probe, walking per-node `Vec`s instead of CSR slices.
    fn probe<F: FnMut(u32)>(
        &self,
        q: &[Point],
        tau: f64,
        func: &DistanceFunction,
        stats: &mut FilterStats,
        stack: &mut Vec<(u32, f64, usize)>,
        mut emit: F,
    ) {
        stack.clear();
        if q.is_empty() || tau < 0.0 {
            return;
        }
        let Some(walk) = Walk::of(func) else {
            for id in 0..self.data.len() as u32 {
                emit(id);
            }
            return;
        };
        let edr = walk.is_edr();
        for &r in &self.roots {
            let node = &self.nodes[r as usize];
            visit_node(
                r,
                &node.mbr,
                node.depth,
                node.min_len,
                node.max_len,
                q,
                tau,
                tau,
                0,
                &walk,
                stats,
                stack,
            );
        }
        while let Some((node_id, budget, suffix)) = stack.pop() {
            let node = &self.nodes[node_id as usize];
            for &m in &node.members {
                stats.members_checked += 1;
                let it = &self.data[m as usize];
                if edr && dita_distance::bounds::length_bound_edr(it.traj.len(), q.len(), tau) {
                    stats.members_pruned_length += 1;
                    continue;
                }
                let admits = member_admits(
                    q,
                    tau,
                    &walk,
                    it.traj.len(),
                    &it.index_points,
                    it.pivots.iter().copied(),
                    it.soa.view(),
                );
                if admits {
                    emit(m);
                } else {
                    stats.members_pruned_opamd += 1;
                }
            }
            for &c in &node.children {
                let child = &self.nodes[c as usize];
                visit_node(
                    c,
                    &child.mbr,
                    child.depth,
                    child.min_len,
                    child.max_len,
                    q,
                    tau,
                    budget,
                    suffix,
                    &walk,
                    stats,
                    stack,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pivot::PivotStrategy;
    use dita_trajectory::trajectory::figure1_trajectories;

    fn fig1_config() -> TrieConfig {
        TrieConfig {
            k: 2,
            nl: 2,
            leaf_capacity: 0,
            strategy: PivotStrategy::NeighborDistance,
            cell_side: 2.0,
            ..TrieConfig::default()
        }
    }

    #[test]
    fn builds_and_probes() {
        let ts = figure1_trajectories();
        let trie = PointerTrie::build(ts.clone(), fig1_config());
        assert_eq!(trie.len(), 5);
        assert!(!trie.is_empty());
        assert!(trie.size_bytes() > trie.index_size_bytes());
        let cands = trie.candidates(ts[3].points(), 3.0, &DistanceFunction::Dtw);
        let ids: Vec<u64> = cands
            .iter()
            .map(|&c| trie.data()[c as usize].traj.id)
            .collect();
        assert_eq!(ids, vec![4]);
    }
}
