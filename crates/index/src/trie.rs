//! The trie-like local index (§4.2.3) and its filter search (§5.3).
//!
//! Every trajectory `T` of a partition is transformed into its sequence of
//! *indexing points* `T_I = (t_1, t_m, t_{P1}, …, t_{PK})` — first point,
//! last point, then the K pivots. The trie groups trajectories level by
//! level on these points with STR tiling (fanout `N_L`); each node stores
//! the MBR of its members' point at that level. Leaves store the member
//! trajectories themselves — the *clustered* layout the paper contrasts
//! with DFT's separated index/bitmap design.
//!
//! The built tree is encoded succinctly (see [`crate::flat`]): one
//! contiguous arena of fixed-width node records with shared CSR-style
//! children/members arrays, and all member trajectories pooled into shared
//! coordinate/pivot/cell arenas. The probe walks that flat layout with an
//! explicit traversal stack ([`ProbeScratch`]); the reference pointer-rich
//! encoding survives as [`crate::pointer::PointerTrie`] for parity tests
//! and memory-density comparisons.
//!
//! The filter search walks the trie depth-first, accumulating the per-level
//! `MinDist` into the threshold budget (§5.3.1) with the ordered-suffix
//! optimization of §5.3.2 (Lemma 5.1). Budget semantics follow the distance
//! function (Appendix A): DTW/ERP subtract, Fréchet compares each level to
//! the constant τ, EDR/LCSS count edits.

use crate::flat::{EntryRef, FlatNodes, TrajStore};
use crate::partitioner::str_tiles_pub as str_tiles;
use crate::pivot::{select_pivots, PivotStrategy};
use dita_distance::function::IndexMode;
use dita_distance::DistanceFunction;
use dita_trajectory::{CellList, Mbr, Point, SoaPoints, SoaView, Trajectory};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Host parallelism — the default for [`TrieConfig::build_threads`].
fn default_build_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Configuration of the local trie index.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrieConfig {
    /// Number of pivot points K (paper default: 4–5 depending on dataset).
    pub k: usize,
    /// Fanout N_L at every level (paper default: 32).
    pub nl: usize,
    /// Stop splitting a node once it holds at most this many trajectories
    /// (the paper stops at 16). Zero means "never stop early": every
    /// trajectory descends the full K+2 levels, as drawn in Figure 5.
    pub leaf_capacity: usize,
    /// Pivot selection strategy (paper finds Neighbor best).
    pub strategy: PivotStrategy,
    /// Side length `D` of the verification cells (§5.3.3(2)).
    pub cell_side: f64,
    /// Threads used for per-trajectory preprocessing and sibling-subtree
    /// construction; 1 builds serially on the calling thread. The built
    /// index is byte-identical for every thread count, so this knob is not
    /// part of the serialized index (older snapshots load with the host
    /// default).
    #[serde(skip_serializing, default = "default_build_threads")]
    pub build_threads: usize,
}

impl Default for TrieConfig {
    fn default() -> Self {
        TrieConfig {
            k: 4,
            nl: 32,
            leaf_capacity: 16,
            strategy: PivotStrategy::NeighborDistance,
            cell_side: 0.005,
            build_threads: default_build_threads(),
        }
    }
}

/// A preprocessed trajectory: the raw points plus every precomputed
/// artifact verification needs (pivots, MBR, cells).
///
/// This is the build-time intermediate (pooled into a [`TrajStore`] by
/// [`TrieIndex::build`]) and the storage form of the unflushed ingestion
/// tail, where per-row ownership matters more than packing density. The
/// reference [`crate::pointer::PointerTrie`] stores members in this form
/// permanently.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(from = "IndexedTrajectoryRepr")]
pub struct IndexedTrajectory {
    /// The trajectory itself (leaves store data, not pointers — §2.3's
    /// "clustered index" argument).
    pub traj: Trajectory,
    /// 0-based pivot indices, ascending, strictly interior.
    pub pivots: Vec<usize>,
    /// Indexing points: first, last, then pivot points.
    pub index_points: Vec<Point>,
    /// Whole-trajectory MBR (for Lemma 5.4 coverage filtering).
    pub mbr: Mbr,
    /// Cell compression (for Lemma 5.6 bounds).
    pub cells: CellList,
    /// Structure-of-arrays copy of the points, built once at indexing time
    /// so the verification kernels stream contiguous coordinates.
    pub soa: SoaPoints,
    /// Cached `traj.size_bytes()` — the join planner reads it per edge when
    /// pricing shipments, so it is computed once at indexing time. Derived,
    /// hence not serialized.
    #[serde(skip)]
    pub size_bytes: usize,
}

/// Serialized form of [`IndexedTrajectory`]: the original six fields; the
/// cached size is derived on load.
#[derive(serde::Deserialize)]
struct IndexedTrajectoryRepr {
    traj: Trajectory,
    pivots: Vec<usize>,
    index_points: Vec<Point>,
    mbr: Mbr,
    cells: CellList,
    soa: SoaPoints,
}

impl From<IndexedTrajectoryRepr> for IndexedTrajectory {
    fn from(r: IndexedTrajectoryRepr) -> Self {
        let size_bytes = r.traj.size_bytes();
        IndexedTrajectory {
            traj: r.traj,
            pivots: r.pivots,
            index_points: r.index_points,
            mbr: r.mbr,
            cells: r.cells,
            soa: r.soa,
            size_bytes,
        }
    }
}

impl IndexedTrajectory {
    /// Precomputes all indexing artifacts for `traj`.
    pub fn new(traj: Trajectory, k: usize, strategy: PivotStrategy, cell_side: f64) -> Self {
        let pivots = select_pivots(&traj, k, strategy);
        let mut index_points = Vec::with_capacity(2 + pivots.len());
        index_points.push(*traj.first());
        // A single-point trajectory has first == last as the *same* DTW
        // matrix cell; indexing it twice would let the filter charge its
        // distance twice (unsound when the query is also a single point).
        if traj.len() > 1 {
            index_points.push(*traj.last());
        }
        index_points.extend(pivots.iter().map(|&i| traj.points()[i]));
        let mbr = traj.mbr();
        let cells = CellList::compress(&traj, cell_side);
        let soa = SoaPoints::from_points(traj.points());
        let size_bytes = traj.size_bytes();
        IndexedTrajectory {
            traj,
            pivots,
            index_points,
            mbr,
            cells,
            soa,
            size_bytes,
        }
    }
}

/// Filter-funnel statistics of one trie probe: how much work the filter
/// did and how hard each stage pruned (the paper's "pruning power"),
/// broken down per pruning stage in pipeline order:
///
/// 1. **node-length** — EDR length-interval subtree prune (Appendix A);
/// 2. **node-budget** — the per-level `MinDist` budget cascade
///    (§5.3.1/Lemma 5.1) over node MBRs;
/// 3. **leaf-length** — the exact EDR length bound on stored members;
/// 4. **leaf-opamd** — the exact OPAMD / edit-count test (Lemma 5.1) on a
///    member's own indexing points.
///
/// Survivors of the last stage are exactly the emitted candidates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FilterStats {
    /// Trie nodes whose level check was evaluated.
    pub nodes_visited: usize,
    /// Nodes pruned by the length-interval filter (EDR only).
    pub nodes_pruned_length: usize,
    /// Nodes pruned by the budget cascade over the level MBRs.
    pub nodes_pruned_budget: usize,
    /// Stored trajectories reaching the exact per-trajectory check.
    pub members_checked: usize,
    /// Members rejected by the exact length bound (EDR only).
    pub members_pruned_length: usize,
    /// Members rejected by the OPAMD / edit-count leaf filter.
    pub members_pruned_opamd: usize,
}

impl FilterStats {
    /// Nodes pruned across all node-level stages (subtree skipped).
    pub fn nodes_pruned(&self) -> usize {
        self.nodes_pruned_length + self.nodes_pruned_budget
    }

    /// Members rejected across all leaf-level stages.
    pub fn members_rejected(&self) -> usize {
        self.members_pruned_length + self.members_pruned_opamd
    }

    /// Candidates that survived the whole funnel.
    pub fn candidates(&self) -> usize {
        self.members_checked - self.members_rejected()
    }

    /// Merges another probe's counters into this one.
    pub fn merge(&mut self, other: &FilterStats) {
        self.nodes_visited += other.nodes_visited;
        self.nodes_pruned_length += other.nodes_pruned_length;
        self.nodes_pruned_budget += other.nodes_pruned_budget;
        self.members_checked += other.members_checked;
        self.members_pruned_length += other.members_pruned_length;
        self.members_pruned_opamd += other.members_pruned_opamd;
    }

    /// The counters as an ordered `dita-obs` pruning funnel named
    /// `trie-filter`. Each stage's `entered` is the previous stage's
    /// survivor count (node stages count nodes, leaf stages count
    /// members); the final stage's survivors equal
    /// [`FilterStats::candidates`].
    pub fn funnel(&self) -> dita_obs::Funnel {
        use dita_obs::names;
        let mut f = dita_obs::Funnel::new(names::FUNNEL_TRIE_FILTER);
        f.push_stage(
            names::STAGE_NODE_LENGTH,
            self.nodes_visited as u64,
            self.nodes_pruned_length as u64,
        );
        f.push_stage(
            names::STAGE_NODE_BUDGET,
            (self.nodes_visited - self.nodes_pruned_length) as u64,
            self.nodes_pruned_budget as u64,
        );
        f.push_stage(
            names::STAGE_LEAF_LENGTH,
            self.members_checked as u64,
            self.members_pruned_length as u64,
        );
        f.push_stage(
            names::STAGE_LEAF_OPAMD,
            (self.members_checked - self.members_pruned_length) as u64,
            self.members_pruned_opamd as u64,
        );
        f
    }
}

/// Reusable traversal state for repeated trie probes: the explicit DFS
/// stack the flat-layout walk runs on. Holding one across calls to
/// [`TrieIndex::candidate_count`] or
/// [`TrieIndex::candidates_with_scratch`] makes the probe allocation-free
/// once the stack has grown to its working size.
#[derive(Debug, Default)]
pub struct ProbeScratch {
    pub(crate) stack: Vec<(u32, f64, usize)>,
}

impl ProbeScratch {
    /// An empty scratch; the first probes grow it to working size.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Reusable traversal state for [`TrieIndex::candidates_batch`]: the DFS
/// frame stack plus the stacked per-frame active-query lists. One scratch
/// serves a whole batch (and, held across calls, a whole query stream)
/// without reallocating once grown to working size.
#[derive(Debug, Default)]
pub struct BatchProbeScratch {
    /// DFS frames: `(node_id, start)` where `start` indexes the first of
    /// this frame's active-query states in `states`.
    frames: Vec<(u32, u32)>,
    /// Active-query states of every live frame, stacked in push order:
    /// `(query index, remaining budget, ordered-suffix anchor)`. The
    /// topmost frame's states are always the suffix `states[start..]`.
    states: Vec<(u32, f64, u32)>,
    /// The popped frame's states, copied out before `states` is truncated.
    cur: Vec<(u32, f64, u32)>,
}

impl BatchProbeScratch {
    /// An empty scratch; the first batches grow it to working size.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Budget semantics of one probe, resolved once per probe from the
/// [`DistanceFunction`] so the per-node and per-member matches carry no
/// impossible `Scan` arm — Scan-mode probes return before any descent.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Walk {
    /// DTW: per-level distances subtract from the τ budget.
    Additive,
    /// Fréchet: every level is compared against the constant τ.
    Max,
    /// EDR/LCSS: levels farther than ϵ cost one edit from a ⌊τ⌋ budget.
    Edit {
        /// The matching tolerance ϵ.
        eps: f64,
        /// LCSS band half-width δ; `None` for EDR.
        delta: Option<usize>,
        /// Whether length-interval pruning (EDR-only) applies.
        edr: bool,
    },
}

impl Walk {
    /// The walk semantics for `func`; `None` when the function's index
    /// mode is `Scan` (no trie descent — ERP's global alignment gives the
    /// per-level budgets nothing sound to charge).
    pub(crate) fn of(func: &DistanceFunction) -> Option<Walk> {
        match func.index_mode() {
            IndexMode::Scan => None,
            IndexMode::Additive => Some(Walk::Additive),
            IndexMode::Max => Some(Walk::Max),
            IndexMode::EditCount { eps, .. } => Some(Walk::Edit {
                eps,
                delta: match func {
                    DistanceFunction::Lcss { delta, .. } => Some(*delta),
                    _ => None,
                },
                edr: matches!(func, DistanceFunction::Edr { .. }),
            }),
        }
    }

    /// Whether the EDR length filters apply.
    #[inline]
    pub(crate) fn is_edr(&self) -> bool {
        matches!(self, Walk::Edit { edr: true, .. })
    }
}

/// Evaluates one node's payload against the query; if the node survives
/// its level check it is pushed with its updated budget and suffix.
/// Prunes are recorded into `stats` under the stage that caused them.
///
/// Shared by the flat probe and the reference
/// [`crate::pointer::PointerTrie`] probe, so the two layouts differ only
/// in encoding, never in pruning decisions.
#[allow(clippy::too_many_arguments)]
pub(crate) fn visit_node(
    node_id: u32,
    mbr: &Mbr,
    depth: u8,
    node_min_len: u32,
    node_max_len: u32,
    q: &[Point],
    tau: f64,
    budget: f64,
    suffix: usize,
    walk: &Walk,
    stats: &mut FilterStats,
    stack: &mut Vec<(u32, f64, usize)>,
) {
    if let Some((new_budget, new_suffix)) = node_admits(
        mbr,
        depth,
        node_min_len,
        node_max_len,
        q,
        tau,
        budget,
        suffix,
        walk,
        stats,
    ) {
        stack.push((node_id, new_budget, new_suffix));
    }
}

/// The node-level admission predicate behind [`visit_node`] and the
/// batched probe: the EDR length-interval prune, the per-level MinDist
/// (with the Lemma 5.1 ordered-suffix scan on pivot levels) and the
/// per-walk budget update. Returns the `(budget, suffix)` to carry into
/// the subtree, or `None` when the node is pruned for this query.
///
/// Single-query and batched walks both route through here, so a batch of
/// one query makes byte-identical decisions to a plain probe.
#[allow(clippy::too_many_arguments)]
pub(crate) fn node_admits(
    mbr: &Mbr,
    depth: u8,
    node_min_len: u32,
    node_max_len: u32,
    q: &[Point],
    tau: f64,
    budget: f64,
    suffix: usize,
    walk: &Walk,
    stats: &mut FilterStats,
) -> Option<(f64, usize)> {
    stats.nodes_visited += 1;
    let n = q.len();
    // EDR length filter (Appendix A): every member of this subtree has
    // length in [min_len, max_len]; prune when |m − n| > τ holds for the
    // whole interval. Compared against the *original* τ — an edit
    // already charged for a missed pivot may be the very deletion that
    // explains the length gap, so the two budgets must not be combined.
    if walk.is_edr()
        && (node_min_len as f64 > n as f64 + tau || (node_max_len as f64) < n as f64 - tau)
    {
        stats.nodes_pruned_length += 1;
        return None;
    }
    // Distance of the query to this node's MBR, per level semantics.
    let (d, new_suffix) = match (depth, walk) {
        (1, Walk::Additive | Walk::Max) => (mbr.min_dist_point(&q[0]), suffix),
        (2, Walk::Additive | Walk::Max) => (mbr.min_dist_point(&q[n - 1]), suffix),
        (_, Walk::Edit { .. }) => {
            // Edit-family: any query point may absorb this element.
            let d = q
                .iter()
                .map(|p| mbr.min_dist_point_sq(p))
                .fold(f64::INFINITY, f64::min)
                .sqrt();
            (d, 0)
        }
        (_, Walk::Additive | Walk::Max) => {
            // Pivot level: ordered-suffix scan (Lemma 5.1). Points of the
            // suffix that cannot host this pivot within the current
            // budget can be discarded for the deeper pivots too.
            let mut best_sq = f64::INFINITY;
            let mut first_ok = None;
            let budget_sq = budget * budget;
            for (j, p) in q.iter().enumerate().skip(suffix) {
                let dsq = mbr.min_dist_point_sq(p);
                if dsq < best_sq {
                    best_sq = dsq;
                }
                if first_ok.is_none() && dsq <= budget_sq {
                    first_ok = Some(j);
                }
                // The minimum cannot improve further and the suffix
                // anchor is fixed: stop scanning.
                if best_sq == 0.0 && first_ok.is_some() {
                    break;
                }
            }
            (best_sq.sqrt(), first_ok.unwrap_or(suffix))
        }
    };

    let new_budget = match *walk {
        Walk::Additive => {
            if d > budget {
                stats.nodes_pruned_budget += 1;
                return None;
            }
            budget - d
        }
        Walk::Max => {
            if d > budget {
                stats.nodes_pruned_budget += 1;
                return None;
            }
            budget
        }
        Walk::Edit { eps, delta, .. } => {
            if d > eps {
                // LCSS only pays for an unmatched T element when the
                // trajectory is the shorter side (distance = min(m,n) − L).
                let charge = delta.is_none() || (node_max_len as usize) <= n;
                if charge {
                    if budget < 1.0 {
                        stats.nodes_pruned_budget += 1;
                        return None;
                    }
                    budget - 1.0
                } else {
                    budget
                }
            } else {
                budget
            }
        }
    };
    Some((new_budget, new_suffix))
}

/// The exact per-member leaf filter, on the member's own precomputed
/// artifacts: the ordered-pivot accumulated-minimum-distance test of
/// Lemma 5.1 under Additive/Max budgets, or the edit-family bound under
/// [`Walk::Edit`]. Sound: the tested bound never exceeds `f(T, Q)`.
///
/// Layout-agnostic (slices + an iterator of pivot positions), shared by
/// the flat and pointer probes.
pub(crate) fn member_admits<I: Iterator<Item = usize>>(
    q: &[Point],
    tau: f64,
    walk: &Walk,
    len: usize,
    index_points: &[Point],
    pivot_positions: I,
    soa: SoaView<'_>,
) -> bool {
    let pts = index_points;
    let n = q.len();
    match *walk {
        Walk::Additive => {
            let mut budget = tau - pts[0].dist(&q[0]);
            if budget < 0.0 {
                return false;
            }
            if pts.len() > 1 {
                budget -= pts[1].dist(&q[n - 1]);
                if budget < 0.0 {
                    return false;
                }
            }
            // Ordered suffix scan over the pivots.
            let mut suffix = 0usize;
            for p in &pts[2.min(pts.len())..] {
                let mut best_sq = f64::INFINITY;
                let mut first_ok = None;
                let budget_sq = budget * budget;
                for (j, qj) in q.iter().enumerate().skip(suffix) {
                    let d = p.dist_sq(qj);
                    if d < best_sq {
                        best_sq = d;
                    }
                    if first_ok.is_none() && d <= budget_sq {
                        first_ok = Some(j);
                    }
                    if best_sq == 0.0 && first_ok.is_some() {
                        break;
                    }
                }
                budget -= best_sq.sqrt();
                if budget < 0.0 {
                    return false;
                }
                suffix = first_ok.unwrap_or(suffix);
            }
            true
        }
        Walk::Max => {
            if pts[0].dist(&q[0]) > tau {
                return false;
            }
            if pts.len() > 1 && pts[1].dist(&q[n - 1]) > tau {
                return false;
            }
            let tau_sq = tau * tau;
            let mut suffix = 0usize;
            for p in &pts[2.min(pts.len())..] {
                let mut best_sq = f64::INFINITY;
                let mut first_ok = None;
                for (j, qj) in q.iter().enumerate().skip(suffix) {
                    let d = p.dist_sq(qj);
                    if d < best_sq {
                        best_sq = d;
                    }
                    if first_ok.is_none() && d <= tau_sq {
                        first_ok = Some(j);
                    }
                }
                if best_sq > tau_sq {
                    return false;
                }
                suffix = first_ok.unwrap_or(suffix);
            }
            true
        }
        Walk::Edit { eps, delta, .. } => {
            edit_family_admits(q, tau, eps, delta, len, pts, pivot_positions, soa)
        }
    }
}

/// Edit-family (EDR/LCSS) leaf filter. Both distances are bounded below
/// by the number of *shorter-side* points with no admissible partner:
///
/// * EDR: every T point (and symmetrically every Q point) without an
///   ϵ-close partner costs one edit.
/// * LCSS distance `min(m, n) − L`: every shorter-side point without an
///   (ϵ, δ)-band partner stays unmatched.
///
/// When the member is the shorter side its precomputed indexing points
/// are checked (band-restricted for LCSS — the paper's "part of the
/// query trajectory which fulfills the index constraint"); when the
/// query is shorter, its points are scanned with an early exit after
/// τ + 1 misses, so dissimilar pairs cost O(τ·δ) or O(τ·m), not a full
/// DP.
#[allow(clippy::too_many_arguments)]
pub(crate) fn edit_family_admits<I: Iterator<Item = usize>>(
    q: &[Point],
    tau: f64,
    eps: f64,
    delta: Option<usize>,
    len: usize,
    index_points: &[Point],
    pivot_positions: I,
    soa: SoaView<'_>,
) -> bool {
    let m = len;
    let n = q.len();
    let eps_sq = eps * eps;
    let lcss = delta.is_some();
    let cap = tau.floor() as usize;

    // Member-side bound: each indexing point (a distinct T point) with
    // no admissible partner forces one unmatched T point. Sound for EDR
    // always; for LCSS only when T is the shorter side.
    if !lcss || m <= n {
        let mut member_misses = 0usize;
        let mut last_pos = usize::MAX;
        let positions = std::iter::once(0)
            .chain(std::iter::once(m - 1))
            .chain(pivot_positions);
        for (pos, p) in positions.zip(index_points.iter()) {
            if pos == last_pos {
                continue; // m == 1: first and last are the same point
            }
            last_pos = pos;
            let range = match delta {
                // The paper's LCSS adaptation: only the part of the
                // query fulfilling the index constraint can match.
                Some(d) => pos.saturating_sub(d)..(pos + d + 1).min(n),
                None => 0..n,
            };
            let close = q[range].iter().any(|qj| p.dist_sq(qj) <= eps_sq);
            if !close {
                member_misses += 1;
                if member_misses > cap {
                    return false;
                }
            }
        }
    }

    // Query-side bound: each query point with no admissible partner in
    // T forces one unmatched Q point (an edit for EDR; an unmatched
    // shorter-side point for LCSS when Q is shorter). NOT additive with
    // the member-side count — one substitution covers one point of each
    // side — so the two bounds are taken independently.
    if n < m {
        let mut query_misses = 0usize;
        for (j, qj) in q.iter().enumerate() {
            let range = match delta {
                Some(d) => j.saturating_sub(d)..(j + d + 1).min(m),
                None => 0..m,
            };
            let close = range.clone().any(|ti| {
                let dx = soa.xs[ti] - qj.x;
                let dy = soa.ys[ti] - qj.y;
                dx * dx + dy * dy <= eps_sq
            });
            if !close {
                query_misses += 1;
                if query_misses > cap {
                    return false;
                }
            }
        }
    }
    true
}

/// The local trie index of one partition, in the succinct flat encoding:
/// a [`FlatNodes`] arena for the tree and a [`TrajStore`] pooling every
/// member's data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrieIndex {
    config: TrieConfig,
    nodes: FlatNodes,
    roots: Vec<u32>,
    store: TrajStore,
}

/// One STR tile of a trie level, split but not yet recursed into: the node
/// payload plus the member set that continues to the next level.
pub(crate) struct TileSpec {
    mbr: Mbr,
    depth: u8,
    /// Members stored at this node (all of them for leaves, the stopped
    /// ones otherwise), as local ids.
    node_members: Vec<u32>,
    /// Members descending to the next level (empty for leaves).
    deeper: Vec<usize>,
    max_len: u32,
    min_len: u32,
}

/// A fully built subtree in owned form. Subtrees are constructed
/// independently (possibly on different threads) and flattened into the
/// node arena afterwards in tile order, which makes the arena layout — and
/// therefore the serialized index — independent of the thread count.
pub(crate) struct PendingNode {
    pub(crate) mbr: Mbr,
    pub(crate) depth: u8,
    pub(crate) children: Vec<PendingNode>,
    pub(crate) members: Vec<u32>,
    pub(crate) max_len: u32,
    pub(crate) min_len: u32,
}

/// Splits `members` on their indexing point at `depth` (1-based) into STR
/// tiles, deciding for each tile whether it becomes a leaf.
pub(crate) fn split_tiles(
    data: &[IndexedTrajectory],
    config: &TrieConfig,
    members: Vec<usize>,
    depth: usize,
) -> Vec<TileSpec> {
    if members.is_empty() {
        return Vec::new();
    }
    let keys: Vec<Point> = members
        .iter()
        .map(|&i| data[i].index_points[depth - 1])
        .collect();
    let local: Vec<usize> = (0..members.len()).collect();
    let tiles = str_tiles(&keys, local, config.nl.min(members.len()));
    let mut out = Vec::new();
    for tile in tiles {
        if tile.is_empty() {
            continue;
        }
        let mbr = Mbr::from_points(tile.iter().map(|&li| &keys[li]));
        let tile_members: Vec<usize> = tile.iter().map(|&li| members[li]).collect();
        let max_len = tile_members
            .iter()
            .map(|&i| data[i].traj.len() as u32)
            .max()
            .unwrap_or(0);
        let min_len = tile_members
            .iter()
            .map(|&i| data[i].traj.len() as u32)
            .min()
            .unwrap_or(0);

        // Members whose indexing points end here stay in this node; the
        // rest continue to the next level unless the node is small enough
        // to become a leaf.
        let deeper: Vec<usize> = tile_members
            .iter()
            .copied()
            .filter(|&i| data[i].index_points.len() > depth)
            .collect();
        let is_leaf = tile_members.len() <= config.leaf_capacity || deeper.is_empty();
        let (node_members, deeper) = if is_leaf {
            (tile_members.iter().map(|&i| i as u32).collect(), Vec::new())
        } else {
            let stopped: Vec<u32> = tile_members
                .iter()
                .copied()
                .filter(|&i| data[i].index_points.len() <= depth)
                .map(|i| i as u32)
                .collect();
            (stopped, deeper)
        };
        out.push(TileSpec {
            mbr,
            depth: depth as u8,
            node_members,
            deeper,
            max_len,
            min_len,
        });
    }
    out
}

/// Recursively builds the subtree rooted at one tile.
pub(crate) fn build_subtree(
    data: &[IndexedTrajectory],
    config: &TrieConfig,
    spec: TileSpec,
) -> PendingNode {
    let depth = spec.depth as usize;
    let children = split_tiles(data, config, spec.deeper, depth + 1)
        .into_iter()
        .map(|c| build_subtree(data, config, c))
        .collect();
    PendingNode {
        mbr: spec.mbr,
        depth: spec.depth,
        children,
        members: spec.node_members,
        max_len: spec.max_len,
        min_len: spec.min_len,
    }
}

/// Tallies the arena sizes a pending subtree will need, so the flat arrays
/// can be allocated exactly once with exact capacities.
fn count_pending(p: &PendingNode, recs: &mut usize, children: &mut usize, members: &mut usize) {
    *recs += 1;
    *children += p.children.len();
    *members += p.members.len();
    for c in &p.children {
        count_pending(c, recs, children, members);
    }
}

/// Flattens a pending subtree into the node arena in DFS preorder (parent
/// before its subtree, siblings in tile order) — exactly the order the old
/// serial recursion produced — and returns the root's node id. Serial by
/// construction, so the arena bytes cannot depend on the build thread
/// count.
fn flatten(nodes: &mut FlatNodes, pending: PendingNode) -> u32 {
    let id = nodes.push(
        pending.mbr,
        pending.depth,
        pending.min_len,
        pending.max_len,
        &pending.members,
    );
    let kids: Vec<u32> = pending
        .children
        .into_iter()
        .map(|c| flatten(nodes, c))
        .collect();
    nodes.set_children(id, &kids);
    id
}

impl TrieIndex {
    /// Builds the index over a partition's trajectories (Algorithm 1's
    /// `LocalIndex`), using [`TrieConfig::build_threads`] threads.
    pub fn build(trajectories: Vec<Trajectory>, config: TrieConfig) -> Self {
        Self::build_timed(trajectories, config).0
    }

    /// Like [`TrieIndex::build`], additionally returning the CPU time burned
    /// by helper threads (zero for serial builds). Callers running inside a
    /// cluster task charge it back via `dita_cluster::charge_compute` so the
    /// simulated cost model sees the work, not the host parallelism — the
    /// same contract as `verify_threads`.
    pub fn build_timed(trajectories: Vec<Trajectory>, config: TrieConfig) -> (Self, Duration) {
        let (data, pending, helper) = build_pending(trajectories, &config);
        let (mut recs, mut kids, mut mems) = (0usize, 0usize, 0usize);
        for p in &pending {
            count_pending(p, &mut recs, &mut kids, &mut mems);
        }
        let mut nodes = FlatNodes::with_capacity(recs, kids, mems);
        let roots: Vec<u32> = pending
            .into_iter()
            .map(|p| flatten(&mut nodes, p))
            .collect();
        let store = TrajStore::from_indexed(data, config.cell_side);
        let index = TrieIndex {
            config,
            nodes,
            roots,
            store,
        };
        (index, helper)
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> &TrieConfig {
        &self.config
    }

    /// Number of indexed trajectories.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Returns `true` when no trajectories are indexed.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Access a stored trajectory by local id.
    ///
    /// # Panics
    /// Accessors of the returned handle panic when `id` is out of range;
    /// worker-executed code handed ids from outside the trie should use
    /// [`TrieIndex::try_get`] instead.
    #[inline]
    pub fn get(&self, id: u32) -> EntryRef<'_> {
        self.store.entry(id as usize)
    }

    /// [`TrieIndex::get`] without the panic: `None` when `id` is out of
    /// range. The checked form worker tasks use so a corrupted candidate
    /// list surfaces as a retryable `TaskError` instead of unwinding the
    /// worker.
    #[inline]
    pub fn try_get(&self, id: u32) -> Option<EntryRef<'_>> {
        self.store.try_entry(id as usize)
    }

    /// Iterates over all stored trajectories in local-id order.
    pub fn entries(&self) -> impl Iterator<Item = EntryRef<'_>> {
        self.store.iter()
    }

    /// The pooled member store.
    pub fn store(&self) -> &TrajStore {
        &self.store
    }

    /// Allocated heap size in bytes (capacity, not length — reserve slack
    /// is real memory), *excluding* the raw trajectory payload itself
    /// (reported separately in the Table 5 experiment).
    pub fn index_size_bytes(&self) -> usize {
        self.nodes.size_bytes()
            + self.roots.capacity() * std::mem::size_of::<u32>()
            + (self.store.size_bytes() - self.store.data_bytes())
    }

    /// Total allocated size including the clustered trajectory payload.
    pub fn size_bytes(&self) -> usize {
        self.nodes.size_bytes()
            + self.roots.capacity() * std::mem::size_of::<u32>()
            + self.store.size_bytes()
    }

    /// The filter step (Algorithm 2's `DITA-Search-Filter`): local ids of
    /// every trajectory that may be within `tau` of `q` under `func`.
    ///
    /// Sound: never drops a true answer. The returned candidates still need
    /// verification.
    pub fn candidates(&self, q: &[Point], tau: f64, func: &DistanceFunction) -> Vec<u32> {
        self.candidates_with_stats(q, tau, func).0
    }

    /// Like [`TrieIndex::candidates`] but also reports the filter funnel.
    pub fn candidates_with_stats(
        &self,
        q: &[Point],
        tau: f64,
        func: &DistanceFunction,
    ) -> (Vec<u32>, FilterStats) {
        let mut scratch = ProbeScratch::new();
        self.candidates_with_scratch(q, tau, func, &mut scratch)
    }

    /// [`TrieIndex::candidates_with_stats`] with a caller-held
    /// [`ProbeScratch`], so repeated probes reuse the traversal stack.
    pub fn candidates_with_scratch(
        &self,
        q: &[Point],
        tau: f64,
        func: &DistanceFunction,
        scratch: &mut ProbeScratch,
    ) -> (Vec<u32>, FilterStats) {
        let mut stats = FilterStats::default();
        let mut out = Vec::new();
        self.probe(q, tau, func, &mut stats, &mut scratch.stack, |m| {
            out.push(m)
        });
        out.sort_unstable();
        out.dedup();
        (out, stats)
    }

    /// Counts the candidates [`TrieIndex::candidates`] would return without
    /// materializing them — the allocation-free probe the join planner's
    /// `comp` sampling (§6.2) runs per edge. Every stored trajectory lives
    /// in exactly one trie node, so the emitted count needs no dedup and
    /// always equals `candidates().len()`.
    pub fn candidate_count(
        &self,
        q: &[Point],
        tau: f64,
        func: &DistanceFunction,
        scratch: &mut ProbeScratch,
    ) -> usize {
        let mut stats = FilterStats::default();
        let mut count = 0usize;
        self.probe(q, tau, func, &mut stats, &mut scratch.stack, |_| count += 1);
        count
    }

    /// Batched filter (Algorithm 2, amortized): one walk of the flat arena
    /// answers a whole batch of queries. Each DFS frame carries the list of
    /// queries still active at that node; the list shrinks as the
    /// node-level prunes (EDR length interval, MinDist budget) reject
    /// queries per node, and a subtree is descended only while at least one
    /// query survives — so each [`FlatNodes`] record and each member's SoA
    /// block is touched once for all queries that reach it instead of once
    /// per query.
    ///
    /// Returns one `(candidate ids, filter funnel)` pair per query, each
    /// byte-identical to what [`TrieIndex::candidates_with_stats`] returns
    /// for that query alone: both paths route node decisions through
    /// [`node_admits`] and member decisions through [`member_admits`] with
    /// identical budgets, so pruning never diverges. Queries with an empty
    /// point list or a negative `tau` yield empty results, matching the
    /// single-query probe. Scan-mode functions (ERP) emit every stored id
    /// per query with no descent, as in the single-query path.
    pub fn candidates_batch(
        &self,
        queries: &[&[Point]],
        taus: &[f64],
        func: &DistanceFunction,
        scratch: &mut BatchProbeScratch,
    ) -> Vec<(Vec<u32>, FilterStats)> {
        assert_eq!(queries.len(), taus.len(), "one tau per query");
        let mut out: Vec<(Vec<u32>, FilterStats)> = queries
            .iter()
            .map(|_| (Vec::new(), FilterStats::default()))
            .collect();
        let Some(walk) = Walk::of(func) else {
            // Scan mode: every stored trajectory, for every live query.
            for (qi, q) in queries.iter().enumerate() {
                if q.is_empty() || taus[qi] < 0.0 {
                    continue;
                }
                out[qi].0.extend(0..self.store.len() as u32);
            }
            return out;
        };
        let edr = walk.is_edr();
        scratch.frames.clear();
        scratch.states.clear();
        for &r in &self.roots {
            let rec = self.nodes.rec(r);
            let start = scratch.states.len() as u32;
            for (qi, q) in queries.iter().enumerate() {
                if q.is_empty() || taus[qi] < 0.0 {
                    continue;
                }
                let tau = taus[qi];
                if let Some((b, s)) = node_admits(
                    &rec.mbr,
                    rec.depth,
                    rec.min_len,
                    rec.max_len,
                    q,
                    tau,
                    tau,
                    0,
                    &walk,
                    &mut out[qi].1,
                ) {
                    scratch.states.push((qi as u32, b, s as u32));
                }
            }
            if scratch.states.len() as u32 > start {
                scratch.frames.push((r, start));
            }
        }
        while let Some((node_id, start)) = scratch.frames.pop() {
            // The popped frame is the most recently pushed, so its states
            // are exactly the stack suffix `[start..]`; truncating restores
            // the parent frames' ranges untouched.
            let start = start as usize;
            scratch.cur.clear();
            scratch.cur.extend_from_slice(&scratch.states[start..]);
            scratch.states.truncate(start);
            let rec = *self.nodes.rec(node_id);
            for &m in self.nodes.members(&rec) {
                let e = self.store.entry(m as usize);
                for &(qi, _, _) in &scratch.cur {
                    let qi = qi as usize;
                    let q = queries[qi];
                    let tau = taus[qi];
                    let (ids, stats) = &mut out[qi];
                    stats.members_checked += 1;
                    if edr && dita_distance::bounds::length_bound_edr(e.len(), q.len(), tau) {
                        stats.members_pruned_length += 1;
                        continue;
                    }
                    let admits = member_admits(
                        q,
                        tau,
                        &walk,
                        e.len(),
                        e.index_points(),
                        e.pivots().iter().map(|&p| p as usize),
                        e.soa(),
                    );
                    if admits {
                        ids.push(m);
                    } else {
                        stats.members_pruned_opamd += 1;
                    }
                }
            }
            for &c in self.nodes.children(&rec) {
                let crec = self.nodes.rec(c);
                let cstart = scratch.states.len() as u32;
                for &(qi, budget, suffix) in &scratch.cur {
                    let qiu = qi as usize;
                    if let Some((b, s)) = node_admits(
                        &crec.mbr,
                        crec.depth,
                        crec.min_len,
                        crec.max_len,
                        queries[qiu],
                        taus[qiu],
                        budget,
                        suffix as usize,
                        &walk,
                        &mut out[qiu].1,
                    ) {
                        scratch.states.push((qi, b, s as u32));
                    }
                }
                if scratch.states.len() as u32 > cstart {
                    scratch.frames.push((c, cstart));
                }
            }
        }
        for (ids, _) in &mut out {
            ids.sort_unstable();
            ids.dedup();
        }
        out
    }

    /// The shared filter traversal behind [`TrieIndex::candidates_with_scratch`]
    /// and [`TrieIndex::candidate_count`]: walks the flat node arena with an
    /// explicit stack and calls `emit` for every member that survives the
    /// whole funnel, in traversal order (unsorted, but free of duplicates).
    fn probe<F: FnMut(u32)>(
        &self,
        q: &[Point],
        tau: f64,
        func: &DistanceFunction,
        stats: &mut FilterStats,
        stack: &mut Vec<(u32, f64, usize)>,
        mut emit: F,
    ) {
        stack.clear();
        if q.is_empty() || tau < 0.0 {
            return;
        }
        let Some(walk) = Walk::of(func) else {
            // Scan mode (ERP): the trie's per-level budgets are unsound, so
            // every stored trajectory is a candidate and nothing descends.
            for id in 0..self.store.len() as u32 {
                emit(id);
            }
            return;
        };
        let edr = walk.is_edr();
        for &r in &self.roots {
            let rec = self.nodes.rec(r);
            visit_node(
                r,
                &rec.mbr,
                rec.depth,
                rec.min_len,
                rec.max_len,
                q,
                tau,
                tau,
                0,
                &walk,
                stats,
                stack,
            );
        }
        while let Some((node_id, budget, suffix)) = stack.pop() {
            let rec = *self.nodes.rec(node_id);
            for &m in self.nodes.members(&rec) {
                // Leaf emission runs the exact per-trajectory OPAMD filter
                // (Lemma 5.1) over the member's own indexing points — the
                // node MBRs above only bounded groups.
                stats.members_checked += 1;
                let e = self.store.entry(m as usize);
                if edr && dita_distance::bounds::length_bound_edr(e.len(), q.len(), tau) {
                    stats.members_pruned_length += 1;
                    continue;
                }
                let admits = member_admits(
                    q,
                    tau,
                    &walk,
                    e.len(),
                    e.index_points(),
                    e.pivots().iter().map(|&p| p as usize),
                    e.soa(),
                );
                if admits {
                    emit(m);
                } else {
                    stats.members_pruned_opamd += 1;
                }
            }
            for &c in self.nodes.children(&rec) {
                let crec = self.nodes.rec(c);
                visit_node(
                    c,
                    &crec.mbr,
                    crec.depth,
                    crec.min_len,
                    crec.max_len,
                    q,
                    tau,
                    budget,
                    suffix,
                    &walk,
                    stats,
                    stack,
                );
            }
        }
    }
}

/// The layout-independent first half of a trie build: parallel
/// per-trajectory preprocessing into order-preserving slots, then root-tile
/// splitting with per-tile subtree construction (parallel when a pool
/// exists). Returns the preprocessed members, the pending subtrees in tile
/// order and the helper-thread CPU time to charge back.
///
/// Shared with [`crate::pointer::PointerTrie`] so both encodings flatten
/// the *same* deterministic tree.
pub(crate) fn build_pending(
    trajectories: Vec<Trajectory>,
    config: &TrieConfig,
) -> (Vec<IndexedTrajectory>, Vec<PendingNode>, Duration) {
    let threads = config.build_threads.max(1);
    let pool = if threads > 1 && trajectories.len() > 1 {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .ok()
    } else {
        None
    };
    let helper_ns = AtomicU64::new(0);

    // --- 1. Per-trajectory preprocessing (pivots, cells, SoA) ---
    let data: Vec<IndexedTrajectory> = match &pool {
        None => trajectories
            .into_iter()
            .map(|t| IndexedTrajectory::new(t, config.k, config.strategy, config.cell_side))
            .collect(),
        Some(pool) => {
            // ~4 chunks per thread, results landing in pre-assigned
            // slots so the data order (and thus every local id) matches
            // the serial build.
            let n = trajectories.len();
            let chunk = n.div_ceil(threads * 4).max(1);
            let mut batches: Vec<Vec<Trajectory>> = Vec::with_capacity(n.div_ceil(chunk));
            let mut it = trajectories.into_iter();
            loop {
                let batch: Vec<Trajectory> = it.by_ref().take(chunk).collect();
                if batch.is_empty() {
                    break;
                }
                batches.push(batch);
            }
            let mut slots: Vec<Option<Vec<IndexedTrajectory>>> = Vec::new();
            slots.resize_with(batches.len(), || None);
            let helper = &helper_ns;
            pool.scope(|s| {
                for (batch, slot) in batches.into_iter().zip(slots.iter_mut()) {
                    s.spawn(move |_| {
                        let t0 = dita_obs::thread_cpu_time();
                        *slot = Some(
                            batch
                                .into_iter()
                                .map(|t| {
                                    IndexedTrajectory::new(
                                        t,
                                        config.k,
                                        config.strategy,
                                        config.cell_side,
                                    )
                                })
                                .collect(),
                        );
                        let dt = dita_obs::thread_cpu_time().saturating_sub(t0);
                        helper.fetch_add(dt.as_nanos() as u64, Ordering::Relaxed);
                    });
                }
            });
            slots
                .into_iter()
                .flat_map(|s| s.expect("preprocessing slot left unfilled"))
                .collect()
        }
    };

    // --- 2. Tree construction ---
    // The root level is split serially; each root tile's subtree is then
    // built independently (in parallel when a pool exists — the spawns
    // are non-nested, so per-spawn CPU deltas account every helper
    // cycle exactly once) and flattened into the arena in tile order.
    let all: Vec<usize> = (0..data.len()).collect();
    let root_tiles = split_tiles(&data, config, all, 1);
    let pending: Vec<PendingNode> = match &pool {
        None => root_tiles
            .into_iter()
            .map(|t| build_subtree(&data, config, t))
            .collect(),
        Some(pool) => {
            let mut slots: Vec<Option<PendingNode>> = Vec::new();
            slots.resize_with(root_tiles.len(), || None);
            let helper = &helper_ns;
            let data_ref = &data;
            pool.scope(|s| {
                for (tile, slot) in root_tiles.into_iter().zip(slots.iter_mut()) {
                    s.spawn(move |_| {
                        let t0 = dita_obs::thread_cpu_time();
                        *slot = Some(build_subtree(data_ref, config, tile));
                        let dt = dita_obs::thread_cpu_time().saturating_sub(t0);
                        helper.fetch_add(dt.as_nanos() as u64, Ordering::Relaxed);
                    });
                }
            });
            slots
                .into_iter()
                .map(|s| s.expect("subtree slot left unfilled"))
                .collect()
        }
    };
    (
        data,
        pending,
        Duration::from_nanos(helper_ns.load(Ordering::Relaxed)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dita_trajectory::trajectory::figure1_trajectories;

    fn fig1_index(nl: usize, k: usize) -> TrieIndex {
        TrieIndex::build(
            figure1_trajectories(),
            TrieConfig {
                k,
                nl,
                leaf_capacity: 0,
                strategy: PivotStrategy::NeighborDistance,
                cell_side: 2.0,
                ..TrieConfig::default()
            },
        )
    }

    fn ids_of(index: &TrieIndex, cands: &[u32]) -> Vec<u64> {
        let mut v: Vec<u64> = cands.iter().map(|&c| index.get(c).id()).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn builds_figure5_shape() {
        // Figure 5: N_L = 2, K = 2, neighbor pivots. With leaf capacity 0 the
        // trie descends all K+2 levels, as drawn in the paper.
        let index = fig1_index(2, 2);
        assert_eq!(index.len(), 5);
        assert!(!index.is_empty());
        assert!(index.index_size_bytes() > 0);
        assert!(index.size_bytes() > index.index_size_bytes());
    }

    #[test]
    fn filter_is_sound_for_dtw() {
        // Candidates must be a superset of the true answers for any τ.
        let index = fig1_index(2, 2);
        let ts = figure1_trajectories();
        for q in &ts {
            for tau in [0.5, 1.0, 3.0, 5.0, 10.0] {
                let cands = ids_of(
                    &index,
                    &index.candidates(q.points(), tau, &DistanceFunction::Dtw),
                );
                for t in &ts {
                    let d = dita_distance::dtw(t.points(), q.points());
                    if d <= tau {
                        assert!(
                            cands.contains(&t.id),
                            "filter dropped T{} (d={d}) for Q=T{} tau={tau}",
                            t.id,
                            q.id
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn paper_example_5_2_walkthrough() {
        // Example 5.2: querying the Figure 5 trie with Q = T4 and τ = 3
        // yields T4 as the only candidate.
        let index = fig1_index(2, 2);
        let ts = figure1_trajectories();
        let cands = ids_of(
            &index,
            &index.candidates(ts[3].points(), 3.0, &DistanceFunction::Dtw),
        );
        assert_eq!(cands, vec![4]);
    }

    #[test]
    fn example_2_6_candidates_contain_answers() {
        // Q = T1, τ = 3 → answers {T1, T2} must survive the filter.
        let index = fig1_index(2, 2);
        let ts = figure1_trajectories();
        let cands = ids_of(
            &index,
            &index.candidates(ts[0].points(), 3.0, &DistanceFunction::Dtw),
        );
        assert!(cands.contains(&1));
        assert!(cands.contains(&2));
        // T4/T5 start far from T1's first point and should be pruned.
        assert!(!cands.contains(&4));
        assert!(!cands.contains(&5));
    }

    #[test]
    fn filter_sound_for_all_functions() {
        let index = fig1_index(2, 2);
        let ts = figure1_trajectories();
        let fns = [
            DistanceFunction::Dtw,
            DistanceFunction::Frechet,
            DistanceFunction::Edr { eps: 1.0 },
            DistanceFunction::Lcss { eps: 1.0, delta: 2 },
            DistanceFunction::Erp { gap: (0.0, 0.0) },
        ];
        for f in fns {
            for q in &ts {
                for tau in [0.0, 1.0, 2.0, 4.0, 8.0] {
                    let cands = ids_of(&index, &index.candidates(q.points(), tau, &f));
                    for t in &ts {
                        let d = f.distance(t.points(), q.points());
                        if d <= tau {
                            assert!(
                                cands.contains(&t.id),
                                "{f}: dropped T{} (d={d}) for Q=T{} tau={tau}",
                                t.id,
                                q.id
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn zero_tau_still_finds_self() {
        let index = fig1_index(2, 2);
        let ts = figure1_trajectories();
        for t in &ts {
            let cands = ids_of(
                &index,
                &index.candidates(t.points(), 0.0, &DistanceFunction::Dtw),
            );
            assert!(cands.contains(&t.id));
        }
    }

    #[test]
    fn negative_tau_or_empty_query_yields_nothing() {
        let index = fig1_index(2, 2);
        let ts = figure1_trajectories();
        assert!(index
            .candidates(ts[0].points(), -1.0, &DistanceFunction::Dtw)
            .is_empty());
        assert!(index
            .candidates(&[], 3.0, &DistanceFunction::Dtw)
            .is_empty());
    }

    #[test]
    fn short_trajectories_without_pivots_still_indexed() {
        // 2-point trajectories have no interior pivots at all.
        let ts = vec![
            Trajectory::from_coords(1, &[(0.0, 0.0), (1.0, 0.0)]),
            Trajectory::from_coords(2, &[(0.1, 0.0), (1.1, 0.0)]),
            Trajectory::from_coords(3, &[(5.0, 5.0), (6.0, 5.0), (7.0, 5.0), (8.0, 5.0)]),
        ];
        let index = TrieIndex::build(
            ts.clone(),
            TrieConfig {
                k: 2,
                nl: 2,
                leaf_capacity: 0,
                strategy: PivotStrategy::NeighborDistance,
                cell_side: 1.0,
                ..TrieConfig::default()
            },
        );
        assert_eq!(index.len(), 3);
        let q = &ts[0];
        let cands = ids_of(
            &index,
            &index.candidates(q.points(), 1.0, &DistanceFunction::Dtw),
        );
        assert!(cands.contains(&1));
        assert!(cands.contains(&2));
        assert!(!cands.contains(&3));
    }

    #[test]
    fn filter_stats_stage_counts_are_consistent() {
        let index = fig1_index(2, 2);
        let ts = figure1_trajectories();
        let fns = [
            DistanceFunction::Dtw,
            DistanceFunction::Frechet,
            DistanceFunction::Edr { eps: 1.0 },
            DistanceFunction::Lcss { eps: 1.0, delta: 2 },
        ];
        for f in &fns {
            for q in &ts {
                for tau in [0.5, 1.0, 3.0, 8.0] {
                    let (cands, stats) = index.candidates_with_stats(q.points(), tau, f);
                    // Survivors of the funnel are exactly the emitted
                    // candidates (each member lives in one node, so no
                    // dedup slack).
                    assert_eq!(stats.candidates(), cands.len(), "{f} tau={tau}");
                    let funnel = stats.funnel();
                    assert_eq!(funnel.survivors() as usize, cands.len());
                    assert_eq!(
                        stats.nodes_pruned(),
                        stats.nodes_pruned_length + stats.nodes_pruned_budget
                    );
                    assert_eq!(
                        stats.members_rejected(),
                        stats.members_pruned_length + stats.members_pruned_opamd
                    );
                    // Stage chaining: each stage enters what survived the
                    // one before it.
                    assert_eq!(funnel.stages[1].entered, funnel.stages[0].survivors());
                    assert_eq!(funnel.stages[3].entered, funnel.stages[2].survivors());
                    assert!(stats.members_checked <= index.len());
                }
            }
        }
    }

    #[test]
    fn non_edr_probes_never_use_length_stages() {
        let index = fig1_index(2, 2);
        let ts = figure1_trajectories();
        let (_, stats) = index.candidates_with_stats(ts[0].points(), 1.0, &DistanceFunction::Dtw);
        assert_eq!(stats.nodes_pruned_length, 0);
        assert_eq!(stats.members_pruned_length, 0);
        assert!(stats.nodes_visited > 0);
    }

    #[test]
    fn edr_length_pruning_shows_up_in_its_stage() {
        // A query much longer than every indexed trajectory with tiny τ:
        // the EDR length interval must prune at the node stage.
        let index = fig1_index(2, 2);
        let q: Vec<Point> = (0..200).map(|i| Point::new(i as f64, 0.0)).collect();
        let (cands, stats) =
            index.candidates_with_stats(&q, 1.0, &DistanceFunction::Edr { eps: 1.0 });
        assert!(cands.is_empty());
        assert!(
            stats.nodes_pruned_length > 0,
            "length stage silent: {stats:?}"
        );
    }

    #[test]
    fn merged_stats_accumulate_all_stages() {
        let index = fig1_index(2, 2);
        let ts = figure1_trajectories();
        let (_, a) = index.candidates_with_stats(ts[0].points(), 1.0, &DistanceFunction::Dtw);
        let (_, b) = index.candidates_with_stats(ts[3].points(), 1.0, &DistanceFunction::Dtw);
        let mut m = a;
        m.merge(&b);
        assert_eq!(m.nodes_visited, a.nodes_visited + b.nodes_visited);
        assert_eq!(
            m.members_pruned_opamd,
            a.members_pruned_opamd + b.members_pruned_opamd
        );
        let mut f = a.funnel();
        f.merge(&b.funnel());
        assert_eq!(f, m.funnel());
    }

    #[test]
    fn deep_k_matches_shallow_answers() {
        // Pruning power may differ across K but soundness must not.
        let ts = figure1_trajectories();
        for k in [0, 1, 2, 3] {
            let index = fig1_index(2, k);
            for q in &ts {
                let cands = ids_of(
                    &index,
                    &index.candidates(q.points(), 3.0, &DistanceFunction::Dtw),
                );
                for t in &ts {
                    if dita_distance::dtw(t.points(), q.points()) <= 3.0 {
                        assert!(cands.contains(&t.id), "k={k}");
                    }
                }
            }
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh_probes() {
        let index = fig1_index(2, 2);
        let ts = figure1_trajectories();
        let mut scratch = ProbeScratch::new();
        for q in &ts {
            for tau in [0.5, 3.0] {
                let fresh = index.candidates_with_stats(q.points(), tau, &DistanceFunction::Dtw);
                let reused = index.candidates_with_scratch(
                    q.points(),
                    tau,
                    &DistanceFunction::Dtw,
                    &mut scratch,
                );
                assert_eq!(fresh, reused);
                assert_eq!(
                    index.candidate_count(q.points(), tau, &DistanceFunction::Dtw, &mut scratch),
                    fresh.0.len()
                );
            }
        }
    }
}
