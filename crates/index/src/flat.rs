//! Succinct flat-array storage for the trie local index.
//!
//! The original [`crate::trie`] layout kept one heap allocation per node
//! (two `Vec<u32>` each) and one [`IndexedTrajectory`] per member — itself
//! five heap allocations, including a full structure-of-arrays *copy* of
//! the point data next to the `Trajectory`'s own `Vec<Point>`. At the
//! paper's scale (§7: tens of millions of trajectories per worker) the
//! pointer overhead and the duplicated coordinates, not the tree logic,
//! cap how many trajectories fit in worker RAM.
//!
//! This module re-encodes both halves into contiguous arenas:
//!
//! * [`FlatNodes`] — fixed-width [`NodeRec`] records plus two shared
//!   CSR-style `u32` arrays for children and members; a node refers to its
//!   adjacency by `(start, len)` offsets instead of owning allocations.
//! * [`TrajStore`] — all member trajectories pooled into shared coordinate,
//!   indexing-point, pivot and cell arenas with `u32` offset arrays. The
//!   SoA coordinate arena **is** the canonical point storage: the flat
//!   index holds one copy of every coordinate where the pointer layout
//!   held two.
//!
//! Members are exposed as cheap [`EntryRef`] handles (a store pointer plus
//! an index) with the same accessors verification needs. All arenas are
//! built with exact capacities by one serial pass over the deterministic
//! build output, so the encoded bytes are independent of
//! [`crate::trie::TrieConfig::build_threads`].

use crate::trie::IndexedTrajectory;
use dita_trajectory::{Cell, Mbr, Point, SoaView, Trajectory, TrajectoryId};
use serde::{Deserialize, Serialize};

/// One fixed-width trie node record. Adjacency lives in the shared arrays
/// of [`FlatNodes`]; the record only carries offsets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeRec {
    /// MBR of the members' indexing point at this node's depth.
    pub mbr: Mbr,
    /// Offset of the first child id in the shared children array.
    children_start: u32,
    /// Number of children (0 for leaves).
    children_len: u32,
    /// Offset of the first member id in the shared members array.
    members_start: u32,
    /// Number of members stored at this node.
    members_len: u32,
    /// Shortest trajectory in this subtree (EDR length filter).
    pub min_len: u32,
    /// Longest trajectory in this subtree (EDR/LCSS filters).
    pub max_len: u32,
    /// Depth: 1 = first point, 2 = last point, 3.. = pivots.
    pub depth: u8,
}

/// The node arena of one trie: records plus the two shared CSR arrays.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FlatNodes {
    recs: Vec<NodeRec>,
    children: Vec<u32>,
    members: Vec<u32>,
}

impl FlatNodes {
    /// An empty arena with exact capacities (so capacity-honest size
    /// accounting reports no slack).
    pub(crate) fn with_capacity(recs: usize, children: usize, members: usize) -> Self {
        FlatNodes {
            recs: Vec::with_capacity(recs),
            children: Vec::with_capacity(children),
            members: Vec::with_capacity(members),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.recs.len()
    }

    /// Whether the arena holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.recs.is_empty()
    }

    /// The record of node `id`.
    #[inline]
    pub fn rec(&self, id: u32) -> &NodeRec {
        &self.recs[id as usize]
    }

    /// Child ids of a record.
    #[inline]
    pub fn children(&self, rec: &NodeRec) -> &[u32] {
        let s = rec.children_start as usize;
        &self.children[s..s + rec.children_len as usize]
    }

    /// Member ids stored at a record.
    #[inline]
    pub fn members(&self, rec: &NodeRec) -> &[u32] {
        let s = rec.members_start as usize;
        &self.members[s..s + rec.members_len as usize]
    }

    /// Appends a node (members copied into the shared array, children
    /// patched later via [`FlatNodes::set_children`]) and returns its id.
    pub(crate) fn push(
        &mut self,
        mbr: Mbr,
        depth: u8,
        min_len: u32,
        max_len: u32,
        members: &[u32],
    ) -> u32 {
        let members_start = self.members.len() as u32;
        self.members.extend_from_slice(members);
        let id = self.recs.len() as u32;
        self.recs.push(NodeRec {
            mbr,
            children_start: 0,
            children_len: 0,
            members_start,
            members_len: members.len() as u32,
            min_len,
            max_len,
            depth,
        });
        id
    }

    /// Assigns the (already flattened) children of node `id`.
    pub(crate) fn set_children(&mut self, id: u32, kids: &[u32]) {
        let start = self.children.len() as u32;
        self.children.extend_from_slice(kids);
        let rec = &mut self.recs[id as usize];
        rec.children_start = start;
        rec.children_len = kids.len() as u32;
    }

    /// Allocated heap bytes (capacity, not length — slack is real memory).
    pub fn size_bytes(&self) -> usize {
        self.recs.capacity() * std::mem::size_of::<NodeRec>()
            + self.children.capacity() * std::mem::size_of::<u32>()
            + self.members.capacity() * std::mem::size_of::<u32>()
    }
}

/// All member trajectories of one trie, pooled into shared arenas.
///
/// For `n` members, every `*_off` array holds `n + 1` offsets; member `i`
/// owns the half-open arena range `off[i]..off[i + 1]`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrajStore {
    ids: Vec<TrajectoryId>,
    /// Offsets into `xs`/`ys` — the canonical (SoA) point storage.
    pt_off: Vec<u32>,
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// Offsets into `ips` (indexing points: first, last, pivots).
    ip_off: Vec<u32>,
    ips: Vec<Point>,
    /// Offsets into `pivs` (0-based pivot positions, ascending).
    piv_off: Vec<u32>,
    pivs: Vec<u32>,
    /// Whole-trajectory MBRs, one per member.
    mbrs: Vec<Mbr>,
    /// Offsets into `cells` (Lemma 5.6 compression).
    cell_off: Vec<u32>,
    cells: Vec<Cell>,
    /// The cell side length `D` shared by every member.
    cell_side: f64,
}

impl TrajStore {
    /// Pools a preprocessed member list into exact-capacity arenas. This is
    /// pure data movement: the build output (and therefore the serialized
    /// store) cannot depend on how many threads preprocessed `data`.
    pub fn from_indexed(data: Vec<IndexedTrajectory>, cell_side: f64) -> Self {
        let n = data.len();
        let total_pts: usize = data.iter().map(|d| d.traj.len()).sum();
        let total_ips: usize = data.iter().map(|d| d.index_points.len()).sum();
        let total_pivs: usize = data.iter().map(|d| d.pivots.len()).sum();
        let total_cells: usize = data.iter().map(|d| d.cells.cells().len()).sum();
        assert!(
            total_pts <= u32::MAX as usize,
            "trajectory arena exceeds u32 offsets"
        );
        let mut store = TrajStore {
            ids: Vec::with_capacity(n),
            pt_off: Vec::with_capacity(n + 1),
            xs: Vec::with_capacity(total_pts),
            ys: Vec::with_capacity(total_pts),
            ip_off: Vec::with_capacity(n + 1),
            ips: Vec::with_capacity(total_ips),
            piv_off: Vec::with_capacity(n + 1),
            pivs: Vec::with_capacity(total_pivs),
            mbrs: Vec::with_capacity(n),
            cell_off: Vec::with_capacity(n + 1),
            cells: Vec::with_capacity(total_cells),
            cell_side,
        };
        store.pt_off.push(0);
        store.ip_off.push(0);
        store.piv_off.push(0);
        store.cell_off.push(0);
        for it in &data {
            store.ids.push(it.traj.id);
            let view = it.soa.view();
            store.xs.extend_from_slice(view.xs);
            store.ys.extend_from_slice(view.ys);
            store.pt_off.push(store.xs.len() as u32);
            store.ips.extend_from_slice(&it.index_points);
            store.ip_off.push(store.ips.len() as u32);
            store.pivs.extend(it.pivots.iter().map(|&p| p as u32));
            store.piv_off.push(store.pivs.len() as u32);
            store.mbrs.push(it.mbr);
            store.cells.extend_from_slice(it.cells.cells());
            store.cell_off.push(store.cells.len() as u32);
        }
        store
    }

    /// Number of stored trajectories.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the store holds no trajectories.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Member `i` as a borrow handle.
    ///
    /// # Panics
    /// Panics when `i` is out of range (worker code uses
    /// [`TrajStore::try_entry`]).
    #[inline]
    pub fn entry(&self, i: usize) -> EntryRef<'_> {
        assert!(i < self.ids.len(), "trajectory id out of range");
        EntryRef { store: self, i }
    }

    /// [`TrajStore::entry`] without the panic.
    #[inline]
    pub fn try_entry(&self, i: usize) -> Option<EntryRef<'_>> {
        (i < self.ids.len()).then_some(EntryRef { store: self, i })
    }

    /// Iterates over all members in id order.
    pub fn iter(&self) -> impl Iterator<Item = EntryRef<'_>> {
        (0..self.ids.len()).map(move |i| EntryRef { store: self, i })
    }

    /// The shared cell side length `D`.
    pub fn cell_side(&self) -> f64 {
        self.cell_side
    }

    /// Allocated heap bytes of every arena (capacity-honest).
    pub fn size_bytes(&self) -> usize {
        use std::mem::size_of;
        self.ids.capacity() * size_of::<TrajectoryId>()
            + self.pt_off.capacity() * size_of::<u32>()
            + (self.xs.capacity() + self.ys.capacity()) * size_of::<f64>()
            + self.ip_off.capacity() * size_of::<u32>()
            + self.ips.capacity() * size_of::<Point>()
            + self.piv_off.capacity() * size_of::<u32>()
            + self.pivs.capacity() * size_of::<u32>()
            + self.mbrs.capacity() * size_of::<Mbr>()
            + self.cell_off.capacity() * size_of::<u32>()
            + self.cells.capacity() * size_of::<Cell>()
            + size_of::<f64>()
    }

    /// The bytes holding raw trajectory payload (ids + coordinates) — the
    /// part [`crate::trie::TrieIndex::index_size_bytes`] excludes, matching
    /// what [`Trajectory::size_bytes`] priced in the pointer layout.
    pub fn data_bytes(&self) -> usize {
        self.ids.capacity() * std::mem::size_of::<TrajectoryId>()
            + (self.xs.capacity() + self.ys.capacity()) * std::mem::size_of::<f64>()
    }

    #[inline]
    fn pt_range(&self, i: usize) -> std::ops::Range<usize> {
        self.pt_off[i] as usize..self.pt_off[i + 1] as usize
    }
}

/// A borrowed member of a [`TrajStore`]: the flat layout's stand-in for
/// `&IndexedTrajectory`. Copy-cheap (pointer + index); accessors return
/// slices borrowed from the shared arenas with the store's lifetime.
#[derive(Debug, Clone, Copy)]
pub struct EntryRef<'a> {
    store: &'a TrajStore,
    i: usize,
}

impl<'a> EntryRef<'a> {
    /// The dataset-unique trajectory id.
    #[inline]
    pub fn id(&self) -> TrajectoryId {
        self.store.ids[self.i]
    }

    /// Number of points `m`.
    #[inline]
    pub fn len(&self) -> usize {
        let r = self.store.pt_range(self.i);
        r.end - r.start
    }

    /// Always `false`: construction rejects empty trajectories.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The point sequence as a structure-of-arrays view — the input type of
    /// the `dita-distance` kernels, borrowed straight from the arena.
    #[inline]
    pub fn soa(&self) -> SoaView<'a> {
        let r = self.store.pt_range(self.i);
        SoaView {
            xs: &self.store.xs[r.clone()],
            ys: &self.store.ys[r],
        }
    }

    /// Point `j` (0-based) as an AoS [`Point`].
    #[inline]
    pub fn point(&self, j: usize) -> Point {
        let s = self.store.pt_off[self.i] as usize;
        Point::new(self.store.xs[s + j], self.store.ys[s + j])
    }

    /// First point `t_1`.
    #[inline]
    pub fn first(&self) -> Point {
        self.point(0)
    }

    /// Last point `t_m`.
    #[inline]
    pub fn last(&self) -> Point {
        self.point(self.len() - 1)
    }

    /// Indexing points: first, last (when distinct), then pivot points.
    #[inline]
    pub fn index_points(&self) -> &'a [Point] {
        let r = self.store.ip_off[self.i] as usize..self.store.ip_off[self.i + 1] as usize;
        &self.store.ips[r]
    }

    /// 0-based pivot positions, ascending, strictly interior.
    #[inline]
    pub fn pivots(&self) -> &'a [u32] {
        let r = self.store.piv_off[self.i] as usize..self.store.piv_off[self.i + 1] as usize;
        &self.store.pivs[r]
    }

    /// Whole-trajectory MBR (Lemma 5.4 coverage filtering).
    #[inline]
    pub fn mbr(&self) -> &'a Mbr {
        &self.store.mbrs[self.i]
    }

    /// Cell compression (Lemma 5.6 bounds), side [`TrajStore::cell_side`].
    #[inline]
    pub fn cells(&self) -> &'a [Cell] {
        let r = self.store.cell_off[self.i] as usize..self.store.cell_off[self.i + 1] as usize;
        &self.store.cells[r]
    }

    /// Shipment price of this trajectory: same semantics as
    /// [`Trajectory::size_bytes`] (id + raw points), so the join planner's
    /// network cost model is unchanged by the flat layout.
    #[inline]
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<TrajectoryId>() + self.len() * std::mem::size_of::<Point>()
    }

    /// Materializes the points as an AoS vector (cold paths: compaction,
    /// join query contexts).
    pub fn points_vec(&self) -> Vec<Point> {
        let v = self.soa();
        (0..v.len()).map(|j| Point::new(v.xs[j], v.ys[j])).collect()
    }

    /// Materializes an owned [`Trajectory`] (compaction / flush paths).
    pub fn to_trajectory(&self) -> Trajectory {
        Trajectory::new(self.id(), self.points_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pivot::PivotStrategy;
    use dita_trajectory::trajectory::figure1_trajectories;

    fn store() -> TrajStore {
        let data: Vec<IndexedTrajectory> = figure1_trajectories()
            .into_iter()
            .map(|t| IndexedTrajectory::new(t, 2, PivotStrategy::NeighborDistance, 2.0))
            .collect();
        TrajStore::from_indexed(data, 2.0)
    }

    #[test]
    fn entries_round_trip_the_source() {
        let ts = figure1_trajectories();
        let s = store();
        assert_eq!(s.len(), ts.len());
        for (e, t) in s.iter().zip(&ts) {
            assert_eq!(e.id(), t.id);
            assert_eq!(e.len(), t.len());
            assert_eq!(e.first(), *t.first());
            assert_eq!(e.last(), *t.last());
            assert_eq!(e.points_vec(), t.points());
            assert_eq!(e.to_trajectory(), *t);
            assert_eq!(e.size_bytes(), t.size_bytes());
            assert_eq!(*e.mbr(), t.mbr());
        }
    }

    #[test]
    fn entry_artifacts_match_indexed_trajectory() {
        let ts = figure1_trajectories();
        let s = store();
        for (i, t) in ts.iter().enumerate() {
            let it = IndexedTrajectory::new(t.clone(), 2, PivotStrategy::NeighborDistance, 2.0);
            let e = s.entry(i);
            assert_eq!(e.index_points(), &it.index_points[..]);
            let pivs: Vec<u32> = it.pivots.iter().map(|&p| p as u32).collect();
            assert_eq!(e.pivots(), &pivs[..]);
            assert_eq!(e.cells(), it.cells.cells());
            assert_eq!(s.cell_side(), it.cells.side());
        }
    }

    #[test]
    fn try_entry_bounds_checked() {
        let s = store();
        assert!(s.try_entry(s.len()).is_none());
        assert_eq!(s.try_entry(0).map(|e| e.id()), Some(1));
    }

    #[test]
    fn store_pools_exactly_one_coordinate_copy() {
        let ts = figure1_trajectories();
        let total: usize = ts.iter().map(|t| t.len()).sum();
        let s = store();
        // Coordinate arena bytes = one f64 pair per source point; the
        // pointer layout stored each point twice (AoS + SoA copy).
        assert_eq!(
            s.data_bytes(),
            ts.len() * 8 + total * 2 * std::mem::size_of::<f64>()
        );
        assert!(s.size_bytes() > s.data_bytes());
    }

    #[test]
    fn serde_round_trip() {
        let s = store();
        let json = serde_json::to_string(&s).unwrap();
        let back: TrajStore = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), s.len());
        for (a, b) in back.iter().zip(s.iter()) {
            assert_eq!(a.id(), b.id());
            assert_eq!(a.points_vec(), b.points_vec());
            assert_eq!(a.index_points(), b.index_points());
        }
    }
}
