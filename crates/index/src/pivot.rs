//! Pivot point selection (§4.1.2).
//!
//! Every interior point of a trajectory is assigned a weight; the K points
//! with the largest weights become the pivots `T_P` used by the PAMD bound
//! and the trie index. The paper proposes three weighting strategies and
//! finds Neighbor-distance the best overall (Appendix B, Figure 12); the
//! index is orthogonal to the choice, so all three are implemented.

use dita_trajectory::{Point, Trajectory};
use serde::{Deserialize, Serialize};
use std::str::FromStr;

/// Strategy for weighting candidate pivot points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PivotStrategy {
    /// Weight `π − ∠abc`: sharp turns are representative.
    InflectionPoint,
    /// Weight `dist(prev, b)`: points far from their predecessor.
    NeighborDistance,
    /// Weight `max(dist(b, t1), dist(b, tm))`: points far from either
    /// endpoint.
    FirstLastDistance,
}

impl FromStr for PivotStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "inflection" | "inflectionpoint" => Ok(PivotStrategy::InflectionPoint),
            "neighbor" | "neighbordistance" => Ok(PivotStrategy::NeighborDistance),
            "firstlast" | "first/last" | "firstlastdistance" => {
                Ok(PivotStrategy::FirstLastDistance)
            }
            other => Err(format!("unknown pivot strategy {other:?}")),
        }
    }
}

impl PivotStrategy {
    /// All strategies, in the paper's presentation order.
    pub const ALL: [PivotStrategy; 3] = [
        PivotStrategy::InflectionPoint,
        PivotStrategy::NeighborDistance,
        PivotStrategy::FirstLastDistance,
    ];

    /// Short display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            PivotStrategy::InflectionPoint => "Inflection",
            PivotStrategy::NeighborDistance => "Neighbor",
            PivotStrategy::FirstLastDistance => "First/Last",
        }
    }

    fn weight(&self, points: &[Point], i: usize) -> f64 {
        match self {
            PivotStrategy::InflectionPoint => {
                std::f64::consts::PI - Point::angle_at(&points[i - 1], &points[i], &points[i + 1])
            }
            PivotStrategy::NeighborDistance => points[i - 1].dist(&points[i]),
            PivotStrategy::FirstLastDistance => {
                let m = points.len();
                points[i]
                    .dist(&points[0])
                    .max(points[i].dist(&points[m - 1]))
            }
        }
    }
}

/// Selects up to `k` pivot indices (0-based, strictly interior, ascending).
///
/// If the trajectory has fewer than `k` interior points, all interior points
/// are returned. Ties are broken toward the earlier index, which keeps the
/// selection deterministic across runs.
pub fn select_pivots(t: &Trajectory, k: usize, strategy: PivotStrategy) -> Vec<usize> {
    let points = t.points();
    let m = points.len();
    if m <= 2 || k == 0 {
        return Vec::new();
    }
    let interior = m - 2;
    if interior <= k {
        return (1..m - 1).collect();
    }
    let mut weighted: Vec<(usize, f64)> = (1..m - 1)
        .map(|i| (i, strategy.weight(points, i)))
        .collect();
    // Highest weight first; equal weights keep the earlier point.
    weighted.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut chosen: Vec<usize> = weighted[..k].iter().map(|&(i, _)| i).collect();
    chosen.sort_unstable();
    chosen
}

/// Materializes pivot indices as points.
pub fn pivot_points(t: &Trajectory, pivots: &[usize]) -> Vec<Point> {
    pivots.iter().map(|&i| t.points()[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dita_trajectory::trajectory::figure1_trajectories;

    #[test]
    fn paper_t1_inflection_pivots() {
        // §4.1.2: T1 with K = 2 under Inflection Point → [(1,2), (4,5)].
        let t1 = &figure1_trajectories()[0];
        let p = select_pivots(t1, 2, PivotStrategy::InflectionPoint);
        let pts = pivot_points(t1, &p);
        assert_eq!(pts, vec![Point::new(1.0, 2.0), Point::new(4.0, 5.0)]);
    }

    #[test]
    fn paper_t1_neighbor_pivots() {
        // §4.1.2: T1 with K = 2 under Neighbor Distance → [(3,2), (4,4)].
        let t1 = &figure1_trajectories()[0];
        let p = select_pivots(t1, 2, PivotStrategy::NeighborDistance);
        let pts = pivot_points(t1, &p);
        assert_eq!(pts, vec![Point::new(3.0, 2.0), Point::new(4.0, 4.0)]);
    }

    #[test]
    fn paper_t1_firstlast_pivots() {
        // §4.1.2: T1 with K = 2 under First/Last Distance → [(1,2), (4,5)].
        let t1 = &figure1_trajectories()[0];
        let p = select_pivots(t1, 2, PivotStrategy::FirstLastDistance);
        let pts = pivot_points(t1, &p);
        assert_eq!(pts, vec![Point::new(1.0, 2.0), Point::new(4.0, 5.0)]);
    }

    #[test]
    fn figure1_table_neighbor_pivots_for_all() {
        // The Figure 1 table lists K = 2 pivots for every trajectory under
        // the neighbor-distance strategy (which Figure 5 then indexes).
        let ts = figure1_trajectories();
        let expect = [
            vec![Point::new(3.0, 2.0), Point::new(4.0, 4.0)],
            vec![Point::new(4.0, 2.0), Point::new(4.0, 4.0)],
            vec![Point::new(4.0, 1.0), Point::new(4.0, 3.0)],
            vec![Point::new(3.0, 3.0), Point::new(3.0, 7.0)],
            vec![Point::new(3.0, 7.0), Point::new(3.0, 3.0)],
        ];
        for (t, want) in ts.iter().zip(expect.iter()) {
            let p = select_pivots(t, 2, PivotStrategy::NeighborDistance);
            let got = pivot_points(t, &p);
            assert_eq!(&got, want, "T{}", t.id);
        }
    }

    #[test]
    fn pivots_are_interior_and_sorted() {
        let ts = figure1_trajectories();
        for t in &ts {
            for s in PivotStrategy::ALL {
                for k in 0..6 {
                    let p = select_pivots(t, k, s);
                    assert!(p.len() <= k);
                    assert!(p.windows(2).all(|w| w[0] < w[1]));
                    assert!(p.iter().all(|&i| i > 0 && i < t.len() - 1));
                }
            }
        }
    }

    #[test]
    fn short_trajectories_yield_all_interior() {
        let t = Trajectory::from_coords(1, &[(0.0, 0.0), (1.0, 1.0)]);
        assert!(select_pivots(&t, 3, PivotStrategy::NeighborDistance).is_empty());
        let t = Trajectory::from_coords(1, &[(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)]);
        assert_eq!(
            select_pivots(&t, 3, PivotStrategy::NeighborDistance),
            vec![1]
        );
    }

    #[test]
    fn strategy_parsing() {
        assert_eq!(
            "neighbor".parse::<PivotStrategy>().unwrap(),
            PivotStrategy::NeighborDistance
        );
        assert_eq!(
            "Inflection".parse::<PivotStrategy>().unwrap(),
            PivotStrategy::InflectionPoint
        );
        assert_eq!(
            "first/last".parse::<PivotStrategy>().unwrap(),
            PivotStrategy::FirstLastDistance
        );
        assert!("bogus".parse::<PivotStrategy>().is_err());
    }
}
