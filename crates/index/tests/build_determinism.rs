//! Parallel index construction must be invisible in the built index: for
//! any thread count the trie's node arena, member assignment and candidate
//! sets are identical — byte for byte — to the serial build, and the STR
//! partitioner produces the same partitions. Host parallelism is a speed
//! knob, never a semantics knob.

use dita_distance::DistanceFunction;
use dita_index::{str_partitioning, str_partitioning_par, PivotStrategy, TrieConfig, TrieIndex};
use dita_trajectory::{Point, Trajectory};

/// xorshift64* — deterministic, dependency-free randomness.
struct XorShift(u64);

impl XorShift {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Random-walk trajectories spread over a [0, 8]² region.
fn random_trajectories(n: usize, seed: u64) -> Vec<Trajectory> {
    let mut rng = XorShift(seed | 1);
    (0..n)
        .map(|i| {
            let len = 1 + (rng.next_u64() % 40) as usize;
            let mut x = rng.next_f64() * 8.0;
            let mut y = rng.next_f64() * 8.0;
            let mut pts = Vec::with_capacity(len);
            for _ in 0..len {
                pts.push(Point::new(x, y));
                x += (rng.next_f64() - 0.5) * 0.6;
                y += (rng.next_f64() - 0.5) * 0.6;
            }
            Trajectory::new(i as u64 + 1, pts)
        })
        .collect()
}

fn configs() -> Vec<TrieConfig> {
    vec![
        // Full K+2 depth, no early leaves.
        TrieConfig {
            k: 3,
            nl: 3,
            leaf_capacity: 0,
            strategy: PivotStrategy::NeighborDistance,
            cell_side: 1.0,
            ..TrieConfig::default()
        },
        // Early leaf stops plus a different pivot strategy.
        TrieConfig {
            k: 4,
            nl: 4,
            leaf_capacity: 8,
            strategy: PivotStrategy::InflectionPoint,
            cell_side: 0.5,
            ..TrieConfig::default()
        },
        // Degenerate: no pivots, wide fanout.
        TrieConfig {
            k: 0,
            nl: 8,
            leaf_capacity: 4,
            strategy: PivotStrategy::FirstLastDistance,
            cell_side: 2.0,
            ..TrieConfig::default()
        },
    ]
}

/// Both fingerprints of an index: the Debug rendering (covers every field
/// of the arena in declaration order) and the serialized JSON (covers the
/// on-disk bytes a snapshot would contain). The `build_threads` knob is
/// masked out of the Debug string — it is runtime configuration carried in
/// the stored config, not index content, and serialization skips it.
fn fingerprint(index: &TrieIndex, threads: usize) -> (String, String) {
    (
        format!("{index:?}").replace(&format!("build_threads: {threads}"), "build_threads: _"),
        serde_json::to_string(index).expect("serialize"),
    )
}

#[test]
fn parallel_build_is_byte_identical_to_serial() {
    let ts = random_trajectories(150, 0x5eed_3003);
    for (ci, base) in configs().into_iter().enumerate() {
        let serial = TrieIndex::build(
            ts.clone(),
            TrieConfig {
                build_threads: 1,
                ..base
            },
        );
        let (serial_dbg, serial_json) = fingerprint(&serial, 1);
        for threads in [2usize, 4, 8] {
            let parallel = TrieIndex::build(
                ts.clone(),
                TrieConfig {
                    build_threads: threads,
                    ..base
                },
            );
            let (par_dbg, par_json) = fingerprint(&parallel, threads);
            assert_eq!(serial_dbg, par_dbg, "config #{ci} threads={threads}");
            assert_eq!(serial_json, par_json, "config #{ci} threads={threads}");
        }
    }
}

#[test]
fn candidate_sets_identical_across_build_threads() {
    let ts = random_trajectories(120, 0x5eed_4004);
    let queries = [ts[5].clone(), ts[57].clone(), ts[111].clone()];
    let funcs = [
        DistanceFunction::Dtw,
        DistanceFunction::Frechet,
        DistanceFunction::Edr { eps: 0.3 },
        DistanceFunction::Lcss { eps: 0.3, delta: 2 },
    ];
    let base = configs()[0];
    let serial = TrieIndex::build(
        ts.clone(),
        TrieConfig {
            build_threads: 1,
            ..base
        },
    );
    for threads in [2usize, 4, 8] {
        let parallel = TrieIndex::build(
            ts.clone(),
            TrieConfig {
                build_threads: threads,
                ..base
            },
        );
        for q in &queries {
            for f in &funcs {
                let tau = match f {
                    DistanceFunction::Edr { .. } | DistanceFunction::Lcss { .. } => 6.0,
                    _ => 2.5,
                };
                assert_eq!(
                    serial.candidates(q.points(), tau, f),
                    parallel.candidates(q.points(), tau, f),
                    "threads={threads} {f} Q=T{}",
                    q.id
                );
            }
        }
    }
}

#[test]
fn parallel_partitioning_matches_serial() {
    let ts = random_trajectories(200, 0x5eed_5005);
    for ng in [1usize, 2, 4, 7] {
        let serial = str_partitioning(&ts, ng);
        let serial_dbg = format!("{serial:?}");
        for threads in [2usize, 4, 8] {
            let parallel = str_partitioning_par(&ts, ng, threads);
            assert_eq!(
                serial_dbg,
                format!("{parallel:?}"),
                "ng={ng} threads={threads}"
            );
        }
    }
}

#[test]
fn cached_size_bytes_matches_recomputation() {
    let ts = random_trajectories(40, 0x5eed_6006);
    let index = TrieIndex::build(ts.clone(), configs()[1]);
    for (i, t) in ts.iter().enumerate() {
        let e = index.get(i as u32);
        assert_eq!(e.size_bytes(), e.to_trajectory().size_bytes());
        assert_eq!(e.size_bytes(), t.size_bytes());
    }
}
