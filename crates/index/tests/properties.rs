//! Property tests for partitioning, the global index and the trie filter.
//!
//! The central invariant: no stage of the DITA filter pipeline may drop a
//! true answer, for any distance function, threshold, or configuration.

use dita_distance::DistanceFunction;
use dita_index::{
    str_partitioning, GlobalIndex, PivotStrategy, ProbeScratch, TrieConfig, TrieIndex,
};
use dita_trajectory::{Point, Trajectory};
use proptest::prelude::*;

fn arb_trajectory(id: u64) -> impl Strategy<Value = Trajectory> {
    prop::collection::vec((-20.0f64..20.0, -20.0f64..20.0), 1..14)
        .prop_map(move |coords| Trajectory::from_coords(id, &coords))
}

fn arb_dataset(n: usize) -> impl Strategy<Value = Vec<Trajectory>> {
    prop::collection::vec(
        prop::collection::vec((-20.0f64..20.0, -20.0f64..20.0), 1..14),
        2..n,
    )
    .prop_map(|all| {
        all.into_iter()
            .enumerate()
            .map(|(i, coords)| Trajectory::from_coords(i as u64, &coords))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn partitioning_is_exact_cover(ts in arb_dataset(40), ng in 1usize..6) {
        let p = str_partitioning(&ts, ng);
        prop_assert_eq!(p.total_members(), ts.len());
        let mut seen = vec![false; ts.len()];
        for part in &p.partitions {
            for &m in &part.members {
                prop_assert!(!seen[m]);
                seen[m] = true;
                prop_assert!(part.mbr_first.contains_point(ts[m].first()));
                prop_assert!(part.mbr_last.contains_point(ts[m].last()));
            }
        }
    }

    #[test]
    fn global_plus_trie_filter_never_drops_answers(
        ts in arb_dataset(30),
        q in arb_trajectory(1000),
        tau in 0.0f64..30.0,
        ng in 1usize..4,
        k in 0usize..4,
        nl in 2usize..6,
    ) {
        let parts = str_partitioning(&ts, ng);
        let global = GlobalIndex::build(&parts);
        let config = TrieConfig {
            k,
            nl,
            leaf_capacity: 2,
            strategy: PivotStrategy::NeighborDistance,
            cell_side: 1.0,
            ..TrieConfig::default()
        };
        let tries: Vec<TrieIndex> = parts
            .partitions
            .iter()
            .map(|p| {
                TrieIndex::build(
                    p.members.iter().map(|&m| ts[m].clone()).collect(),
                    config,
                )
            })
            .collect();

        for f in [
            DistanceFunction::Dtw,
            DistanceFunction::Frechet,
            DistanceFunction::Edr { eps: 1.0 },
            DistanceFunction::Lcss { eps: 1.0, delta: 2 },
        ] {
            let relevant = global.relevant_partitions(q.first(), q.last(), q.len(), tau, f.index_mode());
            let mut cands: Vec<u64> = Vec::new();
            for &pid in &relevant {
                for c in tries[pid].candidates(q.points(), tau, &f) {
                    cands.push(tries[pid].get(c).id());
                }
            }
            for t in &ts {
                let d = f.distance(t.points(), q.points());
                if d <= tau {
                    prop_assert!(
                        cands.contains(&t.id),
                        "{} dropped id {} (d = {d}, tau = {tau})",
                        f,
                        t.id
                    );
                }
            }
        }
    }

    #[test]
    fn trie_stores_every_trajectory(ts in arb_dataset(30), k in 0usize..5, nl in 2usize..8) {
        let n = ts.len();
        let index = TrieIndex::build(ts, TrieConfig {
            k,
            nl,
            leaf_capacity: 3,
            strategy: PivotStrategy::InflectionPoint,
            cell_side: 0.5,
            ..TrieConfig::default()
        });
        prop_assert_eq!(index.len(), n);
        // A query with infinite-ish budget returns everything.
        let q = [Point::new(0.0, 0.0)];
        let cands = index.candidates(&q, 1e12, &DistanceFunction::Dtw);
        prop_assert_eq!(cands.len(), n);
    }

    /// The allocation-free counting probe agrees with the materializing one
    /// for every index mode (additive, max, edit-count, scan).
    #[test]
    fn candidate_count_matches_candidates_len(
        ts in arb_dataset(30),
        q in arb_trajectory(1000),
        tau in 0.0f64..30.0,
        k in 0usize..4,
        nl in 2usize..6,
    ) {
        let index = TrieIndex::build(ts, TrieConfig {
            k,
            nl,
            leaf_capacity: 2,
            strategy: PivotStrategy::NeighborDistance,
            cell_side: 1.0,
            ..TrieConfig::default()
        });
        let mut scratch = ProbeScratch::new();
        for f in [
            DistanceFunction::Dtw,
            DistanceFunction::Frechet,
            DistanceFunction::Edr { eps: 1.0 },
            DistanceFunction::Lcss { eps: 1.0, delta: 2 },
            DistanceFunction::Erp { gap: (0.0, 0.0) },
        ] {
            let cands = index.candidates(q.points(), tau, &f);
            let count = index.candidate_count(q.points(), tau, &f, &mut scratch);
            prop_assert_eq!(count, cands.len(), "{}", f);
        }
    }
}
