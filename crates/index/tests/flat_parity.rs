//! Flat-trie / pointer-trie parity.
//!
//! The succinct flat layout ([`TrieIndex`]) and the reference pointer
//! layout ([`PointerTrie`]) are built from the same deterministic
//! `build_pending` output and probe through the same shared predicates, so
//! they must agree *byte for byte*: identical candidate id sets, identical
//! [`FilterStats`] at every stage, identical allocation-free counts — for
//! every distance function, including ERP's scan mode. These properties pin
//! that equivalence; the memory-density test pins that the flat layout is
//! actually smaller, which is the whole point of carrying two layouts.

use dita_distance::DistanceFunction;
use dita_index::{
    BatchProbeScratch, PivotStrategy, PointerTrie, ProbeScratch, TrieConfig, TrieIndex,
};
use dita_trajectory::{Point, Trajectory};
use proptest::prelude::*;

fn all_functions() -> [DistanceFunction; 5] {
    [
        DistanceFunction::Dtw,
        DistanceFunction::Frechet,
        DistanceFunction::Edr { eps: 1.0 },
        DistanceFunction::Lcss { eps: 1.0, delta: 2 },
        DistanceFunction::Erp { gap: (0.0, 0.0) },
    ]
}

fn arb_trajectory(id: u64) -> impl Strategy<Value = Trajectory> {
    prop::collection::vec((-20.0f64..20.0, -20.0f64..20.0), 1..14)
        .prop_map(move |coords| Trajectory::from_coords(id, &coords))
}

fn arb_dataset(n: usize) -> impl Strategy<Value = Vec<Trajectory>> {
    prop::collection::vec(
        prop::collection::vec((-20.0f64..20.0, -20.0f64..20.0), 1..14),
        2..n,
    )
    .prop_map(|all| {
        all.into_iter()
            .enumerate()
            .map(|(i, coords)| Trajectory::from_coords(i as u64, &coords))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Candidate sets, filter statistics and counting probes are identical
    /// between the flat and pointer layouts for every distance function.
    #[test]
    fn flat_probe_matches_pointer_probe(
        ts in arb_dataset(30),
        q in arb_trajectory(1000),
        tau in 0.0f64..30.0,
        k in 0usize..4,
        nl in 2usize..6,
        leaf_capacity in 0usize..4,
    ) {
        let config = TrieConfig {
            k,
            nl,
            leaf_capacity,
            strategy: PivotStrategy::NeighborDistance,
            cell_side: 1.0,
            ..TrieConfig::default()
        };
        let flat = TrieIndex::build(ts.clone(), config);
        let pointer = PointerTrie::build(ts, config);
        let mut fs = ProbeScratch::new();
        let mut ps = ProbeScratch::new();
        for f in all_functions() {
            let (fc, fstats) = flat.candidates_with_stats(q.points(), tau, &f);
            let (pc, pstats) = pointer.candidates_with_stats(q.points(), tau, &f);
            prop_assert_eq!(&fc, &pc, "{} candidate sets diverge", f);
            prop_assert_eq!(fstats, pstats, "{} filter stats diverge", f);
            prop_assert_eq!(
                flat.candidate_count(q.points(), tau, &f, &mut fs),
                pointer.candidate_count(q.points(), tau, &f, &mut ps),
                "{} counting probes diverge", f
            );
        }
    }

    /// One shared arena walk answers a whole batch byte-identically to
    /// per-query probes: candidate ids AND per-query filter funnels match
    /// for every distance function, mixed taus included (negative taus
    /// make a query inert, as in the single-query path). One scratch is
    /// reused across every function, pinning that stale state cannot leak
    /// between batches.
    #[test]
    fn batch_probe_matches_per_query_probes(
        ts in arb_dataset(30),
        queries in prop::collection::vec(
            (prop::collection::vec((-20.0f64..20.0, -20.0f64..20.0), 1..14), -1.0f64..30.0),
            1..6,
        ),
        k in 0usize..4,
        nl in 2usize..6,
        leaf_capacity in 0usize..4,
    ) {
        let config = TrieConfig {
            k,
            nl,
            leaf_capacity,
            strategy: PivotStrategy::NeighborDistance,
            cell_side: 1.0,
            ..TrieConfig::default()
        };
        let trie = TrieIndex::build(ts, config);
        let qs: Vec<Trajectory> = queries
            .iter()
            .enumerate()
            .map(|(i, (coords, _))| Trajectory::from_coords(1000 + i as u64, coords))
            .collect();
        let q_slices: Vec<&[Point]> = qs.iter().map(|t| t.points()).collect();
        let taus: Vec<f64> = queries.iter().map(|&(_, tau)| tau).collect();
        let mut scratch = BatchProbeScratch::new();
        for f in all_functions() {
            let batch = trie.candidates_batch(&q_slices, &taus, &f, &mut scratch);
            prop_assert_eq!(batch.len(), qs.len());
            for (qi, (ids, stats)) in batch.iter().enumerate() {
                let (solo_ids, solo_stats) =
                    trie.candidates_with_stats(q_slices[qi], taus[qi], &f);
                prop_assert_eq!(ids, &solo_ids, "{} q={} candidate sets diverge", f, qi);
                prop_assert_eq!(stats, &solo_stats, "{} q={} filter stats diverge", f, qi);
            }
        }
    }

    /// Candidate ids index the same trajectories in both layouts (the flat
    /// store preserves clustered order), and both layouts agree on the
    /// stored population.
    #[test]
    fn flat_entries_match_pointer_data(ts in arb_dataset(25), k in 0usize..4) {
        let config = TrieConfig {
            k,
            nl: 3,
            leaf_capacity: 2,
            strategy: PivotStrategy::InflectionPoint,
            cell_side: 1.0,
            ..TrieConfig::default()
        };
        let flat = TrieIndex::build(ts.clone(), config);
        let pointer = PointerTrie::build(ts, config);
        prop_assert_eq!(flat.len(), pointer.len());
        for (e, it) in flat.entries().zip(pointer.data()) {
            prop_assert_eq!(e.id(), it.traj.id);
            prop_assert_eq!(e.points_vec(), it.traj.points());
            prop_assert_eq!(e.index_points(), &it.index_points[..]);
            prop_assert_eq!(e.mbr(), &it.mbr);
            prop_assert_eq!(e.cells(), it.cells.cells());
        }
    }
}

/// xorshift64* — deterministic, dependency-free randomness.
struct XorShift(u64);

impl XorShift {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Random-walk trajectories spread over a [0, 8]² region, with the length
/// profile of the smoke benchmark's synthetic city (24–64 points).
fn random_trajectories(n: usize, seed: u64) -> Vec<Trajectory> {
    let mut rng = XorShift(seed | 1);
    (0..n)
        .map(|i| {
            let len = 24 + (rng.next_u64() % 41) as usize;
            let mut x = rng.next_f64() * 8.0;
            let mut y = rng.next_f64() * 8.0;
            let mut pts = Vec::with_capacity(len);
            for _ in 0..len {
                pts.push(Point::new(x, y));
                x += (rng.next_f64() - 0.5) * 0.6;
                y += (rng.next_f64() - 0.5) * 0.6;
            }
            Trajectory::new(i as u64 + 1, pts)
        })
        .collect()
}

/// The tentpole claim: at a realistic shape (hundreds of random-walk
/// trajectories, K = 3 pivots) the flat layout's index overhead per
/// trajectory is at least 3× below the pointer layout's.
#[test]
fn flat_index_is_at_least_3x_denser() {
    let ts = random_trajectories(400, 0x0dd_ba11);
    let config = TrieConfig {
        k: 3,
        nl: 4,
        leaf_capacity: 8,
        strategy: PivotStrategy::NeighborDistance,
        cell_side: 1.0,
        ..TrieConfig::default()
    };
    let flat = TrieIndex::build(ts.clone(), config);
    let pointer = PointerTrie::build(ts, config);
    let (fi, pi) = (flat.index_size_bytes(), pointer.index_size_bytes());
    assert!(
        fi * 3 <= pi,
        "flat index {fi} B is not 3x below pointer index {pi} B"
    );
    // Total footprint (index + payload) must shrink too: the flat store
    // holds one coordinate copy where the pointer layout held two.
    assert!(flat.size_bytes() < pointer.size_bytes());
}
