//! Online ingestion for DITA: an LSM-flavored write path over the frozen
//! batch indexes.
//!
//! The paper (§4) builds its global/local indexes once over a static
//! dataset. This crate adds the mutable half: inserts and deletes land in a
//! per-partition **delta** — an unflushed tail (memtable analog) plus an
//! optional flushed mini delta-trie — with **tombstones** shadowing deleted
//! or overwritten base entries. Queries overlay base trie + deltas
//! (candidate union, tombstone suppression) with the same pruning
//! machinery the base index uses; a ratio- or ops-triggered
//! [`CompactionPolicy`] decides when the deltas are folded back into
//! rebuilt base tries, and a skew threshold decides when folding escalates
//! to a full STR repartition.
//!
//! The logical dataset at any instant is:
//!
//! ```text
//! (base members − tombstones) ∪ delta inserts        (latest write wins)
//! ```
//!
//! Invariants maintained by [`DeltaSet`]:
//!
//! * every trajectory id has at most one *live* copy (base xor delta);
//! * a tombstone in `base_dead` always refers to an id present in a base
//!   trie; a dead-set entry of a [`DeltaSegment`] always refers to an id
//!   stored in that segment's trie;
//! * segment endpoint MBRs / length bounds cover a superset of the
//!   segment's live members, so segment-level pruning is always sound.
//!
//! The query-side overlay and the cluster wiring (shipment bytes,
//! compaction CPU charge-back) live in `dita-core`; this crate owns the
//! state machine so it can be tested in isolation.

#![warn(missing_docs)]

mod delta;
mod policy;

pub use delta::{DeltaSegment, DeltaSet, FlushJob, PartitionDelta, TOMBSTONE_BYTES};
pub use policy::{CompactionPolicy, IngestStats};
