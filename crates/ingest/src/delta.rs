//! Per-partition delta state: unflushed tails, flushed mini delta-tries,
//! tombstones, and the bookkeeping that keeps every id single-homed.

use crate::policy::IngestStats;
use dita_distance::function::IndexMode;
use dita_index::{GlobalIndex, IndexedTrajectory, Partition, Partitioning, TrieConfig, TrieIndex};
use dita_trajectory::{Mbr, Point, Trajectory, TrajectoryId};
use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

/// Bytes charged to the network model for shipping one tombstone marker
/// (a bare trajectory id).
pub const TOMBSTONE_BYTES: u64 = std::mem::size_of::<TrajectoryId>() as u64;

/// A flushed delta run: a mini trie over the partition's flushed inserts,
/// plus the dead-set of entries superseded since the flush.
#[derive(Debug)]
pub struct DeltaSegment {
    /// Mini trie over the flushed delta inserts (same `TrieConfig` as the
    /// base trie, so filter semantics are identical).
    pub trie: TrieIndex,
    /// Segment entries deleted or overwritten after the flush. Hits from
    /// `trie` with an id in here are suppressed at query time.
    pub dead: BTreeSet<TrajectoryId>,
    /// MBR of the flushed members' first points (superset of live).
    pub mbr_first: Mbr,
    /// MBR of the flushed members' last points (superset of live).
    pub mbr_last: Mbr,
    /// Shortest flushed member (lower bound over live members).
    pub min_len: usize,
    /// Longest flushed member (upper bound over live members).
    pub max_len: usize,
}

impl DeltaSegment {
    /// Builds a segment over `members` (must be non-empty), returning the
    /// helper-CPU time of the trie build for cost charge-back.
    pub fn build(members: Vec<Trajectory>, config: TrieConfig) -> (Self, Duration) {
        assert!(!members.is_empty(), "a delta segment needs members");
        let mbr_first = Mbr::from_points(members.iter().map(|t| t.first()));
        let mbr_last = Mbr::from_points(members.iter().map(|t| t.last()));
        let min_len = members.iter().map(Trajectory::len).min().unwrap();
        let max_len = members.iter().map(Trajectory::len).max().unwrap();
        let (trie, helper_cpu) = TrieIndex::build_timed(members, config);
        (
            DeltaSegment {
                trie,
                dead: BTreeSet::new(),
                mbr_first,
                mbr_last,
                min_len,
                max_len,
            },
            helper_cpu,
        )
    }

    /// Live (not superseded) flushed members, materialized out of the
    /// trie's pooled store.
    pub fn live(&self) -> impl Iterator<Item = Trajectory> + '_ {
        self.trie
            .entries()
            .filter(move |e| !self.dead.contains(&e.id()))
            .map(|e| e.to_trajectory())
    }

    /// Number of live flushed members.
    pub fn live_count(&self) -> usize {
        self.trie.len() - self.dead.len()
    }
}

/// Delta state of one partition.
#[derive(Debug, Default)]
pub struct PartitionDelta {
    /// Unflushed live inserts, keyed by id (the memtable). Entries carry
    /// their full clustered-index artifacts so query-time verification
    /// runs through the exact same kernel path as base members.
    pub tail: BTreeMap<TrajectoryId, IndexedTrajectory>,
    /// The flushed delta run, if any.
    pub seg: Option<DeltaSegment>,
    /// Tombstone markers (base or segment dead-set entries) not yet
    /// shipped to the partition's worker.
    pub pending_tombstones: u64,
    /// `true` once any operation has touched this partition since the
    /// last compaction — compaction rebuilds exactly the dirty partitions.
    pub dirty: bool,
}

impl PartitionDelta {
    /// Live delta members (tail + segment).
    pub fn live_count(&self) -> usize {
        self.tail.len() + self.seg.as_ref().map_or(0, DeltaSegment::live_count)
    }

    /// Bytes of unflushed tail data (what the next flush ships).
    pub fn tail_bytes(&self) -> u64 {
        self.tail
            .values()
            .map(|it| it.traj.size_bytes() as u64)
            .sum()
    }
}

/// One partition's share of a flush: the bytes to ship to its worker and,
/// when the tail was non-empty, the member set for the rebuilt segment.
#[derive(Debug, Clone)]
pub struct FlushJob {
    /// Partition id.
    pub pid: usize,
    /// Unflushed tail bytes plus pending tombstone markers.
    pub ship_bytes: u64,
    /// Members of the segment to (re)build — previous live segment entries
    /// plus the drained tail, sorted by id. `None` when only tombstones
    /// need shipping.
    pub members: Option<Vec<Trajectory>>,
}

/// The mutable side of an indexed table: every partition's delta plus the
/// id-residency maps that keep writes single-homed.
#[derive(Debug)]
pub struct DeltaSet {
    parts: Vec<PartitionDelta>,
    /// Base-trie ids logically deleted or overwritten.
    base_dead: BTreeSet<TrajectoryId>,
    /// Partition of every id stored in a base trie (frozen between
    /// compactions).
    base_home: BTreeMap<TrajectoryId, usize>,
    /// Partition of every *live* delta insert.
    delta_home: BTreeMap<TrajectoryId, usize>,
    /// Trie configuration used for tails and segments (the base config).
    config: TrieConfig,
    /// Driver-side pruning index over the flushed segments; rebuilt on
    /// flush/compact. `pids[i]` maps synthetic partition `i` back to the
    /// real partition id.
    seg_global: Option<(GlobalIndex, Vec<usize>)>,
    ops_since_compact: u64,
    stats: IngestStats,
}

impl DeltaSet {
    /// Fresh, empty delta state over `num_partitions` partitions whose base
    /// tries hold the ids in `base_home`.
    pub fn new(
        num_partitions: usize,
        base_home: BTreeMap<TrajectoryId, usize>,
        config: TrieConfig,
    ) -> Self {
        DeltaSet {
            parts: (0..num_partitions)
                .map(|_| PartitionDelta::default())
                .collect(),
            base_dead: BTreeSet::new(),
            base_home,
            delta_home: BTreeMap::new(),
            config,
            seg_global: None,
            ops_since_compact: 0,
            stats: IngestStats::default(),
        }
    }

    /// Deterministic insert routing: the partition whose endpoint MBRs are
    /// jointly closest to the trajectory's first/last points (the same
    /// geometry STR used to form the partitions), lowest id on ties.
    pub fn route(partitioning: &Partitioning, t: &Trajectory) -> usize {
        assert!(
            !partitioning.partitions.is_empty(),
            "cannot route into an empty partitioning"
        );
        let (first, last) = (t.first(), t.last());
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for p in &partitioning.partitions {
            let d = p.mbr_first.min_dist_point(first) + p.mbr_last.min_dist_point(last);
            if d < best_d {
                best_d = d;
                best = p.id;
            }
        }
        best
    }

    /// Applies an insert routed to `pid`. Returns `true` when the id
    /// overwrote an existing live trajectory (upsert semantics).
    pub fn insert(&mut self, t: Trajectory, pid: usize) -> bool {
        let replaced = self.unlink(t.id);
        let it = IndexedTrajectory::new(
            t,
            self.config.k,
            self.config.strategy,
            self.config.cell_side,
        );
        let id = it.traj.id;
        self.parts[pid].tail.insert(id, it);
        self.parts[pid].dirty = true;
        self.delta_home.insert(id, pid);
        self.ops_since_compact += 1;
        self.stats.inserts += 1;
        replaced
    }

    /// Applies a delete. Returns `true` when a live trajectory was removed.
    pub fn delete(&mut self, id: TrajectoryId) -> bool {
        let existed = self.unlink(id);
        if existed {
            self.ops_since_compact += 1;
            self.stats.deletes += 1;
        }
        existed
    }

    /// Removes the live copy of `id`, wherever it resides. Returns whether
    /// one existed.
    fn unlink(&mut self, id: TrajectoryId) -> bool {
        if let Some(pid) = self.delta_home.remove(&id) {
            let part = &mut self.parts[pid];
            if part.tail.remove(&id).is_none() {
                // Not in the tail, so it must be live in the segment.
                let seg = part
                    .seg
                    .as_mut()
                    .expect("delta-homed id without tail or segment");
                let fresh = seg.dead.insert(id);
                debug_assert!(fresh, "segment dead-set already held a live id");
                part.pending_tombstones += 1;
            }
            part.dirty = true;
            true
        } else if let Some(&pid) = self.base_home.get(&id) {
            if self.base_dead.insert(id) {
                self.parts[pid].pending_tombstones += 1;
                self.parts[pid].dirty = true;
                true
            } else {
                false
            }
        } else {
            false
        }
    }

    /// `true` when any partition holds unmerged delta state.
    pub fn has_deltas(&self) -> bool {
        self.parts.iter().any(|p| p.dirty)
    }

    /// Total live delta inserts across partitions.
    pub fn delta_live(&self) -> usize {
        self.delta_home.len()
    }

    /// Base-trie tombstone count.
    pub fn tombstones(&self) -> usize {
        self.base_dead.len()
    }

    /// `true` when `id`'s base copy is tombstoned.
    pub fn is_base_dead(&self, id: TrajectoryId) -> bool {
        self.base_dead.contains(&id)
    }

    /// The base tombstone set.
    pub fn base_dead(&self) -> &BTreeSet<TrajectoryId> {
        &self.base_dead
    }

    /// `true` when `id` has a live copy (base or delta).
    pub fn contains(&self, id: TrajectoryId) -> bool {
        self.delta_home.contains_key(&id)
            || (self.base_home.contains_key(&id) && !self.base_dead.contains(&id))
    }

    /// One partition's delta.
    pub fn part(&self, pid: usize) -> &PartitionDelta {
        &self.parts[pid]
    }

    /// All partition deltas, in partition-id order.
    pub fn parts(&self) -> &[PartitionDelta] {
        &self.parts
    }

    /// Operations applied since the last compaction.
    pub fn ops_since_compact(&self) -> u64 {
        self.ops_since_compact
    }

    /// Ingestion counters.
    pub fn stats(&self) -> &IngestStats {
        &self.stats
    }

    /// Mutable ingestion counters (flush/compaction bookkeeping lives in
    /// `dita-core`, which executes those phases).
    pub fn stats_mut(&mut self) -> &mut IngestStats {
        &mut self.stats
    }

    /// Plans a flush: drains every non-empty tail (and pending tombstone
    /// counter) into per-partition jobs. The caller builds each job's
    /// segment — on the partition's worker, charging `ship_bytes` — and
    /// hands it back through [`DeltaSet::install_segment`].
    pub fn plan_flush(&mut self) -> Vec<FlushJob> {
        let mut jobs = Vec::new();
        for (pid, part) in self.parts.iter_mut().enumerate() {
            let seg_dead = part.seg.as_ref().is_some_and(|s| !s.dead.is_empty());
            if part.tail.is_empty() && part.pending_tombstones == 0 && !seg_dead {
                continue;
            }
            let ship_bytes = part.tail_bytes() + TOMBSTONE_BYTES * part.pending_tombstones;
            part.pending_tombstones = 0;
            let members = if part.tail.is_empty() && !seg_dead {
                // Only base tombstones to ship; the segment is untouched.
                None
            } else {
                let mut members: Vec<Trajectory> = part
                    .seg
                    .as_ref()
                    .map(|seg| seg.live().collect())
                    .unwrap_or_default();
                members.extend(
                    std::mem::take(&mut part.tail)
                        .into_values()
                        .map(|it| it.traj),
                );
                members.sort_by_key(|t| t.id);
                if members.is_empty() {
                    // Every flushed member died since the last run: drop the
                    // segment outright rather than rebuild an empty trie.
                    part.seg = None;
                    None
                } else {
                    Some(members)
                }
            };
            jobs.push(FlushJob {
                pid,
                ship_bytes,
                members,
            });
        }
        jobs
    }

    /// Installs a freshly built segment for `pid`, replacing any previous
    /// one (whose live members the new segment absorbed).
    pub fn install_segment(&mut self, pid: usize, seg: DeltaSegment) {
        self.parts[pid].seg = Some(seg);
    }

    /// Rebuilds the driver-side pruning index over the flushed segments.
    /// Call after a round of [`DeltaSet::install_segment`].
    pub fn rebuild_seg_global(&mut self) {
        let mut pids = Vec::new();
        let mut partitions = Vec::new();
        for (pid, part) in self.parts.iter().enumerate() {
            let Some(seg) = &part.seg else { continue };
            if seg.live_count() == 0 {
                continue;
            }
            partitions.push(Partition {
                id: partitions.len(),
                members: Vec::new(),
                mbr_first: seg.mbr_first,
                mbr_last: seg.mbr_last,
                min_len: seg.min_len,
                max_len: seg.max_len,
            });
            pids.push(pid);
        }
        self.seg_global = if pids.is_empty() {
            None
        } else {
            Some((GlobalIndex::build(&Partitioning { partitions }), pids))
        };
    }

    /// Partitions whose segment may contain query matches — the delta-side
    /// mirror of `GlobalIndex::relevant_partitions`, with identical budget
    /// semantics. Sorted by partition id.
    pub fn seg_relevant(
        &self,
        first: &Point,
        last: &Point,
        query_len: usize,
        tau: f64,
        mode: IndexMode,
    ) -> Vec<usize> {
        let Some((global, pids)) = &self.seg_global else {
            return Vec::new();
        };
        let mut out: Vec<usize> = global
            .relevant_partitions(first, last, query_len, tau, mode)
            .into_iter()
            .map(|i| pids[i])
            .collect();
        out.sort_unstable();
        out
    }

    /// Partitions needing a rebuild at compaction time.
    pub fn dirty_partitions(&self) -> Vec<usize> {
        (0..self.parts.len())
            .filter(|&i| self.parts[i].dirty)
            .collect()
    }

    /// Live delta members of `pid` (segment + tail) and the not-yet-shipped
    /// bytes the compaction task must charge, consumed at compaction time.
    pub fn drain_for_compact(&mut self, pid: usize) -> (Vec<Trajectory>, u64) {
        let part = &mut self.parts[pid];
        let ship_bytes = part.tail_bytes() + TOMBSTONE_BYTES * part.pending_tombstones;
        let mut members: Vec<Trajectory> = part
            .seg
            .as_ref()
            .map(|seg| seg.live().collect())
            .unwrap_or_default();
        members.extend(
            std::mem::take(&mut part.tail)
                .into_values()
                .map(|it| it.traj),
        );
        (members, ship_bytes)
    }

    /// Resets to a clean post-compaction state over a (possibly new)
    /// partition count and base residency map. Counters survive.
    pub fn reset_after_compact(
        &mut self,
        num_partitions: usize,
        base_home: BTreeMap<TrajectoryId, usize>,
    ) {
        let stats = self.stats;
        *self = DeltaSet::new(num_partitions, base_home, self.config);
        self.stats = stats;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dita_index::PivotStrategy;
    use dita_trajectory::Point;

    fn cfg() -> TrieConfig {
        TrieConfig {
            k: 2,
            nl: 2,
            leaf_capacity: 0,
            strategy: PivotStrategy::NeighborDistance,
            cell_side: 2.0,
            ..TrieConfig::default()
        }
    }

    fn traj(id: TrajectoryId, x: f64) -> Trajectory {
        Trajectory::from_coords(id, &[(x, 0.0), (x + 1.0, 1.0)])
    }

    fn two_part() -> Partitioning {
        let mk = |id: usize, x: f64| Partition {
            id,
            members: Vec::new(),
            mbr_first: Mbr::from_point(Point::new(x, 0.0)),
            mbr_last: Mbr::from_point(Point::new(x + 1.0, 1.0)),
            min_len: 2,
            max_len: 2,
        };
        Partitioning {
            partitions: vec![mk(0, 0.0), mk(1, 10.0)],
        }
    }

    #[test]
    fn routing_is_nearest_partition_lowest_id_on_tie() {
        let p = two_part();
        assert_eq!(DeltaSet::route(&p, &traj(1, 0.1)), 0);
        assert_eq!(DeltaSet::route(&p, &traj(2, 9.9)), 1);
        // Exactly between the two tiles: lowest id wins.
        assert_eq!(DeltaSet::route(&p, &traj(3, 5.0)), 0);
    }

    #[test]
    fn upsert_shadows_base_then_tail_wins() {
        let mut base_home = BTreeMap::new();
        base_home.insert(7, 1usize);
        let mut d = DeltaSet::new(2, base_home, cfg());
        assert!(d.contains(7));
        // Overwrite a base id: base copy tombstoned, tail copy live.
        assert!(d.insert(traj(7, 3.0), 0));
        assert!(d.is_base_dead(7));
        assert!(d.contains(7));
        assert_eq!(d.delta_live(), 1);
        // Overwrite again: still exactly one live copy.
        assert!(d.insert(traj(7, 4.0), 0));
        assert_eq!(d.delta_live(), 1);
        // Delete removes it everywhere.
        assert!(d.delete(7));
        assert!(!d.contains(7));
        assert!(!d.delete(7));
    }

    #[test]
    fn flush_drains_tails_and_prices_shipment() {
        let mut d = DeltaSet::new(2, BTreeMap::new(), cfg());
        d.insert(traj(1, 0.0), 0);
        d.insert(traj(2, 0.5), 0);
        let t_bytes: u64 = 2 * traj(1, 0.0).size_bytes() as u64;
        let jobs = d.plan_flush();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].pid, 0);
        assert_eq!(jobs[0].ship_bytes, t_bytes);
        let members = jobs[0].members.as_ref().unwrap();
        assert_eq!(members.iter().map(|t| t.id).collect::<Vec<_>>(), vec![1, 2]);
        // Simulate the build and install; tail is gone, segment is live.
        let (seg, _) =
            DeltaSegment::build(jobs.into_iter().next().unwrap().members.unwrap(), cfg());
        d.install_segment(0, seg);
        d.rebuild_seg_global();
        assert_eq!(d.part(0).tail.len(), 0);
        assert_eq!(d.delta_live(), 2);
        assert_eq!(d.part(0).seg.as_ref().unwrap().live_count(), 2);
        // Deleting a flushed id marks the segment dead-set and queues a
        // tombstone shipment.
        assert!(d.delete(1));
        assert_eq!(d.part(0).seg.as_ref().unwrap().live_count(), 1);
        let jobs = d.plan_flush();
        assert_eq!(jobs[0].ship_bytes, TOMBSTONE_BYTES);
        assert!(jobs[0].members.is_some()); // re-flush folds the dead entry out
    }

    #[test]
    fn seg_relevance_maps_back_to_partition_ids() {
        let mut d = DeltaSet::new(3, BTreeMap::new(), cfg());
        d.insert(traj(1, 20.0), 2);
        for job in d.plan_flush() {
            let (seg, _) = DeltaSegment::build(job.members.unwrap(), cfg());
            d.install_segment(job.pid, seg);
        }
        d.rebuild_seg_global();
        let hits = d.seg_relevant(
            &Point::new(20.0, 0.0),
            &Point::new(21.0, 1.0),
            2,
            0.5,
            IndexMode::Additive,
        );
        assert_eq!(hits, vec![2]);
        let misses = d.seg_relevant(
            &Point::new(-50.0, 0.0),
            &Point::new(-49.0, 1.0),
            2,
            0.5,
            IndexMode::Additive,
        );
        assert!(misses.is_empty());
    }

    #[test]
    fn compact_drain_resets_state() {
        let mut base_home = BTreeMap::new();
        base_home.insert(9, 0usize);
        let mut d = DeltaSet::new(1, base_home, cfg());
        d.insert(traj(1, 0.0), 0);
        d.delete(9);
        assert!(d.has_deltas());
        assert_eq!(d.dirty_partitions(), vec![0]);
        let (members, bytes) = d.drain_for_compact(0);
        assert_eq!(members.iter().map(|t| t.id).collect::<Vec<_>>(), vec![1]);
        assert_eq!(bytes, traj(1, 0.0).size_bytes() as u64 + TOMBSTONE_BYTES);
        let mut home = BTreeMap::new();
        home.insert(1u64, 0usize);
        d.reset_after_compact(1, home);
        assert!(!d.has_deltas());
        assert_eq!(d.stats().inserts, 1);
        assert!(d.contains(1));
        assert!(!d.contains(9));
    }
}
