//! Compaction triggers and ingestion counters.

/// When the background merge folds deltas into the base index.
///
/// Compaction is triggered by whichever bound trips first: the live delta
/// (inserts + tombstones) growing past `max_delta_ratio` of the logical
/// table, or the raw operation count since the last compaction reaching
/// `max_delta_ops`. After folding, a full STR repartition runs only when
/// the per-partition size skew (max/avg member count) exceeds
/// `skew_threshold` — i.e. when the first/last-point distribution has
/// drifted enough that the original tiling no longer balances.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CompactionPolicy {
    /// Fold deltas once `(delta inserts + tombstones) / logical size`
    /// exceeds this. `0.0` compacts after every operation; an infinite
    /// value disables the ratio trigger.
    pub max_delta_ratio: f64,
    /// Fold deltas once this many insert/delete operations have been
    /// applied since the last compaction. `0` disables the ops trigger.
    pub max_delta_ops: u64,
    /// Re-run STR repartitioning after a fold when
    /// [`dita_index::Partitioning::skew`] exceeds this.
    pub skew_threshold: f64,
    /// When `true` (the default), `insert`/`delete` transparently run the
    /// fold as soon as a trigger trips — the "background" merge of an
    /// LSM tree, made synchronous for determinism. When `false`, only
    /// explicit `compact()` calls fold.
    pub auto: bool,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy {
            max_delta_ratio: 0.10,
            max_delta_ops: 4096,
            skew_threshold: 4.0,
            auto: true,
        }
    }
}

impl CompactionPolicy {
    /// `true` when the pending delta state warrants a fold.
    pub fn should_compact(
        &self,
        delta_live: usize,
        tombstones: usize,
        logical_len: usize,
        ops: u64,
    ) -> bool {
        if ops == 0 {
            return false;
        }
        if self.max_delta_ops > 0 && ops >= self.max_delta_ops {
            return true;
        }
        let pending = (delta_live + tombstones) as f64;
        pending > self.max_delta_ratio * logical_len.max(1) as f64
    }
}

/// Monotonic counters over the life of one ingestion state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Insert operations applied (including overwrites).
    pub inserts: u64,
    /// Delete operations that removed a live trajectory.
    pub deletes: u64,
    /// Flushes that built or refreshed a delta segment.
    pub flushes: u64,
    /// Compactions that folded deltas into rebuilt base tries.
    pub compactions: u64,
    /// Compactions that escalated to a full STR repartition.
    pub repartitions: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_trigger() {
        let p = CompactionPolicy {
            max_delta_ratio: 0.10,
            max_delta_ops: 0,
            ..CompactionPolicy::default()
        };
        assert!(!p.should_compact(0, 0, 100, 0));
        assert!(!p.should_compact(10, 0, 100, 10)); // exactly 10% — not yet
        assert!(p.should_compact(11, 0, 100, 11));
        assert!(p.should_compact(6, 5, 100, 11)); // tombstones count too
    }

    #[test]
    fn ops_trigger() {
        let p = CompactionPolicy {
            max_delta_ratio: f64::INFINITY,
            max_delta_ops: 4,
            ..CompactionPolicy::default()
        };
        assert!(!p.should_compact(3, 0, 10, 3));
        assert!(p.should_compact(4, 0, 10, 4));
    }

    #[test]
    fn no_ops_never_compacts() {
        let p = CompactionPolicy {
            max_delta_ratio: 0.0,
            ..CompactionPolicy::default()
        };
        assert!(!p.should_compact(0, 0, 0, 0));
    }
}
