//! Property-based tests for the distance functions and lower bounds.

use dita_distance::{
    amd, dtw, dtw_double_direction, dtw_threshold, edr, edr_threshold, frechet, lcss_distance,
    lcss_similarity, mbr_coverage_prune, pamd, DistanceFunction,
};
use dita_trajectory::{CellList, Point, Trajectory};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (-50.0f64..50.0, -50.0f64..50.0).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_seq(max_len: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(arb_point(), 1..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dtw_symmetric(a in arb_seq(24), b in arb_seq(24)) {
        let x = dtw(&a, &b);
        let y = dtw(&b, &a);
        prop_assert!((x - y).abs() < 1e-6 * (1.0 + x.abs()));
    }

    #[test]
    fn dtw_nonnegative_and_zero_on_self(a in arb_seq(24)) {
        prop_assert!(dtw(&a, &a) <= 1e-12);
    }

    #[test]
    fn dtw_threshold_never_prunes_answers(a in arb_seq(20), b in arb_seq(20), tau in 0.0f64..200.0) {
        let full = dtw(&a, &b);
        match dtw_threshold(&a, &b, tau) {
            Some(v) => {
                prop_assert!((v - full).abs() < 1e-6);
                prop_assert!(full <= tau + 1e-9);
            }
            None => prop_assert!(full > tau - 1e-9),
        }
    }

    #[test]
    fn dtw_double_direction_equals_full(a in arb_seq(20), b in arb_seq(20), tau in 0.0f64..400.0) {
        let full = dtw(&a, &b);
        match dtw_double_direction(&a, &b, tau) {
            Some(v) => prop_assert!((v - full).abs() < 1e-6),
            None => prop_assert!(full > tau - 1e-9),
        }
    }

    #[test]
    fn amd_lower_bounds_dtw(a in arb_seq(20), b in arb_seq(20)) {
        prop_assert!(amd(&a, &b) <= dtw(&a, &b) + 1e-9);
    }

    #[test]
    fn pamd_lower_bounds_amd(a in arb_seq(20), b in arb_seq(20)) {
        if a.len() >= 4 {
            // Use every interior point as a sanity-maximal pivot set, plus a
            // sparse subset; both must stay below AMD.
            let all: Vec<usize> = (1..a.len() - 1).collect();
            let sparse: Vec<usize> = all.iter().copied().step_by(2).collect();
            let full_amd = amd(&a, &b);
            prop_assert!(pamd(&a, &b, &all) <= full_amd + 1e-9);
            prop_assert!(pamd(&a, &b, &sparse) <= full_amd + 1e-9);
            prop_assert!(pamd(&a, &b, &sparse) <= pamd(&a, &b, &all) + 1e-9);
        }
    }

    #[test]
    fn frechet_lower_bounds_dtw_and_is_metric(
        a in arb_seq(16), b in arb_seq(16), c in arb_seq(16)
    ) {
        prop_assert!(frechet(&a, &b) <= dtw(&a, &b) + 1e-9);
        let ab = frechet(&a, &b);
        let ac = frechet(&a, &c);
        let cb = frechet(&c, &b);
        prop_assert!(ab <= ac + cb + 1e-9);
    }

    #[test]
    fn mbr_coverage_is_sound_for_dtw(a in arb_seq(16), b in arb_seq(16), tau in 0.0f64..100.0) {
        let ta = Trajectory::new(0, a.clone());
        let tb = Trajectory::new(1, b.clone());
        if mbr_coverage_prune(&ta.mbr(), &tb.mbr(), tau) {
            prop_assert!(dtw(&a, &b) > tau - 1e-9);
        }
    }

    #[test]
    fn cell_bound_is_sound_for_dtw(a in arb_seq(16), b in arb_seq(16), side in 0.5f64..10.0) {
        let ta = Trajectory::new(0, a.clone());
        let tb = Trajectory::new(1, b.clone());
        let ca = CellList::compress(&ta, side);
        let cb = CellList::compress(&tb, side);
        let d = dtw(&a, &b);
        prop_assert!(ca.lower_bound(&cb) <= d + 1e-9);
        prop_assert!(cb.lower_bound(&ca) <= d + 1e-9);
    }

    #[test]
    fn edr_is_edit_metric_like(a in arb_seq(12), b in arb_seq(12), eps in 0.0f64..5.0) {
        let d = edr(&a, &b, eps);
        prop_assert!(d >= (a.len() as f64 - b.len() as f64).abs());
        prop_assert!(d <= a.len().max(b.len()) as f64);
        prop_assert_eq!(edr(&b, &a, eps), d);
    }

    #[test]
    fn edr_threshold_matches(a in arb_seq(12), b in arb_seq(12), tau in 0.0f64..12.0) {
        let full = edr(&a, &b, 1.0);
        match edr_threshold(&a, &b, 1.0, tau) {
            Some(v) => { prop_assert_eq!(v, full); prop_assert!(full <= tau); }
            None => prop_assert!(full > tau),
        }
    }

    #[test]
    fn lcss_banded_equals_full_dp(a in arb_seq(20), b in arb_seq(20), delta in 0usize..8, eps in 0.0f64..30.0) {
        // Reference: the unbanded O(mn) dynamic program.
        let full = {
            let (m, n) = (a.len(), b.len());
            let mut prev = vec![0usize; n + 1];
            let mut cur = vec![0usize; n + 1];
            for (i, ti) in a.iter().enumerate() {
                for (j, qj) in b.iter().enumerate() {
                    let matched = i.abs_diff(j) <= delta && ti.dist(qj) <= eps;
                    cur[j + 1] = if matched { prev[j] + 1 } else { prev[j + 1].max(cur[j]) };
                }
                std::mem::swap(&mut prev, &mut cur);
            }
            let _ = m;
            prev[n]
        };
        prop_assert_eq!(lcss_similarity(&a, &b, eps, delta), full);
    }

    #[test]
    fn lcss_similarity_bounded(a in arb_seq(12), b in arb_seq(12), delta in 0usize..6) {
        let s = lcss_similarity(&a, &b, 1.0, delta);
        prop_assert!(s <= a.len().min(b.len()));
        prop_assert_eq!(lcss_similarity(&b, &a, 1.0, delta), s);
        let d = lcss_distance(&a, &b, 1.0, delta);
        prop_assert!(d >= 0.0);
    }

    #[test]
    fn within_agrees_with_distance_for_all_functions(
        a in arb_seq(12), b in arb_seq(12), tau in 0.0f64..100.0
    ) {
        for f in [
            DistanceFunction::Dtw,
            DistanceFunction::Frechet,
            DistanceFunction::Edr { eps: 1.0 },
            DistanceFunction::Lcss { eps: 1.0, delta: 2 },
            DistanceFunction::Erp { gap: (0.0, 0.0) },
        ] {
            let d = f.distance(&a, &b);
            match f.within(&a, &b, tau) {
                Some(v) => prop_assert!((v - d).abs() < 1e-6, "{} value mismatch", f),
                None => prop_assert!(d > tau - 1e-9, "{} pruned an answer", f),
            }
        }
    }
}
