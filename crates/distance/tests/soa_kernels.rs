//! Property tests for the SoA band-pruned kernels: on random trajectory
//! pairs and random thresholds, every kernel must agree with the plain
//! O(mn) reference within 1e-9 and must never prune a true answer.
//!
//! Uses a tiny seeded xorshift generator instead of a heavyweight
//! property-testing dependency so failures are exactly reproducible.

use dita_distance::kernel::{dtw_soa, edr_soa, erp_soa, frechet_soa, lcss_soa, Scratch};
use dita_distance::{dtw, edr, erp, frechet, lcss_distance};
use dita_trajectory::{Point, SoaPoints};

/// xorshift64* — deterministic, seedable, good enough for test data.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in [0, 1).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in [lo, hi].
    fn next_range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() % (hi - lo + 1) as u64) as usize
    }
}

fn random_points(rng: &mut XorShift, len: usize) -> Vec<Point> {
    (0..len)
        .map(|_| Point::new(rng.next_f64() * 4.0, rng.next_f64() * 4.0))
        .collect()
}

/// A pair that is sometimes similar (perturbation of one walk), sometimes
/// unrelated — both branches of the threshold decision get exercised.
fn random_pair(rng: &mut XorShift) -> (Vec<Point>, Vec<Point>) {
    let m = rng.next_range(1, 32);
    let t = random_points(rng, m);
    if rng.next_f64() < 0.5 {
        let jitter = rng.next_f64() * 0.2;
        let n = rng.next_range(1, 32).min(m);
        let q = t[..n]
            .iter()
            .map(|p| {
                Point::new(
                    p.x + (rng.next_f64() - 0.5) * jitter,
                    p.y + (rng.next_f64() - 0.5) * jitter,
                )
            })
            .collect();
        (t, q)
    } else {
        let n = rng.next_range(1, 32);
        (t, random_points(rng, n))
    }
}

const EPS_NUM: f64 = 1e-9;

/// Checks a kernel's threshold answer against the plain reference value.
///
/// Outside a ±1e-9 boundary band the decision must match exactly; inside
/// it either decision is acceptable (floating-point order of operations may
/// differ), but an accepted value must still equal the reference to 1e-9.
fn check(kind: &str, reference: f64, tau: f64, got: Option<f64>, seed_info: (u64, usize)) {
    let (seed, iter) = seed_info;
    match got {
        Some(v) => {
            assert!(
                reference <= tau + EPS_NUM,
                "{kind}: accepted but ref {reference} > tau {tau} (seed {seed}, iter {iter})"
            );
            assert!(
                (v - reference).abs() <= EPS_NUM,
                "{kind}: value {v} != ref {reference} (seed {seed}, iter {iter})"
            );
        }
        None => {
            assert!(
                reference > tau - EPS_NUM,
                "{kind}: pruned a true answer ref {reference} <= tau {tau} \
                 (seed {seed}, iter {iter})"
            );
        }
    }
}

#[test]
fn kernels_agree_with_reference_on_random_pairs() {
    for seed in [7, 42, 20260807] {
        let mut rng = XorShift::new(seed);
        let mut scratch = Scratch::new();
        for iter in 0..400 {
            let (t, q) = random_pair(&mut rng);
            let (st, sq) = (SoaPoints::from_points(&t), SoaPoints::from_points(&q));
            let (tv, qv) = (st.view(), sq.view());
            let info = (seed, iter);

            // τ drawn around the true distance half the time so the
            // accept/reject boundary is stressed, far away otherwise.
            let pick_tau = |rng: &mut XorShift, reference: f64| -> f64 {
                if rng.next_f64() < 0.5 {
                    reference * (0.25 + 1.5 * rng.next_f64())
                } else {
                    rng.next_f64() * 8.0
                }
            };

            let r = dtw(&t, &q);
            let tau = pick_tau(&mut rng, r);
            check("dtw", r, tau, dtw_soa(tv, qv, tau, &mut scratch), info);

            let r = frechet(&t, &q);
            let tau = pick_tau(&mut rng, r);
            check(
                "frechet",
                r,
                tau,
                frechet_soa(tv, qv, tau, &mut scratch),
                info,
            );

            let eps = 0.05 + rng.next_f64() * 0.5;
            let r = edr(&t, &q, eps);
            let tau = pick_tau(&mut rng, r);
            check("edr", r, tau, edr_soa(tv, qv, eps, tau, &mut scratch), info);

            let delta = rng.next_range(0, 4);
            let r = lcss_distance(&t, &q, eps, delta);
            let tau = pick_tau(&mut rng, r);
            check(
                "lcss",
                r,
                tau,
                lcss_soa(tv, qv, eps, delta, tau, &mut scratch),
                info,
            );

            let (gx, gy) = (rng.next_f64() * 4.0, rng.next_f64() * 4.0);
            let r = erp(&t, &q, &Point::new(gx, gy));
            let tau = pick_tau(&mut rng, r);
            check(
                "erp",
                r,
                tau,
                erp_soa(tv, qv, gx, gy, tau, &mut scratch),
                info,
            );
        }
    }
}

#[test]
fn kernels_never_prune_with_generous_tau() {
    // τ far above every true distance: the kernels must always accept and
    // reproduce the reference value exactly (no band ever abandons).
    let mut rng = XorShift::new(99);
    let mut scratch = Scratch::new();
    for _ in 0..200 {
        let (t, q) = random_pair(&mut rng);
        let (st, sq) = (SoaPoints::from_points(&t), SoaPoints::from_points(&q));
        let (tv, qv) = (st.view(), sq.view());
        let big = 1e6;

        assert_eq!(dtw_soa(tv, qv, big, &mut scratch), Some(dtw(&t, &q)));
        assert_eq!(
            frechet_soa(tv, qv, big, &mut scratch),
            Some(frechet(&t, &q))
        );
        assert_eq!(
            edr_soa(tv, qv, 0.25, big, &mut scratch),
            Some(edr(&t, &q, 0.25))
        );
        assert_eq!(
            lcss_soa(tv, qv, 0.25, 2, big, &mut scratch),
            Some(lcss_distance(&t, &q, 0.25, 2))
        );
        let g = Point::new(1.0, 1.0);
        let r = erp(&t, &q, &g);
        let got = erp_soa(tv, qv, 1.0, 1.0, big, &mut scratch).unwrap();
        assert!((got - r).abs() <= EPS_NUM, "erp {got} vs {r}");
    }
}

#[test]
fn kernels_match_verify_dispatch() {
    use dita_distance::DistanceFunction;
    let fns = [
        DistanceFunction::Dtw,
        DistanceFunction::Frechet,
        DistanceFunction::Edr { eps: 0.25 },
        DistanceFunction::Lcss {
            eps: 0.25,
            delta: 2,
        },
        DistanceFunction::Erp { gap: (0.5, 0.5) },
    ];
    let mut rng = XorShift::new(1234);
    let mut scratch = Scratch::new();
    for _ in 0..100 {
        let (t, q) = random_pair(&mut rng);
        let (st, sq) = (SoaPoints::from_points(&t), SoaPoints::from_points(&q));
        for f in fns {
            let reference = f.distance(&t, &q);
            for tau_mul in [0.5, 1.1, 3.0] {
                let tau = reference * tau_mul + 0.01;
                let got = f.verify_soa(st.view(), sq.view(), tau, &mut scratch);
                check(f.name(), reference, tau, got, (1234, 0));
            }
        }
    }
}
