//! NaN discipline for the distance kernels.
//!
//! The lint rule `nan-ordering` (STATIC_ANALYSIS.md, L2) bans
//! NaN-unsafe orderings like `partial_cmp(..).unwrap()` at compile
//! scan time; these properties pin the complementary runtime half of
//! the contract: for finite inputs, no kernel or lower bound ever
//! emits NaN, so `f64::total_cmp` and `partial_cmp` agree wherever
//! kernel outputs get ordered (kNN heaps, STR sort keys, pivot
//! selection).

use dita_distance::{
    amd, dtw, dtw_double_direction, dtw_soa, dtw_threshold, edr, edr_soa, edr_threshold, erp,
    erp_soa, erp_threshold, frechet, frechet_soa, frechet_threshold, lcss_distance,
    lcss_distance_threshold, lcss_soa, pamd, Scratch,
};
use dita_trajectory::{Point, SoaPoints};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (-50.0f64..50.0, -50.0f64..50.0).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_seq(max_len: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(arb_point(), 1..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kernels_never_emit_nan_for_finite_inputs(
        a in arb_seq(20),
        b in arb_seq(20),
        eps in 0.0f64..10.0,
        delta in 0usize..8,
    ) {
        let gap = Point::new(0.0, 0.0);
        let outs = [
            dtw(&a, &b),
            frechet(&a, &b),
            edr(&a, &b, eps),
            erp(&a, &b, &gap),
            lcss_distance(&a, &b, eps, delta),
            amd(&a, &b),
        ];
        for (i, v) in outs.iter().enumerate() {
            prop_assert!(v.is_finite(), "kernel #{i} produced non-finite {v}");
        }
        if a.len() >= 4 {
            let pivots: Vec<usize> = (1..a.len() - 1).step_by(2).collect();
            let v = pamd(&a, &b, &pivots);
            prop_assert!(v.is_finite(), "pamd produced non-finite {v}");
        }
    }

    #[test]
    fn threshold_kernels_never_emit_nan(
        a in arb_seq(20),
        b in arb_seq(20),
        eps in 0.0f64..10.0,
        tau in 0.0f64..200.0,
        delta in 0usize..8,
    ) {
        let gap = Point::new(0.0, 0.0);
        let outs = [
            dtw_threshold(&a, &b, tau),
            dtw_double_direction(&a, &b, tau),
            frechet_threshold(&a, &b, tau),
            edr_threshold(&a, &b, eps, tau),
            erp_threshold(&a, &b, &gap, tau),
            lcss_distance_threshold(&a, &b, eps, delta, tau),
        ];
        for (i, v) in outs.iter().enumerate() {
            if let Some(v) = v {
                prop_assert!(v.is_finite(), "threshold kernel #{i} produced non-finite {v}");
            }
        }
    }

    #[test]
    fn total_cmp_agrees_with_partial_cmp_on_kernel_outputs(
        a in arb_seq(16),
        b in arb_seq(16),
        c in arb_seq(16),
    ) {
        // Kernel outputs are finite (above), so the two orderings must
        // coincide — i.e. migrating sort keys from
        // `partial_cmp(..).unwrap()` to `total_cmp` (rule L2) cannot
        // reorder anything.
        let x = dtw(&a, &c);
        let y = dtw(&b, &c);
        prop_assert_eq!(Some(x.total_cmp(&y)), x.partial_cmp(&y));
    }

    /// The chunked SoA kernels are bit-identical to the scalar references
    /// under threshold semantics: `Some(full)` exactly when the full scalar
    /// distance fits the budget, `None` otherwise, with the *same bits* in
    /// the payload. The chunked per-row distance precompute is a hoisting
    /// of the same expressions in the same operand order, so this must hold
    /// exactly (ERP alone carries a documented 1e-12 tolerance because the
    /// scalar reference accumulates gap mass in a different association
    /// order).
    #[test]
    fn soa_kernels_bit_identical_to_scalar_references(
        a in arb_seq(24),
        b in arb_seq(24),
        eps in 0.0f64..10.0,
        tau in 0.0f64..300.0,
        delta in 0usize..8,
    ) {
        let (sa, sb) = (SoaPoints::from_points(&a), SoaPoints::from_points(&b));
        let (va, vb) = (sa.view(), sb.view());
        let mut s = Scratch::new();

        let full = dtw(&a, &b);
        let expect = (full <= tau).then_some(full);
        prop_assert_eq!(dtw_soa(va, vb, tau, &mut s), expect, "dtw tau={}", tau);

        let full = frechet(&a, &b);
        let expect = (full <= tau).then_some(full);
        prop_assert_eq!(frechet_soa(va, vb, tau, &mut s), expect, "frechet tau={}", tau);

        let full = edr(&a, &b, eps);
        let expect = (full <= tau).then_some(full);
        prop_assert_eq!(edr_soa(va, vb, eps, tau, &mut s), expect, "edr tau={}", tau);

        let full = lcss_distance(&a, &b, eps, delta);
        let expect = (full <= tau).then_some(full);
        prop_assert_eq!(lcss_soa(va, vb, eps, delta, tau, &mut s), expect, "lcss tau={}", tau);

        let g = Point::new(0.0, 0.0);
        let full = erp(&a, &b, &g);
        match erp_soa(va, vb, 0.0, 0.0, tau, &mut s) {
            Some(v) => {
                prop_assert!(full <= tau, "erp emitted {} above tau={}", v, tau);
                prop_assert!((v - full).abs() < 1e-12, "erp {} vs {}", v, full);
            }
            None => prop_assert!(full > tau, "erp pruned a true answer {} <= {}", full, tau),
        }
    }

    /// The SoA threshold kernels agree with the AoS threshold kernels —
    /// the pair the probe/verify pipeline actually switches between.
    #[test]
    fn soa_kernels_match_aos_threshold_kernels(
        a in arb_seq(20),
        b in arb_seq(20),
        eps in 0.0f64..10.0,
        tau in 0.0f64..200.0,
        delta in 0usize..8,
    ) {
        let (sa, sb) = (SoaPoints::from_points(&a), SoaPoints::from_points(&b));
        let (va, vb) = (sa.view(), sb.view());
        let mut s = Scratch::new();
        prop_assert_eq!(dtw_soa(va, vb, tau, &mut s), dtw_threshold(&a, &b, tau));
        prop_assert_eq!(frechet_soa(va, vb, tau, &mut s), frechet_threshold(&a, &b, tau));
        prop_assert_eq!(edr_soa(va, vb, eps, tau, &mut s), edr_threshold(&a, &b, eps, tau));
        prop_assert_eq!(
            lcss_soa(va, vb, eps, delta, tau, &mut s),
            lcss_distance_threshold(&a, &b, eps, delta, tau)
        );
        let gap = Point::new(0.0, 0.0);
        let (soa, aos) = (erp_soa(va, vb, 0.0, 0.0, tau, &mut s), erp_threshold(&a, &b, &gap, tau));
        match (soa, aos) {
            (None, None) => {}
            (Some(x), Some(y)) => prop_assert!((x - y).abs() < 1e-12, "erp {} vs {}", x, y),
            _ => {
                // Near the budget boundary the two accumulation orders may
                // disagree on prune-vs-keep by a rounding ulp; both must
                // still agree with the full scalar distance's side of tau
                // within tolerance.
                let full = erp(&a, &b, &gap);
                prop_assert!((full - tau).abs() < 1e-9, "erp prune divergence far from tau");
            }
        }
    }
}
