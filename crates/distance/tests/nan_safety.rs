//! NaN discipline for the distance kernels.
//!
//! The lint rule `nan-ordering` (STATIC_ANALYSIS.md, L2) bans
//! NaN-unsafe orderings like `partial_cmp(..).unwrap()` at compile
//! scan time; these properties pin the complementary runtime half of
//! the contract: for finite inputs, no kernel or lower bound ever
//! emits NaN, so `f64::total_cmp` and `partial_cmp` agree wherever
//! kernel outputs get ordered (kNN heaps, STR sort keys, pivot
//! selection).

use dita_distance::{
    amd, dtw, dtw_double_direction, dtw_threshold, edr, edr_threshold, erp, erp_threshold, frechet,
    frechet_threshold, lcss_distance, lcss_distance_threshold, pamd,
};
use dita_trajectory::Point;
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (-50.0f64..50.0, -50.0f64..50.0).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_seq(max_len: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(arb_point(), 1..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kernels_never_emit_nan_for_finite_inputs(
        a in arb_seq(20),
        b in arb_seq(20),
        eps in 0.0f64..10.0,
        delta in 0usize..8,
    ) {
        let gap = Point::new(0.0, 0.0);
        let outs = [
            dtw(&a, &b),
            frechet(&a, &b),
            edr(&a, &b, eps),
            erp(&a, &b, &gap),
            lcss_distance(&a, &b, eps, delta),
            amd(&a, &b),
        ];
        for (i, v) in outs.iter().enumerate() {
            prop_assert!(v.is_finite(), "kernel #{i} produced non-finite {v}");
        }
        if a.len() >= 4 {
            let pivots: Vec<usize> = (1..a.len() - 1).step_by(2).collect();
            let v = pamd(&a, &b, &pivots);
            prop_assert!(v.is_finite(), "pamd produced non-finite {v}");
        }
    }

    #[test]
    fn threshold_kernels_never_emit_nan(
        a in arb_seq(20),
        b in arb_seq(20),
        eps in 0.0f64..10.0,
        tau in 0.0f64..200.0,
        delta in 0usize..8,
    ) {
        let gap = Point::new(0.0, 0.0);
        let outs = [
            dtw_threshold(&a, &b, tau),
            dtw_double_direction(&a, &b, tau),
            frechet_threshold(&a, &b, tau),
            edr_threshold(&a, &b, eps, tau),
            erp_threshold(&a, &b, &gap, tau),
            lcss_distance_threshold(&a, &b, eps, delta, tau),
        ];
        for (i, v) in outs.iter().enumerate() {
            if let Some(v) = v {
                prop_assert!(v.is_finite(), "threshold kernel #{i} produced non-finite {v}");
            }
        }
    }

    #[test]
    fn total_cmp_agrees_with_partial_cmp_on_kernel_outputs(
        a in arb_seq(16),
        b in arb_seq(16),
        c in arb_seq(16),
    ) {
        // Kernel outputs are finite (above), so the two orderings must
        // coincide — i.e. migrating sort keys from
        // `partial_cmp(..).unwrap()` to `total_cmp` (rule L2) cannot
        // reorder anything.
        let x = dtw(&a, &c);
        let y = dtw(&b, &c);
        prop_assert_eq!(Some(x.total_cmp(&y)), x.partial_cmp(&y));
    }
}
