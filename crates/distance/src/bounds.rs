//! Filter-step lower bounds (§4.1, §5.3.3).
//!
//! These are the cheap estimations DITA uses to discard dissimilar pairs
//! before running a full distance computation:
//!
//! * [`amd`] — Accumulated Minimum Distance (Lemma 4.1): every DTW warping
//!   path crosses every row of the matrix and must align the endpoint pairs,
//!   so `dist(t1,q1) + dist(tm,qn) + Σ_{i=2..m−1} min_j dist(t_i, q_j)`
//!   never exceeds `DTW(T, Q)`.
//! * [`pamd`] — Pivot AMD (Lemma 4.3): the same sum restricted to K selected
//!   pivot points, dropping the complexity from O(mn) to O(nK).
//! * [`mbr_coverage_prune`] — Lemma 5.4: if two trajectories are similar
//!   under DTW with threshold τ, each one's MBR must be covered by the other's
//!   τ-extended MBR. The check is O(1) given precomputed MBRs.
//! * [`length_bound_edr`] — `EDR ≥ |m − n|` (Appendix A).

use dita_trajectory::{Mbr, Point};

/// Accumulated Minimum Distance `AMD(T, Q) ≤ DTW(T, Q)` (Lemma 4.1).
///
/// # Panics
/// Panics if either sequence is empty.
pub fn amd(t: &[Point], q: &[Point]) -> f64 {
    assert!(!t.is_empty() && !q.is_empty());
    // With m = n = 1 the matrix has a single cell: its distance appears once
    // in DTW, not twice.
    if t.len() == 1 && q.len() == 1 {
        return t[0].dist(&q[0]);
    }
    let first = t[0].dist(&q[0]);
    let last = t[t.len() - 1].dist(&q[q.len() - 1]);
    let mut sum = first + last;
    for ti in t.iter().skip(1).take(t.len().saturating_sub(2)) {
        sum += min_dist_to_seq(ti, q);
    }
    sum
}

/// Pivot Accumulated Minimum Distance `PAMD(T, Q) ≤ AMD(T, Q) ≤ DTW(T, Q)`
/// (Definition 4.2, Lemma 4.3). `pivots` holds 0-based indices into `t`,
/// which must lie strictly between the first and last point.
///
/// # Panics
/// Panics if either sequence is empty, or a pivot index is the first/last
/// point or out of range.
pub fn pamd(t: &[Point], q: &[Point], pivots: &[usize]) -> f64 {
    assert!(!t.is_empty() && !q.is_empty());
    let m = t.len();
    if m == 1 && q.len() == 1 {
        return t[0].dist(&q[0]);
    }
    let mut sum = t[0].dist(&q[0]) + t[m - 1].dist(&q[q.len() - 1]);
    for &p in pivots {
        assert!(
            p > 0 && p < m - 1,
            "pivot index {p} must be interior (m = {m})"
        );
        sum += min_dist_to_seq(&t[p], q);
    }
    sum
}

#[inline]
fn min_dist_to_seq(p: &Point, q: &[Point]) -> f64 {
    q.iter()
        .map(|qj| p.dist_sq(qj))
        .fold(f64::INFINITY, f64::min)
        .sqrt()
}

/// MBR coverage filter (Lemma 5.4): returns `true` when the pair can be
/// *pruned*, i.e. when `EMBR_{T,τ}` fails to cover `MBR_Q` or `EMBR_{Q,τ}`
/// fails to cover `MBR_T`; similar pairs always pass.
pub fn mbr_coverage_prune(mbr_t: &Mbr, mbr_q: &Mbr, tau: f64) -> bool {
    !mbr_t.expanded(tau).covers(mbr_q) || !mbr_q.expanded(tau).covers(mbr_t)
}

/// EDR length filter (Appendix A): `EDR_ϵ(T, Q) ≥ |m − n|`, so any pair with
/// `|m − n| > τ` can be pruned. Returns `true` when the pair can be pruned.
pub fn length_bound_edr(m: usize, n: usize, tau: f64) -> bool {
    (m as i64 - n as i64).abs() as f64 > tau
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtw::dtw;
    use dita_trajectory::trajectory::figure1_trajectories;
    use dita_trajectory::Trajectory;

    fn fig1() -> Vec<Trajectory> {
        figure1_trajectories()
    }

    #[test]
    fn amd_is_lower_bound_of_dtw() {
        let ts = fig1();
        for a in &ts {
            for b in &ts {
                let lb = amd(a.points(), b.points());
                let d = dtw(a.points(), b.points());
                assert!(lb <= d + 1e-9, "AMD {lb} > DTW {d} for T{} T{}", a.id, b.id);
            }
        }
    }

    #[test]
    fn pamd_is_lower_bound_of_amd_and_dtw() {
        let ts = fig1();
        // Neighbor-distance pivots from Figure 1: T1 → (3,2), (4,4), i.e.
        // 0-based indices 2 and 3.
        let pivots = [2usize, 3usize];
        for b in &ts {
            let p = pamd(ts[0].points(), b.points(), &pivots);
            let a = amd(ts[0].points(), b.points());
            let d = dtw(ts[0].points(), b.points());
            assert!(p <= a + 1e-9);
            assert!(p <= d + 1e-9);
        }
    }

    #[test]
    fn paper_example_4_4_pamd_value() {
        // Example 4.4: PAMD(T1, T3) with pivots {(3,2), (4,4)} is 3.41 > τ=3,
        // proving T1 and T3 dissimilar.
        let ts = fig1();
        let p = pamd(ts[0].points(), ts[2].points(), &[2, 3]);
        assert!((p - 3.41).abs() < 0.01, "got {p}");
        assert!(p > 3.0);
    }

    #[test]
    fn amd_self_is_zero() {
        let ts = fig1();
        for t in &ts {
            assert_eq!(amd(t.points(), t.points()), 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "interior")]
    fn pamd_rejects_endpoint_pivot() {
        let ts = fig1();
        let _ = pamd(ts[0].points(), ts[1].points(), &[0]);
    }

    #[test]
    fn mbr_coverage_never_prunes_similar_pairs() {
        let ts = fig1();
        for a in &ts {
            for b in &ts {
                let d = dtw(a.points(), b.points());
                for tau in [1.0, 3.0, 6.0] {
                    if d <= tau {
                        assert!(
                            !mbr_coverage_prune(&a.mbr(), &b.mbr(), tau),
                            "pruned similar pair T{} T{} (d = {d}, tau = {tau})",
                            a.id,
                            b.id
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn mbr_coverage_prunes_example_5_5() {
        // Example 5.5: Q reaches (3, 11) while T5 stays within y ≤ 7, so with
        // τ = 3 the extended MBR of T5 cannot cover MBR_Q.
        let ts = fig1();
        let q = Trajectory::from_coords(
            10,
            &[
                (0.0, 4.0),
                (0.0, 5.0),
                (3.0, 7.0),
                (3.0, 9.0),
                (3.0, 11.0),
                (3.0, 3.0),
                (7.0, 5.0),
            ],
        );
        assert!(mbr_coverage_prune(&ts[4].mbr(), &q.mbr(), 3.0));
    }

    #[test]
    fn length_bound_edr_cases() {
        assert!(length_bound_edr(3, 10, 5.0));
        assert!(!length_bound_edr(3, 10, 7.0));
        assert!(!length_bound_edr(5, 5, 0.0));
    }
}
