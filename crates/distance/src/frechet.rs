//! Discrete Fréchet distance (Definition A.1).
//!
//! The Fréchet recurrence mirrors DTW's but combines with `max` instead of
//! `+`, which makes it a metric on point sequences. The paper uses it as the
//! representative metric distance function; DITA's index supports it by
//! keeping the threshold constant while descending the trie (Appendix A).

use dita_trajectory::Point;

/// Plain discrete Fréchet distance.
///
/// # Panics
/// Panics if either sequence is empty.
pub fn frechet(t: &[Point], q: &[Point]) -> f64 {
    frechet_impl(t, q, f64::INFINITY).expect("unbounded Fréchet always returns a value")
}

/// Threshold-aware Fréchet: returns `Some(F(t, q))` iff it is ≤ `tau`.
///
/// Abandons when a full DP row exceeds `tau`: every coupling crosses every
/// row and values only grow along a coupling, so the row minimum is a lower
/// bound of the final value.
pub fn frechet_threshold(t: &[Point], q: &[Point], tau: f64) -> Option<f64> {
    frechet_impl(t, q, tau)
}

fn frechet_impl(t: &[Point], q: &[Point], tau: f64) -> Option<f64> {
    assert!(
        !t.is_empty() && !q.is_empty(),
        "Fréchet requires non-empty sequences"
    );
    let (m, n) = (t.len(), q.len());
    if n > m {
        return frechet_impl(q, t, tau);
    }
    if n == 1 {
        let v = t.iter().map(|p| p.dist(&q[0])).fold(0.0f64, f64::max);
        return (v <= tau).then_some(v);
    }

    let mut prev = vec![0.0f64; n];
    let mut cur = vec![0.0f64; n];

    let mut acc = 0.0f64;
    for (j, qj) in q.iter().enumerate() {
        acc = acc.max(t[0].dist(qj));
        prev[j] = acc;
    }
    if m == 1 {
        let v = prev[n - 1];
        return (v <= tau).then_some(v);
    }

    for ti in t.iter().skip(1) {
        cur[0] = prev[0].max(ti.dist(&q[0]));
        let mut row_min = cur[0];
        for j in 1..n {
            let best = prev[j - 1].min(prev[j]).min(cur[j - 1]);
            cur[j] = best.max(ti.dist(&q[j]));
            if cur[j] < row_min {
                row_min = cur[j];
            }
        }
        if row_min > tau {
            return None;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    let v = prev[n - 1];
    (v <= tau).then_some(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtw::dtw;
    use dita_trajectory::trajectory::figure1_trajectories;

    fn fig1() -> Vec<Vec<Point>> {
        figure1_trajectories()
            .into_iter()
            .map(|t| t.points().to_vec())
            .collect()
    }

    #[test]
    fn paper_appendix_a_value() {
        // Appendix A: Fréchet(T1, T3) = 1.41.
        let ts = fig1();
        let d = frechet(&ts[0], &ts[2]);
        assert!((d - 1.41).abs() < 0.01, "got {d}");
    }

    #[test]
    fn frechet_zero_on_self_and_symmetric() {
        let ts = fig1();
        for i in 0..ts.len() {
            assert_eq!(frechet(&ts[i], &ts[i]), 0.0);
            for j in 0..ts.len() {
                let a = frechet(&ts[i], &ts[j]);
                let b = frechet(&ts[j], &ts[i]);
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn frechet_triangle_inequality_on_examples() {
        // Fréchet is a metric; check the triangle inequality over Figure 1.
        let ts = fig1();
        for i in 0..ts.len() {
            for j in 0..ts.len() {
                for k in 0..ts.len() {
                    let ij = frechet(&ts[i], &ts[j]);
                    let ik = frechet(&ts[i], &ts[k]);
                    let kj = frechet(&ts[k], &ts[j]);
                    assert!(ij <= ik + kj + 1e-12);
                }
            }
        }
    }

    #[test]
    fn frechet_never_exceeds_dtw() {
        // DTW sums at least max(m, n) non-negative terms, one of which is the
        // bottleneck pair, so Fréchet ≤ DTW always.
        let ts = fig1();
        for i in 0..ts.len() {
            for j in 0..ts.len() {
                assert!(frechet(&ts[i], &ts[j]) <= dtw(&ts[i], &ts[j]) + 1e-12);
            }
        }
    }

    #[test]
    fn threshold_agrees_with_plain() {
        let ts = fig1();
        for i in 0..ts.len() {
            for j in 0..ts.len() {
                let full = frechet(&ts[i], &ts[j]);
                for tau in [0.5, 1.0, 1.41, 2.0, 4.0] {
                    match frechet_threshold(&ts[i], &ts[j], tau) {
                        Some(v) => {
                            assert!(full <= tau + 1e-12);
                            assert!((v - full).abs() < 1e-12);
                        }
                        None => assert!(full > tau),
                    }
                }
            }
        }
    }

    #[test]
    fn single_point_is_max_distance() {
        let t = [Point::new(0.0, 0.0), Point::new(3.0, 4.0)];
        let q = [Point::new(0.0, 0.0)];
        assert_eq!(frechet(&t, &q), 5.0);
        assert_eq!(frechet(&q, &t), 5.0);
    }
}
