//! Edit Distance on Real sequence (EDR, Definition A.2).
//!
//! EDR counts the minimum number of edit operations (insert, delete,
//! substitute) needed to make the two sequences match, where two points match
//! for free when their Euclidean distance is at most the matching threshold
//! `eps`. The result is an integer expressed as `f64` for interface
//! uniformity with the other distance functions.

use dita_trajectory::Point;

/// EDR with matching threshold `eps`.
///
/// Empty sequences are allowed (Definition A.2 defines the base cases
/// `EDR(T, ∅) = m`).
pub fn edr(t: &[Point], q: &[Point], eps: f64) -> f64 {
    edr_impl(t, q, eps, u32::MAX).expect("unbounded EDR always returns a value") as f64
}

/// Threshold-aware EDR: `Some(EDR)` iff EDR ≤ `tau`.
///
/// Applies the length filter `EDR ≥ |m − n|` up front (Appendix A), then
/// early-abandons when a DP row minimum exceeds the threshold.
pub fn edr_threshold(t: &[Point], q: &[Point], eps: f64, tau: f64) -> Option<f64> {
    if tau < 0.0 {
        return None;
    }
    let tau_int = tau.floor() as i64;
    if (t.len() as i64 - q.len() as i64).abs() > tau_int {
        return None;
    }
    edr_impl(t, q, eps, tau_int as u32).map(|v| v as f64)
}

fn edr_impl(t: &[Point], q: &[Point], eps: f64, tau: u32) -> Option<u32> {
    debug_assert!(eps >= 0.0);
    let (m, n) = (t.len(), q.len());
    if m == 0 {
        return (n as u32 <= tau).then_some(n as u32);
    }
    if n == 0 {
        return (m as u32 <= tau).then_some(m as u32);
    }
    // prev[j] = EDR(T^i, Q^j) for the previous row i (row 0 = empty prefix).
    let mut prev: Vec<u32> = (0..=n as u32).collect();
    let mut cur = vec![0u32; n + 1];
    for (i, ti) in t.iter().enumerate() {
        cur[0] = i as u32 + 1;
        let mut row_min = cur[0];
        for (j, qj) in q.iter().enumerate() {
            let sub = if ti.dist(qj) <= eps { 0 } else { 1 };
            let v = (prev[j] + sub).min(prev[j + 1] + 1).min(cur[j] + 1);
            cur[j + 1] = v;
            if v < row_min {
                row_min = v;
            }
        }
        if row_min > tau {
            return None;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    let v = prev[n];
    (v <= tau).then_some(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dita_trajectory::trajectory::figure1_trajectories;

    fn fig1() -> Vec<Vec<Point>> {
        figure1_trajectories()
            .into_iter()
            .map(|t| t.points().to_vec())
            .collect()
    }

    #[test]
    fn paper_appendix_a_value() {
        // Appendix A: with ϵ = 1, EDR(T1, T3) = 2.
        let ts = fig1();
        assert_eq!(edr(&ts[0], &ts[2], 1.0), 2.0);
    }

    #[test]
    fn identical_sequences_are_zero() {
        let ts = fig1();
        for t in &ts {
            assert_eq!(edr(t, t, 0.0), 0.0);
        }
    }

    #[test]
    fn empty_base_cases() {
        let t = [Point::new(0.0, 0.0), Point::new(1.0, 1.0)];
        assert_eq!(edr(&t, &[], 1.0), 2.0);
        assert_eq!(edr(&[], &t, 1.0), 2.0);
        assert_eq!(edr(&[], &[], 1.0), 0.0);
    }

    #[test]
    fn large_eps_reduces_to_length_difference() {
        // When every pair matches, only insertions/deletions remain.
        let a: Vec<Point> = (0..5).map(|i| Point::new(i as f64, 0.0)).collect();
        let b: Vec<Point> = (0..9).map(|i| Point::new(i as f64, 0.0)).collect();
        assert_eq!(edr(&a, &b, 100.0), 4.0);
    }

    #[test]
    fn symmetric() {
        let ts = fig1();
        for i in 0..ts.len() {
            for j in 0..ts.len() {
                assert_eq!(edr(&ts[i], &ts[j], 1.0), edr(&ts[j], &ts[i], 1.0));
            }
        }
    }

    #[test]
    fn threshold_agrees_with_plain() {
        let ts = fig1();
        for i in 0..ts.len() {
            for j in 0..ts.len() {
                let full = edr(&ts[i], &ts[j], 1.0);
                for tau in [0.0, 1.0, 2.0, 3.0, 6.0] {
                    match edr_threshold(&ts[i], &ts[j], 1.0, tau) {
                        Some(v) => {
                            assert_eq!(v, full);
                            assert!(full <= tau);
                        }
                        None => assert!(full > tau),
                    }
                }
            }
        }
    }

    #[test]
    fn length_filter_prunes_before_dp() {
        let a: Vec<Point> = (0..3).map(|i| Point::new(i as f64, 0.0)).collect();
        let b: Vec<Point> = (0..10).map(|i| Point::new(i as f64, 0.0)).collect();
        // |3 - 10| = 7 > 5, pruned regardless of eps.
        assert!(edr_threshold(&a, &b, 100.0, 5.0).is_none());
    }

    #[test]
    fn negative_tau_always_prunes() {
        let a = [Point::new(0.0, 0.0)];
        assert!(edr_threshold(&a, &a, 1.0, -1.0).is_none());
    }
}
