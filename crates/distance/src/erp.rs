//! Edit distance with Real Penalty (ERP, Chen & Ng 2004).
//!
//! ERP is the paper's §2.3 list member that marries Lp-norms with edit
//! distance: gaps are penalized by the real distance to a fixed gap point
//! `g`, which restores the triangle inequality (ERP is a metric for a fixed
//! `g`). DITA supports it the same way as DTW — the accumulated threshold
//! shrinks while descending the trie.

use dita_trajectory::Point;

/// ERP distance with gap point `g`.
///
/// Empty sequences are allowed: `ERP(T, ∅) = Σ dist(t_i, g)`.
pub fn erp(t: &[Point], q: &[Point], g: &Point) -> f64 {
    erp_impl(t, q, g, f64::INFINITY).expect("unbounded ERP always returns a value")
}

/// Threshold-aware ERP: `Some(d)` iff `d ≤ tau`, early-abandoning on row
/// minima (sound for the same reason as DTW: costs are non-negative and
/// every path crosses every row).
pub fn erp_threshold(t: &[Point], q: &[Point], g: &Point, tau: f64) -> Option<f64> {
    erp_impl(t, q, g, tau)
}

fn erp_impl(t: &[Point], q: &[Point], g: &Point, tau: f64) -> Option<f64> {
    let (m, n) = (t.len(), q.len());
    if m == 0 {
        let v: f64 = q.iter().map(|p| p.dist(g)).sum();
        return (v <= tau).then_some(v);
    }
    if n == 0 {
        let v: f64 = t.iter().map(|p| p.dist(g)).sum();
        return (v <= tau).then_some(v);
    }
    // Row 0: deleting all of Q's prefix.
    let mut prev = vec![0.0f64; n + 1];
    for (j, qj) in q.iter().enumerate() {
        prev[j + 1] = prev[j] + qj.dist(g);
    }
    let mut cur = vec![0.0f64; n + 1];
    for ti in t.iter() {
        let del_t = ti.dist(g);
        cur[0] = prev[0] + del_t;
        let mut row_min = cur[0];
        for (j, qj) in q.iter().enumerate() {
            let v = (prev[j] + ti.dist(qj)) // match
                .min(prev[j + 1] + del_t) // gap in Q (delete t_i)
                .min(cur[j] + qj.dist(g)); // gap in T (delete q_j)
            cur[j + 1] = v;
            if v < row_min {
                row_min = v;
            }
        }
        if row_min > tau {
            return None;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    let v = prev[n];
    (v <= tau).then_some(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dita_trajectory::trajectory::figure1_trajectories;

    const G: Point = Point { x: 0.0, y: 0.0 };

    fn fig1() -> Vec<Vec<Point>> {
        figure1_trajectories()
            .into_iter()
            .map(|t| t.points().to_vec())
            .collect()
    }

    #[test]
    fn zero_on_self() {
        for t in fig1() {
            assert_eq!(erp(&t, &t, &G), 0.0);
        }
    }

    #[test]
    fn symmetric() {
        let ts = fig1();
        for i in 0..ts.len() {
            for j in 0..ts.len() {
                let a = erp(&ts[i], &ts[j], &G);
                let b = erp(&ts[j], &ts[i], &G);
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn triangle_inequality() {
        // ERP with a fixed gap point is a metric.
        let ts = fig1();
        for i in 0..ts.len() {
            for j in 0..ts.len() {
                for k in 0..ts.len() {
                    let ij = erp(&ts[i], &ts[j], &G);
                    let ik = erp(&ts[i], &ts[k], &G);
                    let kj = erp(&ts[k], &ts[j], &G);
                    assert!(ij <= ik + kj + 1e-9);
                }
            }
        }
    }

    #[test]
    fn empty_base_case_sums_gap_distances() {
        let t = [Point::new(3.0, 4.0), Point::new(0.0, 5.0)];
        assert_eq!(erp(&t, &[], &G), 10.0);
        assert_eq!(erp(&[], &t, &G), 10.0);
        assert_eq!(erp(&[], &[], &G), 0.0);
    }

    #[test]
    fn single_gap_penalty() {
        // T = (a, b), Q = (a): optimal alignment matches a–a and deletes b.
        let a = Point::new(1.0, 1.0);
        let b = Point::new(2.0, 2.0);
        let d = erp(&[a, b], &[a], &G);
        assert!((d - b.dist(&G)).abs() < 1e-12);
    }

    #[test]
    fn threshold_agrees_with_plain() {
        let ts = fig1();
        for i in 0..ts.len() {
            for j in 0..ts.len() {
                let full = erp(&ts[i], &ts[j], &G);
                for tau in [0.5, 2.0, 5.0, 20.0] {
                    match erp_threshold(&ts[i], &ts[j], &G, tau) {
                        Some(v) => {
                            assert!((v - full).abs() < 1e-9);
                            assert!(full <= tau + 1e-12);
                        }
                        None => assert!(full > tau),
                    }
                }
            }
        }
    }
}
