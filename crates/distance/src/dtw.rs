//! Dynamic Time Warping (Definition 2.2) and its optimized verification
//! variants.
//!
//! DTW aligns two point sequences monotonically from `(1, 1)` to `(m, n)`,
//! summing the point-to-point Euclidean distance of every aligned pair. The
//! plain [`dtw`] runs the O(mn) dynamic program with an O(min(m, n)) rolling
//! row. [`dtw_threshold`] abandons as soon as a whole DP row exceeds the
//! threshold (every warping path must cross every row, so the row minimum is
//! a lower bound of the final value). [`dtw_double_direction`] is the paper's
//! §5.3.3(3) optimization: the matrix is filled from both ends and joined in
//! the middle, so a pair that is dissimilar near either endpoint is abandoned
//! after filling only half the matrix.

use dita_trajectory::Point;

/// Plain DTW between two point sequences.
///
/// # Panics
/// Panics if either sequence is empty (Definition 2.2 requires m, n ≥ 1).
pub fn dtw(t: &[Point], q: &[Point]) -> f64 {
    dtw_impl(t, q, f64::INFINITY).expect("unbounded DTW always returns a value")
}

/// Threshold-aware DTW: returns `Some(DTW(t, q))` if it is ≤ `tau`, `None`
/// otherwise (possibly abandoning before the full matrix is computed).
pub fn dtw_threshold(t: &[Point], q: &[Point], tau: f64) -> Option<f64> {
    dtw_impl(t, q, tau)
}

fn dtw_impl(t: &[Point], q: &[Point], tau: f64) -> Option<f64> {
    assert!(
        !t.is_empty() && !q.is_empty(),
        "DTW requires non-empty sequences"
    );
    let (m, n) = (t.len(), q.len());
    // Keep the shorter sequence along the row to minimize the rolling buffer.
    if n > m {
        return dtw_impl(q, t, tau);
    }
    // Degenerate cases per Definition 2.2.
    if n == 1 {
        let s: f64 = t.iter().map(|p| p.dist(&q[0])).sum();
        return (s <= tau).then_some(s);
    }

    let mut prev = vec![0.0f64; n];
    let mut cur = vec![0.0f64; n];

    // First row: v(1, j) = Σ_{k<=j} dist(t1, qk)  (m == 1 branch of the
    // definition applied to prefixes of Q).
    let mut acc = 0.0;
    for (j, qj) in q.iter().enumerate() {
        acc += t[0].dist(qj);
        prev[j] = acc;
    }
    if m == 1 {
        let v = prev[n - 1];
        return (v <= tau).then_some(v);
    }

    for ti in t.iter().skip(1) {
        // v(i, 1) = Σ_{k<=i} dist(tk, q1).
        cur[0] = prev[0] + ti.dist(&q[0]);
        let mut row_min = cur[0];
        for j in 1..n {
            let d = ti.dist(&q[j]);
            let best = prev[j - 1].min(prev[j]).min(cur[j - 1]);
            cur[j] = d + best;
            if cur[j] < row_min {
                row_min = cur[j];
            }
        }
        if row_min > tau {
            return None;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    let v = prev[n - 1];
    (v <= tau).then_some(v)
}

/// Double-direction DTW verification (§5.3.3(3)).
///
/// The DP matrix is filled forward from `(1, 1)` for the first half of `t`'s
/// rows and backward from `(m, n)` for the second half; the halves are then
/// joined across the seam. Any warping path crosses the seam between rows
/// `h` and `h+1` moving from cell `(h, j)` to `(h+1, j)` or `(h+1, j+1)`, so
///
/// `DTW = min_j [ fwd(h, j) + min(bwd(h+1, j), bwd(h+1, j+1)) ]`.
///
/// Each half abandons independently when its row minimum exceeds `tau`,
/// which — as the paper notes — halves the explored space for dissimilar
/// pairs whose divergence appears near the far end of a forward-only scan.
///
/// Returns `Some(distance)` iff the distance is ≤ `tau`.
pub fn dtw_double_direction(t: &[Point], q: &[Point], tau: f64) -> Option<f64> {
    assert!(
        !t.is_empty() && !q.is_empty(),
        "DTW requires non-empty sequences"
    );
    let (m, n) = (t.len(), q.len());
    if m < 4 || n < 2 {
        return dtw_impl(t, q, tau);
    }
    let h = m / 2; // forward half covers rows 0..h (0-based), backward h..m

    // Forward DP over rows 0..h.
    let mut fwd = vec![0.0f64; n];
    let mut acc = 0.0;
    for (j, qj) in q.iter().enumerate() {
        acc += t[0].dist(qj);
        fwd[j] = acc;
    }
    let mut cur = vec![0.0f64; n];
    for ti in t.iter().take(h).skip(1) {
        cur[0] = fwd[0] + ti.dist(&q[0]);
        let mut row_min = cur[0];
        for j in 1..n {
            let best = fwd[j - 1].min(fwd[j]).min(cur[j - 1]);
            cur[j] = ti.dist(&q[j]) + best;
            row_min = row_min.min(cur[j]);
        }
        if row_min > tau {
            return None;
        }
        std::mem::swap(&mut fwd, &mut cur);
    }

    // Backward DP over rows m-1 ..= h (0-based), mirroring the recurrence:
    // bwd(i, j) = dist(ti, qj) + min(bwd(i+1, j+1), bwd(i+1, j), bwd(i, j+1)).
    let mut bwd = vec![0.0f64; n];
    let last = &t[m - 1];
    let mut acc = 0.0;
    for j in (0..n).rev() {
        acc += last.dist(&q[j]);
        bwd[j] = acc;
    }
    let mut bnext = vec![0.0f64; n];
    for ti in t[h..m - 1].iter().rev() {
        bnext[n - 1] = bwd[n - 1] + ti.dist(&q[n - 1]);
        let mut row_min = bnext[n - 1];
        for j in (0..n - 1).rev() {
            let best = bwd[j + 1].min(bwd[j]).min(bnext[j + 1]);
            bnext[j] = ti.dist(&q[j]) + best;
            row_min = row_min.min(bnext[j]);
        }
        if row_min > tau {
            return None;
        }
        std::mem::swap(&mut bwd, &mut bnext);
    }

    // Join: forward path ends at (h-1, j) and continues to (h, j) or (h, j+1).
    let mut best = f64::INFINITY;
    for j in 0..n {
        let cont = if j + 1 < n {
            bwd[j].min(bwd[j + 1])
        } else {
            bwd[j]
        };
        let v = fwd[j] + cont;
        if v < best {
            best = v;
        }
    }
    (best <= tau).then_some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dita_trajectory::trajectory::figure1_trajectories;

    fn fig1() -> Vec<Vec<Point>> {
        figure1_trajectories()
            .into_iter()
            .map(|t| t.points().to_vec())
            .collect()
    }

    #[test]
    fn paper_table1_dtw_value() {
        // Table 1: DTW(T1, T3) = 5.41.
        let ts = fig1();
        let d = dtw(&ts[0], &ts[2]);
        assert!((d - 5.41).abs() < 0.01, "got {d}");
    }

    #[test]
    fn paper_example_2_6_search_answers() {
        // Example 2.6: with Q = T1 and τ = 3, the similar trajectories are
        // {T1, T2}.
        let ts = fig1();
        let q = &ts[0];
        let similar: Vec<usize> = (0..5).filter(|&i| dtw(q, &ts[i]) <= 3.0).collect();
        assert_eq!(similar, vec![0, 1]);
    }

    #[test]
    fn dtw_zero_on_self() {
        for t in fig1() {
            assert_eq!(dtw(&t, &t), 0.0);
        }
    }

    #[test]
    fn dtw_is_symmetric() {
        let ts = fig1();
        for i in 0..ts.len() {
            for j in 0..ts.len() {
                let a = dtw(&ts[i], &ts[j]);
                let b = dtw(&ts[j], &ts[i]);
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn dtw_single_point_rows() {
        // n == 1: sum of distances from every t point to the single q point.
        let t = [Point::new(0.0, 0.0), Point::new(3.0, 4.0)];
        let q = [Point::new(0.0, 0.0)];
        assert_eq!(dtw(&t, &q), 5.0);
        assert_eq!(dtw(&q, &t), 5.0);
        assert_eq!(dtw(&q, &q[..1]), 0.0);
    }

    #[test]
    fn threshold_agrees_with_plain() {
        let ts = fig1();
        for i in 0..ts.len() {
            for j in 0..ts.len() {
                let full = dtw(&ts[i], &ts[j]);
                for tau in [0.5, 1.0, 3.0, 5.0, 10.0] {
                    let thr = dtw_threshold(&ts[i], &ts[j], tau);
                    if full <= tau {
                        let v = thr.expect("threshold variant must not prune true answers");
                        assert!((v - full).abs() < 1e-9);
                    } else {
                        assert!(thr.is_none());
                    }
                }
            }
        }
    }

    #[test]
    fn double_direction_agrees_with_plain() {
        let ts = fig1();
        for i in 0..ts.len() {
            for j in 0..ts.len() {
                let full = dtw(&ts[i], &ts[j]);
                for tau in [0.5, 1.0, 3.0, 5.0, 10.0, 100.0] {
                    let dd = dtw_double_direction(&ts[i], &ts[j], tau);
                    if full <= tau {
                        let v = dd.expect("double-direction must not prune true answers");
                        assert!(
                            (v - full).abs() < 1e-9,
                            "i={i} j={j} tau={tau}: {v} vs {full}"
                        );
                    } else {
                        assert!(dd.is_none(), "i={i} j={j} tau={tau}");
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_input_panics() {
        let _ = dtw(&[], &[Point::new(0.0, 0.0)]);
    }
}
