//! Runtime-dispatched distance functions.
//!
//! The SQL layer, the experiment harness and the index all need to treat the
//! distance function as a value ("versatility" is challenge (4) in the
//! paper's introduction). [`DistanceFunction`] carries the function choice
//! plus its parameters, and [`IndexMode`] tells the trie index how the
//! threshold budget evolves while descending levels (Appendix A):
//!
//! * DTW and ERP *accumulate*: each matched level subtracts its MinDist from
//!   the remaining budget.
//! * Fréchet takes the *max*: the budget stays τ at every level; a level is
//!   pruned when its MinDist alone exceeds τ.
//! * EDR and LCSS *count edits*: a level whose MinDist exceeds ϵ costs one
//!   unit of the integer budget.

use crate::kernel::{self, Scratch};
use crate::{dtw, edr, erp, frechet, lcss};
use dita_trajectory::{Point, SoaView};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// How the trie index consumes the threshold budget for a distance function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IndexMode {
    /// Budget shrinks by each level's MinDist (DTW).
    Additive,
    /// Budget stays constant; levels exceeding it are pruned (Fréchet).
    Max,
    /// Budget is an edit count; levels whose MinDist exceeds ϵ cost 1
    /// (EDR, LCSS).
    EditCount {
        /// The matching threshold ϵ.
        eps: f64,
        /// Whether both sides pay for unmatched points (EDR) or only the
        /// shorter side (LCSS: distance = `min(m, n) − L`).
        symmetric: bool,
    },
    /// No index pruning is sound: scan everything and rely on verification
    /// (ERP — its gap point lets any indexed point be deleted cheaply, so
    /// neither endpoint alignment nor pivot accumulation holds; the paper's
    /// index likewise covers only DTW, Fréchet, EDR and LCSS in Appendix A).
    Scan,
}

/// A trajectory distance function with its parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DistanceFunction {
    /// Dynamic Time Warping (the paper's default, Definition 2.2).
    Dtw,
    /// Discrete Fréchet distance (Definition A.1) — metric.
    Frechet,
    /// Edit Distance on Real sequence with matching threshold ϵ
    /// (Definition A.2).
    Edr {
        /// Matching threshold ϵ.
        eps: f64,
    },
    /// LCSS-derived distance `min(m, n) − LCSS_{δ,ϵ}` (Definition A.3).
    Lcss {
        /// Matching threshold ϵ.
        eps: f64,
        /// Index band width δ.
        delta: usize,
    },
    /// Edit distance with Real Penalty and gap point `g` — metric.
    Erp {
        /// Gap point coordinates.
        gap: (f64, f64),
    },
}

impl DistanceFunction {
    /// The paper's default LCSS/EDR parameters for its experiments (§B):
    /// ϵ = 1e-4, δ = 3.
    pub const PAPER_EDR: DistanceFunction = DistanceFunction::Edr { eps: 1e-4 };
    /// See [`DistanceFunction::PAPER_EDR`].
    pub const PAPER_LCSS: DistanceFunction = DistanceFunction::Lcss {
        eps: 1e-4,
        delta: 3,
    };

    /// Short lowercase name (`dtw`, `frechet`, `edr`, `lcss`, `erp`).
    pub fn name(&self) -> &'static str {
        match self {
            DistanceFunction::Dtw => "dtw",
            DistanceFunction::Frechet => "frechet",
            DistanceFunction::Edr { .. } => "edr",
            DistanceFunction::Lcss { .. } => "lcss",
            DistanceFunction::Erp { .. } => "erp",
        }
    }

    /// Whether the function satisfies the triangle inequality.
    pub fn is_metric(&self) -> bool {
        matches!(
            self,
            DistanceFunction::Frechet | DistanceFunction::Erp { .. }
        )
    }

    /// How the trie index consumes the budget for this function.
    pub fn index_mode(&self) -> IndexMode {
        match self {
            DistanceFunction::Dtw => IndexMode::Additive,
            DistanceFunction::Frechet => IndexMode::Max,
            DistanceFunction::Edr { eps } => IndexMode::EditCount {
                eps: *eps,
                symmetric: true,
            },
            DistanceFunction::Lcss { eps, .. } => IndexMode::EditCount {
                eps: *eps,
                symmetric: false,
            },
            DistanceFunction::Erp { .. } => IndexMode::Scan,
        }
    }

    /// Whether the DTW-family endpoint alignment holds (first points aligned
    /// with first points, last with last) so endpoint-based partitioning and
    /// align-MBR filtering are sound: `dist(t1, q1) ≤ f(T, Q)`. True for DTW
    /// and Fréchet only — the edit family may delete endpoints at unit cost,
    /// and ERP may delete them at gap-distance cost.
    pub fn aligns_endpoints(&self) -> bool {
        matches!(self, DistanceFunction::Dtw | DistanceFunction::Frechet)
    }

    /// Full distance between two point sequences.
    pub fn distance(&self, t: &[Point], q: &[Point]) -> f64 {
        match self {
            DistanceFunction::Dtw => dtw::dtw(t, q),
            DistanceFunction::Frechet => frechet::frechet(t, q),
            DistanceFunction::Edr { eps } => edr::edr(t, q, *eps),
            DistanceFunction::Lcss { eps, delta } => lcss::lcss_distance(t, q, *eps, *delta),
            DistanceFunction::Erp { gap } => erp::erp(t, q, &Point::new(gap.0, gap.1)),
        }
    }

    /// Threshold-aware distance: `Some(d)` iff `d ≤ tau`, with function-
    /// specific early abandoning.
    pub fn within(&self, t: &[Point], q: &[Point], tau: f64) -> Option<f64> {
        match self {
            DistanceFunction::Dtw => dtw::dtw_threshold(t, q, tau),
            DistanceFunction::Frechet => frechet::frechet_threshold(t, q, tau),
            DistanceFunction::Edr { eps } => edr::edr_threshold(t, q, *eps, tau),
            DistanceFunction::Lcss { eps, delta } => {
                lcss::lcss_distance_threshold(t, q, *eps, *delta, tau)
            }
            DistanceFunction::Erp { gap } => {
                erp::erp_threshold(t, q, &Point::new(gap.0, gap.1), tau)
            }
        }
    }

    /// Threshold-aware verification using the double-direction optimization
    /// where available (§5.3.3(3)); falls back to [`DistanceFunction::within`]
    /// for the other functions.
    pub fn verify(&self, t: &[Point], q: &[Point], tau: f64) -> Option<f64> {
        match self {
            DistanceFunction::Dtw => dtw::dtw_double_direction(t, q, tau),
            _ => self.within(t, q, tau),
        }
    }

    /// Threshold-aware verification on structure-of-arrays data using the
    /// band-pruned [`kernel`] implementations; the hot path of the
    /// verification stage. `scratch` is reused across calls so steady-state
    /// verification performs no allocation.
    pub fn verify_soa(
        &self,
        t: SoaView<'_>,
        q: SoaView<'_>,
        tau: f64,
        scratch: &mut Scratch,
    ) -> Option<f64> {
        match self {
            DistanceFunction::Dtw => kernel::dtw_soa(t, q, tau, scratch),
            DistanceFunction::Frechet => kernel::frechet_soa(t, q, tau, scratch),
            DistanceFunction::Edr { eps } => kernel::edr_soa(t, q, *eps, tau, scratch),
            DistanceFunction::Lcss { eps, delta } => {
                kernel::lcss_soa(t, q, *eps, *delta, tau, scratch)
            }
            DistanceFunction::Erp { gap } => kernel::erp_soa(t, q, gap.0, gap.1, tau, scratch),
        }
    }
}

impl fmt::Display for DistanceFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistanceFunction::Dtw => write!(f, "DTW"),
            DistanceFunction::Frechet => write!(f, "FRECHET"),
            DistanceFunction::Edr { eps } => write!(f, "EDR({eps})"),
            DistanceFunction::Lcss { eps, delta } => write!(f, "LCSS({eps}, {delta})"),
            DistanceFunction::Erp { gap } => write!(f, "ERP({}, {})", gap.0, gap.1),
        }
    }
}

/// Parses a bare function name with default parameters; used by the SQL
/// front-end (`DTW`, `FRECHET`, `EDR`, `LCSS`, `ERP`, case-insensitive).
impl FromStr for DistanceFunction {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "dtw" => Ok(DistanceFunction::Dtw),
            "frechet" | "fréchet" => Ok(DistanceFunction::Frechet),
            "edr" => Ok(DistanceFunction::PAPER_EDR),
            "lcss" => Ok(DistanceFunction::PAPER_LCSS),
            "erp" => Ok(DistanceFunction::Erp { gap: (0.0, 0.0) }),
            other => Err(format!("unknown distance function {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dita_trajectory::trajectory::figure1_trajectories;

    #[test]
    fn dispatch_matches_direct_calls() {
        let ts = figure1_trajectories();
        let (a, b) = (ts[0].points(), ts[2].points());
        assert_eq!(DistanceFunction::Dtw.distance(a, b), dtw::dtw(a, b));
        assert_eq!(
            DistanceFunction::Frechet.distance(a, b),
            frechet::frechet(a, b)
        );
        assert_eq!(
            DistanceFunction::Edr { eps: 1.0 }.distance(a, b),
            edr::edr(a, b, 1.0)
        );
        assert_eq!(
            DistanceFunction::Lcss { eps: 1.0, delta: 1 }.distance(a, b),
            lcss::lcss_distance(a, b, 1.0, 1)
        );
        let g = Point::new(0.0, 0.0);
        assert_eq!(
            DistanceFunction::Erp { gap: (0.0, 0.0) }.distance(a, b),
            erp::erp(a, b, &g)
        );
    }

    #[test]
    fn within_and_verify_consistent() {
        let ts = figure1_trajectories();
        let fns = [
            DistanceFunction::Dtw,
            DistanceFunction::Frechet,
            DistanceFunction::Edr { eps: 1.0 },
            DistanceFunction::Lcss { eps: 1.0, delta: 1 },
            DistanceFunction::Erp { gap: (0.0, 0.0) },
        ];
        for f in fns {
            for a in &ts {
                for b in &ts {
                    let d = f.distance(a.points(), b.points());
                    for tau in [0.5, 2.0, 5.0] {
                        let w = f.within(a.points(), b.points(), tau);
                        let v = f.verify(a.points(), b.points(), tau);
                        if d <= tau {
                            assert!((w.unwrap() - d).abs() < 1e-9, "{f} within");
                            assert!((v.unwrap() - d).abs() < 1e-9, "{f} verify");
                        } else {
                            assert!(w.is_none(), "{f} within should prune");
                            assert!(v.is_none(), "{f} verify should prune");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn metric_flags() {
        assert!(!DistanceFunction::Dtw.is_metric());
        assert!(DistanceFunction::Frechet.is_metric());
        assert!(!DistanceFunction::PAPER_EDR.is_metric());
        assert!(!DistanceFunction::PAPER_LCSS.is_metric());
        assert!(DistanceFunction::Erp { gap: (0.0, 0.0) }.is_metric());
    }

    #[test]
    fn index_modes() {
        assert_eq!(DistanceFunction::Dtw.index_mode(), IndexMode::Additive);
        assert_eq!(DistanceFunction::Frechet.index_mode(), IndexMode::Max);
        assert_eq!(
            DistanceFunction::Edr { eps: 0.5 }.index_mode(),
            IndexMode::EditCount {
                eps: 0.5,
                symmetric: true
            }
        );
        assert_eq!(
            DistanceFunction::Lcss { eps: 0.5, delta: 2 }.index_mode(),
            IndexMode::EditCount {
                eps: 0.5,
                symmetric: false
            }
        );
        assert_eq!(
            DistanceFunction::Erp { gap: (0.0, 0.0) }.index_mode(),
            IndexMode::Scan
        );
        assert!(!DistanceFunction::Erp { gap: (0.0, 0.0) }.aligns_endpoints());
    }

    #[test]
    fn parse_round_trip() {
        assert_eq!(
            "dtw".parse::<DistanceFunction>().unwrap(),
            DistanceFunction::Dtw
        );
        assert_eq!(
            "FRECHET".parse::<DistanceFunction>().unwrap(),
            DistanceFunction::Frechet
        );
        assert!(matches!(
            "edr".parse::<DistanceFunction>().unwrap(),
            DistanceFunction::Edr { .. }
        ));
        assert!("manhattan".parse::<DistanceFunction>().is_err());
    }

    #[test]
    fn display_names() {
        assert_eq!(DistanceFunction::Dtw.to_string(), "DTW");
        assert_eq!(DistanceFunction::Dtw.name(), "dtw");
        assert_eq!(DistanceFunction::Frechet.name(), "frechet");
    }
}
