//! Structure-of-arrays threshold kernels with band-pruned early abandoning.
//!
//! These are the verification-stage (§5.3.3) rewrites of the five distance
//! functions, designed around three observations:
//!
//! 1. **SoA layout** ([`SoaView`]): the DP inner loops stream coordinates,
//!    so two contiguous `f64` arrays beat interleaved `Point`s on cache
//!    lines and let LLVM vectorize the subtract/multiply part of the
//!    distance.
//! 2. **Band pruning** (UCR-Suite style): for DTW, Fréchet, EDR and ERP
//!    every DP step adds a non-negative cost (Fréchet combines with `max`,
//!    which is also monotone), so cell values never decrease along a path.
//!    A cell whose value exceeds τ can therefore never be part of an
//!    accepting path and may be treated as +∞. Each row tracks the window
//!    `[lo, hi]` of columns still ≤ τ: the next row starts at `lo` (columns
//!    left of it are provably > τ by induction) and stops as soon as it is
//!    right of `hi` with a value > τ (every later cell's ancestors are
//!    all > τ). This is strictly stronger than the whole-row-minimum abandon of
//!    the scalar variants — dissimilar pairs shrink the window to a thin
//!    diagonal corridor instead of paying full rows until the minimum
//!    finally crosses τ. Values inside the window are exact DP values, so
//!    accepted distances are bit-identical to the plain O(mn) reference.
//! 3. **Squared-distance comparisons**: Fréchet runs entirely in squared
//!    space (`max` commutes with `sqrt`; one square root at the end), and
//!    the EDR/LCSS matching predicates compare `dist² ≤ ϵ²`. DTW and ERP
//!    sum distances and must keep the per-cell square root.
//!
//! All kernels take a [`Scratch`] so steady-state verification performs no
//! heap allocation at all; buffers are reused across candidates.
//!
//! 4. **Chunked distance precompute**: inside each DP row, the point
//!    distances are hoisted out of the branchy recurrence into a separate
//!    pass over a [`CHUNK`]-column slice — a straight-line
//!    subtract/multiply/add (and for DTW/ERP, `sqrt`) loop with no data
//!    dependences between lanes, which LLVM autovectorizes. The DP
//!    recurrence then reads the precomputed slice. Chunking (rather than
//!    precomputing whole rows) keeps the τ-abandon effective: when the band
//!    window collapses mid-row, at most `CHUNK − 1` distances were computed
//!    speculatively. The arithmetic per element is identical (same operand
//!    order, merely hoisted), so results stay bit-identical.
//!
//! LCSS is already banded by its index constraint `|i − j| ≤ δ` (§B); its
//! kernel keeps that band and gains the SoA layout, the squared-ϵ
//! predicate, a whole-band distance precompute (the band is at most
//! `2δ + 1` wide) and scratch reuse.

use dita_trajectory::SoaView;

const INF: f64 = f64::INFINITY;
/// Integer infinity for the EDR DP; large enough that `+ 1` cannot wrap.
const IINF: u32 = u32::MAX / 2;
/// Columns of point distances precomputed per vectorizable inner block.
/// Two cache lines of `f64` — wide enough to fill AVX lanes, narrow enough
/// that an early τ-abandon wastes little speculative work.
const CHUNK: usize = 16;

/// Reusable DP buffers for the SoA kernels.
///
/// One `Scratch` per verification thread; the kernels resize the buffers as
/// needed and never read stale contents (each row write covers exactly the
/// positions later reads may touch, padding with +∞ outside the band).
#[derive(Debug, Default, Clone)]
pub struct Scratch {
    fa: Vec<f64>,
    fb: Vec<f64>,
    /// Cached per-column costs (e.g. ERP's `dist(q_j, g)`).
    fc: Vec<f64>,
    /// Per-row point distances, precomputed in branch-free chunks.
    fd: Vec<f64>,
    ua: Vec<u32>,
    ub: Vec<u32>,
    za: Vec<usize>,
    zb: Vec<usize>,
}

impl Scratch {
    /// A fresh, empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Scratch::default()
    }
}

/// Resizes `v` to at least `n` elements and returns the `n`-prefix.
#[inline]
fn grow<T: Clone + Default>(v: &mut Vec<T>, n: usize) -> &mut [T] {
    if v.len() < n {
        v.resize(n, T::default());
    }
    &mut v[..n]
}

/// Threshold DTW on SoA data: `Some(DTW(t, q))` iff it is ≤ `tau`.
///
/// Exact (never prunes a true answer ≤ τ) and bit-identical to
/// [`crate::dtw::dtw_threshold`] on accepted pairs; abandons via the band
/// window described in the module docs.
///
/// # Panics
/// Panics if either sequence is empty (Definition 2.2 requires m, n ≥ 1).
pub fn dtw_soa(t: SoaView<'_>, q: SoaView<'_>, tau: f64, scratch: &mut Scratch) -> Option<f64> {
    assert!(
        !t.is_empty() && !q.is_empty(),
        "DTW requires non-empty sequences"
    );
    // Keep the shorter sequence along the row, as the scalar kernel does.
    if q.len() > t.len() {
        return dtw_soa(q, t, tau, scratch);
    }
    let (m, n) = (t.len(), q.len());
    if n == 1 {
        // Sum of distances to the single column point, abandoning as soon
        // as the (monotone) prefix sum crosses τ.
        let mut s = 0.0;
        for i in 0..m {
            s += t.dist(i, &q, 0);
            if s > tau {
                return None;
            }
        }
        return Some(s);
    }

    let prev = grow(&mut scratch.fa, n);
    let cur = grow(&mut scratch.fb, n);
    let row = grow(&mut scratch.fd, n);

    // Row 0: prefix sums of dist(t0, q_j) — monotone, so the feasible
    // window is [0, hi] and everything past the first crossing is +∞.
    let mut hi = n; // exclusive end of the feasible window
    let mut acc = 0.0;
    for (j, p) in prev.iter_mut().enumerate() {
        acc += t.dist(0, &q, j);
        *p = acc;
        if acc > tau {
            hi = j;
            break;
        }
    }
    if hi == 0 {
        return None; // cell (0,0) > τ: every path starts above the budget
    }
    for x in prev[hi.min(n)..n].iter_mut() {
        *x = INF;
    }
    if m == 1 {
        let v = prev[n - 1];
        return (v <= tau).then_some(v);
    }

    let mut lo = 0usize; // first feasible column of the previous row
    let (mut prev, mut cur) = (prev, cur);
    for i in 1..m {
        // Invalidate the diagonal neighbor of the window start so row i+1
        // never reads a stale value from two rows ago.
        if lo > 0 {
            cur[lo - 1] = INF;
        }
        let (txi, tyi) = (t.xs[i], t.ys[i]);
        let mut new_lo = usize::MAX;
        let mut new_hi = 0usize;
        let mut left = INF;
        let mut stop = n;
        'row: for cs in (lo..n).step_by(CHUNK) {
            let ce = (cs + CHUNK).min(n);
            // Hoisted distance pass: straight-line lanes LLVM vectorizes.
            for (x, j) in row[cs..ce].iter_mut().zip(cs..ce) {
                let dx = txi - q.xs[j];
                let dy = tyi - q.ys[j];
                *x = (dx * dx + dy * dy).sqrt();
            }
            for j in cs..ce {
                let best = if j == 0 {
                    prev[0]
                } else {
                    prev[j - 1].min(prev[j]).min(left)
                };
                let v = row[j] + best;
                cur[j] = v;
                left = v;
                if v <= tau {
                    if new_lo == usize::MAX {
                        new_lo = j;
                    }
                    new_hi = j;
                } else if j >= hi {
                    // Right of the previous row's window with a value > τ:
                    // all remaining ancestors are > τ, so the rest of the
                    // row is too.
                    stop = j + 1;
                    break 'row;
                }
            }
        }
        if new_lo == usize::MAX {
            return None; // no cell of this row can reach an answer ≤ τ
        }
        for x in cur[stop..n].iter_mut() {
            *x = INF;
        }
        lo = new_lo;
        hi = new_hi + 1;
        std::mem::swap(&mut prev, &mut cur);
    }
    let v = prev[n - 1];
    (v <= tau && v.is_finite()).then_some(v)
}

/// Threshold discrete Fréchet on SoA data, computed in squared space.
///
/// Same band machinery as [`dtw_soa`]; comparisons use `dist²` against `τ²`
/// (the `max` combine commutes with `sqrt`), with a single square root on
/// the accepted value — bit-identical to [`crate::frechet`] output. The
/// accept/reject decision itself compares in squared space, which can
/// differ from the linear-space comparison only when the true distance is
/// within one ulp of `τ`.
///
/// # Panics
/// Panics if either sequence is empty.
pub fn frechet_soa(t: SoaView<'_>, q: SoaView<'_>, tau: f64, scratch: &mut Scratch) -> Option<f64> {
    assert!(
        !t.is_empty() && !q.is_empty(),
        "Fréchet requires non-empty sequences"
    );
    if tau < 0.0 {
        return None;
    }
    if q.len() > t.len() {
        return frechet_soa(q, t, tau, scratch);
    }
    let (m, n) = (t.len(), q.len());
    let tau_sq = tau * tau;
    if n == 1 {
        let mut s = 0.0f64;
        for i in 0..m {
            s = s.max(t.dist_sq(i, &q, 0));
            if s > tau_sq {
                return None;
            }
        }
        return Some(s.sqrt());
    }

    let prev = grow(&mut scratch.fa, n);
    let cur = grow(&mut scratch.fb, n);
    let row = grow(&mut scratch.fd, n);

    let mut hi = n;
    let mut acc = 0.0f64;
    for (j, p) in prev.iter_mut().enumerate() {
        acc = acc.max(t.dist_sq(0, &q, j));
        *p = acc;
        if acc > tau_sq {
            hi = j;
            break;
        }
    }
    if hi == 0 {
        return None;
    }
    for x in prev[hi.min(n)..n].iter_mut() {
        *x = INF;
    }
    if m == 1 {
        let v = prev[n - 1];
        return (v <= tau_sq).then_some(v.sqrt());
    }

    let mut lo = 0usize;
    let (mut prev, mut cur) = (prev, cur);
    for i in 1..m {
        if lo > 0 {
            cur[lo - 1] = INF;
        }
        let (txi, tyi) = (t.xs[i], t.ys[i]);
        let mut new_lo = usize::MAX;
        let mut new_hi = 0usize;
        let mut left = INF;
        let mut stop = n;
        'row: for cs in (lo..n).step_by(CHUNK) {
            let ce = (cs + CHUNK).min(n);
            // Squared space: the hoisted pass needs no square root at all.
            for (x, j) in row[cs..ce].iter_mut().zip(cs..ce) {
                let dx = txi - q.xs[j];
                let dy = tyi - q.ys[j];
                *x = dx * dx + dy * dy;
            }
            for j in cs..ce {
                let best = if j == 0 {
                    prev[0]
                } else {
                    prev[j - 1].min(prev[j]).min(left)
                };
                let v = best.max(row[j]);
                cur[j] = v;
                left = v;
                if v <= tau_sq {
                    if new_lo == usize::MAX {
                        new_lo = j;
                    }
                    new_hi = j;
                } else if j >= hi {
                    stop = j + 1;
                    break 'row;
                }
            }
        }
        if new_lo == usize::MAX {
            return None;
        }
        for x in cur[stop..n].iter_mut() {
            *x = INF;
        }
        lo = new_lo;
        hi = new_hi + 1;
        std::mem::swap(&mut prev, &mut cur);
    }
    let v = prev[n - 1];
    (v <= tau_sq && v.is_finite()).then_some(v.sqrt())
}

/// Threshold EDR on SoA data: `Some(EDR)` iff EDR ≤ `tau`.
///
/// Integer DP over `n + 1` columns with the same band window (edit costs
/// are 0 or 1, hence monotone); the matching predicate compares squared
/// distances against `ϵ²`. Applies the length filter `EDR ≥ |m − n|` up
/// front (Appendix A). Empty sequences are allowed.
pub fn edr_soa(
    t: SoaView<'_>,
    q: SoaView<'_>,
    eps: f64,
    tau: f64,
    scratch: &mut Scratch,
) -> Option<f64> {
    if tau < 0.0 {
        return None;
    }
    let (m, n) = (t.len(), q.len());
    let tau_int = tau.floor() as i64;
    if (m as i64 - n as i64).abs() > tau_int {
        return None;
    }
    if m == 0 {
        return Some(n as f64); // |m − n| ≤ τ already checked
    }
    if n == 0 {
        return Some(m as f64);
    }
    // EDR ≤ max(m, n), so the budget can be capped to keep the integer DP
    // far from overflow no matter how large τ is.
    let tau_u = tau_int.min(m.max(n) as i64) as u32;
    let eps_sq = eps * eps;

    let prev = grow(&mut scratch.ua, n + 1);
    let cur = grow(&mut scratch.ub, n + 1);
    let row = grow(&mut scratch.fd, n + 1);

    // Row 0: EDR(∅, Q^j) = j; feasible while j ≤ τ.
    let mut hi = n + 1;
    for (j, x) in prev.iter_mut().enumerate() {
        *x = if j as u32 <= tau_u { j as u32 } else { IINF };
        if j as u32 > tau_u && hi == n + 1 {
            hi = j;
        }
    }

    let mut lo = 0usize;
    let (mut prev, mut cur) = (prev, cur);
    for i in 0..m {
        if lo > 0 {
            cur[lo - 1] = IINF;
        }
        let (txi, tyi) = (t.xs[i], t.ys[i]);
        let mut new_lo = usize::MAX;
        let mut new_hi = 0usize;
        let mut left = IINF;
        let mut stop = n + 1;
        'row: for cs in (lo..=n).step_by(CHUNK) {
            let ce = (cs + CHUNK).min(n + 1);
            // Column j matches query point j − 1; column 0 is the
            // empty-prefix base case and carries no distance.
            let ds = cs.max(1);
            for (x, j) in row[ds..ce].iter_mut().zip(ds..ce) {
                let dx = txi - q.xs[j - 1];
                let dy = tyi - q.ys[j - 1];
                *x = dx * dx + dy * dy;
            }
            for j in cs..ce {
                let v = if j == 0 {
                    i as u32 + 1 // EDR(T^{i+1}, ∅)
                } else {
                    let sub = u32::from(row[j] > eps_sq);
                    (prev[j - 1] + sub)
                        .min(prev[j] + 1)
                        .min(left.saturating_add(1))
                };
                cur[j] = v;
                left = v;
                if v <= tau_u {
                    if new_lo == usize::MAX {
                        new_lo = j;
                    }
                    new_hi = j;
                } else if j >= hi {
                    stop = j + 1;
                    break 'row;
                }
            }
        }
        if new_lo == usize::MAX {
            return None;
        }
        for x in cur[stop..=n].iter_mut() {
            *x = IINF;
        }
        lo = new_lo;
        hi = new_hi + 1;
        std::mem::swap(&mut prev, &mut cur);
    }
    let v = prev[n];
    (v <= tau_u).then_some(v as f64)
}

/// Threshold ERP on SoA data with gap point `(gx, gy)`: `Some(d)` iff
/// `d ≤ tau`.
///
/// Same band window as [`dtw_soa`] over `n + 1` columns (gap penalties are
/// non-negative distances); the per-column gap costs `dist(q_j, g)` are
/// computed once into scratch instead of once per row. Empty sequences are
/// allowed (`ERP(T, ∅) = Σ dist(t_i, g)`).
pub fn erp_soa(
    t: SoaView<'_>,
    q: SoaView<'_>,
    gx: f64,
    gy: f64,
    tau: f64,
    scratch: &mut Scratch,
) -> Option<f64> {
    let (m, n) = (t.len(), q.len());
    let gap_dist = |xs: &[f64], ys: &[f64], i: usize| -> f64 {
        let dx = xs[i] - gx;
        let dy = ys[i] - gy;
        (dx * dx + dy * dy).sqrt()
    };
    if m == 0 {
        let mut s = 0.0;
        for j in 0..n {
            s += gap_dist(q.xs, q.ys, j);
        }
        return (s <= tau).then_some(s);
    }
    if n == 0 {
        let mut s = 0.0;
        for i in 0..m {
            s += gap_dist(t.xs, t.ys, i);
        }
        return (s <= tau).then_some(s);
    }

    // Per-column gap penalties, cached once.
    let gq = grow(&mut scratch.fc, n);
    for (j, x) in gq.iter_mut().enumerate() {
        *x = gap_dist(q.xs, q.ys, j);
    }
    let gq: &[f64] = gq;

    let prev = grow(&mut scratch.fa, n + 1);
    let cur = grow(&mut scratch.fb, n + 1);
    let row = grow(&mut scratch.fd, n + 1);

    // Row 0: deleting all of Q's prefix — monotone prefix sums.
    let mut hi = n + 1;
    let mut acc = 0.0;
    prev[0] = 0.0;
    if 0.0 > tau {
        return None; // τ < 0: even the empty alignment is over budget
    }
    for j in 1..=n {
        acc += gq[j - 1];
        prev[j] = acc;
        if acc > tau {
            hi = j;
            break;
        }
    }
    for x in prev[hi.min(n + 1)..=n].iter_mut() {
        *x = INF;
    }

    let mut lo = 0usize;
    let (mut prev, mut cur) = (prev, cur);
    for i in 0..m {
        let del_t = gap_dist(t.xs, t.ys, i);
        if lo > 0 {
            cur[lo - 1] = INF;
        }
        let (txi, tyi) = (t.xs[i], t.ys[i]);
        let mut new_lo = usize::MAX;
        let mut new_hi = 0usize;
        let mut left = INF;
        let mut stop = n + 1;
        'row: for cs in (lo..=n).step_by(CHUNK) {
            let ce = (cs + CHUNK).min(n + 1);
            // Column j matches query point j − 1; column 0 only deletes.
            let ds = cs.max(1);
            for (x, j) in row[ds..ce].iter_mut().zip(ds..ce) {
                let dx = txi - q.xs[j - 1];
                let dy = tyi - q.ys[j - 1];
                *x = (dx * dx + dy * dy).sqrt();
            }
            for j in cs..ce {
                let v = if j == 0 {
                    prev[0] + del_t
                } else {
                    (prev[j - 1] + row[j]) // match t_i with q_{j-1}
                        .min(prev[j] + del_t) // delete t_i
                        .min(left + gq[j - 1]) // delete q_{j-1}
                };
                cur[j] = v;
                left = v;
                if v <= tau {
                    if new_lo == usize::MAX {
                        new_lo = j;
                    }
                    new_hi = j;
                } else if j >= hi {
                    stop = j + 1;
                    break 'row;
                }
            }
        }
        if new_lo == usize::MAX {
            return None;
        }
        for x in cur[stop..=n].iter_mut() {
            *x = INF;
        }
        lo = new_lo;
        hi = new_hi + 1;
        std::mem::swap(&mut prev, &mut cur);
    }
    let v = prev[n];
    (v <= tau && v.is_finite()).then_some(v)
}

/// Threshold LCSS distance (`min(m, n) − LCSS_{δ,ϵ}`) on SoA data:
/// `Some(d)` iff `d ≤ tau`.
///
/// The δ-band of the index constraint already limits work to O(m·δ); this
/// kernel adds the SoA layout, the squared-ϵ matching predicate and scratch
/// buffer reuse, and keeps the optimistic early abandon (at most one extra
/// match per remaining row).
pub fn lcss_soa(
    t: SoaView<'_>,
    q: SoaView<'_>,
    eps: f64,
    delta: usize,
    tau: f64,
    scratch: &mut Scratch,
) -> Option<f64> {
    if tau < 0.0 {
        return None;
    }
    let (m, n) = (t.len(), q.len());
    if m == 0 || n == 0 {
        return Some(0.0);
    }
    let eps_sq = eps * eps;
    let needed = (m.min(n) as f64 - tau).ceil().max(0.0) as usize;

    let width = 2 * delta + 1;
    let prev = grow(&mut scratch.za, width);
    let cur = grow(&mut scratch.zb, width);
    let row = grow(&mut scratch.fd, n);
    prev.fill(0);
    cur.fill(0);
    let mut prev_left: isize = -(delta as isize);

    let band_get = |band: &[usize], band_left: isize, j: isize| -> usize {
        let idx = j - band_left;
        if idx < 0 {
            band[0]
        } else if idx as usize >= band.len() {
            band[band.len() - 1]
        } else {
            band[idx as usize]
        }
    };

    let (mut prev, mut cur) = (prev, cur);
    for i in 0..m {
        let lo = (i as isize) - delta as isize;
        let hi = ((i + delta).min(n - 1)) as isize;
        if hi < lo {
            break; // band moved past the query: nothing can change anymore
        }
        let left_outside = if lo - 1 < 0 {
            0
        } else {
            band_get(prev, prev_left, lo - 1)
        };
        // The band is at most 2δ + 1 wide: precompute its squared
        // distances in one straight-line pass.
        let (txi, tyi) = (t.xs[i], t.ys[i]);
        let (jlo, jhi) = (lo.max(0) as usize, hi as usize);
        for (x, j) in row[jlo..=jhi].iter_mut().zip(jlo..=jhi) {
            let dx = txi - q.xs[j];
            let dy = tyi - q.ys[j];
            *x = dx * dx + dy * dy;
        }
        let mut row_max = 0usize;
        let mut running_left = left_outside;
        for j in lo.max(0)..=hi {
            let matched = row[j as usize] <= eps_sq;
            let diag = if j - 1 < 0 {
                0
            } else {
                band_get(prev, prev_left, j - 1)
            };
            let up = band_get(prev, prev_left, j);
            let v = if matched {
                (diag + 1).max(up).max(running_left)
            } else {
                up.max(running_left)
            };
            cur[(j - lo) as usize] = v;
            running_left = v;
            row_max = row_max.max(v);
        }
        if row_max + (m - i - 1) < needed {
            return None;
        }
        std::mem::swap(&mut prev, &mut cur);
        prev_left = lo;
    }
    let sim = band_get(prev, prev_left, n as isize - 1);
    let d = (m.min(n) - sim) as f64;
    (d <= tau).then_some(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dtw, edr, erp, frechet, lcss_distance};
    use dita_trajectory::trajectory::figure1_trajectories;
    use dita_trajectory::{Point, SoaPoints};

    fn fig1() -> Vec<(Vec<Point>, SoaPoints)> {
        figure1_trajectories()
            .into_iter()
            .map(|t| {
                let soa = SoaPoints::from_points(t.points());
                (t.points().to_vec(), soa)
            })
            .collect()
    }

    #[test]
    fn dtw_bit_identical_on_fixtures() {
        let ts = fig1();
        let mut s = Scratch::new();
        for (ap, asoa) in &ts {
            for (bp, bsoa) in &ts {
                let full = dtw(ap, bp);
                for tau in [0.5, 1.0, 3.0, 5.41, 10.0, 100.0] {
                    let got = dtw_soa(asoa.view(), bsoa.view(), tau, &mut s);
                    if full <= tau {
                        assert_eq!(got, Some(full), "tau={tau}");
                    } else {
                        assert_eq!(got, None, "tau={tau} full={full}");
                    }
                }
            }
        }
    }

    #[test]
    fn frechet_bit_identical_on_fixtures() {
        let ts = fig1();
        let mut s = Scratch::new();
        for (ap, asoa) in &ts {
            for (bp, bsoa) in &ts {
                let full = frechet(ap, bp);
                for tau in [0.5, 1.0, 1.42, 2.0, 4.0] {
                    let got = frechet_soa(asoa.view(), bsoa.view(), tau, &mut s);
                    if full <= tau {
                        assert_eq!(got, Some(full), "tau={tau}");
                    } else {
                        assert_eq!(got, None, "tau={tau} full={full}");
                    }
                }
            }
        }
    }

    #[test]
    fn edr_matches_on_fixtures() {
        let ts = fig1();
        let mut s = Scratch::new();
        for (ap, asoa) in &ts {
            for (bp, bsoa) in &ts {
                let full = edr(ap, bp, 1.0);
                for tau in [0.0, 1.0, 2.0, 3.0, 6.0] {
                    let got = edr_soa(asoa.view(), bsoa.view(), 1.0, tau, &mut s);
                    if full <= tau {
                        assert_eq!(got, Some(full));
                    } else {
                        assert_eq!(got, None);
                    }
                }
            }
        }
    }

    #[test]
    fn lcss_matches_on_fixtures() {
        let ts = fig1();
        let mut s = Scratch::new();
        for (ap, asoa) in &ts {
            for (bp, bsoa) in &ts {
                let full = lcss_distance(ap, bp, 1.0, 1);
                for tau in [0.0, 1.0, 2.0, 5.0] {
                    let got = lcss_soa(asoa.view(), bsoa.view(), 1.0, 1, tau, &mut s);
                    if full <= tau {
                        assert_eq!(got, Some(full));
                    } else {
                        assert_eq!(got, None);
                    }
                }
            }
        }
    }

    #[test]
    fn erp_matches_on_fixtures() {
        let ts = fig1();
        let g = Point::new(0.0, 0.0);
        let mut s = Scratch::new();
        for (ap, asoa) in &ts {
            for (bp, bsoa) in &ts {
                let full = erp(ap, bp, &g);
                for tau in [0.5, 2.0, 5.0, 20.0] {
                    let got = erp_soa(asoa.view(), bsoa.view(), 0.0, 0.0, tau, &mut s);
                    if full <= tau {
                        let v = got.expect("must not prune a true answer");
                        assert!((v - full).abs() < 1e-12, "{v} vs {full}");
                    } else {
                        assert_eq!(got, None, "full={full} tau={tau}");
                    }
                }
            }
        }
    }

    #[test]
    fn scratch_reuse_does_not_leak_state() {
        // A long dissimilar pair (fills buffers with INF) followed by a
        // short similar pair must still be exact.
        let a: Vec<Point> = (0..40).map(|i| Point::new(i as f64, 0.0)).collect();
        let b: Vec<Point> = (0..40).map(|i| Point::new(i as f64, 50.0)).collect();
        let (sa, sb) = (SoaPoints::from_points(&a), SoaPoints::from_points(&b));
        let mut s = Scratch::new();
        assert_eq!(dtw_soa(sa.view(), sb.view(), 10.0, &mut s), None);
        let c = [Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        let sc = SoaPoints::from_points(&c);
        assert_eq!(dtw_soa(sc.view(), sc.view(), 1.0, &mut s), Some(0.0));
        assert_eq!(frechet_soa(sa.view(), sb.view(), 10.0, &mut s), None);
        assert_eq!(frechet_soa(sc.view(), sc.view(), 1.0, &mut s), Some(0.0));
    }

    #[test]
    fn single_point_degenerate_cases() {
        let t = SoaPoints::from_points(&[Point::new(0.0, 0.0), Point::new(3.0, 4.0)]);
        let q = SoaPoints::from_points(&[Point::new(0.0, 0.0)]);
        let mut s = Scratch::new();
        assert_eq!(dtw_soa(t.view(), q.view(), 5.0, &mut s), Some(5.0));
        assert_eq!(dtw_soa(q.view(), t.view(), 5.0, &mut s), Some(5.0));
        assert_eq!(dtw_soa(t.view(), q.view(), 4.9, &mut s), None);
        assert_eq!(frechet_soa(t.view(), q.view(), 5.0, &mut s), Some(5.0));
        assert_eq!(frechet_soa(t.view(), q.view(), 4.9, &mut s), None);
    }

    #[test]
    fn empty_sequences_where_allowed() {
        let t = SoaPoints::from_points(&[Point::new(3.0, 4.0)]);
        let e = SoaPoints::from_points(&[]);
        let mut s = Scratch::new();
        assert_eq!(edr_soa(t.view(), e.view(), 1.0, 1.0, &mut s), Some(1.0));
        assert_eq!(edr_soa(e.view(), e.view(), 1.0, 0.0, &mut s), Some(0.0));
        assert_eq!(
            erp_soa(t.view(), e.view(), 0.0, 0.0, 5.0, &mut s),
            Some(5.0)
        );
        assert_eq!(erp_soa(e.view(), t.view(), 0.0, 0.0, 4.9, &mut s), None);
        assert_eq!(lcss_soa(t.view(), e.view(), 1.0, 1, 0.0, &mut s), Some(0.0));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn dtw_empty_panics() {
        let e = SoaPoints::from_points(&[]);
        let t = SoaPoints::from_points(&[Point::new(0.0, 0.0)]);
        let mut s = Scratch::new();
        let _ = dtw_soa(e.view(), t.view(), 1.0, &mut s);
    }

    #[test]
    fn negative_tau_prunes() {
        let t = SoaPoints::from_points(&[Point::new(0.0, 0.0)]);
        let mut s = Scratch::new();
        assert_eq!(dtw_soa(t.view(), t.view(), -1.0, &mut s), None);
        assert_eq!(frechet_soa(t.view(), t.view(), -1.0, &mut s), None);
        assert_eq!(edr_soa(t.view(), t.view(), 1.0, -1.0, &mut s), None);
        assert_eq!(erp_soa(t.view(), t.view(), 0.0, 0.0, -1.0, &mut s), None);
        assert_eq!(lcss_soa(t.view(), t.view(), 1.0, 1, -1.0, &mut s), None);
    }
}
