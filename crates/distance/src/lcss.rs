//! Longest Common SubSequence similarity and the derived distance
//! (Definition A.3).
//!
//! `LCSS_{δ,ϵ}` counts the maximum number of point pairs that can be matched
//! while traversing both trajectories monotonically, where `t_i` and `q_j`
//! may match only if `dist(t_i, q_j) ≤ ϵ` and `|i − j| ≤ δ` (the paper's
//! "index constraint"). Because LCSS is a similarity, DITA's threshold
//! queries use the distance `min(m, n) − LCSS`, which matches the paper's
//! worked example (`LCSS-distance(T1, T3) = 2` with δ = 1, ϵ = 1).

use dita_trajectory::Point;

/// LCSS similarity: length of the longest ϵ/δ-constrained common
/// subsequence. Empty inputs yield 0.
///
/// Computed with a **banded** dynamic program: matches require
/// `|i − j| ≤ δ`, and one can show `dp(i, j) = dp(i, i+δ)` for `j > i+δ`
/// (no match involving rows ≤ i exists beyond column i+δ) and symmetrically
/// below the band — so only the `2δ+1` diagonal band needs computing. This
/// is the "index constraint" speedup the paper credits for LCSS beating EDR
/// (§B): O(m·δ) instead of O(mn).
pub fn lcss_similarity(t: &[Point], q: &[Point], eps: f64, delta: usize) -> usize {
    lcss_banded(t, q, eps, delta, f64::INFINITY).unwrap_or(0)
}

/// Banded LCSS DP. Returns `None` when the early-abandon threshold proves
/// the final distance `min(m, n) − L` must exceed `tau` (pass
/// `tau = ∞` to always complete). Returns `Some(L)` otherwise.
fn lcss_banded(t: &[Point], q: &[Point], eps: f64, delta: usize, tau: f64) -> Option<usize> {
    let (m, n) = (t.len(), q.len());
    if m == 0 || n == 0 {
        return (0.0 <= tau).then_some(0);
    }
    let needed = (m.min(n) as f64 - tau).ceil().max(0.0) as usize;

    // Row band for row i (0-based): columns [i−δ, i+δ] ∩ [0, n−1], stored in
    // a window of width 2δ+1. prev_left = the column index of prev[0].
    let width = 2 * delta + 1;
    let mut prev = vec![0usize; width];
    let mut cur = vec![0usize; width];
    let mut prev_left: isize = -(delta as isize); // row -1's virtual window

    for (i, ti) in t.iter().enumerate() {
        let lo = (i as isize) - delta as isize;
        let hi = ((i + delta).min(n - 1)) as isize;
        if hi < lo {
            // The band has moved entirely past the query: every dp(i', j)
            // with i' ≥ i is frozen at dp(j+δ, j), and dp(·, n−1) sits at
            // the left edge of the last computed band. Nothing can change
            // anymore.
            break;
        }
        // Value of dp(i, lo−1): frozen at dp(i−1, lo−1) (left of band).
        let left_outside = if lo - 1 < 0 {
            0
        } else {
            band_get(&prev, prev_left, lo - 1)
        };
        let mut row_max = 0usize;
        let mut running_left = left_outside;
        for j in lo.max(0)..=hi {
            let qj = &q[j as usize];
            let matched = ti.dist(qj) <= eps; // |i−j| ≤ δ holds inside the band
            let diag = if j - 1 < 0 {
                0
            } else {
                band_get(&prev, prev_left, j - 1)
            };
            let up = band_get(&prev, prev_left, j);
            let v = if matched {
                (diag + 1).max(up).max(running_left)
            } else {
                up.max(running_left)
            };
            band_set(&mut cur, lo, j, v);
            running_left = v;
            row_max = row_max.max(v);
        }
        // Early abandon: at most one extra match per remaining row.
        if row_max + (m - i - 1) < needed {
            return None;
        }
        std::mem::swap(&mut prev, &mut cur);
        prev_left = lo;
    }
    // Final answer: dp(m−1, n−1). The last *computed* row's band is at
    // prev_left; column n−1 is either inside it or frozen at its edges.
    let sim = band_get(&prev, prev_left, n as isize - 1);
    Some(sim)
}

#[inline]
fn band_get(band: &[usize], band_left: isize, j: isize) -> usize {
    let idx = j - band_left;
    if idx < 0 {
        // Left of the stored band: frozen at the leftmost stored value only
        // when that value reflects column j; by construction callers only
        // reach here for j = lo−1 of the next row, which maps to idx = −1 —
        // the frozen column — whose value equals the stored leftmost cell of
        // *its* row. Returning the leftmost stored value is exact.
        band[0]
    } else if idx as usize >= band.len() {
        *band.last().unwrap()
    } else {
        band[idx as usize]
    }
}

#[inline]
fn band_set(band: &mut [usize], band_left: isize, j: isize, v: usize) {
    let idx = (j - band_left) as usize;
    band[idx] = v;
}

/// LCSS-derived distance: `min(m, n) − LCSS_{δ,ϵ}(t, q)`.
///
/// Zero means one trajectory's points can be fully matched into the other.
pub fn lcss_distance(t: &[Point], q: &[Point], eps: f64, delta: usize) -> f64 {
    let sim = lcss_similarity(t, q, eps, delta);
    (t.len().min(q.len()) - sim) as f64
}

/// Threshold-aware LCSS distance: `Some(d)` iff `d ≤ tau`, with row-wise
/// early abandoning.
///
/// After processing row `i`, the final similarity is at most
/// `max_j dp[i][j] + (m − i)` (each remaining row adds at most one match);
/// when even that optimistic bound leaves `min(m, n) − L > τ`, the pair is
/// abandoned without finishing the O(mn) table.
pub fn lcss_distance_threshold(
    t: &[Point],
    q: &[Point],
    eps: f64,
    delta: usize,
    tau: f64,
) -> Option<f64> {
    if tau < 0.0 {
        return None;
    }
    let sim = lcss_banded(t, q, eps, delta, tau)?;
    let d = (t.len().min(q.len()) - sim) as f64;
    (d <= tau).then_some(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dita_trajectory::trajectory::figure1_trajectories;

    fn fig1() -> Vec<Vec<Point>> {
        figure1_trajectories()
            .into_iter()
            .map(|t| t.points().to_vec())
            .collect()
    }

    #[test]
    fn paper_appendix_a_value() {
        // Appendix A: with δ = 1 and ϵ = 1, LCSS-distance(T1, T3) = 2.
        let ts = fig1();
        assert_eq!(lcss_distance(&ts[0], &ts[2], 1.0, 1), 2.0);
        assert_eq!(lcss_similarity(&ts[0], &ts[2], 1.0, 1), 4);
    }

    #[test]
    fn identical_sequences_have_zero_distance() {
        let ts = fig1();
        for t in &ts {
            assert_eq!(lcss_distance(t, t, 0.0, 0), 0.0);
            assert_eq!(lcss_similarity(t, t, 0.0, 0), t.len());
        }
    }

    #[test]
    fn empty_inputs() {
        let t = [Point::new(0.0, 0.0)];
        assert_eq!(lcss_similarity(&t, &[], 1.0, 1), 0);
        assert_eq!(lcss_similarity(&[], &t, 1.0, 1), 0);
        assert_eq!(lcss_distance(&t, &[], 1.0, 1), 0.0); // min(m,n) = 0
    }

    #[test]
    fn band_constraint_blocks_distant_indices() {
        // Identical points, but shifted by more than δ positions.
        let a: Vec<Point> = (0..6).map(|i| Point::new(i as f64 * 10.0, 0.0)).collect();
        // b equals a shifted by 3 positions: b[j] = a[j + 3].
        let b: Vec<Point> = (3..6).map(|i| Point::new(i as f64 * 10.0, 0.0)).collect();
        // With a wide band the three common points all match.
        assert_eq!(lcss_similarity(&a, &b, 0.1, 6), 3);
        // With δ = 0, a[i] only pairs with b[i]; a[i] = b[i] + 30 never matches.
        assert_eq!(lcss_similarity(&a, &b, 0.1, 0), 0);
    }

    #[test]
    fn similarity_is_monotone_in_eps_and_delta() {
        let ts = fig1();
        for i in 0..ts.len() {
            for j in 0..ts.len() {
                let tight = lcss_similarity(&ts[i], &ts[j], 0.5, 1);
                let looser_eps = lcss_similarity(&ts[i], &ts[j], 2.0, 1);
                let looser_delta = lcss_similarity(&ts[i], &ts[j], 0.5, 4);
                assert!(looser_eps >= tight);
                assert!(looser_delta >= tight);
            }
        }
    }

    #[test]
    fn similarity_bounded_by_min_length() {
        let ts = fig1();
        for i in 0..ts.len() {
            for j in 0..ts.len() {
                let s = lcss_similarity(&ts[i], &ts[j], 100.0, 100);
                assert_eq!(s, ts[i].len().min(ts[j].len()));
            }
        }
    }

    #[test]
    fn threshold_agrees_with_plain() {
        let ts = fig1();
        for i in 0..ts.len() {
            for j in 0..ts.len() {
                let full = lcss_distance(&ts[i], &ts[j], 1.0, 1);
                for tau in [0.0, 1.0, 2.0, 5.0] {
                    match lcss_distance_threshold(&ts[i], &ts[j], 1.0, 1, tau) {
                        Some(v) => {
                            assert_eq!(v, full);
                            assert!(full <= tau);
                        }
                        None => assert!(full > tau),
                    }
                }
            }
        }
    }
}
