//! Trajectory distance functions and pruning bounds for DITA.
//!
//! Implements every similarity function the paper supports (§2.1, Appendix A):
//!
//! * [`dtw()`] — Dynamic Time Warping, the paper's default (Definition 2.2),
//!   with threshold-aware early-abandoning and the double-direction
//!   verification of §5.3.3(3).
//! * [`frechet()`] — discrete Fréchet distance (Definition A.1), the metric
//!   function.
//! * [`edr()`] — Edit Distance on Real sequence (Definition A.2).
//! * [`lcss`] — Longest Common SubSequence similarity and the derived
//!   distance (Definition A.3).
//! * [`erp()`] — Edit distance with Real Penalty (metric, Chen & Ng 2004).
//! * [`bounds`] — the filter-step lower bounds: AMD / PAMD (§4.1), the MBR
//!   coverage test (Lemma 5.4) and the EDR/LCSS length filter (Appendix A).
//! * [`function`] — a runtime-dispatched [`DistanceFunction`] used by the
//!   SQL layer and the experiment harness.
//! * [`kernel`] — structure-of-arrays threshold kernels with UCR-style band
//!   pruning and reusable scratch buffers: the verification hot path.
//!
//! All functions operate on `&[Point]` slices so they can be used on raw
//! buffers as well as [`dita_trajectory::Trajectory`] values.

#![warn(missing_docs)]

pub mod bounds;
pub mod dtw;
pub mod edr;
pub mod erp;
pub mod frechet;
pub mod function;
pub mod kernel;
pub mod lcss;

pub use bounds::{amd, length_bound_edr, mbr_coverage_prune, pamd};
pub use dtw::{dtw, dtw_double_direction, dtw_threshold};
pub use edr::{edr, edr_threshold};
pub use erp::{erp, erp_threshold};
pub use frechet::{frechet, frechet_threshold};
pub use function::DistanceFunction;
pub use kernel::{dtw_soa, edr_soa, erp_soa, frechet_soa, lcss_soa, Scratch};
pub use lcss::{lcss_distance, lcss_distance_threshold, lcss_similarity};
